#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace oa {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = failed_precondition("no trapezoid area");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(s.message(), "no trapezoid area");
  EXPECT_EQ(s.to_string(), "failed_precondition: no trapezoid area");
}

TEST(Status, EveryCodeHasName) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(error_code_name(ErrorCode::kIllegal), "illegal");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnimplemented), "unimplemented");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

StatusOr<int> parse_positive(int v) {
  if (v <= 0) return invalid_argument("not positive");
  return v;
}

TEST(StatusOr, HoldsValue) {
  auto r = parse_positive(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  auto r = parse_positive(-1);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

Status needs_even(int v) {
  OA_RETURN_IF_ERROR(parse_positive(v).status());
  if (v % 2) return failed_precondition("odd");
  return Status::ok();
}

TEST(StatusOr, ReturnIfErrorPropagates) {
  EXPECT_TRUE(needs_even(4).is_ok());
  EXPECT_EQ(needs_even(3).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(needs_even(-3).code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------- strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, Split) {
  auto v = split("a, b , c", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitKeepsEmptyByDefault) {
  auto v = split("a,,b", ',');
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "");
  auto w = split("a,,b", ',', /*skip_empty=*/true);
  ASSERT_EQ(w.size(), 2u);
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("thread_grouping", "thread"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_TRUE(ends_with("GEMM-NN", "-NN"));
  EXPECT_FALSE(ends_with("GEMM", "-NN"));
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
}

TEST(Strings, FormatMillions) {
  EXPECT_EQ(format_millions(0), "0");
  EXPECT_EQ(format_millions(804'000'000), "804M");
  EXPECT_EQ(format_millions(420'000), "0.42M");
  EXPECT_EQ(format_millions(33'000'000), "33M");
  EXPECT_EQ(format_millions(1'500'000), "1.5M");
}

// ------------------------------------------------------------------- rng

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FillRange) {
  Rng r(9);
  std::vector<float> v(256);
  r.fill(v);
  for (float x : v) {
    EXPECT_GE(x, -1.0f);
    EXPECT_LT(x, 1.0f);
  }
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesZeroAndOne) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](size_t) { FAIL(); });
  int count = 0;
  pool.parallel_for(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ReducesCorrectly) {
  ThreadPool pool;
  std::vector<long> out(10000);
  pool.parallel_for(out.size(), [&](size_t i) { out[i] = long(i); });
  long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, 10000L * 9999 / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(50, [&](size_t) { n++; });
    EXPECT_EQ(n.load(), 50);
  }
}

// ----------------------------------------------------------------- table

TEST(TextTable, AlignsColumns) {
  TextTable t({"Events", "CUBLAS", "OA"});
  t.add_row({"instructions", "804M", "402M"});
  t.add_row({"gld_incoherent", "400M", "0"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Events"), std::string::npos);
  EXPECT_NE(s.find("804M"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "x,y"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,\"x,y\"\n");
}

TEST(AsciiBarChart, ScalesBars) {
  std::string s = ascii_bar_chart({{"GEMM", 1.0}, {"SYMM", 5.4}}, 5.4, 10);
  // SYMM is the max: full width. GEMM ~ 2 chars.
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find("5.40"), std::string::npos);
}

}  // namespace
}  // namespace oa
