// Corner cases of the IR layer that the transform pipeline depends on
// but the main ir_test does not pin: bound containers with many terms,
// substitution chains, validation of guarded bodies, interval hulls,
// printer fidelity for transformed kernels.
#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "ir/interval.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "transforms/transform.hpp"

namespace oa::ir {
namespace {

AffineExpr sym(const char* s, int64_t c = 1) { return AffineExpr::sym(s, c); }

TEST(BoundCorners, ManyTermEvaluation) {
  Bound b = Bound::min_of({sym("M"), sym("kk") + 16, sym("i") + 1,
                           AffineExpr(1000)});
  Env env{{"M", 100}, {"kk", 80}, {"i", 90}};
  EXPECT_EQ(b.eval_min(env), 91);
  env["i"] = 200;
  EXPECT_EQ(b.eval_min(env), 96);
}

TEST(BoundCorners, SubstitutionAcrossAllTerms) {
  Bound b = Bound::min_of({sym("i") + 1, sym("M")});
  Bound s = b.substituted("i", sym("ii", 4) + sym("iii"));
  EXPECT_EQ(s.terms()[0].coeff("ii"), 4);
  EXPECT_EQ(s.terms()[0].coeff("iii"), 1);
  EXPECT_EQ(s.terms()[1], sym("M"));
}

TEST(AffineCorners, ChainedSubstitutionMatchesComposition) {
  // (i -> 2a + b), then (a -> c + 1): i == 2c + 2 + b.
  AffineExpr e = sym("i", 3) + 7;
  AffineExpr step1 = e.substituted("i", sym("a", 2) + sym("b"));
  AffineExpr step2 = step1.substituted("a", sym("c") + 1);
  EXPECT_EQ(step2.coeff("c"), 6);
  EXPECT_EQ(step2.coeff("b"), 3);
  EXPECT_EQ(step2.constant_term(), 7 + 6);
}

TEST(AffineCorners, SelfReferentialRenameIsSafe) {
  // rename i -> i (identity) and i -> j when j already present.
  AffineExpr e = sym("i", 2) + sym("j", 3);
  EXPECT_EQ(e.renamed("i", "i"), e);
  AffineExpr merged = e.renamed("i", "j");
  EXPECT_EQ(merged.coeff("j"), 5);
}

TEST(IntervalCorners, HullAndScale) {
  Interval a{-3, 4};
  EXPECT_EQ(a.scaled(-2), (Interval{-8, 6}));
  EXPECT_EQ(a.hull({10, 12}), (Interval{-3, 12}));
  EXPECT_EQ(a.width(), 8);
}

TEST(ValidateCorners, GuardedBodiesAreChecked) {
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  // Wrap the statement in an If whose then-branch uses an out-of-scope
  // symbol.
  Node* lk = p.main_kernel().find("Lk");
  NodePtr stmt = std::move(lk->body[0]);
  stmt->lhs.index[0] = sym("nowhere");
  std::vector<NodePtr> then_body;
  then_body.push_back(std::move(stmt));
  lk->body.clear();
  lk->body.push_back(
      make_if({Pred{sym("i"), Pred::Op::kGe}}, std::move(then_body)));
  EXPECT_FALSE(validate(p).is_ok());
}

TEST(ValidateCorners, SharedArrayNeedsConstantShape) {
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  p.main_kernel().local_arrays.push_back(
      {"S", MemSpace::kShared, sym("M"), AffineExpr(4), 0});
  EXPECT_FALSE(validate(p).is_ok());
}

TEST(PrinterCorners, TransformedGemmRendersEveryConstruct) {
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  ASSERT_TRUE(
      epod::apply_script_lenient(p, epod::gemm_nn_script(), ctx).is_ok());
  const std::string s = to_string(p);
  // Mapping annotations, ceil-div grid bounds, barriers, padded shared
  // decl, unroll annotation, register decl, guarded flush.
  EXPECT_NE(s.find("blockIdx.y"), std::string::npos);
  EXPECT_NE(s.find("threadIdx.x"), std::string::npos);
  EXPECT_NE(s.find("ceil("), std::string::npos);
  EXPECT_NE(s.find("__syncthreads();"), std::string::npos);
  EXPECT_NE(s.find("shared float B_s[32+1][16]"), std::string::npos);
  EXPECT_NE(s.find("unroll"), std::string::npos);
  EXPECT_NE(s.find("register float C_r"), std::string::npos);
  EXPECT_NE(s.find("if ("), std::string::npos);
}

TEST(LoopVarRanges, MappedAndTiledLoops) {
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  ASSERT_TRUE(transforms::thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"},
                                          ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(p, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  RangeEnv env = loop_var_ranges(p.main_kernel(),
                                 {{"M", 128}, {"N", 128}, {"K", 64}});
  // Block loop over ceil(128/32) = 4 blocks.
  ASSERT_TRUE(env.contains("i_b"));
  EXPECT_EQ(env.at("i_b"), (Interval{0, 3}));
  // Thread loop over 8 threads.
  ASSERT_TRUE(env.contains("i_t"));
  EXPECT_EQ(env.at("i_t"), (Interval{0, 7}));
  // kk tile origins 0, 16, ..., 48.
  ASSERT_TRUE(env.contains("kk"));
  EXPECT_EQ(env.at("kk").lo, 0);
}

TEST(KernelCopy, TilingMetadataSurvivesCopies) {
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  ASSERT_TRUE(transforms::thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"},
                                          ctx)
                  .is_ok());
  Program copy = p;
  ASSERT_TRUE(copy.main_kernel().tiling.contains("i"));
  EXPECT_EQ(copy.main_kernel().tiling.at("i").block_extent,
            p.main_kernel().tiling.at("i").block_extent);
  // Mutating the copy's body must not touch the original.
  copy.main_kernel().find("Lii")->label = "Lmutated";
  EXPECT_NE(p.main_kernel().find("Lii"), nullptr);
}

TEST(EpodCorners, EmptyScriptAppliesAsNoop) {
  auto script = epod::parse_script("   //nothing\n");
  ASSERT_TRUE(script.is_ok());
  EXPECT_TRUE(script->invocations.empty());
  Program p = blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  EXPECT_TRUE(epod::apply_script(p, *script, ctx).is_ok());
}

TEST(EpodCorners, MaskBitsMatchInvocationOrder) {
  auto script = epod::parse_script(R"(
    peel_triangular(A);
    (Lii, Ljj) = thread_grouping(Li, Lj);
  )");
  ASSERT_TRUE(script.is_ok());
  Program p = blas3::make_source_program(*blas3::find_variant("TRMM-LL-N"));
  transforms::TransformContext ctx;
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  ASSERT_TRUE(mask.is_ok());
  // peel (bit 0) fails before grouping; grouping (bit 1) applies.
  EXPECT_EQ(*mask, uint64_t{2});
}

}  // namespace
}  // namespace oa::ir
