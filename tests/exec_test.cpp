// Native execution backend gate: every catalog variant (48: the
// paper's 24 at f32 plus the f64 family) through three schedules
// (untransformed source, family-script tuned, cublas-like baseline)
// must compute results that match the CPU reference within the
// accumulation tolerance — and the JIT and the portable tape executor
// must agree bit-for-bit, since they implement the same segment ABI.
// Also covers the cache-keying regressions (f32/f64 must not alias),
// the W^X/JIT-unavailable fallback path, and warm re-serve (zero
// recompiles on a second execution).
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "exec/code_buffer.hpp"
#include "exec/executor.hpp"
#include "exec/jit_x86.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa::exec {
namespace {

const char* family_script(blas3::Family f) {
  static const char* kGemm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrmm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrsm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )";
  switch (f) {
    case blas3::Family::kTrmm: return kTrmm;
    case blas3::Family::kTrsm: return kTrsm;
    default: return kGemm;
  }
}

ir::Program tuned_program(const blas3::Variant& v) {
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  auto script = epod::parse_script(family_script(v.family));
  EXPECT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  EXPECT_TRUE(mask.is_ok());
  return p;
}

/// Inputs matching engine::verify_program's generator, so native
/// results are comparable against the same reference the engine uses.
struct Problem {
  blas3::Matrix a, b, c;
  blas3::Matrix expected;  // reference output (b for TRSM, c otherwise)

  Problem(const blas3::Variant& v, int64_t n)
      : a(n, n, v.precision),
        b(n, n, v.precision),
        c(n, n, v.precision),
        expected(n, n, v.precision) {
    Rng rng(0xC0FFEE ^ static_cast<uint64_t>(n));
    a.fill_random(rng);
    b.fill_random(rng);
    if (v.family == blas3::Family::kTrmm ||
        v.family == blas3::Family::kTrsm ||
        v.family == blas3::Family::kSymm) {
      a.make_triangular(v.uplo);
    }
    if (v.family == blas3::Family::kTrsm) {
      a.set_unit_diagonal();
      a.scale_off_diagonal(1.0 / 16.0);
    }
    blas3::Matrix rb = b, rc = c;
    blas3::run_reference(v, a, rb, &rc);
    expected = v.family == blas3::Family::kTrsm ? rb : rc;
  }
};

Status run_native(const blas3::Variant& v, const ir::Program& p,
                  const Problem& prob, ExecCache& cache,
                  blas3::Matrix* out, const ExecOptions& options = {}) {
  blas3::Matrix b = prob.b, c = prob.c;
  OA_RETURN_IF_ERROR(execute_program(gpusim::gtx285(), p, v, prob.a, b,
                                     &c, {}, cache, options));
  *out = v.family == blas3::Family::kTrsm ? b : c;
  return Status::ok();
}

class ExecAllVariants : public ::testing::TestWithParam<blas3::Variant> {};

TEST_P(ExecAllVariants, MatchesReferenceAllSchedules) {
  const blas3::Variant v = GetParam();
  const int64_t n = 96;
  const Problem prob(v, n);
  const double tol = blas3::accumulation_tolerance(n, v.precision);

  std::vector<std::pair<std::string, ir::Program>> programs;
  programs.emplace_back("source", blas3::make_source_program(v));
  programs.emplace_back("tuned", tuned_program(v));
  auto base = baseline::cublas_like(v, gpusim::gtx285());
  ASSERT_TRUE(base.is_ok()) << base.status().to_string();
  programs.emplace_back("baseline", std::move(*base));

  ExecCache cache;
  for (const auto& [label, p] : programs) {
    blas3::Matrix out(n, n, v.precision);
    Status s = run_native(v, p, prob, cache, &out);
    ASSERT_TRUE(s.is_ok()) << label << ": " << s.to_string();
    const double err = blas3::max_abs_diff(out, prob.expected);
    EXPECT_LE(err, tol) << label << ": native err " << err;
  }
  // On x86-64 hosts every kernel must have gone through the JIT.
  if (jit_supported()) {
    const ExecStats st = cache.stats();
    EXPECT_GT(st.jit_kernels, 0);
    EXPECT_EQ(st.portable_kernels, 0);
  }
}

TEST_P(ExecAllVariants, JitAndPortableBitIdentical) {
  const blas3::Variant v = GetParam();
  const int64_t n = 64;
  const Problem prob(v, n);
  const ir::Program p = tuned_program(v);

  ExecCache cache;
  blas3::Matrix jit_out(n, n, v.precision);
  ASSERT_TRUE(run_native(v, p, prob, cache, &jit_out).is_ok());
  blas3::Matrix tape_out(n, n, v.precision);
  ExecOptions portable;
  portable.force_portable = true;
  ASSERT_TRUE(
      run_native(v, p, prob, cache, &tape_out, portable).is_ok());
  EXPECT_EQ(blas3::max_abs_diff(jit_out, tape_out), 0.0)
      << "JIT and portable executor disagree";
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ExecAllVariants,
    ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<blas3::Variant>& info) {
      std::string name = info.param.name();
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ExecCacheTest, WarmReExecuteCompilesNothing) {
  const blas3::Variant* v = blas3::find_variant("GEMM-NN");
  ASSERT_NE(v, nullptr);
  const int64_t n = 96;
  const Problem prob(*v, n);
  const ir::Program p = tuned_program(*v);

  ExecCache cache;
  blas3::Matrix out(n, n, v->precision);
  ASSERT_TRUE(run_native(*v, p, prob, cache, &out).is_ok());
  const ExecStats cold = cache.stats();
  EXPECT_GT(cold.compiles, 0);

  ASSERT_TRUE(run_native(*v, p, prob, cache, &out).is_ok());
  const ExecStats warm = cache.stats();
  EXPECT_EQ(warm.compiles, cold.compiles) << "warm re-serve recompiled";
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
}

TEST(ExecCacheTest, PrecisionDoesNotAliasInCache) {
  // The f32 and f64 variants of the same routine produce same-shape
  // kernels; their compiled signatures (and so their exec-cache keys)
  // must differ, or an f64 serve could run f32 arithmetic.
  const blas3::Variant* sv = blas3::find_variant("GEMM-NN");
  const blas3::Variant* dv = blas3::find_variant("DGEMM-NN");
  ASSERT_NE(sv, nullptr);
  ASSERT_NE(dv, nullptr);
  const ir::Env sizes = {{"M", 64}, {"N", 64}, {"K", 64}};

  const ir::Program sp = blas3::make_source_program(*sv);
  const ir::Program dp = blas3::make_source_program(*dv);
  auto sk = gpusim::compile_kernel(sp, sp.main_kernel(), sizes, {});
  auto dk = gpusim::compile_kernel(dp, dp.main_kernel(), sizes, {});
  ASSERT_TRUE(sk.is_ok());
  ASSERT_TRUE(dk.is_ok());
  EXPECT_NE(sk->signature(0, 0), dk->signature(0, 0))
      << "precision not folded into CompiledKernel::signature";
  EXPECT_NE(kernel_key(*sk), kernel_key(*dk));

  // End to end: executing both variants populates distinct cache
  // entries (no hit on the second compile).
  ExecCache cache;
  const Problem sprob(*sv, 64), dprob(*dv, 64);
  blas3::Matrix sout(64, 64, sv->precision), dout(64, 64, dv->precision);
  ASSERT_TRUE(run_native(*sv, sp, sprob, cache, &sout).is_ok());
  const int64_t after_f32 = cache.stats().compiles;
  ASSERT_TRUE(run_native(*dv, dp, dprob, cache, &dout).is_ok());
  EXPECT_GT(cache.stats().compiles, after_f32)
      << "f64 kernel hit the f32 cache entry";
}

TEST(ExecFallbackTest, ForcedPortableStillComputes) {
  // The fallback path must be complete on its own: with the JIT
  // disabled the portable tape executor serves every request.
  const blas3::Variant* v = blas3::find_variant("TRSM-LL-N");
  ASSERT_NE(v, nullptr);
  const int64_t n = 96;
  const Problem prob(*v, n);

  ExecCache cache;
  ExecOptions portable;
  portable.force_portable = true;
  blas3::Matrix out(n, n, v->precision);
  Status s = run_native(*v, tuned_program(*v), prob, cache, &out,
                        portable);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_LE(blas3::max_abs_diff(out, prob.expected),
            blas3::accumulation_tolerance(n, v->precision));
  const ExecStats st = cache.stats();
  EXPECT_EQ(st.jit_kernels, 0);
  EXPECT_GT(st.portable_kernels, 0);
}

TEST(ExecFallbackTest, CodeBufferRejectsEmptyInput) {
  auto buf = CodeBuffer::make({});
  EXPECT_FALSE(buf.is_ok());
}

TEST(ExecFallbackTest, OutOfBoundsMatchesInterpreterDiagnostic) {
  // A kernel that indexes past an array must fail with the
  // interpreter's exact out-of-bounds diagnostic, not crash — the
  // bounds checks (and the ErrorCell protocol behind them) are part of
  // the segment ABI, in the JIT'd code as much as in the portable
  // executor. Hand-build a one-statement kernel that stores to row 10
  // of a 4x4 array.
  gpusim::CompiledKernel ck;
  ck.name = "oob_probe";
  ck.precision = Precision::kF32;
  ck.launch.grid_x = 1;
  ck.launch.grid_y = 1;
  ck.launch.block_x = 1;
  ck.launch.block_y = 1;
  gpusim::CArray arr;
  arr.name = "A";
  arr.space = ir::MemSpace::kGlobal;
  arr.rows = 4;
  arr.cols = 4;
  arr.ld = 4;
  arr.elements = 16;
  ck.arrays.push_back(arr);
  ck.num_slots = 1;
  gpusim::CNode asg;
  asg.kind = gpusim::CNode::Kind::kAssign;
  asg.lhs.array = 0;
  asg.lhs.row.constant = 10;
  asg.lhs.col.constant = 0;
  gpusim::COp c0;
  c0.kind = gpusim::COp::Kind::kConst;
  c0.constant = 1.0;
  asg.tape.push_back(c0);
  asg.tape_depth = 1;
  ck.body.push_back(std::move(asg));

  for (const bool force_portable : {false, true}) {
    ExecCache cache;
    ExecOptions options;
    options.force_portable = force_portable;
    auto ek = cache.get_or_compile(ck, options);
    ASSERT_TRUE(ek.is_ok()) << ek.status().to_string();
    gpusim::GlobalBuffers buffers;
    buffers.data["A"] = std::vector<double>(16, 0.0);
    Status s = run_lowered(**ek, gpusim::gtx285(), buffers, nullptr);
    ASSERT_FALSE(s.is_ok()) << (force_portable ? "portable" : "jit");
    EXPECT_NE(s.message().find(
                  "out-of-bounds access to A: (10, 0) not in 4x4"),
              std::string::npos)
        << s.to_string();
  }
}

}  // namespace
}  // namespace oa::exec
