// The precision axis end to end: the same EPOD schedule applied to the
// f32 and f64 flavor of one routine must price differently in the
// simulator (8-byte elements double the coalesced transaction count
// and DRAM traffic on CC 1.x, and conflict in shared-memory banks
// where 4-byte elements do not), and f64 kernels must verify against
// the reference under the much tighter f64 accumulation tolerance.
#include <gtest/gtest.h>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa {
namespace {

using blas3::Matrix;
using blas3::Variant;

constexpr const char* kGemmSchedule = R"(
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(B, Transpose);
  reg_alloc(C);
)";

/// Transformed GEMM program for one precision flavor under the shared
/// schedule and one standard parameter point.
ir::Program transformed_gemm(const char* variant_name) {
  const Variant v = *blas3::find_variant(variant_name);
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  auto script = epod::parse_script(kGemmSchedule);
  EXPECT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  EXPECT_TRUE(mask.is_ok()) << variant_name << ": "
                            << mask.status().to_string();
  return p;
}

gpusim::Counters price(const gpusim::DeviceModel& device,
                       const char* variant_name) {
  ir::Program p = transformed_gemm(variant_name);
  const int64_t n = 96;
  gpusim::RunOptions opts;
  opts.int_params = ir::Env{{"M", n}, {"N", n}, {"K", n}};
  opts.warps_per_block_sample = 0;
  gpusim::Simulator sim(device);
  auto perf = sim.run_performance(p, opts);
  EXPECT_TRUE(perf.is_ok()) << device.name << " " << variant_name << ": "
                            << perf.status().to_string();
  return perf.is_ok() ? perf->counters : gpusim::Counters{};
}

// Acceptance gate for the precision axis: identical schedule, identical
// extents — only the element size differs — and the access-pricing
// counters must differ. On CC 1.x the strict coalescer issues twice
// the 64B transactions for a warp of 8-byte loads, DRAM traffic
// doubles exactly, and stride-1 f64 shared accesses hit every bank
// twice (2-way replay) where f32 is conflict-free.
TEST(PrecisionPricing, F64DoublesTransactionsAndBytesOnCC1x) {
  for (const gpusim::DeviceModel* device :
       {&gpusim::geforce_9800(), &gpusim::gtx285()}) {
    SCOPED_TRACE(device->name);
    const gpusim::Counters s = price(*device, "GEMM-NN");
    const gpusim::Counters d = price(*device, "DGEMM-NN");
    EXPECT_GT(s.gld_coherent, 0);
    EXPECT_EQ(d.gld_coherent, 2 * s.gld_coherent);
    EXPECT_EQ(d.global_bytes, 2 * s.global_bytes);
    // Same schedule -> same shared-memory *instruction* stream; only
    // the bank-conflict replays see the wider element.
    EXPECT_EQ(d.shared_load, s.shared_load);
    EXPECT_EQ(s.shared_bank_conflict_replays, 0);
    EXPECT_GT(d.shared_bank_conflict_replays, 0);
  }
}

// Fermi counts per-warp *requests*, which are element-size blind — the
// cost of f64 shows up only in segment traffic (more 128B segments per
// request), exactly like the real gld_request counter.
TEST(PrecisionPricing, FermiRequestsAreSizeBlindButTrafficIsNot) {
  const gpusim::Counters s = price(gpusim::fermi_c2050(), "GEMM-NN");
  const gpusim::Counters d = price(gpusim::fermi_c2050(), "DGEMM-NN");
  EXPECT_GT(s.gld_request, 0);
  EXPECT_EQ(d.gld_request, s.gld_request);
  EXPECT_GT(d.global_bytes, s.global_bytes);
}

// The wider element prices differently but computes the same schedule:
// instruction and flop counts are precision-invariant.
TEST(PrecisionPricing, InstructionAndFlopCountsArePrecisionInvariant) {
  const gpusim::Counters s = price(gpusim::gtx285(), "GEMM-NN");
  const gpusim::Counters d = price(gpusim::gtx285(), "DGEMM-NN");
  EXPECT_EQ(d.instructions, s.instructions);
  EXPECT_EQ(d.flops, s.flops);
}

// ---------------------------------------------- differential numerics

// f64 differential numerics: the transformed DGEMM kernel must agree
// with blas3::run_reference to within the f64 accumulation tolerance —
// about 2^29 times tighter than what the f32 family is held to.
TEST(PrecisionNumerics, TransformedDgemmMatchesReferenceAtF64Tolerance) {
  const Variant v = *blas3::find_variant("DGEMM-NN");
  ASSERT_EQ(v.precision, Precision::kF64);
  ir::Program program = transformed_gemm("DGEMM-NN");

  const int64_t n = 96;
  const Precision p = v.precision;
  Matrix a(n, n, p), b(n, n, p), out_c(n, n, p);
  Rng rng(2026);
  a.fill_random(rng);
  b.fill_random(rng);
  Matrix ref_c = out_c;

  gpusim::Simulator sim(gpusim::gtx285());
  const Status run = engine::execute_program(sim, program, v, a, b, &out_c,
                                             /*bools=*/{});
  ASSERT_TRUE(run.is_ok()) << run.to_string();
  blas3::run_reference(v, a, b, &ref_c);

  const double err = blas3::max_abs_diff(out_c, ref_c);
  const double f64_tol = blas3::accumulation_tolerance(n, Precision::kF64);
  EXPECT_LE(err, f64_tol) << "err " << err << " tol " << f64_tol;
  // The f64 gate is meaningfully stricter than the f32 one.
  EXPECT_LT(f64_tol, blas3::accumulation_tolerance(n, Precision::kF32));
}

// The engine's standard square verification accepts the f64 flavor of
// each family head under its own precision-scaled tolerance.
TEST(PrecisionNumerics, EngineVerifiesF64FamilyHeads) {
  gpusim::Simulator sim(gpusim::gtx285());
  for (const char* name : {"DGEMM-NN", "DSYMM-LL", "DTRSM-LL-N"}) {
    const Variant* v = blas3::find_variant(name);
    ASSERT_NE(v, nullptr) << name;
    ir::Program p = blas3::make_source_program(*v);
    const Status ok = engine::verify_program(
        sim, *v, p, /*n=*/48, {{"blank_zero", true}});
    EXPECT_TRUE(ok.is_ok()) << name << ": " << ok.to_string();
  }
}

TEST(PrecisionNumerics, ToleranceScalesWithUnitRoundoff) {
  for (int64_t n : {8, 64, 512}) {
    EXPECT_LT(blas3::accumulation_tolerance(n, Precision::kF64),
              blas3::accumulation_tolerance(n, Precision::kF32));
  }
  EXPECT_LT(precision_eps(Precision::kF64), precision_eps(Precision::kF32));
  EXPECT_EQ(elem_bytes(Precision::kF32), 4);
  EXPECT_EQ(elem_bytes(Precision::kF64), 8);
}

}  // namespace
}  // namespace oa
