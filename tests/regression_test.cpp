// Regression tests for specific pipeline bugs found during bring-up —
// each encodes a failure mode that silently produced wrong kernels or
// mis-ranked variants before the fix.
#include <gtest/gtest.h>

#include <cmath>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"
#include "tuner/tuner.hpp"

namespace oa {
namespace {

using blas3::find_variant;

// Bug: loop_tiling hoisted the k-tile loop above the *positionally*
// first label instead of the outermost point loop; for right-side
// routines (Lj outermost) the kk loop landed inside its own point loop,
// using kk before its definition.
TEST(Regression, RightSideTilingHoistsAboveOutermostPointLoop) {
  ir::Program p =
      blas3::make_source_program(*find_variant("TRSM-RL-N"));
  transforms::TransformContext ctx;
  ASSERT_TRUE(transforms::thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"},
                                          ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(p, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  Status valid = ir::validate(p);
  ASSERT_TRUE(valid.is_ok()) << valid.to_string() << "\n"
                             << ir::to_string(p);
  // The tile loop must contain the outermost point loop (Ljjj for this
  // right-side source), not sit inside it.
  const ir::Node* lk = p.main_kernel().find("Lk");
  ASSERT_NE(lk, nullptr);
  EXPECT_NE(ir::find_loop(lk->body, "Ljjj"), nullptr);
  EXPECT_NE(ir::find_loop(lk->body, "Liii"), nullptr);
}

// Bug: the full solver pipeline must apply end-to-end for every TRSM
// variant (right sides included) at the probe parameters.
TEST(Regression, SolverPipelineAppliesForAllTrsmVariants) {
  auto script = epod::parse_script(R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )");
  ASSERT_TRUE(script.is_ok());
  for (const blas3::Variant& v : blas3::all_variants()) {
    if (v.family != blas3::Family::kTrsm) continue;
    ir::Program p = blas3::make_source_program(v);
    transforms::TransformContext ctx;
    auto mask = epod::apply_script_lenient(p, *script, ctx);
    ASSERT_TRUE(mask.is_ok()) << v.name();
    // Every component must have applied (no degeneration).
    EXPECT_EQ(*mask, (uint64_t{1} << script->invocations.size()) - 1)
        << v.name();
    EXPECT_TRUE(ir::validate(p).is_ok()) << v.name();
  }
}

// Bug: padding_triangular padded the reduction range to
// block_base + tile without clamping at the matrix edge, reading
// A[., M] on partial boundary blocks (caught as out-of-bounds by the
// simulator at verify size 40).
TEST(Regression, PaddingClampsAtBoundaryBlocks) {
  const blas3::Variant v = *find_variant("TRMM-LL-N");
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 64;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 64;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ASSERT_TRUE(transforms::thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"},
                                          ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(p, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::padding_triangular(p, "A", ctx).is_ok());

  // M = 40 is not a multiple of the 64-row block: the padded range must
  // stop at M. The functional run catches any overshoot as
  // out-of-bounds.
  gpusim::Simulator sim(gpusim::gtx285());
  Status verified =
      tuner::verify_program(sim, v, p, 40, {{"blank_zero", true}});
  EXPECT_TRUE(verified.is_ok()) << verified.to_string();
}

// Bug: the tuner verified once per candidate script; a later parameter
// point that *degenerated* the script (peel failing under k_tile >
// block_tile) reused the verification of the intact kernel and ranked
// a racy kernel as the winner.
TEST(Regression, DegeneratedSolverPointIsRejectedNotReused) {
  gpusim::Simulator sim(gpusim::gtx285());
  tuner::TuneOptions topt;
  topt.target_size = 128;
  topt.verify_size = 48;
  tuner::Tuner tuner(sim, topt);

  auto script = epod::parse_script(R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )");
  ASSERT_TRUE(script.is_ok());
  composer::Candidate c;
  c.script = *script;

  std::set<uint64_t> masks;
  transforms::TuningParams good;
  good.block_tile_y = 32;
  good.block_tile_x = 16;
  good.threads_y = 32;
  good.threads_x = 1;
  good.k_tile = 16;
  auto ok = tuner.evaluate(*find_variant("TRSM-LL-N"), c, good, &masks);
  ASSERT_TRUE(ok.is_ok()) << ok.status().to_string();

  transforms::TuningParams bad = good;
  bad.block_tile_y = 16;
  bad.threads_y = 16;
  bad.k_tile = 32;  // > block tile: peel degenerates
  auto rejected =
      tuner.evaluate(*find_variant("TRSM-LL-N"), c, bad, &masks);
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), ErrorCode::kIllegal);
}

// Bug: the SM_alloc copy nest iterated shared-tile coordinates, making
// Transpose-mode staging read global memory strided (gld_incoherent on
// CC 1.0). The linear-tid copy must be fully coalesced for a 16-deep
// k-tile.
TEST(Regression, StagingCopyIsCoalescedOnCc10) {
  const blas3::Variant v = *find_variant("GEMM-NN");
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 16;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 16;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  auto script = epod::gemm_nn_script();
  ASSERT_TRUE(epod::apply_script_lenient(p, script, ctx).is_ok());
  gpusim::Simulator sim(gpusim::geforce_9800());
  gpusim::RunOptions opts;
  opts.int_params = {{"M", 64}, {"N", 64}, {"K", 64}};
  opts.warps_per_block_sample = 0;
  auto r = sim.run_performance(p, opts);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->counters.gld_incoherent, 0);
  EXPECT_EQ(r->counters.gst_incoherent, 0);
}

// Bug: TRSM error growth — with unscaled random triangular factors the
// absolute solve error exceeds any fixed tolerance even for correct
// kernels; verification inputs scale the off-diagonal. This test pins
// the conditioning helper's effect.
TEST(Regression, ConditionedTrsmSolvesStayBounded) {
  const int64_t n = 96;
  Rng rng(11);
  blas3::Matrix a(n, n), b(n, n);
  a.fill_random(rng);
  a.make_triangular(blas3::Uplo::kLower);
  a.set_unit_diagonal();
  a.scale_off_diagonal(1.0f / 16.0f);
  b.fill_random(rng);
  blas3::run_reference(*find_variant("TRSM-LL-N"), a, b, nullptr);
  double max_abs = 0.0;
  for (double x : b.data()) max_abs = std::max(max_abs, std::fabs(x));
  EXPECT_LT(max_abs, 100.0);  // no exponential blow-up
}

}  // namespace
}  // namespace oa
