// Property sweep across the whole catalog: for every BLAS3 variant and
// a set of tuning-parameter configurations, the composed scripts (in
// filter semantics) must produce kernels that
//   (a) validate structurally,
//   (b) launch (occupancy-feasible or cleanly rejected), and
//   (c) compute the same result as the CPU reference whenever the
//       tuner's verification accepts them.
// This is the invariant the whole framework rests on: *no parameter
// point anywhere in the search space silently produces wrong numbers
// that the verifier would accept.*
#include <gtest/gtest.h>

#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "ir/validate.hpp"
#include "oa/oa.hpp"
#include "tuner/tuner.hpp"

namespace oa {
namespace {

using blas3::Variant;

struct SweepCase {
  Variant variant;
  transforms::TuningParams params;
  std::string name;
};

std::vector<SweepCase> make_cases() {
  std::vector<transforms::TuningParams> param_sets;
  {
    transforms::TuningParams volkov;
    volkov.block_tile_y = 64;
    volkov.block_tile_x = 16;
    volkov.threads_y = 64;
    volkov.threads_x = 1;
    volkov.k_tile = 16;
    volkov.unroll = 4;
    param_sets.push_back(volkov);

    transforms::TuningParams square;
    square.block_tile_y = 32;
    square.block_tile_x = 32;
    square.threads_y = 8;
    square.threads_x = 8;
    square.k_tile = 8;
    square.unroll = 1;
    param_sets.push_back(square);

    transforms::TuningParams skinny;
    skinny.block_tile_y = 16;
    skinny.block_tile_x = 32;
    skinny.threads_y = 16;
    skinny.threads_x = 2;
    skinny.k_tile = 16;
    skinny.unroll = 16;
    param_sets.push_back(skinny);
  }
  std::vector<SweepCase> cases;
  const char* tags[] = {"volkov", "square", "skinny"};
  for (const Variant& v : blas3::all_variants()) {
    for (size_t p = 0; p < param_sets.size(); ++p) {
      std::string name = v.name() + "_" + tags[p];
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      cases.push_back({v, param_sets[p], name});
    }
  }
  return cases;
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static OaFramework& framework() {
    static OaFramework fw(gpusim::gtx285(), [] {
      OaOptions opt;
      opt.tuning_size = 128;
      opt.verify_size = 40;
      return opt;
    }());
    return fw;
  }
};

TEST_P(PipelineSweep, EveryCandidateValidOrCleanlyRejected) {
  const SweepCase& sc = GetParam();
  auto candidates = framework().candidates_for(sc.variant);
  ASSERT_TRUE(candidates.is_ok()) << candidates.status().to_string();

  tuner::TuneOptions topt;
  topt.target_size = 128;
  topt.verify_size = 40;
  tuner::Tuner tuner(framework().simulator(), topt);

  int verified = 0;
  for (const composer::Candidate& c : *candidates) {
    // Structural validity of the lenient application is checked for
    // every candidate regardless of verification outcome.
    transforms::TransformContext ctx;
    ctx.params = sc.params;
    ir::Program program = blas3::make_source_program(sc.variant);
    auto mask = epod::apply_script_lenient(program, c.script, ctx);
    if (!mask.is_ok()) continue;  // e.g. incompatible params
    Status valid = ir::validate(program);
    EXPECT_TRUE(valid.is_ok())
        << sc.variant.name() << " / " << c.script.to_string() << ": "
        << valid.to_string();

    auto result = tuner.evaluate(sc.variant, c, sc.params);
    if (result.is_ok()) {
      ++verified;
      EXPECT_GT(result->seconds, 0.0);
      EXPECT_GT(result->counters.flops, 0);
    } else {
      // Rejections must be clean: verification failure, occupancy, or
      // parameter incompatibility — never an internal error.
      EXPECT_NE(result.status().code(), ErrorCode::kInternal)
          << sc.variant.name() << ": " << result.status().to_string();
    }
  }
  // At least one candidate must survive at the Volkov point (the
  // default the tuner probes with); other points may legitimately
  // reject everything (e.g. k_tile incompatible with the solver).
  if (sc.name.find("volkov") != std::string::npos) {
    EXPECT_GT(verified, 0) << sc.variant.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, PipelineSweep,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace oa
