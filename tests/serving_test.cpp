// Serving-path tests: hot reload (swap_artifact) under concurrent
// load, request coalescing, admission control / load shedding, and the
// shed-accounting invariant documented in DispatchStats.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "obs/metrics.hpp"
#include "runtime/batch_queue.hpp"
#include "runtime/library_runtime.hpp"
#include "support/rng.hpp"

namespace oa {
namespace {

using blas3::Variant;
using libgen::Artifact;
using runtime::AdmissionController;
using runtime::BatchQueue;
using runtime::DispatchOutcome;
using runtime::LibraryRuntime;

/// One real tuned GEMM-NN artifact per process (generation is the
/// expensive part; every test serves from the same library).
const Artifact& gemm_artifact() {
  static const Artifact artifact = [] {
    libgen::SessionStore::instance().clear();
    OaOptions opt;
    opt.tuning_size = 256;
    opt.verify_size = 48;
    OaFramework framework(gpusim::gtx285(), opt);
    auto tuned = framework.generate(*blas3::find_variant("GEMM-NN"));
    EXPECT_TRUE(tuned.is_ok()) << tuned.status().to_string();
    return framework.export_library();
  }();
  return artifact;
}

/// The artifact with its tuned entry cloned into two more size buckets
/// (same trick as runtime_test): three servable entries instead of one.
Artifact three_bucket_artifact() {
  Artifact artifact = gemm_artifact();
  EXPECT_EQ(artifact.entries.size(), 1u);
  libgen::ArtifactEntry lo = artifact.entries[0];
  lo.tuned_size = 64;
  libgen::ArtifactEntry hi = artifact.entries[0];
  hi.tuned_size = 1024;
  artifact.entries.push_back(lo);
  artifact.entries.push_back(hi);
  return artifact;
}

void make_inputs(int64_t n, uint64_t seed, blas3::Matrix& a,
                 blas3::Matrix& b, blas3::Matrix& c) {
  Rng rng(seed);
  a = blas3::Matrix(n, n);
  b = blas3::Matrix(n, n);
  c = blas3::Matrix(n, n);
  a.fill_random(rng);
  b.fill_random(rng);
}

// --- hot reload ------------------------------------------------------

TEST(SwapArtifact, PublishesNewTableAndKeepsOldSnapshotAlive) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  ASSERT_EQ(rt.table_size(), 1u);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  // Pin a dispatch from the first snapshot.
  LibraryRuntime::Dispatch d = rt.dispatch(gemm, 256);
  ASSERT_EQ(d.outcome, DispatchOutcome::kHit);
  ASSERT_NE(d.program, nullptr);

  Status swapped = rt.swap_artifact(three_bucket_artifact());
  EXPECT_TRUE(swapped.is_ok()) << swapped.to_string();
  EXPECT_EQ(rt.table_size(), 3u);
  EXPECT_EQ(rt.stats().reloads, 1u);

  // The pinned dispatch still points into the old (1-entry) snapshot.
  ASSERT_NE(d.snapshot, nullptr);
  EXPECT_EQ(d.snapshot->table_size(), 1u);
  EXPECT_NE(d.program, nullptr);
  EXPECT_FALSE(d.bool_params == nullptr);

  // New requests see the new table: n=64 was a near hit before the
  // swap, now its bucket has its own entry.
  EXPECT_EQ(rt.dispatch(gemm, 64).outcome, DispatchOutcome::kHit);

  // And serving still answers correctly after the reload.
  blas3::Matrix a, b, c;
  make_inputs(256, 0xD00D, a, b, c);
  auto outcome = rt.run(gemm, a, b, &c);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(*outcome, DispatchOutcome::kHit);
}

TEST(SwapArtifact, DegradedArtifactStillPublishes) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  ASSERT_TRUE(rt.load_status().is_ok());

  Artifact bogus = gemm_artifact();
  bogus.entries[0].variant = "NOT-A-ROUTINE";
  Status swapped = rt.swap_artifact(bogus);
  EXPECT_FALSE(swapped.is_ok());
  EXPECT_FALSE(rt.load_status().is_ok());
  EXPECT_EQ(rt.table_size(), 0u);

  // Serving degrades to the fallback chain instead of failing.
  blas3::Matrix a, b, c;
  make_inputs(96, 0xFA11, a, b, c);
  auto outcome = rt.run(*blas3::find_variant("GEMM-NN"), a, b, &c);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_TRUE(*outcome == DispatchOutcome::kFallbackBaseline ||
              *outcome == DispatchOutcome::kFallbackReference);
}

TEST(SwapArtifact, SwapUnderLoadDropsNoRequests) {
  // Clients hammer run() with real std::threads (the shared pool has a
  // single worker on 1-core machines) while the main thread republishes
  // the snapshot in a tight loop. Every request must be answered: the
  // snapshot a request pinned stays alive for its whole serve.
  constexpr int kClients = 4;
  constexpr int kReloads = 120;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0}, answered{0}, tuned{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      blas3::Matrix a, b, c;
      make_inputs(48, 0xC11E47 + static_cast<uint64_t>(t), a, b, c);
      while (!stop.load(std::memory_order_relaxed)) {
        sent.fetch_add(1, std::memory_order_relaxed);
        auto outcome = rt.run(gemm, a, b, &c);
        if (outcome.is_ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
          if (*outcome == DispatchOutcome::kHit ||
              *outcome == DispatchOutcome::kNearHit) {
            tuned.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  const Artifact& one = gemm_artifact();
  const Artifact three = three_bucket_artifact();
  for (int i = 0; i < kReloads; ++i) {
    Status swapped = rt.swap_artifact(i % 2 == 0 ? three : one);
    EXPECT_TRUE(swapped.is_ok()) << swapped.to_string();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(answered.load(), sent.load()) << "dropped requests";
  EXPECT_EQ(tuned.load(), sent.load())
      << "every request should have served from a tuned table";
  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.reloads, static_cast<uint64_t>(kReloads));
  EXPECT_EQ(stats.requests, sent.load());
  EXPECT_EQ(stats.requests,
            stats.hits + stats.near_hits + stats.baseline_fallbacks +
                stats.reference_fallbacks + stats.shed +
                stats.failed_requests);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.shed, 0u);  // run() never sheds
}

// --- coalescing ------------------------------------------------------

TEST(BatchQueue, LeaderServesTheWholeBatch) {
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  std::atomic<int> batches{0};
  std::atomic<size_t> largest{0};
  BatchQueue::Options opt;
  opt.max_batch = 3;
  opt.window_us = 2e6;  // a full batch closes the window early
  BatchQueue queue(
      [&](uint64_t key, const std::vector<BatchQueue::Request*>& batch) {
        EXPECT_EQ(key, 42u);
        batches.fetch_add(1);
        size_t prev = largest.load();
        while (batch.size() > prev &&
               !largest.compare_exchange_weak(prev, batch.size())) {
        }
        for (BatchQueue::Request* r : batch) {
          r->result = DispatchOutcome::kHit;
        }
      },
      opt);

  std::vector<std::thread> threads;
  std::atomic<int> served{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      blas3::Matrix a, b, c;
      make_inputs(16, static_cast<uint64_t>(t), a, b, c);
      auto outcome = queue.submit(42, gemm, a, b, &c);
      ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
      EXPECT_EQ(*outcome, DispatchOutcome::kHit);
      served.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(served.load(), 3);
  // All three submitted the same key within the 2s window, so they
  // coalesce: fewer batches than requests.
  EXPECT_LT(batches.load(), 3);
  EXPECT_GT(largest.load(), 1u);
}

TEST(Serve, CoalescesConcurrentSameKeyRequests) {
  runtime::RuntimeOptions ropt;
  ropt.coalesce = true;
  ropt.max_batch = 4;
  ropt.batch_window_us = 2e6;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), ropt);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      blas3::Matrix a, b, c;
      make_inputs(256, 0xBA7C4 + static_cast<uint64_t>(t), a, b, c);
      auto outcome = rt.serve(gemm, a, b, &c);
      ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
      EXPECT_EQ(*outcome, DispatchOutcome::kHit);
    });
  }
  for (std::thread& t : threads) t.join();

  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.hits, 4u);
  // However the 4 requests split into batches, batches + riders == 4,
  // and at least two requests must have shared a batch.
  EXPECT_EQ(stats.batches + stats.coalesced, 4u);
  EXPECT_LT(stats.batches, 4u);
  EXPECT_GE(stats.coalesced, 1u);
  EXPECT_GE(rt.metrics().histogram("runtime.batch_size").count(),
            stats.batches);
  EXPECT_EQ(rt.metrics().histogram("runtime.queue_wait_us").count(), 4u);
}

// --- admission control / shedding ------------------------------------

TEST(AdmissionController, DepthBoundIsHard) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("test.serve_us");
  AdmissionController::Options opt;
  opt.max_queue_depth = 2;
  AdmissionController admission(opt, &h);
  EXPECT_TRUE(admission.admit(0));
  EXPECT_TRUE(admission.admit(1));
  EXPECT_FALSE(admission.admit(2));
  EXPECT_FALSE(admission.admit(100));
}

TEST(AdmissionController, SloShedsOnRecentTrafficOnly) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("test.serve_us");
  AdmissionController::Options opt;
  opt.slo_p99_us = 100.0;
  opt.window_every = 1;  // rotate on every completion
  AdmissionController admission(opt, &h);

  // Idle server always admits, whatever the history says.
  for (int i = 0; i < 100; ++i) h.record(10000.0);
  EXPECT_TRUE(admission.admit(0));
  // Recent p99 (10ms) is far above the 100us SLO: shed while busy.
  EXPECT_FALSE(admission.admit(1));

  // A completion rotates the window: the bad spell ages out and the
  // controller re-admits (lifetime p99 is still 10ms).
  admission.on_complete();
  EXPECT_TRUE(admission.admit(1));
  EXPECT_GT(h.percentile(99), 1000.0);

  // Fresh fast traffic keeps admitting at shallow depth but sheds when
  // expected queueing delay alone (depth x recent p50) blows the SLO.
  for (int i = 0; i < 100; ++i) h.record(60.0);
  EXPECT_TRUE(admission.admit(1));
  EXPECT_FALSE(admission.admit(10));
}

TEST(Serve, ShedsDeterministicallyWhenQueueIsFull) {
  // One lingering leader occupies the queue (depth 1); with
  // max_queue_depth = 1 the next serve() must shed, and the shed is
  // accounted exactly once.
  runtime::RuntimeOptions ropt;
  ropt.coalesce = true;
  ropt.max_batch = 8;                // never fills with one request
  ropt.batch_window_us = 300000.0;   // leader lingers 300ms
  ropt.max_queue_depth = 1;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), ropt);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  std::atomic<bool> leader_ok{false};
  std::thread leader([&] {
    blas3::Matrix a, b, c;
    make_inputs(256, 0x1EAD, a, b, c);
    auto outcome = rt.serve(gemm, a, b, &c);
    leader_ok = outcome.is_ok() && *outcome == DispatchOutcome::kHit;
  });

  // Wait until the leader is actually in flight before submitting.
  while (rt.metrics().counter_value("runtime.requests") == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  blas3::Matrix a, b, c;
  make_inputs(256, 0x5EED, a, b, c);
  auto shed = rt.serve(gemm, a, b, &c);
  ASSERT_TRUE(shed.is_ok()) << shed.status().to_string();
  EXPECT_EQ(*shed, DispatchOutcome::kShed);

  leader.join();
  EXPECT_TRUE(leader_ok.load());

  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.requests,
            stats.hits + stats.near_hits + stats.baseline_fallbacks +
                stats.reference_fallbacks + stats.shed +
                stats.failed_requests);
  EXPECT_EQ(rt.metrics().counter_value("runtime.shed"), 1u);
  EXPECT_EQ(
      rt.metrics().histogram("runtime.dispatch_us.shed").count(), 1u);
}

// --- native execution mode ------------------------------------------

TEST(NativeServing, ServesComputedResultsBitEqualToInterpreter) {
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  blas3::Matrix a, b, c;
  make_inputs(256, 0xBEEF, a, b, c);

  runtime::RuntimeOptions interp_opt;
  LibraryRuntime interp_rt(gpusim::gtx285(), gemm_artifact(), interp_opt);
  blas3::Matrix c_interp = c;
  auto o1 = interp_rt.run(gemm, a, b, &c_interp);
  ASSERT_TRUE(o1.is_ok()) << o1.status().to_string();
  ASSERT_EQ(*o1, DispatchOutcome::kHit);

  runtime::RuntimeOptions native_opt;
  native_opt.execution = runtime::ExecutionMode::kNative;
  LibraryRuntime native_rt(gpusim::gtx285(), gemm_artifact(), native_opt);
  blas3::Matrix c_native = c;
  auto o2 = native_rt.run(gemm, a, b, &c_native);
  ASSERT_TRUE(o2.is_ok()) << o2.status().to_string();
  EXPECT_EQ(*o2, DispatchOutcome::kHit);

  // The native backend serves the same bits the interpreter computes
  // (lane-major vs lockstep changes nothing for race-free kernels).
  EXPECT_EQ(blas3::max_abs_diff(c_interp, c_native), 0.0);
  const auto stats = native_rt.stats();
  EXPECT_EQ(stats.native_serves, 1u);
  EXPECT_EQ(stats.native_fallbacks, 0u);
  // The constructor pre-warmed the cache at tuned_size, so the serve
  // itself (same size) compiled nothing.
  const exec::ExecStats xs = native_rt.exec_stats();
  EXPECT_GT(xs.compiles, 0);
  EXPECT_GT(xs.cache_hits, 0);
}

TEST(NativeServing, BatchLeaderExecutesMembersInOneLoop) {
  runtime::RuntimeOptions opt;
  opt.execution = runtime::ExecutionMode::kNative;
  opt.coalesce = true;
  opt.max_batch = 8;
  opt.batch_window_us = 2000.0;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), opt);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      blas3::Matrix a, b, c;
      make_inputs(256, 0x1234 + static_cast<uint64_t>(t), a, b, c);
      auto outcome = rt.serve(gemm, a, b, &c);
      if (outcome.is_ok() && *outcome == DispatchOutcome::kHit) {
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);

  const auto stats = rt.stats();
  EXPECT_EQ(stats.native_serves, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.native_fallbacks, 0u);
  // Every batch leader recorded its single executor invocation loop.
  EXPECT_GE(rt.metrics().histogram("runtime.batch_exec_us").count(),
            stats.batches);
  // One cached kernel served every member: compiles stayed at the
  // pre-warm level while every serve hit.
  const exec::ExecStats xs = rt.exec_stats();
  EXPECT_GT(xs.cache_hits, 0);
}

TEST(Serve, UncoalescedServeMatchesRunSemantics) {
  runtime::RuntimeOptions ropt;
  ropt.coalesce = false;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), ropt);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  blas3::Matrix a, b, c;
  make_inputs(256, 0xD12EC7, a, b, c);
  auto outcome = rt.serve(gemm, a, b, &c);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(*outcome, DispatchOutcome::kHit);
  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.coalesced, 0u);
}

}  // namespace
}  // namespace oa
