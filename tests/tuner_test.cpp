#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "oa/oa.hpp"
#include "tuner/tuner.hpp"

namespace oa::tuner {
namespace {

using blas3::find_variant;
using blas3::Variant;

gpusim::Simulator& sim() {
  static gpusim::Simulator s(gpusim::gtx285());
  return s;
}

TuneOptions quick_options() {
  TuneOptions opt;
  opt.target_size = 256;
  opt.verify_size = 48;
  return opt;
}

composer::Candidate gemm_candidate() {
  composer::Candidate c;
  c.script = epod::gemm_nn_script();
  return c;
}

TEST(BoolsFor, BlankZeroCondition) {
  composer::Candidate c;
  EXPECT_TRUE(bools_for(c).empty());
  c.conditions.push_back("blank(A).zero = true");
  auto bools = bools_for(c);
  ASSERT_TRUE(bools.contains("blank_zero"));
  EXPECT_TRUE(bools.at("blank_zero"));
}

TEST(ParameterSpaceTest, DefaultSpaceNonTrivial) {
  const ParameterSpace& space = ParameterSpace::default_space();
  EXPECT_GE(space.total_points(), 100u);
  EXPECT_FALSE(space.block_shapes.empty());
  EXPECT_FALSE(space.thread_shapes.empty());
}

TEST(Evaluate, GemmAtVolkovPoint) {
  Tuner tuner(sim(), quick_options());
  transforms::TuningParams p;
  p.block_tile_y = 64;
  p.block_tile_x = 16;
  p.threads_y = 64;
  p.threads_x = 1;
  p.k_tile = 16;
  p.unroll = 4;
  auto result =
      tuner.evaluate(*find_variant("GEMM-NN"), gemm_candidate(), p);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GT(result->gflops, 0.0);
  EXPECT_GT(result->seconds, 0.0);
  EXPECT_NE(result->applied_mask, 0u);
}

TEST(Evaluate, RejectsIncompatibleParams) {
  Tuner tuner(sim(), quick_options());
  transforms::TuningParams p;
  p.block_tile_y = 32;
  p.threads_y = 3;  // does not divide
  auto result =
      tuner.evaluate(*find_variant("GEMM-NN"), gemm_candidate(), p);
  EXPECT_FALSE(result.is_ok());
}

TEST(Evaluate, RejectsSemanticsBreakingDegeneration) {
  // TRSM solver script at k_tile > block_tile: peel fails, binding
  // fails, and the degenerated kernel races — functional verification
  // must reject the point.
  OaFramework framework(gpusim::gtx285(), {});
  const Variant v = *find_variant("TRSM-LL-N");
  auto candidates = framework.candidates_for(v);
  ASSERT_TRUE(candidates.is_ok());
  // The full solver candidate (peel + binding present).
  const composer::Candidate* solver = nullptr;
  for (const auto& c : *candidates) {
    bool has_binding = false;
    for (const auto& inv : c.script.invocations) {
      has_binding |= inv.component == "binding_triangular";
    }
    if (has_binding) solver = &c;
  }
  ASSERT_NE(solver, nullptr);

  Tuner tuner(sim(), quick_options());
  transforms::TuningParams bad;
  bad.block_tile_y = 16;
  bad.block_tile_x = 16;
  bad.threads_y = 16;
  bad.threads_x = 4;
  bad.k_tile = 32;  // > block tile: peel cannot align
  bad.unroll = 4;
  auto result = tuner.evaluate(v, *solver, bad);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kIllegal);
}

TEST(Evaluate, VerifiedMaskCacheSkipsReverification) {
  Tuner tuner(sim(), quick_options());
  std::set<uint64_t> masks;
  transforms::TuningParams p;
  auto first =
      tuner.evaluate(*find_variant("GEMM-NN"), gemm_candidate(), p, &masks);
  ASSERT_TRUE(first.is_ok());
  EXPECT_TRUE(masks.contains(first->applied_mask));
  // Second evaluation at another point with the same mask reuses it.
  transforms::TuningParams p2 = p;
  p2.unroll = 16;
  auto second = tuner.evaluate(*find_variant("GEMM-NN"), gemm_candidate(),
                               p2, &masks);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(masks.size(), 1u);
}

TEST(Tune, GemmFindsFastConfig) {
  Tuner tuner(sim(), quick_options());
  auto best = tuner.tune(*find_variant("GEMM-NN"), {gemm_candidate()});
  ASSERT_TRUE(best.is_ok()) << best.status().to_string();
  // The found configuration beats a deliberately poor one.
  transforms::TuningParams poor;
  poor.block_tile_y = 16;
  poor.block_tile_x = 16;
  poor.threads_y = 4;
  poor.threads_x = 4;
  poor.k_tile = 8;
  poor.unroll = 1;
  auto poor_result =
      tuner.evaluate(*find_variant("GEMM-NN"), gemm_candidate(), poor);
  ASSERT_TRUE(poor_result.is_ok());
  EXPECT_LT(best->seconds, poor_result->seconds);
}

TEST(Tune, NoCandidatesFails) {
  Tuner tuner(sim(), quick_options());
  auto best = tuner.tune(*find_variant("GEMM-NN"), {});
  EXPECT_FALSE(best.is_ok());
}

TEST(VerifyProgram, AcceptsCorrectAndRejectsBroken) {
  const Variant v = *find_variant("GEMM-NN");
  composer::Candidate c = gemm_candidate();
  transforms::TransformContext ctx;
  ir::Program program = blas3::make_source_program(v);
  ASSERT_TRUE(epod::apply_script_lenient(program, c.script, ctx).is_ok());
  EXPECT_TRUE(verify_program(sim(), v, program, 48, {}).is_ok());

  // Break the kernel: flip the compute statement to an overwrite.
  ir::walk(program.main_kernel().body, [&](ir::Node& n) {
    if (n.is_assign() && n.op == ir::AssignOp::kAddAssign &&
        n.lhs.array == "C_r") {
      n.op = ir::AssignOp::kAssign;
    }
    return true;
  });
  Status broken = verify_program(sim(), v, program, 48, {});
  EXPECT_EQ(broken.code(), ErrorCode::kIllegal);
}

}  // namespace
}  // namespace oa::tuner
