// Observability layer tests: instrument semantics, histogram
// percentiles, exporter output, span tracing, and thread safety of
// the registry under concurrent registration + recording.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oa::obs {
namespace {

TEST(Counter, AddsAndResets) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.events");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.counter_value("test.events"), 42u);
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, HoldsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.level");
  g.set(3.5);
  g.set(2.25);
  EXPECT_EQ(g.value(), 2.25);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
  h.record(10.0);
  h.record(20.0);
  h.record(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60.0);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 30.0);
  EXPECT_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentilesAreOctaveAccurate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Log2 buckets are exact to within one octave; check the bracketing.
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p99);
  // Percentiles never escape the observed range.
  EXPECT_GE(h.percentile(0), h.min());
  EXPECT_LE(h.percentile(100), h.max());
}

TEST(Histogram, SingleValueDistributionIsTight) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7.0);
  EXPECT_EQ(h.min(), 7.0);
  EXPECT_EQ(h.max(), 7.0);
  EXPECT_EQ(h.percentile(50), 7.0);
  EXPECT_EQ(h.percentile(99), 7.0);
}

TEST(HistogramWindow, DeltaPercentilesTrackRecentTrafficOnly) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10000.0);
  HistogramWindow w(&h);

  // Before the first rotate the window spans the whole history.
  EXPECT_EQ(w.count(), 100u);
  EXPECT_GT(w.percentile(99), 8000.0);

  // Rotating empties the window; the lifetime histogram is untouched.
  w.rotate();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.percentile(99), 0.0);
  EXPECT_GT(h.percentile(99), 8000.0);

  // New recordings land in the window; the old 10ms spell does not,
  // even though it dominates the lifetime percentile.
  for (int i = 0; i < 50; ++i) h.record(60.0);
  EXPECT_EQ(w.count(), 50u);
  EXPECT_LT(w.percentile(99), 100.0);
  EXPECT_GT(h.percentile(99), 8000.0);
  EXPECT_LE(w.percentile(50), w.percentile(99));
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  // Force rebalancing inserts.
  for (int i = 0; i < 100; ++i) {
    reg.counter("pad." + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("a"));
}

TEST(MetricsRegistry, PrefixResetAndLookup) {
  MetricsRegistry reg;
  reg.counter("engine.requests").add(5);
  reg.counter("runtime.requests").add(7);
  reg.histogram("runtime.dispatch_us.hit").record(3.0);
  reg.histogram("runtime.dispatch_us.failed").record(9.0);
  auto hs = reg.histograms_with_prefix("runtime.dispatch_us.");
  EXPECT_EQ(hs.size(), 2u);
  reg.reset("runtime.");
  EXPECT_EQ(reg.counter_value("runtime.requests"), 0u);
  EXPECT_EQ(reg.histogram("runtime.dispatch_us.hit").count(), 0u);
  EXPECT_EQ(reg.counter_value("engine.requests"), 5u);
}

TEST(MetricsRegistry, JsonExportCarriesTheSchema) {
  MetricsRegistry reg;
  reg.counter("engine.cache_hits").add(3);
  reg.gauge("runtime.table_size").set(4);
  Histogram& h = reg.histogram("runtime.dispatch_us.hit");
  h.record(100.0);
  h.record(200.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime.dispatch_us.hit\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsRegistry, WriteJsonRoundTripsThroughDisk) {
  MetricsRegistry reg;
  reg.counter("test.count").add(1);
  const std::string path = "obs_test_metrics.json";
  ASSERT_TRUE(write_json(reg, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), reg.to_json());
  std::remove(path.c_str());
}

TEST(MetricsRegistry, ConcurrentRegistrationAndRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Every thread races a shared counter, a per-thread counter
      // (concurrent map inserts), and a shared histogram.
      Counter& shared = reg.counter("shared.events");
      Counter& own = reg.counter("thread." + std::to_string(t));
      Histogram& lat = reg.histogram("shared.latency_us");
      for (int i = 0; i < kIters; ++i) {
        shared.add();
        own.add();
        lat.record(static_cast<double>(i % 64));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("shared.events"),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter_value("thread." + std::to_string(t)),
              static_cast<uint64_t>(kIters));
  }
  Histogram& lat = reg.histogram("shared.latency_us");
  EXPECT_EQ(lat.count(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(lat.min(), 0.0);
  EXPECT_EQ(lat.max(), 63.0);
}

TEST(Span, RecordsToHistogramAndCollector) {
  TraceCollector collector(16);
  Histogram h;
  {
    Span span(&collector, "test.stage", &h);
  }
  EXPECT_EQ(h.count(), 1u);
  ASSERT_EQ(collector.size(), 1u);
  const TraceEvent e = collector.snapshot()[0];
  EXPECT_EQ(e.name, "test.stage");
  EXPECT_GE(e.dur_us, 0.0);
}

TEST(Span, FinishIsIdempotentAndReturnsDuration) {
  Histogram h;
  Span span(nullptr, "test.stage", &h);
  const double d1 = span.finish();
  EXPECT_GE(d1, 0.0);
  EXPECT_EQ(span.finish(), 0.0);  // second finish is a no-op
  EXPECT_EQ(h.count(), 1u);
}

TEST(Span, NullSinksRecordNothing) {
  Span span(nullptr, "test.unarmed");
  EXPECT_EQ(span.finish(), 0.0);
}

TEST(TraceCollector, BoundedWithDropAccounting) {
  TraceCollector collector(4);
  for (int i = 0; i < 10; ++i) {
    collector.record({"e" + std::to_string(i), 0.0, 1.0, 0});
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  const std::string json = collector.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

}  // namespace
}  // namespace oa::obs
