#include <gtest/gtest.h>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "gpusim/simulator.hpp"
#include "ir/printer.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa::gpusim {
namespace {

using blas3::find_variant;
using blas3::make_source_program;
using blas3::Matrix;
using ir::Program;
using transforms::AllocMode;
using transforms::TransformContext;

TransformContext small_ctx() {
  TransformContext ctx;
  ctx.params.block_tile_y = 16;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 4;
  ctx.params.threads_x = 4;
  ctx.params.k_tile = 8;
  ctx.params.unroll = 4;
  ctx.nominal_sizes = {{"M", 64}, {"N", 64}, {"K", 64}};
  return ctx;
}

// ------------------------------------------------------------- devices

TEST(Device, PaperPlatformParameters) {
  EXPECT_EQ(geforce_9800().sm_count, 16);
  EXPECT_EQ(geforce_9800().sps_per_sm, 8);
  EXPECT_EQ(geforce_9800().registers_per_sm, 8192);
  EXPECT_EQ(gtx285().sm_count, 30);
  EXPECT_EQ(gtx285().registers_per_sm, 16384);
  EXPECT_EQ(fermi_c2050().sm_count, 14);
  EXPECT_EQ(fermi_c2050().sps_per_sm, 32);
  EXPECT_EQ(fermi_c2050().shared_mem_per_sm, 48 * 1024);
  EXPECT_EQ(all_devices().size(), 3u);
}

TEST(Device, WarpIssueCycles) {
  EXPECT_DOUBLE_EQ(geforce_9800().cycles_per_warp_instruction(), 4.0);
  EXPECT_DOUBLE_EQ(fermi_c2050().cycles_per_warp_instruction(), 1.0);
}

// ------------------------------------------------------------ counters

TEST(CountersTest, AddAndScale) {
  Counters a;
  a.instructions = 10;
  a.gld_coherent = 3;
  Counters b;
  b.instructions = 5;
  b.global_bytes = 64;
  Counters c = a + b;
  EXPECT_EQ(c.instructions, 15);
  EXPECT_EQ(c.gld_coherent, 3);
  EXPECT_EQ(c.global_bytes, 64);
  Counters s = c.scaled(4);
  EXPECT_EQ(s.instructions, 60);
}

TEST(CountersTest, PerSmReport) {
  Counters total;
  total.instructions = 1600;
  Counters per_sm = report_per_sm(total, geforce_9800());
  EXPECT_EQ(per_sm.instructions, 100);
}

// ----------------------------------------------- functional execution

struct FunctionalCase {
  Program program;
  ir::Env params;
  Matrix a, b, c;
};

/// Build inputs for a variant at (m, n, k).
FunctionalCase make_case(const blas3::Variant& v, int64_t m, int64_t n,
                         int64_t k, uint64_t seed) {
  FunctionalCase fc;
  fc.program = make_source_program(v);
  Rng rng(seed);
  const int64_t dim = v.side == blas3::Side::kLeft ? m : n;
  switch (v.family) {
    case blas3::Family::kGemm:
      fc.params = {{"M", m}, {"N", n}, {"K", k}};
      fc.a = Matrix(v.trans_a == blas3::Trans::kN ? m : k,
                    v.trans_a == blas3::Trans::kN ? k : m);
      fc.b = Matrix(v.trans_b == blas3::Trans::kN ? k : n,
                    v.trans_b == blas3::Trans::kN ? n : k);
      break;
    default:
      fc.params = {{"M", m}, {"N", n}};
      fc.a = Matrix(dim, dim);
      fc.b = Matrix(m, n);
      break;
  }
  fc.a.fill_random(rng);
  fc.b.fill_random(rng);
  if (v.family == blas3::Family::kTrmm || v.family == blas3::Family::kTrsm) {
    fc.a.make_triangular(v.uplo);
  }
  if (v.family == blas3::Family::kSymm) {
    // Triangle-only storage: the blank triangle is zeroed (GM_map's
    // src + src^T - diag formula relies on it).
    fc.a.make_triangular(v.uplo);
  }
  if (v.family == blas3::Family::kTrsm) {
    fc.a.set_unit_diagonal();
    fc.a.scale_off_diagonal(1.0f / 16.0f);
  }
  fc.c = Matrix(m, n);
  return fc;
}

/// Run the program functionally and compare the output array with the
/// CPU reference.
void expect_matches_reference(const blas3::Variant& v, FunctionalCase& fc,
                              const DeviceModel& dev = gtx285()) {
  Simulator sim(dev);
  RunOptions opts;
  opts.int_params = fc.params;
  opts.bool_params["blank_zero"] = true;
  GlobalBuffers buffers = make_buffers(
      fc.program, fc.params, {{"A", &fc.a}, {"B", &fc.b}, {"C", &fc.c}});
  auto result = sim.run_functional(fc.program, opts, buffers);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string() << "\n"
                              << ir::to_string(fc.program);

  // CPU reference.
  Matrix ref_b = fc.b;
  Matrix ref_c = fc.c;
  blas3::run_reference(v, fc.a, ref_b, &ref_c);

  const char* out_name = blas3::output_array(v);
  Matrix out(fc.c.rows(), fc.c.cols());
  if (v.family == blas3::Family::kTrsm) out = Matrix(fc.b.rows(), fc.b.cols());
  ASSERT_TRUE(
      read_back(buffers, fc.program, fc.params, out_name, out).is_ok());
  const Matrix& expected =
      v.family == blas3::Family::kTrsm ? ref_b : ref_c;
  const float tol = blas3::accumulation_tolerance(
      fc.params.count("K") ? fc.params.at("K") : fc.params.at("M"));
  EXPECT_LT(blas3::max_abs_diff(out, expected), tol)
      << v.name() << " on " << dev.name;
}

TEST(Functional, SourceGemmSingleThread) {
  // The untransformed source nest runs as a 1-block, 1-thread kernel.
  auto v = *find_variant("GEMM-NN");
  FunctionalCase fc = make_case(v, 8, 7, 5, 1);
  expect_matches_reference(v, fc);
}

TEST(Functional, SourceSymmSingleThread) {
  auto v = *find_variant("SYMM-LL");
  FunctionalCase fc = make_case(v, 9, 6, 0, 2);
  expect_matches_reference(v, fc);
}

TEST(Functional, SourceTrsmSingleThread) {
  auto v = *find_variant("TRSM-LL-N");
  FunctionalCase fc = make_case(v, 8, 5, 0, 3);
  expect_matches_reference(v, fc);
}

TEST(Functional, GroupedGemmMatches) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 16, 4);
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  expect_matches_reference(v, fc);
}

TEST(Functional, GroupedGemmOddSizes) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 37, 29, 23, 5);
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  expect_matches_reference(v, fc);
}

Program full_gemm_pipeline(FunctionalCase& fc, const TransformContext& ctx) {
  EXPECT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  EXPECT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  EXPECT_TRUE(
      transforms::loop_unroll(fc.program, {"Ljjj", "Lkkk"}, ctx).is_ok());
  EXPECT_TRUE(
      transforms::sm_alloc(fc.program, "B", AllocMode::kTranspose, ctx)
          .is_ok());
  EXPECT_TRUE(transforms::reg_alloc(fc.program, "C", ctx).is_ok());
  return fc.program;
}

TEST(Functional, FullGemmPipelineMatches) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 48, 48, 32, 6);
  full_gemm_pipeline(fc, ctx);
  expect_matches_reference(v, fc);
}

TEST(Functional, FullGemmPipelineOddSizes) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 45, 39, 21, 7);
  full_gemm_pipeline(fc, ctx);
  expect_matches_reference(v, fc);
}

TEST(Functional, FullGemmPipelineOnAllDevices) {
  auto v = *find_variant("GEMM-NN");
  for (const DeviceModel* dev : all_devices()) {
    TransformContext ctx = small_ctx();
    FunctionalCase fc = make_case(v, 32, 32, 24, 8);
    full_gemm_pipeline(fc, ctx);
    expect_matches_reference(v, fc, *dev);
  }
}

TEST(Functional, GmMapTransposeGemmTn) {
  auto v = *find_variant("GEMM-TN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 16, 9);
  ASSERT_TRUE(
      transforms::gm_map(fc.program, "A", AllocMode::kTranspose, ctx)
          .is_ok());
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  expect_matches_reference(v, fc);
}

TEST(Functional, SymmRule2FullPipeline) {
  // GM_map(A, Symmetry); format_iteration; then the GEMM-NN scheme —
  // the paper's Fig 14 SYMM script.
  auto v = *find_variant("SYMM-LL");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 0, 10);
  ASSERT_TRUE(
      transforms::gm_map(fc.program, "A", AllocMode::kSymmetry, ctx)
          .is_ok());
  ASSERT_TRUE(
      transforms::format_iteration(fc.program, "A", AllocMode::kSymmetry,
                                   ctx)
          .is_ok());
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  ASSERT_TRUE(
      transforms::loop_unroll(fc.program, {"Ljjj", "Lkkk"}, ctx).is_ok());
  ASSERT_TRUE(
      transforms::sm_alloc(fc.program, "B", AllocMode::kTranspose, ctx)
          .is_ok());
  ASSERT_TRUE(transforms::reg_alloc(fc.program, "C", ctx).is_ok());
  expect_matches_reference(v, fc);
}

TEST(Functional, SymmRule3FissionPipeline) {
  // format_iteration without GM_map (fission only) + SM_alloc(A,
  // Symmetry).
  auto v = *find_variant("SYMM-LL");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 0, 11);
  ASSERT_TRUE(
      transforms::format_iteration(fc.program, "A", AllocMode::kSymmetry,
                                   ctx)
          .is_ok());
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  Status sm = transforms::sm_alloc(fc.program, "A", AllocMode::kSymmetry,
                                   ctx);
  ASSERT_TRUE(sm.is_ok()) << sm.to_string();
  expect_matches_reference(v, fc);
}

TEST(Functional, TrmmPeeledPipeline) {
  auto v = *find_variant("TRMM-LL-N");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 0, 12);
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::peel_triangular(fc.program, "A", ctx).is_ok());
  ASSERT_TRUE(transforms::loop_unroll(fc.program, {"Lkkk"}, ctx).is_ok());
  expect_matches_reference(v, fc);
}

TEST(Functional, TrmmPaddedPipelineBothVersions) {
  auto v = *find_variant("TRMM-LL-N");
  for (bool blank_zero : {true, false}) {
    TransformContext ctx = small_ctx();
    FunctionalCase fc = make_case(v, 32, 32, 0, 13);
    ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                            {"Lii", "Ljj"}, ctx)
                    .is_ok());
    ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                        {"Liii", "Ljjj", "Lkkk"}, ctx)
                    .is_ok());
    ASSERT_TRUE(
        transforms::padding_triangular(fc.program, "A", ctx).is_ok());

    Simulator sim(gtx285());
    RunOptions opts;
    opts.int_params = fc.params;
    opts.bool_params["blank_zero"] = blank_zero;
    GlobalBuffers buffers = make_buffers(
        fc.program, fc.params, {{"A", &fc.a}, {"B", &fc.b}, {"C", &fc.c}});
    auto result = sim.run_functional(fc.program, opts, buffers);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    Matrix ref_b = fc.b;
    Matrix ref_c = fc.c;
    blas3::run_reference(v, fc.a, ref_b, &ref_c);
    Matrix out(32, 32);
    ASSERT_TRUE(read_back(buffers, fc.program, fc.params, "C", out).is_ok());
    EXPECT_LT(blas3::max_abs_diff(out, ref_c),
              blas3::accumulation_tolerance(32))
        << "blank_zero=" << blank_zero;
  }
}

TEST(Functional, TrsmSolverPipeline) {
  auto v = *find_variant("TRSM-LL-N");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 32, 32, 0, 14);
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::peel_triangular(fc.program, "A", ctx).is_ok());
  ASSERT_TRUE(
      transforms::binding_triangular(fc.program, "A", 0, ctx).is_ok());
  expect_matches_reference(v, fc);
}

// -------------------------------------------------- counters / timing

TEST(Counters, CoalescedGemmHasNoIncoherentLoadsOn9800) {
  // CC 1.0 coalescing needs a Volkov-style shape: one thread per row
  // (thread_extent_y == 1) so a half-warp's A loads and C updates walk
  // 16 consecutive rows; k_tile = 16 keeps the staging copies aligned.
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx;
  ctx.params.block_tile_y = 16;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 16;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  FunctionalCase fc = make_case(v, 32, 32, 32, 15);
  full_gemm_pipeline(fc, ctx);
  Simulator sim(geforce_9800());
  RunOptions opts;
  opts.int_params = fc.params;
  auto result = sim.run_performance(fc.program, opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->counters.gld_incoherent, 0);
  EXPECT_GT(result->counters.gld_coherent, 0);
  EXPECT_GT(result->counters.instructions, 0);
  EXPECT_GT(result->counters.flops, 0);
  EXPECT_GT(result->seconds, 0.0);
}

TEST(Counters, PerformanceMatchesFunctionalForGemm) {
  // The sampled performance run must agree with the exhaustive
  // functional run on a homogeneous grid.
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 64, 64, 32, 16);
  full_gemm_pipeline(fc, ctx);
  Simulator sim(gtx285());
  RunOptions opts;
  opts.int_params = fc.params;
  opts.warps_per_block_sample = 0;  // all warps: exact
  auto perf = sim.run_performance(fc.program, opts);
  ASSERT_TRUE(perf.is_ok()) << perf.status().to_string();
  GlobalBuffers buffers = make_buffers(
      fc.program, fc.params, {{"A", &fc.a}, {"B", &fc.b}, {"C", &fc.c}});
  auto func = sim.run_functional(fc.program, opts, buffers);
  ASSERT_TRUE(func.is_ok());
  EXPECT_EQ(perf->counters.instructions, func->counters.instructions);
  EXPECT_EQ(perf->counters.gld_coherent, func->counters.gld_coherent);
  EXPECT_EQ(perf->counters.global_bytes, func->counters.global_bytes);
  EXPECT_EQ(perf->counters.flops, func->counters.flops);
}

TEST(Counters, SampledTriangularCloseToExact) {
  auto v = *find_variant("TRMM-LL-N");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 64, 64, 0, 17);
  ASSERT_TRUE(transforms::thread_grouping(fc.program, {"Li", "Lj"},
                                          {"Lii", "Ljj"}, ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(fc.program, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  Simulator sim(gtx285());
  RunOptions opts;
  opts.int_params = fc.params;
  opts.warps_per_block_sample = 0;
  opts.max_sampled_classes = 2;  // force interpolation
  auto sampled = sim.run_performance(fc.program, opts);
  ASSERT_TRUE(sampled.is_ok()) << sampled.status().to_string();
  opts.max_sampled_classes = 1 << 20;  // every class simulated
  auto exact = sim.run_performance(fc.program, opts);
  ASSERT_TRUE(exact.is_ok());
  const double rel =
      std::abs(static_cast<double>(sampled->counters.instructions) -
               static_cast<double>(exact->counters.instructions)) /
      static_cast<double>(exact->counters.instructions);
  EXPECT_LT(rel, 0.05);
}

TEST(Timing, MoreSmsIsFaster) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx = small_ctx();
  FunctionalCase fc = make_case(v, 64, 64, 64, 18);
  full_gemm_pipeline(fc, ctx);
  RunOptions opts;
  opts.int_params = fc.params;
  auto t9800 = Simulator(geforce_9800()).run_performance(fc.program, opts);
  auto t285 = Simulator(gtx285()).run_performance(fc.program, opts);
  ASSERT_TRUE(t9800.is_ok());
  ASSERT_TRUE(t285.is_ok());
  EXPECT_LT(t285->seconds, t9800->seconds);
}

TEST(Timing, GflopsSaneForTunedGemm) {
  auto v = *find_variant("GEMM-NN");
  TransformContext ctx;  // defaults: 32x32 tiles, 8x8 threads
  FunctionalCase fc = make_case(v, 512, 512, 512, 19);
  full_gemm_pipeline(fc, ctx);
  Simulator sim(gtx285());
  RunOptions opts;
  opts.int_params = fc.params;
  auto result = sim.run_performance(fc.program, opts);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const double gflops =
      result->gflops(blas3::nominal_flops(v, 512, 512, 512));
  // Sanity band: above 40 GFLOPS, below the device peak.
  EXPECT_GT(gflops, 40.0);
  EXPECT_LT(gflops, gtx285().peak_gflops);
}

TEST(Buffers, MakeBuffersZeroFillsGmMapTargets) {
  auto v = *find_variant("SYMM-LL");
  TransformContext ctx = small_ctx();
  Program p = make_source_program(v);
  ASSERT_TRUE(
      transforms::gm_map(p, "A", AllocMode::kSymmetry, ctx).is_ok());
  Matrix a(8, 8), b(8, 8), c(8, 8);
  GlobalBuffers buffers =
      make_buffers(p, {{"M", 8}, {"N", 8}}, {{"A", &a}, {"B", &b},
                                             {"C", &c}});
  EXPECT_NE(buffers.find("NewA"), nullptr);
  EXPECT_EQ(buffers.find("NewA")->size(), 64u);
}

TEST(Buffers, ReadBackShapeMismatchFails) {
  auto v = *find_variant("GEMM-NN");
  Program p = make_source_program(v);
  Matrix a(4, 4), b(4, 4), c(4, 4);
  ir::Env params{{"M", 4}, {"N", 4}, {"K", 4}};
  GlobalBuffers buffers =
      make_buffers(p, params, {{"A", &a}, {"B", &b}, {"C", &c}});
  Matrix wrong(3, 3);
  EXPECT_FALSE(read_back(buffers, p, params, "C", wrong).is_ok());
  EXPECT_FALSE(read_back(buffers, p, params, "Z", wrong).is_ok());
}

}  // namespace
}  // namespace oa::gpusim
