#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {
namespace {

using blas3::find_variant;
using blas3::make_source_program;
using ir::LoopMap;
using ir::Node;
using ir::Program;

TransformContext ctx_default() {
  TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 32;
  ctx.params.threads_y = 8;
  ctx.params.threads_x = 8;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  return ctx;
}

Program grouped(const char* variant, const TransformContext& ctx) {
  Program p = make_source_program(*find_variant(variant));
  Status s = thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"}, ctx);
  EXPECT_TRUE(s.is_ok()) << variant << ": " << s.to_string();
  return p;
}

Program grouped_tiled(const char* variant, const TransformContext& ctx) {
  Program p = grouped(variant, ctx);
  Status s =
      loop_tiling(p, {"Lii", "Ljj", "Lk"}, {"Liii", "Ljjj", "Lkkk"}, ctx);
  EXPECT_TRUE(s.is_ok()) << variant << ": " << s.to_string();
  return p;
}

// ---------------------------------------------------------- registry

TEST(Registry, KnownComponents) {
  EXPECT_TRUE(is_known_component("thread_grouping"));
  EXPECT_TRUE(is_known_component("SM_alloc"));
  EXPECT_TRUE(is_known_component("binding_triangular"));
  EXPECT_FALSE(is_known_component("no_such_pass"));
}

TEST(Registry, Classification) {
  EXPECT_TRUE(is_memory_component("SM_alloc"));
  EXPECT_TRUE(is_memory_component("reg_alloc"));
  EXPECT_FALSE(is_memory_component("loop_tiling"));
  EXPECT_TRUE(must_be_first("GM_map"));
  EXPECT_FALSE(must_be_first("SM_alloc"));
}

TEST(Registry, AllocModeRoundTrip) {
  for (AllocMode m : {AllocMode::kNoChange, AllocMode::kTranspose,
                      AllocMode::kSymmetry}) {
    auto parsed = parse_alloc_mode(alloc_mode_name(m));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parse_alloc_mode("Bogus").is_ok());
}

TEST(Registry, InvocationToString) {
  Invocation inv{"thread_grouping", {"Li", "Lj"}, {"Lii", "Ljj"}};
  EXPECT_EQ(inv.to_string(), "(Lii, Ljj) = thread_grouping(Li, Lj)");
  Invocation sm{"SM_alloc", {"B", "Transpose"}, {}};
  EXPECT_EQ(sm.to_string(), "SM_alloc(B, Transpose)");
}

TEST(Registry, DispatchRejectsUnknown) {
  Program p = make_source_program(*find_variant("GEMM-NN"));
  Status s = apply(p, Invocation{"mystery", {}, {}}, ctx_default());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

TEST(Registry, TuningParamsValidation) {
  TuningParams good;
  EXPECT_TRUE(good.check().is_ok());
  TuningParams bad = good;
  bad.threads_x = 3;  // 32 % 3 != 0
  bad.block_tile_x = 32;
  EXPECT_FALSE(bad.check().is_ok());
}

// ---------------------------------------------------- thread_grouping

TEST(ThreadGrouping, GemmProducesFourMappedLoops) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  auto mapped = p.main_kernel().mapped_loops();
  ASSERT_EQ(mapped.size(), 4u);
  EXPECT_EQ(mapped[0]->map, LoopMap::kBlockY);
  EXPECT_EQ(mapped[1]->map, LoopMap::kBlockX);
  EXPECT_EQ(mapped[2]->map, LoopMap::kThreadY);
  EXPECT_EQ(mapped[3]->map, LoopMap::kThreadX);
}

TEST(ThreadGrouping, LaunchConfigMatchesParams) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  auto cfg = ir::launch_config(p.main_kernel(),
                               {{"M", 128}, {"N", 64}, {"K", 32}});
  ASSERT_TRUE(cfg.is_ok()) << cfg.status().to_string();
  EXPECT_EQ(cfg->grid_y, 128 / 32);
  EXPECT_EQ(cfg->grid_x, 64 / 32);
  EXPECT_EQ(cfg->block_y, 8);
  EXPECT_EQ(cfg->block_x, 8);
}

TEST(ThreadGrouping, CeilDivGridForOddSizes) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  auto cfg = ir::launch_config(p.main_kernel(),
                               {{"M", 100}, {"N", 33}, {"K", 32}});
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->grid_y, 4);  // ceil(100/32)
  EXPECT_EQ(cfg->grid_x, 2);  // ceil(33/32)
}

TEST(ThreadGrouping, PointLoopsKeepVariableNames) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  const Node* lii = p.main_kernel().find("Lii");
  ASSERT_NE(lii, nullptr);
  EXPECT_EQ(lii->var, "i");
  const Node* ljj = p.main_kernel().find("Ljj");
  ASSERT_NE(ljj, nullptr);
  EXPECT_EQ(ljj->var, "j");
}

TEST(ThreadGrouping, RecordsTilingMetadata) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  const auto& tiling = p.main_kernel().tiling;
  ASSERT_TRUE(tiling.contains("i"));
  ASSERT_TRUE(tiling.contains("j"));
  EXPECT_EQ(tiling.at("i").block_extent, 32);
  EXPECT_EQ(tiling.at("i").thread_extent, 4);
  EXPECT_EQ(tiling.at("i").thread_map, LoopMap::kThreadY);
  EXPECT_EQ(tiling.at("j").thread_map, LoopMap::kThreadX);
}

TEST(ThreadGrouping, TrsmLeftSerializesGridY) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("TRSM-LL-N"));
  ASSERT_TRUE(thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"}, ctx).is_ok());
  auto cfg = ir::launch_config(p.main_kernel(), {{"M", 64}, {"N", 64}});
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(cfg->serial_grid_y);
  // The dependence-carrying Li supplies the serialized grid dimension.
  const Node* lib = p.main_kernel().find("Lib");
  ASSERT_NE(lib, nullptr);
  EXPECT_EQ(lib->map, LoopMap::kBlockYSerial);
}

TEST(ThreadGrouping, TrsmRightSerializesJ) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("TRSM-RL-N"));
  ASSERT_TRUE(thread_grouping(p, {"Lj", "Li"}, {"Ljj", "Lii"}, ctx).is_ok());
  const Node* ljb = p.main_kernel().find("Ljb");
  ASSERT_NE(ljb, nullptr);
  EXPECT_EQ(ljb->map, LoopMap::kBlockYSerial);
  const Node* lib = p.main_kernel().find("Lib");
  ASSERT_NE(lib, nullptr);
  EXPECT_EQ(lib->map, LoopMap::kBlockX);
}

TEST(ThreadGrouping, FailsOnMissingLabel) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  EXPECT_EQ(thread_grouping(p, {"Lz", "Lj"}, {"a", "b"}, ctx).code(),
            ErrorCode::kNotFound);
}

TEST(ThreadGrouping, FailsWhenAppliedTwice) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  EXPECT_FALSE(
      thread_grouping(p, {"Lii", "Ljj"}, {"La", "Lb"}, ctx).is_ok());
}

// -------------------------------------------------------- loop_tiling

TEST(LoopTiling, HoistsKTileAboveRegisterBlock) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  // Lk is now the tile loop stepping by k_tile, containing Liii.
  const Node* lk = p.main_kernel().find("Lk");
  ASSERT_NE(lk, nullptr);
  EXPECT_EQ(lk->step, 16);
  EXPECT_EQ(lk->var, "kk");
  ASSERT_NE(ir::find_loop(lk->body, "Liii"), nullptr);
  ASSERT_NE(ir::find_loop(lk->body, "Lkkk"), nullptr);
  const Node* lkkk = p.main_kernel().find("Lkkk");
  EXPECT_EQ(lkkk->var, "k");
}

TEST(LoopTiling, RecordsReductionTile) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  const auto& t = p.main_kernel().tiling.at("k");
  EXPECT_EQ(t.tile_var, "kk");
  EXPECT_EQ(t.tile_label, "Lk");
  EXPECT_EQ(t.tile_extent, 16);
}

TEST(LoopTiling, WidensTriangularBoundToBlockLevel) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  const Node* lk = p.main_kernel().find("Lk");
  ASSERT_NE(lk, nullptr);
  // ub term widened from i+1 to block_base + 32: depends on i_b, not i.
  bool has_block_term = false;
  for (const auto& term : lk->ub.terms()) {
    EXPECT_FALSE(term.depends_on("i"));
    if (term.depends_on("i_b")) has_block_term = true;
  }
  EXPECT_TRUE(has_block_term);
  // The point loop keeps the exact per-row bound.
  const Node* lkkk = p.main_kernel().find("Lkkk");
  bool has_i_term = false;
  for (const auto& term : lkkk->ub.terms()) {
    if (term.depends_on("i")) has_i_term = true;
  }
  EXPECT_TRUE(has_i_term);
}

// -------------------------------------------------------- loop_unroll

TEST(LoopUnroll, SucceedsOnRectangularGemm) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  ASSERT_TRUE(loop_unroll(p, {"Ljjj", "Lkkk"}, ctx).is_ok());
  EXPECT_EQ(p.main_kernel().find("Lkkk")->unroll, 4);
  EXPECT_EQ(p.main_kernel().find("Ljjj")->unroll, 4);
}

TEST(LoopUnroll, FailsOnTriangularBounds) {
  // The paper's filter example: loop_unroll fails when non-rectangular
  // areas exist (sequences 5 and 9 degenerate).
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  Status s = loop_unroll(p, {"Lkkk"}, ctx);
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition) << s.to_string();
}

TEST(LoopUnroll, SucceedsAfterPeel) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  ASSERT_TRUE(peel_triangular(p, "A", ctx).is_ok());
  Status s = loop_unroll(p, {"Lkkk"}, ctx);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_GT(p.main_kernel().find("Lkkk")->unroll, 1);
}

TEST(LoopUnroll, SucceedsAfterPadding) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  ASSERT_TRUE(padding_triangular(p, "A", ctx).is_ok());
  Status s = loop_unroll(p, {"Lkkk"}, ctx);
  EXPECT_TRUE(s.is_ok()) << s.to_string();
}

// ---------------------------------------------------------- triangular

TEST(PeelTriangular, FailsBeforeGrouping) {
  // "for a triangular area, the detection will fail before loop tiling
  // is applied" (paper §IV-A.3 Step 1): with no block structure at all
  // there is no trapezoid to find.
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("TRMM-LL-N"));
  EXPECT_EQ(peel_triangular(p, "A", ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(PeelTriangular, WorksOnBlockTrapezoidBeforeLoopTiling) {
  // After thread_grouping the block tiles exist (the paper's
  // thread_grouping tiles internally), so peel can split the reduction
  // loop even before loop_tiling — sequence 3 of the paper's filter
  // example.
  TransformContext ctx = ctx_default();
  Program p = grouped("TRMM-LL-N", ctx);
  Status s = peel_triangular(p, "A", ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  EXPECT_NE(p.main_kernel().find("Lk_tri"), nullptr);
}

TEST(PeelTriangular, FailsOnRectangularGemm) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  EXPECT_EQ(peel_triangular(p, "A", ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(PeelTriangular, SplitsIntoRectAndTri) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  ASSERT_TRUE(peel_triangular(p, "A", ctx).is_ok());
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  const Node* rect = p.main_kernel().find("Lk");
  const Node* tri = p.main_kernel().find("Lk_tri");
  ASSERT_NE(rect, nullptr);
  ASSERT_NE(tri, nullptr);
  // Rect part: uniform point bounds (no i terms).
  const Node* rect_point = ir::find_loop(
      const_cast<Node*>(rect)->body, "Lkkk");
  ASSERT_NE(rect_point, nullptr);
  for (const auto& term : rect_point->ub.terms()) {
    EXPECT_FALSE(term.depends_on("i"));
  }
  // Tri part keeps the exact bound.
  const Node* tri_point =
      ir::find_loop(const_cast<Node*>(tri)->body, "Lkkk_tri");
  ASSERT_NE(tri_point, nullptr);
}

TEST(PeelTriangular, HandlesUpperEffectiveTriangle) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LU-N", ctx);
  Status s = peel_triangular(p, "A", ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok());
}

TEST(PaddingTriangular, CreatesMultiVersionedCode) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRMM-LL-N", ctx);
  ASSERT_TRUE(padding_triangular(p, "A", ctx).is_ok());
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  EXPECT_TRUE(p.has_bool_param("blank_zero"));
  // An if (blank_zero) { padded } else { original } exists.
  bool found = false;
  ir::walk(p.main_kernel().body, [&](Node& n) {
    if (n.is_if() && n.bool_param == "blank_zero" && !n.else_body.empty()) {
      found = true;
    }
    return true;
  });
  EXPECT_TRUE(found);
}

TEST(BindingTriangular, RequiresPeelFirst) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRSM-LL-N", ctx);
  EXPECT_EQ(binding_triangular(p, "A", 0, ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(BindingTriangular, GuardsTrapezoidWithThreadZero) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRSM-LL-N", ctx);
  ASSERT_TRUE(peel_triangular(p, "A", ctx).is_ok());
  ASSERT_TRUE(binding_triangular(p, "A", 0, ctx).is_ok());
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  // The trapezoid sits under an If with two thread-equality predicates,
  // with barriers around it.
  bool guarded = false;
  ir::walk(p.main_kernel().body, [&](Node& n) {
    if (n.is_if() && n.conds.size() == 2 &&
        ir::find_loop(n.then_body, "Lk_tri") != nullptr) {
      guarded = true;
      // Point loops inside must span the whole block tile: lb no longer
      // depends on the thread variable.
      const Node* point = ir::find_loop(n.then_body, "Liii_tri");
      if (point != nullptr) {
        for (const auto& t : point->lb.terms()) {
          EXPECT_FALSE(t.depends_on("i_t"));
        }
      }
    }
    return true;
  });
  EXPECT_TRUE(guarded);
}

// --------------------------------------------------------------- GM_map

TEST(GmMap, TransposeCreatesPrepassAndRewrites) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-TN"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kTranspose, ctx).is_ok());
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  ASSERT_EQ(p.kernels.size(), 2u);
  EXPECT_EQ(p.kernels[0].name, "gm_map_A");
  ASSERT_NE(p.find_global("NewA"), nullptr);
  // A[k][i] became NewA[i][k]: the main statement reads row-major again.
  std::string s = ir::to_string(p.main_kernel());
  EXPECT_NE(s.find("NewA[i][k]"), std::string::npos) << s;
}

TEST(GmMap, TransposeSwapsShape) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-TN"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kTranspose, ctx).is_ok());
  const ir::ArrayDecl* na = p.find_global("NewA");
  // A was K x M; NewA is M x K.
  EXPECT_EQ(na->rows.to_string(), "M");
  EXPECT_EQ(na->cols.to_string(), "K");
}

TEST(GmMap, SymmetryMarksArraySymmetric) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("SYMM-LL"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kSymmetry, ctx).is_ok());
  const ir::ArrayDecl* na = p.find_global("NewA");
  ASSERT_NE(na, nullptr);
  EXPECT_TRUE(na->symmetric);
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
}

TEST(GmMap, MustBeFirst) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-TN", ctx);
  EXPECT_EQ(gm_map(p, "A", AllocMode::kTranspose, ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(GmMap, NoChangeIsIdentity) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kNoChange, ctx).is_ok());
  EXPECT_EQ(p.kernels.size(), 1u);
}

// ----------------------------------------------------- format_iteration

TEST(FormatIteration, AfterGmMapFusesToGemmForm) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("SYMM-LL"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kSymmetry, ctx).is_ok());
  Status s = format_iteration(p, "A", AllocMode::kSymmetry, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  // The j-loop body is now a single k loop over [0, M).
  const Node* lj = p.main_kernel().find("Lj");
  ASSERT_NE(lj, nullptr);
  ASSERT_EQ(lj->body.size(), 1u);
  const Node& lk = *lj->body[0];
  EXPECT_TRUE(lk.is_loop());
  EXPECT_EQ(lk.lb, ir::Bound(0));
  EXPECT_TRUE(lk.ub.is_single());
  EXPECT_EQ(lk.ub.terms()[0].to_string(), "M");
  std::string str = ir::to_string(p.main_kernel());
  EXPECT_NE(str.find("NewA[i][k] * B[k][j]"), std::string::npos) << str;
}

TEST(FormatIteration, WithoutGmMapDegeneratesToFission) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("SYMM-LL"));
  Status s = format_iteration(p, "A", AllocMode::kSymmetry, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  // Rule 3 of Adaptor_Symmetry: fusion fails, the fissioned loops stay.
  const Node* lj = p.main_kernel().find("Lj");
  ASSERT_NE(lj, nullptr);
  EXPECT_EQ(lj->body.size(), 3u);  // real loop, shadow loop, diagonal
}

TEST(FormatIteration, WorksOnRightSideSymm) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("SYMM-RL"));
  ASSERT_TRUE(gm_map(p, "A", AllocMode::kSymmetry, ctx).is_ok());
  Status s = format_iteration(p, "A", AllocMode::kSymmetry, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  // Fused over the full [0, N) range.
  const Node* lj = p.main_kernel().find("Lj");
  ASSERT_NE(lj, nullptr);
  ASSERT_EQ(lj->body.size(), 1u);
  EXPECT_EQ(lj->body[0]->ub.terms()[0].to_string(), "N");
}

TEST(FormatIteration, FailsOnGemm) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  EXPECT_EQ(format_iteration(p, "A", AllocMode::kSymmetry, ctx).code(),
            ErrorCode::kFailedPrecondition);
}

// --------------------------------------------------------------- SM_alloc

TEST(SmAlloc, StagesBTileWithTransposeAndPadding) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  Status s = sm_alloc(p, "B", AllocMode::kTranspose, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  ir::ArrayDecl* bs = p.main_kernel().find_local_array("B_s");
  ASSERT_NE(bs, nullptr);
  EXPECT_EQ(bs->space, ir::MemSpace::kShared);
  // Transposed tile: rows = block_tile_x (j extent) = 32, cols = 16 (k).
  ir::Env env;
  EXPECT_EQ(bs->num_rows(env), 32);
  EXPECT_EQ(bs->num_cols(env), 16);
  EXPECT_EQ(bs->pad_rows, 1);  // 32 % 16 == 0 -> padded
  // The compute statement now reads B_s.
  std::string str = ir::to_string(p.main_kernel());
  EXPECT_NE(str.find("B_s["), std::string::npos);
  // Barriers present.
  int syncs = 0;
  ir::walk(p.main_kernel().body, [&](Node& n) {
    syncs += n.is_sync();
    return true;
  });
  EXPECT_GE(syncs, 2);
}

TEST(SmAlloc, NoChangeKeepsOrientation) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  ASSERT_TRUE(sm_alloc(p, "B", AllocMode::kNoChange, ctx).is_ok());
  ir::ArrayDecl* bs = p.main_kernel().find_local_array("B_s");
  ASSERT_NE(bs, nullptr);
  ir::Env env;
  EXPECT_EQ(bs->num_rows(env), 16);  // k extent
  EXPECT_EQ(bs->num_cols(env), 32);  // j extent
  EXPECT_EQ(bs->pad_rows, 1);
}

TEST(SmAlloc, FailsBeforeTiling) {
  TransformContext ctx = ctx_default();
  Program p = grouped("GEMM-NN", ctx);
  EXPECT_EQ(sm_alloc(p, "B", AllocMode::kTranspose, ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(SmAlloc, FailsBeforeGrouping) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  EXPECT_EQ(sm_alloc(p, "B", AllocMode::kTranspose, ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(SmAlloc, TrsmOutputReferencesStayGlobal) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRSM-LL-N", ctx);
  ASSERT_TRUE(peel_triangular(p, "A", ctx).is_ok());
  ASSERT_TRUE(binding_triangular(p, "A", 0, ctx).is_ok());
  Status s = sm_alloc(p, "B", AllocMode::kTranspose, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  // The write B[i][j] must still target global B.
  bool writes_global_b = false;
  ir::walk(p.main_kernel().body, [&](Node& n) {
    if (n.is_assign() && n.lhs.array == "B") writes_global_b = true;
    return true;
  });
  EXPECT_TRUE(writes_global_b);
}

TEST(SmAlloc, SymmetryModeStagesSymmetricTile) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("SYMM-LL"));
  ASSERT_TRUE(
      format_iteration(p, "A", AllocMode::kSymmetry, ctx).is_ok());
  ASSERT_TRUE(
      thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"}, ctx).is_ok());
  ASSERT_TRUE(
      loop_tiling(p, {"Lii", "Ljj", "Lk"}, {"Liii", "Ljjj", "Lkkk"}, ctx)
          .is_ok());
  Status s = sm_alloc(p, "A", AllocMode::kSymmetry, ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  EXPECT_NE(p.main_kernel().find_local_array("A_s"), nullptr);
}

// -------------------------------------------------------------- reg_alloc

TEST(RegAlloc, GivesEachThreadARegisterBlock) {
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("GEMM-NN", ctx);
  Status s = reg_alloc(p, "C", ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok()) << ir::validate(p).to_string();
  ir::ArrayDecl* cr = p.main_kernel().find_local_array("C_r");
  ASSERT_NE(cr, nullptr);
  EXPECT_EQ(cr->space, ir::MemSpace::kRegister);
  ir::Env env;
  EXPECT_EQ(cr->num_rows(env), 4);  // 32 / 8
  EXPECT_EQ(cr->num_cols(env), 4);
  // The accumulation statement targets C_r now; C only appears in the
  // guarded flush.
  std::string str = ir::to_string(p.main_kernel());
  EXPECT_NE(str.find("C_r["), std::string::npos);
}

TEST(RegAlloc, FailsOnTrsmSolveArray) {
  // B is read at rows k outside the calling thread's tile.
  TransformContext ctx = ctx_default();
  Program p = grouped_tiled("TRSM-LL-N", ctx);
  EXPECT_EQ(reg_alloc(p, "B", ctx).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(RegAlloc, FailsBeforeGrouping) {
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  EXPECT_FALSE(reg_alloc(p, "C", ctx).is_ok());
}

// -------------------------------------------------- full GEMM-NN pipeline

TEST(Pipeline, PaperFig3ScriptAppliesCleanly) {
  // Fig 3: thread_grouping; loop_tiling; loop_unroll; SM_alloc(B,
  // Transpose); reg_alloc(C).
  TransformContext ctx = ctx_default();
  Program p = make_source_program(*find_variant("GEMM-NN"));
  ASSERT_TRUE(apply(p, {"thread_grouping", {"Li", "Lj"}, {"Lii", "Ljj"}},
                    ctx)
                  .is_ok());
  ASSERT_TRUE(apply(p,
                    {"loop_tiling",
                     {"Lii", "Ljj", "Lk"},
                     {"Liii", "Ljjj", "Lkkk"}},
                    ctx)
                  .is_ok());
  ASSERT_TRUE(apply(p, {"loop_unroll", {"Ljjj", "Lkkk"}, {}}, ctx).is_ok());
  ASSERT_TRUE(apply(p, {"SM_alloc", {"B", "Transpose"}, {}}, ctx).is_ok());
  ASSERT_TRUE(apply(p, {"reg_alloc", {"C"}, {}}, ctx).is_ok());
  Status v = ir::validate(p);
  EXPECT_TRUE(v.is_ok()) << v.to_string() << "\n" << ir::to_string(p);
}

}  // namespace
}  // namespace oa::transforms
