// Batched-family gate: every batched catalog variant (16: s/d GEMM_
// BATCHED and GEMM_STRIDED_BATCHED x NN/NT/TN/TT) must compute, through
// the fused native batched path (exec::execute_batched), results that
// are bit-identical to the interpreter loop-of-members oracle
// (engine::execute_batched) and within the accumulation tolerance of a
// loop of CPU references. Also covers batch-count edges (1, 2, 7,
// 1024), degenerate member shapes (M=1, K=1), operand-count
// validation, and the serving path: a 4-thread hammer of mixed single
// and batched requests across a swap_artifact() hot reload with zero
// drops and consistent per-family DispatchStats.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "exec/executor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "runtime/library_runtime.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa {
namespace {

using blas3::Matrix;
using blas3::Variant;

ir::Program tuned_program(const Variant& v) {
  static const char* kScript = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 16;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 4;
  ctx.params.threads_x = 4;
  ctx.params.k_tile = 8;
  ctx.params.unroll = 2;
  auto script = epod::parse_script(kScript);
  EXPECT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  EXPECT_TRUE(mask.is_ok()) << mask.status().to_string();
  return p;
}

/// One operand set per member at an explicit rectangular shape; every
/// member gets distinct random data from one sequential stream.
struct BatchedProblem {
  std::vector<Matrix> a, b, c;

  BatchedProblem(const Variant& v, int64_t m, int64_t n, int64_t k,
                 int64_t count, uint64_t seed) {
    Rng rng(seed);
    for (int64_t i = 0; i < count; ++i) {
      Matrix ai = v.trans_a == blas3::Trans::kN ? Matrix(m, k, v.precision)
                                                : Matrix(k, m, v.precision);
      Matrix bi = v.trans_b == blas3::Trans::kN ? Matrix(k, n, v.precision)
                                                : Matrix(n, k, v.precision);
      ai.fill_random(rng);
      bi.fill_random(rng);
      a.push_back(std::move(ai));
      b.push_back(std::move(bi));
      c.emplace_back(m, n, v.precision);
    }
  }

  /// Loop-of-reference oracle: one CPU reference per member.
  std::vector<Matrix> reference(const Variant& v) const {
    std::vector<Matrix> ref = c;
    for (size_t i = 0; i < a.size(); ++i) {
      Matrix rb = b[i];
      blas3::run_reference(v, a[i], rb, &ref[i]);
    }
    return ref;
  }
};

double max_member_diff(const std::vector<Matrix>& got,
                       const std::vector<Matrix>& want) {
  double err = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, blas3::max_abs_diff(got[i], want[i]));
  }
  return err;
}

/// Run the fused native batched path and (optionally) the interpreter
/// loop, asserting native==interpreter bit-for-bit and native==CPU
/// reference loop within the accumulation tolerance.
void expect_batched_matches(const Variant& v, const ir::Program& p,
                            int64_t m, int64_t n, int64_t k, int64_t count,
                            bool against_interpreter = true) {
  SCOPED_TRACE(testing::Message() << v.name() << " m=" << m << " n=" << n
                                  << " k=" << k << " batch=" << count);
  const BatchedProblem prob(v, m, n, k, count,
                            0xBA7C4ED ^ static_cast<uint64_t>(count));
  exec::ExecCache cache;

  std::vector<Matrix> native_b = prob.b;
  std::vector<Matrix> native_c = prob.c;
  Status run = exec::execute_batched(gpusim::gtx285(), p, v, prob.a,
                                     native_b, &native_c, {}, cache);
  ASSERT_TRUE(run.is_ok()) << run.to_string();

  const std::vector<Matrix> ref = prob.reference(v);
  const double tol = blas3::accumulation_tolerance(k, v.precision);
  EXPECT_LE(max_member_diff(native_c, ref), tol);

  if (against_interpreter) {
    gpusim::Simulator sim(gpusim::gtx285());
    std::vector<Matrix> interp_b = prob.b;
    std::vector<Matrix> interp_c = prob.c;
    Status loop = engine::execute_batched(sim, p, v, prob.a, interp_b,
                                          &interp_c, {});
    ASSERT_TRUE(loop.is_ok()) << loop.to_string();
    // Same segment ABI on both backends: not "close", identical.
    EXPECT_EQ(max_member_diff(native_c, interp_c), 0.0);
  }
}

// --- the full batched catalog ---------------------------------------

class BatchedAllVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(BatchedAllVariants, NativeMatchesInterpreterLoopAndReference) {
  const Variant v = GetParam();
  expect_batched_matches(v, tuned_program(v), /*m=*/40, /*n=*/25,
                         /*k=*/33, /*count=*/3);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, BatchedAllVariants,
    ::testing::ValuesIn(blas3::batched_variants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string name = info.param.name();
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// --- batch-count edges ----------------------------------------------

TEST(BatchedEdges, BatchCountSweepBothPrecisions) {
  for (const char* name : {"GEMM_BATCHED-NN", "DGEMM_BATCHED-NN"}) {
    const Variant& v = *blas3::find_variant(name);
    const ir::Program p = tuned_program(v);
    for (int64_t count : {1, 2, 7}) {
      expect_batched_matches(v, p, 24, 17, 19, count);
    }
    // batch=1024: the fused native path stays cheap; the 1024-member
    // interpreter loop would not, so arbitration is reference-only.
    expect_batched_matches(v, p, 12, 9, 10, 1024,
                           /*against_interpreter=*/false);
  }
}

TEST(BatchedEdges, DegenerateMemberShapes) {
  // M=1 members (a row per member) and K=1 members (rank-1 update per
  // member), strided and plain, both precisions.
  expect_batched_matches(*blas3::find_variant("GEMM_STRIDED_BATCHED-NT"),
                         tuned_program(
                             *blas3::find_variant("GEMM_STRIDED_BATCHED-NT")),
                         /*m=*/1, /*n=*/37, /*k=*/20, /*count=*/4);
  expect_batched_matches(*blas3::find_variant("DGEMM_BATCHED-TN"),
                         tuned_program(*blas3::find_variant("DGEMM_BATCHED-TN")),
                         /*m=*/23, /*n=*/9, /*k=*/1, /*count=*/5);
  expect_batched_matches(*blas3::find_variant("DGEMM_STRIDED_BATCHED-TT"),
                         tuned_program(
                             *blas3::find_variant("DGEMM_STRIDED_BATCHED-TT")),
                         /*m=*/1, /*n=*/13, /*k=*/1, /*count=*/7);
}

TEST(BatchedEdges, StridedAndPlainBatchedAgreeBitForBit) {
  // The strided family is a storage contract, not different math: the
  // same member data through GEMM_BATCHED-NN and GEMM_STRIDED_BATCHED-NN
  // (same schedule) must produce identical bits.
  const Variant& plain = *blas3::find_variant("GEMM_BATCHED-NN");
  const Variant& strided = *blas3::find_variant("GEMM_STRIDED_BATCHED-NN");
  const BatchedProblem prob(plain, 31, 22, 27, 5, 0x5151);
  exec::ExecCache cache;

  std::vector<Matrix> pb = prob.b, pc = prob.c;
  Status run_plain = exec::execute_batched(gpusim::gtx285(),
                                           tuned_program(plain), plain,
                                           prob.a, pb, &pc, {}, cache);
  ASSERT_TRUE(run_plain.is_ok()) << run_plain.to_string();

  std::vector<Matrix> sb = prob.b, sc = prob.c;
  Status run_strided = exec::execute_batched(gpusim::gtx285(),
                                             tuned_program(strided), strided,
                                             prob.a, sb, &sc, {}, cache);
  ASSERT_TRUE(run_strided.is_ok()) << run_strided.to_string();

  EXPECT_EQ(max_member_diff(pc, sc), 0.0);
}

TEST(BatchedEdges, MismatchedOperandCountsAreRejected) {
  const Variant& v = *blas3::find_variant("GEMM_BATCHED-NN");
  const ir::Program p = tuned_program(v);
  exec::ExecCache cache;

  BatchedProblem prob(v, 16, 16, 16, 3, 1);
  prob.b.pop_back();  // 3 A members, 2 B members
  Status bad = exec::execute_batched(gpusim::gtx285(), p, v, prob.a,
                                     prob.b, &prob.c, {}, cache);
  EXPECT_FALSE(bad.is_ok());

  std::vector<Matrix> none;
  std::vector<Matrix> none_b, none_c;
  Status empty = exec::execute_batched(gpusim::gtx285(), p, v, none,
                                       none_b, &none_c, {}, cache);
  EXPECT_FALSE(empty.is_ok());

  // Strided members must share one member shape.
  BatchedProblem ragged(v, 16, 16, 16, 2, 2);
  ragged.a[1] = Matrix(16, 24, v.precision);
  Status shape = exec::execute_batched(gpusim::gtx285(), p, v, ragged.a,
                                       ragged.b, &ragged.c, {}, cache);
  EXPECT_FALSE(shape.is_ok());
}

// --- serving: mixed single+batched hammer across a hot reload --------

/// One real tuned library with a single and a batched GEMM entry per
/// process (generation is the expensive part).
const libgen::Artifact& mixed_artifact() {
  static const libgen::Artifact artifact = [] {
    libgen::SessionStore::instance().clear();
    OaOptions opt;
    opt.tuning_size = 96;
    opt.verify_size = 48;
    OaFramework framework(gpusim::gtx285(), opt);
    auto single = framework.generate(*blas3::find_variant("GEMM-NN"));
    EXPECT_TRUE(single.is_ok()) << single.status().to_string();
    auto batched = framework.generate(*blas3::find_variant("GEMM_BATCHED-NN"));
    EXPECT_TRUE(batched.is_ok()) << batched.status().to_string();
    return framework.export_library();
  }();
  return artifact;
}

TEST(BatchedServing, FourThreadHammerAcrossHotReloadZeroDrops) {
  runtime::RuntimeOptions opt;
  opt.execution = runtime::ExecutionMode::kNative;
  runtime::LibraryRuntime rt(gpusim::gtx285(), mixed_artifact(), opt);
  ASSERT_EQ(rt.table_size(), 2u);

  const Variant& single = *blas3::find_variant("GEMM-NN");
  const Variant& batched = *blas3::find_variant("GEMM_BATCHED-NN");
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 8;
  constexpr int64_t kMemberSize = 96;
  constexpr int64_t kBatch = 4;

  std::atomic<int> failures{0};
  std::atomic<int> sheds{0};
  std::atomic<bool> reloaded{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xF00D + static_cast<uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        // Alternate single and batched traffic on every thread, so both
        // request families cross the reload boundary concurrently.
        if (i % 2 == 0) {
          Matrix a(kMemberSize, kMemberSize), b(kMemberSize, kMemberSize),
              c(kMemberSize, kMemberSize);
          a.fill_random(rng);
          b.fill_random(rng);
          auto outcome = rt.serve(single, a, b, &c);
          if (!outcome.is_ok() ||
              *outcome == runtime::DispatchOutcome::kShed) {
            (outcome.is_ok() ? sheds : failures)++;
          }
        } else {
          BatchedProblem prob(batched, kMemberSize, kMemberSize,
                              kMemberSize, kBatch,
                              0xBEE5 + static_cast<uint64_t>(t * 100 + i));
          // Oracle before serving: serve_batched writes prob.c in place.
          const std::vector<Matrix> ref = prob.reference(batched);
          auto outcome =
              rt.serve_batched(batched, prob.a, prob.b, &prob.c);
          if (!outcome.is_ok() ||
              *outcome == runtime::DispatchOutcome::kShed) {
            (outcome.is_ok() ? sheds : failures)++;
            continue;
          }
          // Spot-check numerics on the last iteration of each thread:
          // a wrong answer served without error is the worst drop.
          if (i + 2 >= kItersPerThread) {
            const double tol = blas3::accumulation_tolerance(
                kMemberSize, batched.precision);
            if (max_member_diff(prob.c, ref) > tol) failures++;
          }
        }
        // Thread 0 hot-reloads mid-hammer; everyone else keeps serving.
        if (t == 0 && i == kItersPerThread / 2) {
          Status swapped = rt.swap_artifact(mixed_artifact());
          if (!swapped.is_ok()) failures++;
          reloaded = true;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sheds.load(), 0);
  EXPECT_TRUE(reloaded.load());

  const runtime::DispatchStats stats = rt.stats();
  const uint64_t singles = kThreads * (kItersPerThread / 2);
  const uint64_t batches = kThreads * (kItersPerThread / 2);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.batched_requests, batches);
  EXPECT_EQ(stats.batched_members, batches * kBatch);
  ASSERT_EQ(stats.requests_by_family.count("GEMM"), 1u);
  ASSERT_EQ(stats.requests_by_family.count("GEMM_BATCHED"), 1u);
  EXPECT_EQ(stats.requests_by_family.at("GEMM"), singles);
  EXPECT_EQ(stats.requests_by_family.at("GEMM_BATCHED"), batches);
}

}  // namespace
}  // namespace oa
