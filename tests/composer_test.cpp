#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "composer/composer.hpp"
#include "ir/printer.hpp"
#include "support/strings.hpp"

namespace oa::composer {
namespace {

using blas3::find_variant;
using blas3::make_source_program;

transforms::TransformContext ctx_default() {
  transforms::TransformContext ctx;
  return ctx;
}

std::vector<Invocation> invs(std::initializer_list<const char*> names) {
  std::vector<Invocation> out;
  for (const char* n : names) out.push_back(Invocation{n, {}, {}});
  return out;
}

std::string names_of(const std::vector<Invocation>& seq) {
  std::vector<std::string> out;
  for (const auto& inv : seq) out.push_back(inv.component);
  return join(out, ",");
}

// -------------------------------------------------------------- splitter

TEST(Splitter, SeparatesMemoryComponents) {
  SplitSequence s = split(epod::gemm_nn_script().invocations);
  ASSERT_EQ(s.polyhedral.size(), 3u);
  EXPECT_EQ(s.polyhedral[0].component, "thread_grouping");
  EXPECT_EQ(s.polyhedral[2].component, "loop_unroll");
  ASSERT_EQ(s.memory.size(), 2u);
  EXPECT_EQ(s.memory[0].component, "SM_alloc");
  EXPECT_EQ(s.memory[1].component, "reg_alloc");
}

// ----------------------------------------------------------------- mixer

TEST(Mixer, InterleavingCountIsBinomial) {
  auto a = invs({"thread_grouping", "loop_tiling", "loop_unroll"});
  auto b = invs({"peel_triangular"});
  // C(4,1) = 4 interleavings (Fig 9 keeps the relative orders).
  EXPECT_EQ(mix(a, b).size(), 4u);
  auto b2 = invs({"peel_triangular", "binding_triangular"});
  // C(5,2) = 10.
  EXPECT_EQ(mix(a, b2).size(), 10u);
}

TEST(Mixer, PreservesRelativeOrder) {
  auto a = invs({"thread_grouping", "loop_tiling"});
  auto b = invs({"peel_triangular", "binding_triangular"});
  for (const auto& seq : mix(a, b)) {
    size_t tg = 0, lt = 0, pe = 0, bi = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].component == "thread_grouping") tg = i;
      if (seq[i].component == "loop_tiling") lt = i;
      if (seq[i].component == "peel_triangular") pe = i;
      if (seq[i].component == "binding_triangular") bi = i;
    }
    EXPECT_LT(tg, lt);
    EXPECT_LT(pe, bi);
  }
}

TEST(Mixer, GmMapOnlyFirst) {
  // "GM_map should be fixed as the first in a sequence if it appears.
  // Therefore, the mixer does not generate any sequences violating this
  // condition" (§IV-B.1).
  auto a = invs({"thread_grouping", "loop_tiling"});
  auto b = invs({"GM_map"});
  auto mixed = mix(a, b);
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed[0][0].component, "GM_map");
}

TEST(Mixer, EmptyAdaptorSequence) {
  auto a = invs({"thread_grouping"});
  auto mixed = mix(a, {});
  ASSERT_EQ(mixed.size(), 1u);
  EXPECT_EQ(mixed[0], a);
}

// ---------------------------------------------------------------- filter

TEST(Filter, OmitsFailingComponents) {
  // peel before grouping fails and is omitted; the rest applies.
  ir::Program src = make_source_program(*find_variant("TRMM-LL-N"));
  auto seq = epod::parse_script(R"(
    peel_triangular(A);
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  )");
  ASSERT_TRUE(seq.is_ok());
  FilterOutcome out =
      filter_sequence(src, seq->invocations, ctx_default());
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(names_of(out.surviving), "thread_grouping,loop_tiling");
}

TEST(Filter, PaperExampleNineSequencesSevenSemiOutputs) {
  // §IV-B.2: mixing Adaptor_Triangular with the GEMM-NN script yields 9
  // sequences; after filtering, the semi-output has 7 distinct
  // sequences.
  ir::Program src = make_source_program(*find_variant("TRMM-LL-N"));
  const transforms::TransformContext ctx = ctx_default();
  SplitSequence base = split(epod::gemm_nn_script().invocations);

  std::vector<std::vector<Invocation>> all_mixed;
  const adl::Adaptor bound = adl::adaptor_triangular().bind("A");
  for (const adl::AdaptorRule& rule : bound.rules) {
    SplitSequence rs = split(rule.sequence);
    for (auto& m : mix(base.polyhedral, rs.polyhedral)) {
      all_mixed.push_back(std::move(m));
    }
  }
  EXPECT_EQ(all_mixed.size(), 9u);  // 1 + 4 + 4

  std::vector<std::vector<Invocation>> semi_output;
  for (const auto& seq : all_mixed) {
    FilterOutcome out = filter_sequence(src, seq, ctx);
    ASSERT_TRUE(out.valid) << names_of(seq);
    if (std::find(semi_output.begin(), semi_output.end(), out.surviving) ==
        semi_output.end()) {
      semi_output.push_back(out.surviving);
    }
  }
  std::vector<std::string> got;
  for (const auto& seq : semi_output) got.push_back(names_of(seq));
  EXPECT_EQ(semi_output.size(), 7u) << join(got, "\n");
}

// ------------------------------------------------------------- allocator

TEST(Allocator, TransposeTransposeCancels) {
  // The paper's C = alpha*A*B^T + beta*C example: both the script and
  // the adaptor declare SM_alloc(B, Transpose); the merge yields
  // SM_alloc(B, NoChange).
  auto base = epod::parse_script("SM_alloc(B, Transpose); reg_alloc(C);");
  auto rule = epod::parse_script("SM_alloc(B, Transpose);");
  ASSERT_TRUE(base.is_ok() && rule.is_ok());
  auto merged = merge_allocations(base->invocations, rule->invocations);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].to_string(), "SM_alloc(B, NoChange)");
  EXPECT_EQ(merged[1].component, "reg_alloc");
}

TEST(Allocator, DistinctArraysKept) {
  auto base = epod::parse_script("SM_alloc(B, Transpose);");
  auto rule = epod::parse_script("SM_alloc(A, Symmetry);");
  ASSERT_TRUE(base.is_ok() && rule.is_ok());
  auto merged = merge_allocations(base->invocations, rule->invocations);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].to_string(), "SM_alloc(B, Transpose)");
  EXPECT_EQ(merged[1].to_string(), "SM_alloc(A, Symmetry)");
}

TEST(Allocator, IdenticalDeclarationsDeduplicated) {
  auto base = epod::parse_script("reg_alloc(C);");
  auto rule = epod::parse_script("reg_alloc(C);");
  auto merged = merge_allocations(base->invocations, rule->invocations);
  EXPECT_EQ(merged.size(), 1u);
}

// ----------------------------------------------------------- composition

TEST(Compose, GemmTnUsesTransposeAdaptor) {
  ir::Program src = make_source_program(*find_variant("GEMM-TN"));
  auto result = compose(epod::gemm_nn_script(),
                        {adl::adaptor_transpose().bind("A")}, src,
                        ctx_default());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // At least: the degenerate rule, the GM_map rule, the SM_alloc rule.
  EXPECT_GE(result->size(), 3u);
  bool has_gm_map_first = false;
  for (const Candidate& c : *result) {
    if (!c.script.invocations.empty() &&
        c.script.invocations[0].component == "GM_map") {
      has_gm_map_first = true;
    }
  }
  EXPECT_TRUE(has_gm_map_first);
}

TEST(Compose, SymmCandidatesIncludeFig14Script) {
  ir::Program src = make_source_program(*find_variant("SYMM-LL"));
  auto result = compose(epod::gemm_nn_script(),
                        {adl::adaptor_symmetry().bind("A")}, src,
                        ctx_default());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // Fig 14's SYMM script: GM_map(A, Symmetry); format_iteration;
  // thread_grouping; loop_tiling; loop_unroll; SM_alloc(B, Transpose);
  // reg_alloc(C).
  bool found = false;
  for (const Candidate& c : *result) {
    std::string s = names_of(c.script.invocations);
    if (s ==
        "GM_map,format_iteration,thread_grouping,loop_tiling,loop_unroll,"
        "SM_alloc,reg_alloc") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compose, TrsmUsesSolverAdaptor) {
  ir::Program src = make_source_program(*find_variant("TRSM-LL-N"));
  auto result = compose(epod::gemm_nn_script(),
                        {adl::adaptor_solver().bind("A")}, src,
                        ctx_default());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  bool has_binding = false;
  for (const Candidate& c : *result) {
    std::string s = names_of(c.script.invocations);
    if (s.find("peel_triangular") != std::string::npos &&
        s.find("binding_triangular") != std::string::npos) {
      has_binding = true;
    }
  }
  EXPECT_TRUE(has_binding);
}

TEST(Compose, TriangularConditionPropagates) {
  ir::Program src = make_source_program(*find_variant("TRMM-LL-N"));
  auto result = compose(epod::gemm_nn_script(),
                        {adl::adaptor_triangular().bind("A")}, src,
                        ctx_default());
  ASSERT_TRUE(result.is_ok());
  bool padded_with_cond = false;
  for (const Candidate& c : *result) {
    const bool has_pad =
        names_of(c.script.invocations).find("padding_triangular") !=
        std::string::npos;
    if (has_pad) {
      ASSERT_EQ(c.conditions.size(), 1u);
      EXPECT_EQ(c.conditions[0], "blank(A).zero = true");
      padded_with_cond = true;
    }
  }
  EXPECT_TRUE(padded_with_cond);
}

TEST(Compose, GemmTtTwoAdaptors) {
  ir::Program src = make_source_program(*find_variant("GEMM-TT"));
  auto result = compose(
      epod::gemm_nn_script(),
      {adl::adaptor_transpose().bind("A"), adl::adaptor_transpose().bind("B")},
      src, ctx_default());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_GE(result->size(), 4u);
  // The double-transpose-B combination must produce an SM_alloc(B,
  // NoChange) somewhere (allocator merge).
  bool merged = false;
  for (const Candidate& c : *result) {
    for (const Invocation& inv : c.script.invocations) {
      if (inv.to_string() == "SM_alloc(B, NoChange)") merged = true;
    }
  }
  EXPECT_TRUE(merged);
}

}  // namespace
}  // namespace oa::composer
