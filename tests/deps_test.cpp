#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "deps/dependence.hpp"
#include "ir/kernel.hpp"

namespace oa::deps {
namespace {

using blas3::find_variant;
using blas3::make_source_program;
using ir::Env;
using ir::Node;
using ir::Program;

const Env kParams{{"M", 64}, {"N", 64}, {"K", 64}};

struct LoopQuery {
  Program program;
  const Node* loop;
};

LoopQuery get_loop(const char* variant, const char* label) {
  LoopQuery q{make_source_program(*find_variant(variant)), nullptr};
  q.loop = q.program.main_kernel().find(label);
  EXPECT_NE(q.loop, nullptr) << variant << " " << label;
  return q;
}

// ------------------------------------------------------ access collection

TEST(CollectAccesses, GemmHasWriteImplicitReadAndTwoLoads) {
  auto q = get_loop("GEMM-NN", "Lk");
  auto accs = collect_accesses(q.loop->body);
  // C write + C implicit read + A load + B load.
  ASSERT_EQ(accs.size(), 4u);
  EXPECT_TRUE(accs[0].is_write);
  EXPECT_TRUE(accs[0].is_reduction);
  EXPECT_FALSE(accs[1].is_write);
  EXPECT_TRUE(accs[1].is_reduction);
  EXPECT_EQ(accs[2].ref.array, "A");
  EXPECT_FALSE(accs[2].is_reduction);
}

TEST(CollectAccesses, TracksEnclosingLoops) {
  auto q = get_loop("GEMM-NN", "Li");
  auto accs = collect_accesses(q.loop->body);
  ASSERT_FALSE(accs.empty());
  // Statement sits under Lj and Lk relative to Li.
  ASSERT_EQ(accs[0].loops.size(), 2u);
  EXPECT_EQ(accs[0].loops[0]->label, "Lj");
  EXPECT_EQ(accs[0].loops[1]->label, "Lk");
}

// ----------------------------------------------------- carried dependence

TEST(CarriedDependence, GemmIandJAreParallel) {
  auto q = get_loop("GEMM-NN", "Li");
  EXPECT_FALSE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                  Mode::kStrict));
  auto qj = get_loop("GEMM-NN", "Lj");
  EXPECT_FALSE(carries_dependence(qj.program.main_kernel(), *qj.loop,
                                  kParams, Mode::kStrict));
}

TEST(CarriedDependence, GemmKCarriesReduction) {
  auto q = get_loop("GEMM-NN", "Lk");
  EXPECT_TRUE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                 Mode::kStrict));
  // Reduction-aware mode may reorder the accumulation.
  EXPECT_FALSE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                  Mode::kReductionAware));
}

TEST(CarriedDependence, AllGemmVariantsParallelInIandJ) {
  for (const char* name : {"GEMM-NN", "GEMM-NT", "GEMM-TN", "GEMM-TT"}) {
    for (const char* label : {"Li", "Lj"}) {
      auto q = get_loop(name, label);
      EXPECT_FALSE(carries_dependence(q.program.main_kernel(), *q.loop,
                                      kParams, Mode::kStrict))
          << name << " " << label;
    }
  }
}

TEST(CarriedDependence, SymmSourceCarriesOnIStrict) {
  // The mixed-mode SYMM source writes C[i][j] and C[k][j]: mapping i
  // across threads would race on C.
  auto q = get_loop("SYMM-LL", "Li");
  EXPECT_TRUE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                 Mode::kStrict));
}

TEST(CarriedDependence, SymmSourceJIsParallel) {
  auto q = get_loop("SYMM-LL", "Lj");
  EXPECT_FALSE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                  Mode::kStrict));
}

TEST(CarriedDependence, TrmmIsParallelInIandJ) {
  // TRMM writes only C[i][j]: triangular bounds do not create cross-row
  // dependences.
  for (const char* label : {"Li", "Lj"}) {
    auto q = get_loop("TRMM-LL-N", label);
    EXPECT_FALSE(carries_dependence(q.program.main_kernel(), *q.loop,
                                    kParams, Mode::kStrict))
        << label;
  }
}

TEST(CarriedDependence, TrsmCarriesOnSolveDimension) {
  // B[i][j] -= A[i][k] * B[k][j]: row i reads rows k < i (true
  // dependence), so Li carries; Lj does not.
  auto qi = get_loop("TRSM-LL-N", "Li");
  EXPECT_TRUE(carries_dependence(qi.program.main_kernel(), *qi.loop, kParams,
                                 Mode::kStrict));
  auto qj = get_loop("TRSM-LL-N", "Lj");
  EXPECT_FALSE(carries_dependence(qj.program.main_kernel(), *qj.loop,
                                  kParams, Mode::kStrict));
}

TEST(CarriedDependence, TrsmRightSideCarriesOnJ) {
  auto qj = get_loop("TRSM-RL-N", "Lj");
  EXPECT_TRUE(carries_dependence(qj.program.main_kernel(), *qj.loop, kParams,
                                 Mode::kStrict));
  auto qi = get_loop("TRSM-RL-N", "Li");
  EXPECT_FALSE(carries_dependence(qi.program.main_kernel(), *qi.loop,
                                  kParams, Mode::kStrict));
}

TEST(CarriedDependence, TrsmBackwardVariantsStillCarry) {
  for (const char* name : {"TRSM-LU-N", "TRSM-LL-T"}) {
    auto q = get_loop(name, "Li");
    EXPECT_TRUE(carries_dependence(q.program.main_kernel(), *q.loop, kParams,
                                   Mode::kStrict))
        << name;
  }
}

// ------------------------------------------------------------ fission

TEST(FissionLegal, SymmKLoopBodySplits) {
  // Splitting the two accumulation statements of the SYMM k-loop is
  // legal (reduction-aware).
  auto q = get_loop("SYMM-LL", "Lk");
  ir::RangeEnv ranges =
      ir::loop_var_ranges(q.program.main_kernel(), kParams);
  EXPECT_TRUE(fission_legal(*q.loop, 1, ranges));
}

TEST(FissionLegal, TrueDependenceBlocksFission) {
  // for i { X[i] = ...; Y[i] = X[i-1]; }  -- fission moves all X writes
  // first, which is legal; the reverse order (Y first) is what we test:
  // for i { Y[i] = X[i-1]; X[i] = ...; } -> moving X writes after all Y
  // reads reverses the carried dependence.
  using namespace ir;
  auto w = make_assign(ArrayRef{"X", {AffineExpr::sym("i"), AffineExpr(0)}},
                       AssignOp::kAssign, make_const(1.0));
  auto r = make_assign(
      ArrayRef{"Y", {AffineExpr::sym("i"), AffineExpr(0)}}, AssignOp::kAssign,
      make_ref("X", {AffineExpr::sym("i") - 1, AffineExpr(0)}));
  auto loop = make_loop("L", "i", Bound(1), Bound(AffineExpr(10)));
  loop->body.push_back(std::move(w));   // X[i] = ...
  loop->body.push_back(std::move(r));   // Y[i] = X[i-1]
  RangeEnv ranges{{"i", {1, 9}}};
  // Splitting between them: X loop runs fully first; Y then reads
  // already-written values. The dependence X(i) -> Y(i+1) is preserved
  // (X still writes before Y reads). Legal.
  EXPECT_TRUE(fission_legal(*loop, 1, ranges));
  // Swap the statements: Y[i] = X[i-1]; X[i] = ... Fission would hoist
  // all Y reads before X writes, breaking the dependence.
  std::swap(loop->body[0], loop->body[1]);
  EXPECT_FALSE(fission_legal(*loop, 1, ranges));
}

TEST(FissionLegal, TrivialSplitsAlwaysLegal) {
  auto q = get_loop("GEMM-NN", "Lk");
  ir::RangeEnv ranges =
      ir::loop_var_ranges(q.program.main_kernel(), kParams);
  EXPECT_TRUE(fission_legal(*q.loop, 0, ranges));
  EXPECT_TRUE(fission_legal(*q.loop, q.loop->body.size(), ranges));
}

}  // namespace
}  // namespace oa::deps
