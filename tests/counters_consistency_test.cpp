// Cross-mode consistency: the sampled performance simulation must agree
// with the exhaustive functional run on instruction and traffic
// counters for transformed kernels of every family — homogeneous grids
// exactly, triangular/serial ones within the interpolation tolerance.
#include <gtest/gtest.h>

#include "blas3/matrix.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa::gpusim {
namespace {

struct CaseSpec {
  const char* variant;
  const char* script;
  double tolerance;  // relative, instructions + bytes
  std::string name;
};

std::vector<CaseSpec> cases() {
  static const char* kGemmScript = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrmmScript = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrsmScript = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )";
  return {
      {"GEMM-NN", kGemmScript, 0.0, "GEMM_NN"},
      {"GEMM-TN", kGemmScript, 0.0, "GEMM_TN"},
      {"TRMM-LL-N", kTrmmScript, 0.05, "TRMM_LL_N"},
      {"TRMM-LU-N", kTrmmScript, 0.05, "TRMM_LU_N"},
      {"TRSM-LL-N", kTrsmScript, 0.05, "TRSM_LL_N"},
  };
}

class CounterConsistency : public ::testing::TestWithParam<CaseSpec> {};

TEST_P(CounterConsistency, SampledMatchesFunctional) {
  const CaseSpec& spec = GetParam();
  const blas3::Variant v = *blas3::find_variant(spec.variant);
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  auto script = epod::parse_script(spec.script);
  ASSERT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  ASSERT_TRUE(mask.is_ok());

  const int64_t n = 96;
  RunOptions opts;
  opts.int_params = v.family == blas3::Family::kGemm
                        ? ir::Env{{"M", n}, {"N", n}, {"K", n}}
                        : ir::Env{{"M", n}, {"N", n}};
  opts.warps_per_block_sample = 0;

  Simulator sim(gtx285());
  auto perf = sim.run_performance(p, opts);
  ASSERT_TRUE(perf.is_ok()) << perf.status().to_string();

  Rng rng(21);
  blas3::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(rng);
  b.fill_random(rng);
  if (v.family != blas3::Family::kGemm) a.make_triangular(v.uplo);
  if (v.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    a.scale_off_diagonal(1.0f / 16.0f);
  }
  GlobalBuffers buffers = make_buffers(
      p, opts.int_params, {{"A", &a}, {"B", &b}, {"C", &c}});
  auto func = sim.run_functional(p, opts, buffers);
  ASSERT_TRUE(func.is_ok()) << func.status().to_string();

  auto rel = [](int64_t x, int64_t y) {
    return y == 0 ? (x == 0 ? 0.0 : 1.0)
                  : std::abs(static_cast<double>(x - y)) /
                        static_cast<double>(y);
  };
  EXPECT_LE(rel(perf->counters.instructions, func->counters.instructions),
            spec.tolerance)
      << perf->counters.instructions << " vs "
      << func->counters.instructions;
  EXPECT_LE(rel(perf->counters.global_bytes, func->counters.global_bytes),
            spec.tolerance);
  EXPECT_LE(rel(perf->counters.flops, func->counters.flops),
            spec.tolerance);
  // FLOPs are exact in both modes for these scripts when the grid is
  // homogeneous.
  if (spec.tolerance == 0.0) {
    EXPECT_EQ(perf->counters.flops, func->counters.flops);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CounterConsistency,
                         ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<CaseSpec>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace oa::gpusim
