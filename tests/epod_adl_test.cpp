#include <gtest/gtest.h>

#include "adl/adaptor.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"

namespace oa {
namespace {

using blas3::find_variant;
using blas3::make_source_program;
using transforms::Invocation;

// ------------------------------------------------------------ EPOD parse

TEST(EpodParse, Fig3GemmScript) {
  auto parsed = epod::parse_script(R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const epod::Script& s = *parsed;
  ASSERT_EQ(s.invocations.size(), 5u);
  EXPECT_EQ(s.invocations[0].component, "thread_grouping");
  EXPECT_EQ(s.invocations[0].results,
            (std::vector<std::string>{"Lii", "Ljj"}));
  EXPECT_EQ(s.invocations[0].args, (std::vector<std::string>{"Li", "Lj"}));
  EXPECT_EQ(s.invocations[3].component, "SM_alloc");
  EXPECT_EQ(s.invocations[3].args,
            (std::vector<std::string>{"B", "Transpose"}));
}

TEST(EpodParse, ToleratesPaperDoubleParens) {
  // Fig 3 writes thread_grouping((Li, Lj)).
  auto parsed =
      epod::parse_script("(Lii, Ljj) = thread_grouping((Li, Lj));");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->invocations[0].args,
            (std::vector<std::string>{"Li", "Lj"}));
}

TEST(EpodParse, StripsComments) {
  auto parsed = epod::parse_script(R"(
    // the paper's script
    loop_unroll(Ljjj); // inner
  )");
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->invocations.size(), 1u);
}

TEST(EpodParse, RejectsUnknownComponent) {
  EXPECT_FALSE(epod::parse_script("warp_specialize(Li);").is_ok());
}

TEST(EpodParse, RejectsMalformedStatement) {
  EXPECT_FALSE(epod::parse_script("loop_unroll Ljjj;").is_ok());
}

TEST(EpodParse, RoundTripsThroughToString) {
  const epod::Script& s = epod::gemm_nn_script();
  auto reparsed = epod::parse_script(s.to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed->invocations, s.invocations);
}

// ------------------------------------------------------------ EPOD apply

TEST(EpodApply, GemmScriptProducesValidKernel) {
  ir::Program p = make_source_program(*find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  Status s = epod::apply_script(p, epod::gemm_nn_script(), ctx);
  ASSERT_TRUE(s.is_ok()) << s.to_string();
  EXPECT_TRUE(ir::validate(p).is_ok());
  EXPECT_NE(p.main_kernel().find_local_array("B_s"), nullptr);
  EXPECT_NE(p.main_kernel().find_local_array("C_r"), nullptr);
}

TEST(EpodApply, FailureReportsOffendingInvocation) {
  ir::Program p = make_source_program(*find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  auto parsed = epod::parse_script("loop_unroll(Lzz);");
  ASSERT_TRUE(parsed.is_ok());
  Status s = epod::apply_script(p, *parsed, ctx);
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("loop_unroll(Lzz)"), std::string::npos);
}

// ------------------------------------------------------------------- ADL

TEST(AdlParse, TransposeAdaptorHasThreeRules) {
  const adl::Adaptor& a = adl::adaptor_transpose();
  EXPECT_EQ(a.name, "Adaptor_Transpose");
  EXPECT_EQ(a.formal, "X");
  ASSERT_EQ(a.rules.size(), 3u);
  EXPECT_TRUE(a.rules[0].sequence.empty());  // keep unchanged
  ASSERT_EQ(a.rules[1].sequence.size(), 1u);
  EXPECT_EQ(a.rules[1].sequence[0].component, "GM_map");
  EXPECT_EQ(a.rules[2].sequence[0].component, "SM_alloc");
}

TEST(AdlParse, SymmetryAdaptorMatchesPaper) {
  const adl::Adaptor& a = adl::adaptor_symmetry();
  ASSERT_EQ(a.rules.size(), 3u);
  ASSERT_EQ(a.rules[1].sequence.size(), 2u);
  EXPECT_EQ(a.rules[1].sequence[0].component, "GM_map");
  EXPECT_EQ(a.rules[1].sequence[1].component, "format_iteration");
  ASSERT_EQ(a.rules[2].sequence.size(), 2u);
  EXPECT_EQ(a.rules[2].sequence[0].component, "format_iteration");
  EXPECT_EQ(a.rules[2].sequence[1].component, "SM_alloc");
}

TEST(AdlParse, TriangularAdaptorHasCondition) {
  const adl::Adaptor& a = adl::adaptor_triangular();
  ASSERT_EQ(a.rules.size(), 3u);
  EXPECT_TRUE(a.rules[0].sequence.empty());
  EXPECT_EQ(a.rules[1].sequence[0].component, "peel_triangular");
  EXPECT_EQ(a.rules[2].sequence[0].component, "padding_triangular");
  EXPECT_EQ(a.rules[2].condition, "blank(X).zero = true");
  EXPECT_TRUE(a.rules[1].condition.empty());
}

TEST(AdlParse, SolverAdaptorSingleRule) {
  const adl::Adaptor& a = adl::adaptor_solver();
  ASSERT_EQ(a.rules.size(), 1u);
  ASSERT_EQ(a.rules[0].sequence.size(), 2u);
  EXPECT_EQ(a.rules[0].sequence[0].component, "peel_triangular");
  EXPECT_EQ(a.rules[0].sequence[1].component, "binding_triangular");
  EXPECT_EQ(a.rules[0].sequence[1].args,
            (std::vector<std::string>{"X", "0"}));
}

TEST(AdlBind, SubstitutesFormalEverywhere) {
  adl::Adaptor bound = adl::adaptor_triangular().bind("A");
  EXPECT_EQ(bound.rules[1].sequence[0].args,
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(bound.rules[2].condition, "blank(A).zero = true");
}

TEST(AdlParse, CustomAdaptorRoundTrip) {
  auto parsed = adl::parse_adaptor(R"(
    adaptor Adaptor_Custom(Y):
      |
      | GM_map(Y, Transpose); loop_unroll(Lkkk);
  )");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->name, "Adaptor_Custom");
  EXPECT_EQ(parsed->formal, "Y");
  ASSERT_EQ(parsed->rules.size(), 2u);
  EXPECT_EQ(parsed->rules[1].sequence.size(), 2u);
  // to_string parses back.
  auto again = adl::parse_adaptor(parsed->to_string());
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->rules[1].sequence, parsed->rules[1].sequence);
}

TEST(AdlParse, RejectsGarbage) {
  EXPECT_FALSE(adl::parse_adaptor("not an adaptor").is_ok());
  EXPECT_FALSE(adl::parse_adaptor("adaptor Broken(X)").is_ok());
}

TEST(AdlFind, BuiltinsByName) {
  EXPECT_NE(adl::find_adaptor("Adaptor_Transpose"), nullptr);
  EXPECT_NE(adl::find_adaptor("Adaptor_Solver"), nullptr);
  EXPECT_EQ(adl::find_adaptor("Adaptor_Unknown"), nullptr);
}

}  // namespace
}  // namespace oa
