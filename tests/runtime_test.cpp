// LibraryRuntime tests: dispatch policy (hit / near hit / fallback),
// functional correctness of served answers, graceful degradation on
// mismatched artifacts, and thread safety of the serving path.
#include <gtest/gtest.h>

#include <atomic>

#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "runtime/library_runtime.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace oa {
namespace {

using blas3::Variant;
using libgen::Artifact;
using runtime::DispatchOutcome;
using runtime::LibraryRuntime;

OaOptions quick_options() {
  OaOptions opt;
  opt.tuning_size = 256;
  opt.verify_size = 48;
  return opt;
}

/// One real tuned GEMM-NN artifact per process (generation is the
/// expensive part; every test serves from the same library).
const Artifact& gemm_artifact() {
  static const Artifact artifact = [] {
    libgen::SessionStore::instance().clear();
    OaFramework framework(gpusim::gtx285(), quick_options());
    auto tuned = framework.generate(*blas3::find_variant("GEMM-NN"));
    EXPECT_TRUE(tuned.is_ok()) << tuned.status().to_string();
    return framework.export_library();
  }();
  return artifact;
}

void make_inputs(const Variant& v, uint64_t seed, int64_t n,
                 blas3::Matrix& a, blas3::Matrix& b, blas3::Matrix& c) {
  Rng rng(seed);
  a = blas3::Matrix(n, n);
  b = blas3::Matrix(n, n);
  c = blas3::Matrix(n, n);
  a.fill_random(rng);
  b.fill_random(rng);
  if (v.family == blas3::Family::kTrmm ||
      v.family == blas3::Family::kTrsm ||
      v.family == blas3::Family::kSymm) {
    a.make_triangular(v.uplo);
  }
  if (v.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    a.scale_off_diagonal(1.0f / 16.0f);
  }
}

/// Serve (v, n) and compare against the CPU reference.
void serve_and_check(const LibraryRuntime& rt, const Variant& v,
                     int64_t n, DispatchOutcome expected) {
  blas3::Matrix a, b, c;
  make_inputs(v, 0xBEEF ^ static_cast<uint64_t>(n), n, a, b, c);
  blas3::Matrix ref_b = b, ref_c = c;
  auto outcome = rt.run(v, a, b, &c);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  EXPECT_EQ(*outcome, expected)
      << runtime::outcome_name(*outcome) << " at n=" << n;
  blas3::run_reference(v, a, ref_b, &ref_c);
  const blas3::Matrix& got = v.family == blas3::Family::kTrsm ? b : c;
  const blas3::Matrix& want =
      v.family == blas3::Family::kTrsm ? ref_b : ref_c;
  EXPECT_LE(blas3::max_abs_diff(got, want),
            blas3::accumulation_tolerance(n));
}

TEST(SizeBucket, IsFloorLog2) {
  EXPECT_EQ(LibraryRuntime::size_bucket(1), 0);
  EXPECT_EQ(LibraryRuntime::size_bucket(255), 7);
  EXPECT_EQ(LibraryRuntime::size_bucket(256), 8);
  EXPECT_EQ(LibraryRuntime::size_bucket(511), 8);
  EXPECT_EQ(LibraryRuntime::size_bucket(512), 9);
  EXPECT_EQ(LibraryRuntime::size_bucket(0), 0);
}

TEST(LibraryRuntime, HitServesTheTunedKernelCorrectly) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  ASSERT_TRUE(rt.load_status().is_ok())
      << rt.load_status().to_string();
  ASSERT_EQ(rt.table_size(), 1u);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  // Tuned at 256 -> bucket 8 covers [256, 512).
  serve_and_check(rt, gemm, 256, DispatchOutcome::kHit);
  serve_and_check(rt, gemm, 300, DispatchOutcome::kHit);

  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.recovered_errors, 0u);
  EXPECT_EQ(stats.failed_requests, 0u);
  // The stats struct is a view over the runtime's metrics registry.
  EXPECT_EQ(rt.metrics().counter_value("runtime.requests"), 2u);
  EXPECT_EQ(rt.metrics().histogram("runtime.dispatch_us.hit").count(),
            2u);
  EXPECT_GT(
      rt.metrics().histogram("runtime.dispatch_us.hit").percentile(50),
      0.0);
}

TEST(LibraryRuntime, NearHitServesFromTheNearestBucket) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  serve_and_check(rt, gemm, 64, DispatchOutcome::kNearHit);
  serve_and_check(rt, gemm, 130, DispatchOutcome::kNearHit);
  EXPECT_EQ(rt.stats().near_hits, 2u);
  // Requests above the tuned bucket are near hits too (pure lookup —
  // serving at n=600 is interpreter-priced and slow).
  EXPECT_EQ(rt.dispatch(gemm, 600).outcome, DispatchOutcome::kNearHit);
}

/// The GEMM-NN artifact with the tuned entry (bucket 8, marker 2.0)
/// cloned into buckets 6 and 10: the artifact format does not hash
/// tuned_size/gflops into the candidate fingerprint, so the clones
/// reconstruct fine and give a three-bucket dispatch table whose
/// served entry is identifiable by its gflops marker.
Artifact multi_bucket_artifact() {
  Artifact artifact = gemm_artifact();
  EXPECT_EQ(artifact.entries.size(), 1u);
  artifact.entries[0].gflops = 2.0;
  libgen::ArtifactEntry lo = artifact.entries[0];
  lo.tuned_size = 64;  // bucket 6
  lo.gflops = 1.0;
  libgen::ArtifactEntry hi = artifact.entries[0];
  hi.tuned_size = 1024;  // bucket 10
  hi.gflops = 3.0;
  artifact.entries.push_back(lo);
  artifact.entries.push_back(hi);
  return artifact;
}

TEST(LibraryRuntime, NearHitBucketSelectionEdgeCases) {
  LibraryRuntime rt(gpusim::gtx285(), multi_bucket_artifact());
  ASSERT_EQ(rt.table_size(), 3u);
  const Variant& gemm = *blas3::find_variant("GEMM-NN");

  // Below every registered bucket: clamp to the lowest (6).
  LibraryRuntime::Dispatch below = rt.dispatch(gemm, 2);
  EXPECT_EQ(below.outcome, DispatchOutcome::kNearHit);
  EXPECT_EQ(below.tuned_gflops, 1.0);

  // Above every registered bucket: clamp to the highest (10).
  LibraryRuntime::Dispatch above = rt.dispatch(gemm, 1 << 14);
  EXPECT_EQ(above.outcome, DispatchOutcome::kNearHit);
  EXPECT_EQ(above.tuned_gflops, 3.0);

  // Equidistant between buckets 6 and 8 (want = 7): the tie goes to
  // the lower bucket.
  LibraryRuntime::Dispatch tie_lo = rt.dispatch(gemm, 128);
  EXPECT_EQ(tie_lo.outcome, DispatchOutcome::kNearHit);
  EXPECT_EQ(tie_lo.tuned_gflops, 1.0);

  // Equidistant between buckets 8 and 10 (want = 9): lower again.
  LibraryRuntime::Dispatch tie_mid = rt.dispatch(gemm, 512);
  EXPECT_EQ(tie_mid.outcome, DispatchOutcome::kNearHit);
  EXPECT_EQ(tie_mid.tuned_gflops, 2.0);

  // Strictly nearer wins over the tie rule (want = 9 is gone if the
  // request sits in a registered bucket).
  EXPECT_EQ(rt.dispatch(gemm, 300).outcome, DispatchOutcome::kHit);
}

TEST(LibraryRuntime, DispatchSizeUsesTrueFamilyDims) {
  const Variant& gemm_nn = *blas3::find_variant("GEMM-NN");
  const Variant& gemm_tn = *blas3::find_variant("GEMM-TN");
  const Variant& symm = *blas3::find_variant("SYMM-LL");
  // Tall GEMM: M dominates but only shows in a and c — the old
  // max(b.rows, b.cols) dispatch would have used 8.
  blas3::Matrix a(300, 8), b(8, 8), c(300, 8);
  EXPECT_EQ(LibraryRuntime::dispatch_size(gemm_nn, a, b, &c), 300);
  // Deep GEMM: K only shows in the operand shapes, transposed A holds
  // it in rows.
  blas3::Matrix at(500, 8), b2(500, 8), c2(8, 8);
  EXPECT_EQ(LibraryRuntime::dispatch_size(gemm_tn, at, b2, &c2), 500);
  // SYRK never reads b, so a stray b shape must not steer dispatch.
  const auto& exts = blas3::extension_variants();
  if (!exts.empty()) {
    blas3::Matrix sa(64, 32), sb(4096, 4096), sc(64, 64);
    EXPECT_EQ(LibraryRuntime::dispatch_size(exts.front(), sa, sb, &sc),
              64);
  }
  // Side-structured families: b carries both true dims.
  blas3::Matrix ta(96, 96), tb(96, 200), tc(96, 200);
  EXPECT_EQ(LibraryRuntime::dispatch_size(symm, ta, tb, &tc), 200);
}

TEST(LibraryRuntime, FailedRequestIsNotReportedAsRecovered) {
  runtime::RuntimeOptions options;
  options.baseline_fallback = false;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), options);
  // SYMM-LL is not in the artifact and needs an output matrix: with
  // the baseline disabled there is no path left.
  blas3::Matrix a, b, c;
  const Variant& symm = *blas3::find_variant("SYMM-LL");
  make_inputs(symm, 1, 32, a, b, c);
  auto outcome = rt.run(symm, a, b, nullptr);
  EXPECT_FALSE(outcome.is_ok());
  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.recovered_errors, 0u);
  EXPECT_EQ(
      rt.metrics().histogram("runtime.dispatch_us.failed").count(), 1u);
}

TEST(LibraryRuntime, MissFallsBackToTheBaselineCorrectly) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  // Routines the artifact does not cover.
  serve_and_check(rt, *blas3::find_variant("GEMM-NT"), 96,
                  DispatchOutcome::kFallbackBaseline);
  serve_and_check(rt, *blas3::find_variant("SYMM-LL"), 96,
                  DispatchOutcome::kFallbackBaseline);
  serve_and_check(rt, *blas3::find_variant("TRSM-LL-N"), 96,
                  DispatchOutcome::kFallbackBaseline);
  EXPECT_EQ(rt.stats().baseline_fallbacks, 3u);
}

TEST(LibraryRuntime, ReferenceFallbackWhenBaselineDisabled) {
  runtime::RuntimeOptions options;
  options.baseline_fallback = false;
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact(), options);
  serve_and_check(rt, *blas3::find_variant("SYMM-LU"), 64,
                  DispatchOutcome::kFallbackReference);
  EXPECT_EQ(rt.stats().reference_fallbacks, 1u);
}

TEST(LibraryRuntime, MismatchedDeviceArtifactDegradesGracefully) {
  // A gtx285 artifact served on fermi: nothing crashes, the table is
  // empty, load_status explains why, every request falls back and is
  // still answered correctly.
  LibraryRuntime rt(gpusim::fermi_c2050(), gemm_artifact());
  EXPECT_FALSE(rt.load_status().is_ok());
  EXPECT_EQ(rt.table_size(), 0u);
  serve_and_check(rt, *blas3::find_variant("GEMM-NN"), 96,
                  DispatchOutcome::kFallbackBaseline);
}

TEST(LibraryRuntime, DispatchIsAPureLookup) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  LibraryRuntime::Dispatch d = rt.dispatch(gemm, 256);
  EXPECT_EQ(d.outcome, DispatchOutcome::kHit);
  ASSERT_NE(d.program, nullptr);
  EXPECT_GT(d.tuned_gflops, 0.0);
  LibraryRuntime::Dispatch miss =
      rt.dispatch(*blas3::find_variant("TRMM-LL-N"), 256);
  EXPECT_EQ(miss.program, nullptr);
  // Lookups never touch the serving counters.
  EXPECT_EQ(rt.stats().requests, 0u);
}

// Fuzzed request shapes: degenerate dims (n = 1), power-of-two bucket
// boundaries (63/64/65, 255/256/257), primes, and mixed variants
// served concurrently. The invariants under fire: every request is
// answered correctly and counted exactly once (requests = hits +
// near hits + fallbacks + failures), each per-outcome latency
// histogram count equals its counter (one source of truth), and
// recovered_errors stays zero when every path serves cleanly.
TEST(LibraryRuntime, FuzzedRequestShapesKeepCountersConsistent) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  const std::vector<int64_t> sizes = {1,  2,   3,   31,  63,  64,  65,
                                      97, 127, 128, 129, 255, 256, 257};
  const std::vector<const Variant*> variants = {
      blas3::find_variant("GEMM-NN"), blas3::find_variant("GEMM-TT"),
      blas3::find_variant("SYMM-LL"), blas3::find_variant("TRMM-LL-N"),
      blas3::find_variant("TRSM-RU-T")};
  constexpr size_t kRequests = 40;
  std::atomic<int> wrong{0};
  ThreadPool::shared().parallel_for(kRequests, [&](size_t i) {
    Rng rng(0xF00D + i);  // shape is a function of i, not of schedule
    const Variant& v = *variants[i % variants.size()];
    const int64_t n =
        sizes[static_cast<size_t>(rng.next_below(sizes.size()))];
    blas3::Matrix a, b, c;
    make_inputs(v, i, n, a, b, c);
    blas3::Matrix ref_b = b, ref_c = c;
    auto outcome = rt.run(v, a, b, &c);
    if (!outcome.is_ok()) {
      ++wrong;
      return;
    }
    blas3::run_reference(v, a, ref_b, &ref_c);
    const blas3::Matrix& got = v.family == blas3::Family::kTrsm ? b : c;
    const blas3::Matrix& want =
        v.family == blas3::Family::kTrsm ? ref_b : ref_c;
    if (blas3::max_abs_diff(got, want) >
        blas3::accumulation_tolerance(n)) {
      ++wrong;
    }
  });
  EXPECT_EQ(wrong.load(), 0);

  const runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.requests, stats.hits + stats.near_hits +
                                stats.baseline_fallbacks +
                                stats.reference_fallbacks +
                                stats.failed_requests);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.recovered_errors, 0u);
  EXPECT_EQ(rt.metrics().histogram("runtime.dispatch_us.hit").count(),
            stats.hits);
  EXPECT_EQ(
      rt.metrics().histogram("runtime.dispatch_us.near_hit").count(),
      stats.near_hits);
  EXPECT_EQ(rt.metrics()
                .histogram("runtime.dispatch_us.baseline_fallback")
                .count(),
            stats.baseline_fallbacks);
  EXPECT_EQ(rt.metrics()
                .histogram("runtime.dispatch_us.reference_fallback")
                .count(),
            stats.reference_fallbacks);
  EXPECT_EQ(rt.metrics().histogram("runtime.dispatch_us.failed").count(),
            stats.failed_requests);
}

TEST(LibraryRuntime, ConcurrentServingIsSafeAndCounted) {
  LibraryRuntime rt(gpusim::gtx285(), gemm_artifact());
  const Variant& gemm = *blas3::find_variant("GEMM-NN");
  const Variant& symm = *blas3::find_variant("SYMM-LL");
  constexpr size_t kRequests = 12;
  std::atomic<int> failures{0};
  ThreadPool::shared().parallel_for(
      kRequests, [&](size_t i) {
        // A mix of hits (GEMM-NN at its tuned bucket), near hits and
        // baseline fallbacks, racing on the same dispatch table.
        const Variant& v = i % 3 == 2 ? symm : gemm;
        const int64_t n = i % 2 == 0 ? 256 : 72;
        blas3::Matrix a, b, c;
        make_inputs(v, i, n, a, b, c);
        blas3::Matrix ref_b = b, ref_c = c;
        auto outcome = rt.run(v, a, b, &c);
        if (!outcome.is_ok()) {
          ++failures;
          return;
        }
        blas3::run_reference(v, a, ref_b, &ref_c);
        if (blas3::max_abs_diff(c, ref_c) >
            blas3::accumulation_tolerance(n)) {
          ++failures;
        }
        rt.dispatch(v, n);  // racing pure lookups too
      });
  EXPECT_EQ(failures.load(), 0);
  runtime::DispatchStats stats = rt.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.hits + stats.near_hits + stats.baseline_fallbacks +
                stats.reference_fallbacks,
            kRequests);
  EXPECT_EQ(stats.hits, 4u);               // GEMM-NN at 256
  EXPECT_EQ(stats.near_hits, 4u);          // GEMM-NN at 72
  EXPECT_EQ(stats.baseline_fallbacks, 4u); // SYMM-LL
  rt.reset_stats();
  EXPECT_EQ(rt.stats().requests, 0u);
}

}  // namespace
}  // namespace oa
