#include <gtest/gtest.h>

#include "blas3/reference.hpp"
#include "oa/oa.hpp"
#include "support/rng.hpp"

namespace oa {
namespace {

using blas3::find_variant;
using blas3::Variant;

OaOptions quick_options() {
  OaOptions opt;
  opt.tuning_size = 256;
  opt.verify_size = 48;
  return opt;
}

// ----------------------------------------------------------- adaptors

TEST(AdaptorsFor, GemmNnNeedsNone) {
  EXPECT_TRUE(OaFramework::adaptors_for(*find_variant("GEMM-NN")).empty());
}

TEST(AdaptorsFor, GemmTransposesGetTransposeAdaptors) {
  auto tn = OaFramework::adaptors_for(*find_variant("GEMM-TN"));
  ASSERT_EQ(tn.size(), 1u);
  EXPECT_EQ(tn[0].name, "Adaptor_Transpose");
  EXPECT_EQ(tn[0].formal, "A");
  auto tt = OaFramework::adaptors_for(*find_variant("GEMM-TT"));
  ASSERT_EQ(tt.size(), 2u);
  EXPECT_EQ(tt[1].formal, "B");
}

TEST(AdaptorsFor, FamiliesMapToTheirAdaptors) {
  EXPECT_EQ(OaFramework::adaptors_for(*find_variant("SYMM-RU"))[0].name,
            "Adaptor_Symmetry");
  EXPECT_EQ(OaFramework::adaptors_for(*find_variant("TRMM-LU-T"))[0].name,
            "Adaptor_Triangular");
  EXPECT_EQ(OaFramework::adaptors_for(*find_variant("TRSM-RL-N"))[0].name,
            "Adaptor_Solver");
}

// --------------------------------------------------------- candidates

TEST(CandidatesFor, EveryVariantHasAtLeastOne) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  for (const Variant& v : blas3::all_variants()) {
    auto candidates = framework.candidates_for(v);
    ASSERT_TRUE(candidates.is_ok())
        << v.name() << ": " << candidates.status().to_string();
    EXPECT_GE(candidates->size(), 1u) << v.name();
  }
}

TEST(CandidatesFor, TrsmMemoryDeclarationsRetargetedToB) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  auto candidates = framework.candidates_for(*find_variant("TRSM-LL-N"));
  ASSERT_TRUE(candidates.is_ok());
  for (const auto& c : *candidates) {
    for (const auto& inv : c.script.invocations) {
      if (inv.component == "reg_alloc") {
        EXPECT_EQ(inv.args[0], "B");  // TRSM has no C
      }
    }
  }
}

// -------------------------------------------------- generation (E2E)

TEST(Generate, GemmNnEndToEnd) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  auto tuned = framework.generate(*find_variant("GEMM-NN"));
  ASSERT_TRUE(tuned.is_ok()) << tuned.status().to_string();
  EXPECT_GT(tuned->gflops, 0.0);

  // Second call hits the cache (same object).
  auto again = framework.generate(*find_variant("GEMM-NN"));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->params.to_string(), tuned->params.to_string());
}

TEST(Generate, RunProducesCorrectResults) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  const Variant v = *find_variant("GEMM-NN");
  auto tuned = framework.generate(v);
  ASSERT_TRUE(tuned.is_ok());

  const int64_t n = 64;
  Rng rng(7);
  blas3::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(rng);
  b.fill_random(rng);
  ASSERT_TRUE(framework.run(tuned->program, v, a, b, &c).is_ok());

  blas3::Matrix ref_b = b;
  blas3::Matrix ref_c(n, n);
  blas3::run_reference(v, a, ref_b, &ref_c);
  EXPECT_LT(blas3::max_abs_diff(c, ref_c),
            blas3::accumulation_tolerance(n));
}

TEST(Generate, SymmBeatsBaselineOnGtx285) {
  // The headline experiment in miniature: the generated SYMM clearly
  // outperforms the CUBLAS-like baseline.
  OaFramework framework(gpusim::gtx285(), quick_options());
  const Variant v = *find_variant("SYMM-LL");
  auto tuned = framework.generate(v);
  ASSERT_TRUE(tuned.is_ok()) << tuned.status().to_string();
  auto oa_gflops = framework.measure_gflops(*tuned, v, 1024);
  ASSERT_TRUE(oa_gflops.is_ok());
  auto base = baseline::cublas_like(v, framework.device());
  ASSERT_TRUE(base.is_ok());
  auto base_gflops = framework.measure_baseline_gflops(*base, v, 1024);
  ASSERT_TRUE(base_gflops.is_ok());
  EXPECT_GT(*oa_gflops, *base_gflops * 1.5);
}

TEST(Generate, SymmBestScriptUsesGmMapOrFission) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  auto tuned = framework.generate(*find_variant("SYMM-LL"));
  ASSERT_TRUE(tuned.is_ok());
  bool has_symmetry_handling = false;
  for (const auto& inv : tuned->candidate.script.invocations) {
    if (inv.component == "GM_map" || inv.component == "format_iteration") {
      has_symmetry_handling = true;
    }
  }
  EXPECT_TRUE(has_symmetry_handling);
}

TEST(Profile, MainKernelCountersPerSm) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  const Variant v = *find_variant("GEMM-NN");
  auto tuned = framework.generate(v);
  ASSERT_TRUE(tuned.is_ok());
  auto prof = framework.profile(tuned->program, v, 512);
  ASSERT_TRUE(prof.is_ok()) << prof.status().to_string();
  EXPECT_GT(prof->instructions, 0);
  EXPECT_GT(prof->flops, 0);
}

}  // namespace
}  // namespace oa
