#include <gtest/gtest.h>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"
#include "support/rng.hpp"

namespace oa::blas3 {
namespace {

// ---------------------------------------------------------------- catalog

TEST(Catalog, Has24PaperVariantsAnd48Total) {
  EXPECT_EQ(paper_variants().size(), 24u);
  EXPECT_EQ(all_variants().size(), 48u);
  // The first 24 are the paper's f32 family, then the same shapes at f64.
  for (size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(all_variants()[i].precision, Precision::kF32);
    EXPECT_EQ(all_variants()[i + 24].precision, Precision::kF64);
    EXPECT_EQ(all_variants()[i + 24].name(),
              "D" + all_variants()[i].name());
  }
}

TEST(Catalog, NamesMatchPaperStyle) {
  std::vector<std::string> names;
  for (const auto& v : all_variants()) names.push_back(v.name());
  EXPECT_NE(std::find(names.begin(), names.end(), "GEMM-NN"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "GEMM-TN"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "SYMM-LL"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "TRMM-LL-N"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "TRSM-LL-N"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "TRSM-RU-T"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "DGEMM-NN"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "DTRSM-LL-N"),
            names.end());
}

TEST(Catalog, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& v : all_variants()) {
    EXPECT_TRUE(names.insert(v.name()).second) << v.name();
  }
}

TEST(Catalog, FindVariantRoundTrips) {
  for (const auto& v : all_variants()) {
    const Variant* found = find_variant(v.name());
    ASSERT_NE(found, nullptr) << v.name();
    EXPECT_EQ(*found, v);
  }
  EXPECT_EQ(find_variant("GEMM-XX"), nullptr);
}

TEST(Catalog, NominalFlops) {
  Variant gemm = *find_variant("GEMM-NN");
  EXPECT_DOUBLE_EQ(nominal_flops(gemm, 64, 32, 16), 2.0 * 64 * 32 * 16);
  Variant symm = *find_variant("SYMM-LL");
  EXPECT_DOUBLE_EQ(nominal_flops(symm, 64, 32, 0), 2.0 * 64 * 32 * 64);
  Variant trsm = *find_variant("TRSM-RL-N");
  EXPECT_DOUBLE_EQ(nominal_flops(trsm, 64, 32, 0), 64.0 * 32 * 32);
}

// ----------------------------------------------------------------- matrix

TEST(MatrixHelper, TriangularZeroesBlank) {
  Rng rng(1);
  Matrix a(8, 8);
  a.fill_random(rng);
  a.make_triangular(Uplo::kLower);
  for (int64_t c = 0; c < 8; ++c) {
    for (int64_t r = 0; r < c; ++r) EXPECT_EQ(a.at(r, c), 0.0f);
  }
  EXPECT_NE(a.at(5, 2), 0.0f);
}

TEST(MatrixHelper, SymmetricMirror) {
  Rng rng(2);
  Matrix a(6, 6);
  a.fill_random(rng);
  a.make_symmetric_from(Uplo::kLower);
  for (int64_t c = 0; c < 6; ++c) {
    for (int64_t r = 0; r < 6; ++r) EXPECT_EQ(a.at(r, c), a.at(c, r));
  }
}

TEST(MatrixHelper, UnitDiagonal) {
  Matrix a(4, 4);
  a.set_unit_diagonal();
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(a.at(i, i), 1.0f);
}

TEST(MatrixHelper, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  b.set(1, 0, 0.5);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
}

TEST(MatrixHelper, F32StorageRoundsOnSet) {
  Matrix s(1, 1, Precision::kF32);
  Matrix d(1, 1, Precision::kF64);
  const double v = 0.1;  // not representable in float
  s.set(0, 0, v);
  d.set(0, 0, v);
  EXPECT_EQ(s.at(0, 0), static_cast<double>(static_cast<float>(v)));
  EXPECT_EQ(d.at(0, 0), v);
  EXPECT_NE(s.at(0, 0), d.at(0, 0));
}

// ------------------------------------------------------------- references

constexpr int64_t kM = 13, kN = 9;

struct Problem {
  Matrix a, b, c;
};

Problem make_problem(const Variant& v, uint64_t seed) {
  Rng rng(seed);
  const int64_t dim = v.side == Side::kLeft ? kM : kN;
  Problem p;
  switch (v.family) {
    case Family::kGemm: {
      const int64_t kk = 7;
      p.a = Matrix(v.trans_a == Trans::kN ? kM : kk,
                   v.trans_a == Trans::kN ? kk : kM);
      p.b = Matrix(v.trans_b == Trans::kN ? kk : kN,
                   v.trans_b == Trans::kN ? kN : kk);
      break;
    }
    default:
      p.a = Matrix(dim, dim);
      p.b = Matrix(kM, kN);
      break;
  }
  p.a.fill_random(rng);
  p.b.fill_random(rng);
  if (v.family == Family::kTrmm || v.family == Family::kTrsm) {
    p.a.make_triangular(v.uplo);
  }
  if (v.family == Family::kTrsm) p.a.set_unit_diagonal();
  p.c = Matrix(kM, kN);
  return p;
}

TEST(Reference, GemmNnIdentity) {
  // A = I  =>  C = B.
  Variant v = *find_variant("GEMM-NN");
  Matrix a(4, 4);
  a.set_unit_diagonal();
  Rng rng(3);
  Matrix b(4, 5);
  b.fill_random(rng);
  Matrix c(4, 5);
  run_reference(v, a, b, &c);
  EXPECT_LT(max_abs_diff(c, b), 1e-6f);
}

TEST(Reference, GemmTransposesAgree) {
  // GEMM-TN with A' = A^T equals GEMM-NN with A.
  Rng rng(4);
  Matrix a(kM, 7), b(7, kN);
  a.fill_random(rng);
  b.fill_random(rng);
  Matrix at(7, kM);
  for (int64_t r = 0; r < kM; ++r) {
    for (int64_t c = 0; c < 7; ++c) at.set(c, r, a.at(r, c));
  }
  Matrix c1(kM, kN), c2(kM, kN);
  run_reference(*find_variant("GEMM-NN"), a, b, &c1);
  run_reference(*find_variant("GEMM-TN"), at, b, &c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-5f);
}

TEST(Reference, GemmNtAgrees) {
  Rng rng(5);
  Matrix a(kM, 7), b(7, kN);
  a.fill_random(rng);
  b.fill_random(rng);
  Matrix bt(kN, 7);
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t c = 0; c < kN; ++c) bt.set(c, r, b.at(r, c));
  }
  Matrix c1(kM, kN), c2(kM, kN);
  run_reference(*find_variant("GEMM-NN"), a, b, &c1);
  run_reference(*find_variant("GEMM-NT"), a, bt, &c2);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-5f);
}

class SymmVsGemm : public ::testing::TestWithParam<const char*> {};

TEST_P(SymmVsGemm, MatchesExplicitSymmetricGemm) {
  const Variant v = *find_variant(GetParam());
  Problem p = make_problem(v, 10);
  // Explicitly symmetrize A and compute with GEMM.
  Matrix full = p.a;
  full.make_symmetric_from(v.uplo);
  Matrix expected(kM, kN);
  if (v.side == Side::kLeft) {
    Variant g = *find_variant("GEMM-NN");
    run_reference(g, full, p.b, &expected);
  } else {
    Variant g = *find_variant("GEMM-NN");
    run_reference(g, p.b, full, &expected);
  }
  run_reference(v, p.a, p.b, &p.c);
  EXPECT_LT(max_abs_diff(p.c, expected), accumulation_tolerance(kM + kN));
}

INSTANTIATE_TEST_SUITE_P(AllSymm, SymmVsGemm,
                         ::testing::Values("SYMM-LL", "SYMM-LU", "SYMM-RL",
                                           "SYMM-RU"));

class TrmmVsGemm : public ::testing::TestWithParam<const char*> {};

TEST_P(TrmmVsGemm, MatchesGemmOnTriangularMatrix) {
  const Variant v = *find_variant(GetParam());
  Problem p = make_problem(v, 20);
  // A is already zeroed outside its triangle, so op(A)*B via GEMM is the
  // same computation.
  Matrix opa = p.a;
  if (v.trans == Trans::kT) {
    const int64_t d = p.a.rows();
    Matrix t(d, d);
    for (int64_t r = 0; r < d; ++r) {
      for (int64_t c = 0; c < d; ++c) t.set(c, r, p.a.at(r, c));
    }
    opa = t;
  }
  Matrix expected(kM, kN);
  Variant g = *find_variant("GEMM-NN");
  if (v.side == Side::kLeft) {
    run_reference(g, opa, p.b, &expected);
  } else {
    run_reference(g, p.b, opa, &expected);
  }
  run_reference(v, p.a, p.b, &p.c);
  EXPECT_LT(max_abs_diff(p.c, expected), accumulation_tolerance(kM + kN));
}

INSTANTIATE_TEST_SUITE_P(AllTrmm, TrmmVsGemm,
                         ::testing::Values("TRMM-LL-N", "TRMM-LL-T",
                                           "TRMM-LU-N", "TRMM-LU-T",
                                           "TRMM-RL-N", "TRMM-RL-T",
                                           "TRMM-RU-N", "TRMM-RU-T"));

class TrsmInverse : public ::testing::TestWithParam<const char*> {};

TEST_P(TrsmInverse, SolveThenMultiplyRecoversRhs) {
  const Variant v = *find_variant(GetParam());
  Problem p = make_problem(v, 30);
  const Matrix b0 = p.b;
  run_reference(v, p.a, p.b, nullptr);  // p.b now holds X
  // op(A) * X (or X * op(A)) must equal b0. Unit-diagonal A: TRMM with
  // the explicit unit diagonal stored gives the full product.
  Variant mult = v;
  mult.family = Family::kTrmm;
  Matrix recovered(kM, kN);
  run_reference(mult, p.a, p.b, &recovered);
  EXPECT_LT(max_abs_diff(recovered, b0), accumulation_tolerance(kM + kN));
}

INSTANTIATE_TEST_SUITE_P(AllTrsm, TrsmInverse,
                         ::testing::Values("TRSM-LL-N", "TRSM-LL-T",
                                           "TRSM-LU-N", "TRSM-LU-T",
                                           "TRSM-RL-N", "TRSM-RL-T",
                                           "TRSM-RU-N", "TRSM-RU-T"));

// -------------------------------------------------------------- source IR

class SourceIr : public ::testing::TestWithParam<Variant> {};

TEST_P(SourceIr, ValidatesStructurally) {
  ir::Program p = make_source_program(GetParam());
  oa::Status s = ir::validate(p);
  EXPECT_TRUE(s.is_ok()) << GetParam().name() << ": " << s.to_string();
  EXPECT_EQ(p.kernels.size(), 1u);
  EXPECT_NE(p.main_kernel().find("Li"), nullptr);
  EXPECT_NE(p.main_kernel().find("Lj"), nullptr);
  EXPECT_NE(p.main_kernel().find("Lk"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    All24, SourceIr, ::testing::ValuesIn(all_variants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = info.param.name();
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(SourceIr, GemmNnMatchesPaperListing) {
  ir::Program p = make_source_program(*find_variant("GEMM-NN"));
  std::string s = ir::to_string(p);
  EXPECT_NE(s.find("Li: for (i = 0; i < M; i++)"), std::string::npos) << s;
  EXPECT_NE(s.find("Lk: for (k = 0; k < K; k++)"), std::string::npos);
  EXPECT_NE(s.find("C[i][j] += A[i][k] * B[k][j];"), std::string::npos);
}

TEST(SourceIr, SymmLlHasRealShadowAndDiagonal) {
  ir::Program p = make_source_program(*find_variant("SYMM-LL"));
  std::string s = ir::to_string(p);
  EXPECT_NE(s.find("C[i][j] += A[i][k] * B[k][j];"), std::string::npos) << s;
  EXPECT_NE(s.find("C[k][j] += A[i][k] * B[i][j];"), std::string::npos);
  EXPECT_NE(s.find("C[i][j] += A[i][i] * B[i][j];"), std::string::npos);
}

TEST(SourceIr, TrmmLlNHasTriangularBound) {
  ir::Program p = make_source_program(*find_variant("TRMM-LL-N"));
  const ir::Node* lk = p.main_kernel().find("Lk");
  ASSERT_NE(lk, nullptr);
  // k <= i  ==>  ub = i + 1.
  EXPECT_TRUE(lk->ub.is_single());
  EXPECT_EQ(lk->ub.terms()[0].coeff("i"), 1);
  EXPECT_EQ(lk->ub.terms()[0].constant_term(), 1);
}

TEST(SourceIr, TrsmLlNMatchesPaperListing) {
  ir::Program p = make_source_program(*find_variant("TRSM-LL-N"));
  std::string s = ir::to_string(p);
  EXPECT_NE(s.find("B[i][j] -= A[i][k] * B[k][j];"), std::string::npos) << s;
}

TEST(SourceIr, TrsmBackwardVariantsUseReversedSubscripts) {
  ir::Program p = make_source_program(*find_variant("TRSM-LU-N"));
  std::string s = ir::to_string(p);
  // Backward substitution: row index M - 1 - i.
  EXPECT_NE(s.find("M - i - 1"), std::string::npos) << s;
}

TEST(SourceIr, OutputArray) {
  EXPECT_STREQ(output_array(*find_variant("GEMM-NN")), "C");
  EXPECT_STREQ(output_array(*find_variant("TRSM-LL-N")), "B");
}

}  // namespace
}  // namespace oa::blas3
