// Library-artifact tests: EPOD text serialization round trips, the
// on-disk artifact format (bit-exact round trips, corruption detection)
// and the warm-start path through OaFramework::generate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "blas3/source_ir.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace oa {
namespace {

using blas3::Variant;
using libgen::Artifact;
using libgen::ArtifactEntry;
using libgen::SessionStore;

OaOptions quick_options() {
  OaOptions opt;
  opt.tuning_size = 256;
  opt.verify_size = 48;
  return opt;
}

// ------------------------------------------- EPOD text serialization

TEST(EpodText, RoundTripPreservesFingerprintAndRoutine) {
  const epod::Script& script = epod::gemm_nn_script();
  const std::string text = epod::to_text(script);
  auto parsed = epod::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->fingerprint(), script.fingerprint());
  EXPECT_EQ(parsed->routine, script.routine);
  EXPECT_EQ(parsed->invocations.size(), script.invocations.size());
  // A second round trip is byte-identical (the format is canonical).
  EXPECT_EQ(epod::to_text(*parsed), text);
}

TEST(EpodText, RoundTripsEveryComposedCandidate) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  for (const Variant& v : blas3::all_variants()) {
    auto candidates = framework.candidates_for(v);
    ASSERT_TRUE(candidates.is_ok()) << v.name();
    for (const composer::Candidate& c : *candidates) {
      auto parsed = epod::parse(epod::to_text(c.script));
      ASSERT_TRUE(parsed.is_ok())
          << v.name() << ": " << parsed.status().to_string();
      EXPECT_EQ(parsed->fingerprint(), c.script.fingerprint()) << v.name();
    }
  }
}

TEST(EpodText, ParseErrorsCarryLineAndColumn) {
  // Missing argument after the comma on line 2.
  auto missing = epod::parse("loop_unroll(Lk);\nloop_tiling(Li,;\n");
  ASSERT_FALSE(missing.is_ok());
  EXPECT_NE(missing.status().message().find("line 2"), std::string::npos)
      << missing.status().to_string();

  auto unknown = epod::parse("no_such_component(Li);");
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_NE(unknown.status().message().find("line 1, col 1"),
            std::string::npos)
      << unknown.status().to_string();

  auto unterminated = epod::parse("loop_unroll(Lk)");
  ASSERT_FALSE(unterminated.is_ok());
  EXPECT_NE(unterminated.status().message().find("line 1"),
            std::string::npos)
      << unterminated.status().to_string();
}

TEST(EpodText, ParseScriptAliasStillWorks) {
  auto parsed = epod::parse_script("loop_unroll(Lk);");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->invocations.size(), 1u);
}

// ------------------------------------------------ artifact round trip

/// A synthetic but structurally real entry: the first composed
/// candidate with its actual applied mask and deterministic fake
/// measurements (tuning would cost minutes across 24 x 3).
ArtifactEntry synthetic_entry(OaFramework& framework, const Variant& v,
                              size_t salt) {
  auto candidates = framework.candidates_for(v);
  EXPECT_TRUE(candidates.is_ok()) << v.name();
  const composer::Candidate& cand = candidates->front();
  engine::Evaluation eval;
  eval.candidate = cand;
  eval.params.k_tile = 8;  // off-default, so params round trip matters
  ir::Program program = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params = eval.params;
  auto mask = epod::apply_script_lenient(program, cand.script, ctx);
  EXPECT_TRUE(mask.is_ok()) << v.name();
  eval.applied_mask = *mask;
  eval.program = std::move(program);
  // Deterministic non-round values exercise the hexfloat encoding.
  eval.gflops = 100.0 + static_cast<double>(salt) * 0.1257;
  eval.seconds = 1e-4 / static_cast<double>(salt + 1);
  return libgen::make_entry(v, eval, 512);
}

TEST(Artifact, RoundTripsAllVariantsOnAllDevices) {
  for (const gpusim::DeviceModel* device :
       {&gpusim::geforce_9800(), &gpusim::gtx285(),
        &gpusim::fermi_c2050()}) {
    OaFramework framework(*device, quick_options());
    Artifact artifact;
    artifact.device = device->name;
    artifact.device_fp = libgen::device_fingerprint(*device);
    artifact.generator = "libgen_test";
    size_t salt = 0;
    for (const Variant& v : blas3::all_variants()) {
      artifact.entries.push_back(synthetic_entry(framework, v, salt++));
    }
    ASSERT_EQ(artifact.entries.size(), 48u);

    auto parsed = libgen::parse(libgen::to_text(artifact));
    ASSERT_TRUE(parsed.is_ok())
        << device->name << ": " << parsed.status().to_string();
    EXPECT_EQ(parsed->device, artifact.device);
    EXPECT_EQ(parsed->device_fp, artifact.device_fp);
    EXPECT_EQ(parsed->generator, artifact.generator);
    ASSERT_EQ(parsed->entries.size(), artifact.entries.size());
    for (size_t i = 0; i < artifact.entries.size(); ++i) {
      const ArtifactEntry& want = artifact.entries[i];
      const ArtifactEntry& got = parsed->entries[i];
      SCOPED_TRACE(want.variant);
      EXPECT_EQ(got.variant, want.variant);
      EXPECT_EQ(epod::to_text(got.script), epod::to_text(want.script));
      EXPECT_EQ(got.script_fingerprint, want.script_fingerprint);
      EXPECT_EQ(got.candidate_fingerprint, want.candidate_fingerprint);
      EXPECT_EQ(got.params_fingerprint, want.params_fingerprint);
      EXPECT_EQ(got.params.fingerprint(), want.params.fingerprint());
      EXPECT_EQ(got.applied_mask, want.applied_mask);
      EXPECT_EQ(got.conditions, want.conditions);
      EXPECT_EQ(got.tuned_size, want.tuned_size);
      // Bit-identical doubles, not approximately equal.
      EXPECT_EQ(got.gflops, want.gflops);
      EXPECT_EQ(got.seconds, want.seconds);
      EXPECT_EQ(got.content_hash(), want.content_hash());
    }
  }
}

TEST(Artifact, SaveLoadRoundTripsThroughDisk) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  Artifact artifact;
  artifact.device = gpusim::gtx285().name;
  artifact.device_fp = libgen::device_fingerprint(gpusim::gtx285());
  artifact.generator = "libgen_test";
  artifact.entries.push_back(
      synthetic_entry(framework, *blas3::find_variant("SYMM-LL"), 3));
  const std::string path =
      testing::TempDir() + "/libgen_test_roundtrip.oalib";
  ASSERT_TRUE(libgen::save(artifact, path).is_ok());
  auto loaded = libgen::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->entries[0].content_hash(),
            artifact.entries[0].content_hash());
  std::remove(path.c_str());
}

// --------------------------------------------- corruption and errors

Artifact one_entry_artifact() {
  OaFramework framework(gpusim::gtx285(), quick_options());
  Artifact artifact;
  artifact.device = gpusim::gtx285().name;
  artifact.device_fp = libgen::device_fingerprint(gpusim::gtx285());
  artifact.generator = "libgen_test";
  artifact.entries.push_back(
      synthetic_entry(framework, *blas3::find_variant("GEMM-NN"), 1));
  return artifact;
}

TEST(ArtifactCorruption, TruncationIsAStatusError) {
  const std::string text = libgen::to_text(one_entry_artifact());
  // Cut inside the entry, before the trailer — on a line boundary, so
  // the parser runs out of lines rather than hitting a half-written
  // value (that case is SeededByteMutationsNeverCrash's job).
  for (size_t keep : {text.size() / 3, text.size() / 2}) {
    const size_t cut = text.rfind('\n', keep) + 1;
    auto parsed = libgen::parse(text.substr(0, cut));
    ASSERT_FALSE(parsed.is_ok());
    EXPECT_NE(parsed.status().message().find("truncated"),
              std::string::npos)
        << parsed.status().to_string();
  }
}

TEST(ArtifactCorruption, MissingTrailerIsAStatusError) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t trailer = text.rfind("end 1");
  ASSERT_NE(trailer, std::string::npos);
  auto parsed = libgen::parse(text.substr(0, trailer));
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("truncated"),
            std::string::npos);
}

TEST(ArtifactCorruption, FlippedByteFailsTheContentHash) {
  std::string text = libgen::to_text(one_entry_artifact());
  // Corrupt the authoritative hexfloat of the gflops line.
  const size_t pos = text.find("gflops 0x1.");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 11] = text[pos + 11] == '2' ? '3' : '2';
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("hash"), std::string::npos)
      << parsed.status().to_string();
}

TEST(ArtifactCorruption, EditedScriptTextFailsTheFingerprintCheck) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t pos = text.find("| loop_unroll");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "| reg_alloc(C");
  auto parsed = libgen::parse(text);
  // Either the fingerprint comparison or the content hash must object —
  // a silently different library is the one unacceptable outcome.
  ASSERT_FALSE(parsed.is_ok());
}

TEST(ArtifactCorruption, UnsupportedVersionIsRejected) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t pos = text.find("oablas-artifact 4");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 17, "oablas-artifact 99");
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos)
      << parsed.status().to_string();
}

TEST(ArtifactCorruption, GarbageIsAStatusErrorNotACrash) {
  for (const char* garbage :
       {"", "not an artifact\n", "oablas-artifact one\n",
        "oablas-artifact 1\ndevice\n"}) {
    auto parsed = libgen::parse(garbage);
    EXPECT_FALSE(parsed.is_ok());
  }
}

// oacheck mutation finding: an entry whose fields all agree with the
// content hash can still carry parameter values no tuner run would
// emit — threads_y = 0 used to survive parse and divide by zero in
// thread_extent_y() at dispatch time.
TEST(ArtifactCorruption, InsaneTuningParamsAreRejected) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t pos = text.find("\nparams ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = text.find('\n', pos + 1);
  text.replace(pos, eol - pos, "\nparams 16 16 0 4 8 1");
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("tuning params"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ArtifactCorruption, NonPositiveTunedSizeIsRejected) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t pos = text.find("tuned_size 512");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "tuned_size 0");
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("tuned_size"),
            std::string::npos)
      << parsed.status().to_string();
}

// Bounded in-process version of `oacheck --check mutation` for the
// artifact reader: seeded byte flips, truncations, and duplicated
// spans. Every outcome must be a Status — never a crash, throw, or
// sanitizer report. Silent acceptance is fine only for mutations the
// content hash cannot see (e.g. trailing whitespace).
TEST(ArtifactCorruption, SeededByteMutationsNeverCrash) {
  const std::string text = libgen::to_text(one_entry_artifact());
  Rng rng(0x5EED);
  int rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = text;
    const int edits = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      switch (rng.next_below(3)) {
        case 0:
          mutated[rng.next_below(mutated.size())] =
              static_cast<char>(rng.next_below(256));
          break;
        case 1:
          mutated.resize(rng.next_below(mutated.size() + 1));
          break;
        default: {
          const size_t at = rng.next_below(mutated.size());
          const size_t len =
              std::min(mutated.size() - at, rng.next_below(40) + 1);
          mutated.insert(at, mutated.substr(at, len));
          break;
        }
      }
    }
    auto parsed = libgen::parse(mutated);
    rejected += parsed.is_ok() ? 0 : 1;
  }
  // Near-every mutation lands on a checked field; a handful hitting
  // only hash-invisible bytes may slip through as identical content.
  EXPECT_GT(rejected, 280);
}

// ----------------------------------- v1/v2/v3 -> v4 compatibility

/// Rewrite a freshly serialized (v4) artifact into the bytes an older
/// writer would have produced: old header, the fields that version
/// didn't know about removed (`precision` lines before v2, the `exec`
/// sidecar before v3, the `batch` line before v4), and every
/// entry_hash re-derived under the old field set.
std::string downgrade_to(const Artifact& artifact, int version) {
  std::string text = libgen::to_text(artifact);
  size_t pos = text.find("oablas-artifact 4");
  EXPECT_NE(pos, std::string::npos);
  text.replace(pos, 17,
               str_format("oablas-artifact %d", version));
  if (version < 4) {
    while ((pos = text.find("\nbatch ")) != std::string::npos) {
      text.erase(pos, text.find('\n', pos + 1) - pos);
    }
  }
  // Strip the exec sidecar: the "exec N" count line plus its "| "
  // payload lines (the section sits between the script block and
  // entry_hash, so the run of "| " lines after it is all its own).
  while ((pos = text.find("\nexec ")) != std::string::npos) {
    size_t end = text.find('\n', pos + 1);
    while (end != std::string::npos &&
           text.compare(end, 3, "\n| ") == 0) {
      end = text.find('\n', end + 1);
    }
    text.erase(pos, end - pos);
  }
  if (version < 2) {
    while ((pos = text.find("precision ")) != std::string::npos) {
      text.erase(pos, text.find('\n', pos) - pos + 1);
    }
  }
  size_t from = 0;
  for (const ArtifactEntry& e : artifact.entries) {
    pos = text.find("entry_hash ", from);
    EXPECT_NE(pos, std::string::npos) << e.variant;
    const size_t eol = text.find('\n', pos);
    text.replace(
        pos, eol - pos,
        str_format("entry_hash %016llx",
                   static_cast<unsigned long long>(e.content_hash(version))));
    from = pos + 1;
  }
  return text;
}

std::string downgrade_to_v1(const Artifact& artifact) {
  return downgrade_to(artifact, 1);
}

// Satellite (b): artifacts written before the precision axis existed
// must keep loading — their entries default to the legacy f32 and the
// old entry_hash lines still verify under the v1 field set.
TEST(ArtifactCompat, V1ArtifactLoadsWithLegacyF32Precision) {
  const Artifact artifact = one_entry_artifact();
  const std::string v1_text = downgrade_to_v1(artifact);
  ASSERT_EQ(v1_text.find("precision"), std::string::npos);
  auto parsed = libgen::parse(v1_text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->format_version, 1);
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_EQ(parsed->entries[0].precision, kLegacyPrecision);
  EXPECT_EQ(parsed->entries[0].precision, Precision::kF32);
  EXPECT_EQ(parsed->entries[0].content_hash(),
            artifact.entries[0].content_hash());
}

// Re-saving a v1 artifact upgrades it: to_text always writes the
// current version, with an explicit precision line per entry, and the
// upgraded bytes reparse identically.
TEST(ArtifactCompat, ReserializingV1UpgradesToCurrent) {
  auto parsed = libgen::parse(downgrade_to_v1(one_entry_artifact()));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const std::string upgraded = libgen::to_text(*parsed);
  EXPECT_NE(upgraded.find("oablas-artifact 4"), std::string::npos);
  EXPECT_NE(upgraded.find("precision f32"), std::string::npos);
  EXPECT_NE(upgraded.find("batch 1"), std::string::npos);
  auto again = libgen::parse(upgraded);
  ASSERT_TRUE(again.is_ok()) << again.status().to_string();
  EXPECT_EQ(libgen::to_text(*again), upgraded);
  EXPECT_EQ(again->entries[0].content_hash(),
            parsed->entries[0].content_hash());
}

// A v1 downgrade of a tampered entry must still fail: the legacy hash
// path is a different field set, not a weaker check.
TEST(ArtifactCompat, V1FlippedByteStillFailsTheContentHash) {
  std::string text = downgrade_to_v1(one_entry_artifact());
  const size_t pos = text.find("gflops 0x1.");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 11] = text[pos + 11] == '2' ? '3' : '2';
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("hash"), std::string::npos)
      << parsed.status().to_string();
}

TEST(ArtifactCompat, UnknownPrecisionTokenIsRejected) {
  std::string text = libgen::to_text(one_entry_artifact());
  const size_t pos = text.find("precision f32");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "precision f16");
  auto parsed = libgen::parse(text);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("precision"),
            std::string::npos)
      << parsed.status().to_string();
}

// A v2 entry whose recorded precision contradicts its variant name is
// corrupt even when the content hash is self-consistent (the hash
// covers whatever was recorded, so only the cross-check catches it).
TEST(ArtifactCompat, PrecisionVariantMismatchIsRejected) {
  Artifact artifact = one_entry_artifact();  // GEMM-NN, f32
  artifact.entries[0].precision = Precision::kF64;
  auto parsed = libgen::parse(libgen::to_text(artifact));
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().message().find("precision"),
            std::string::npos)
      << parsed.status().to_string();
}

TEST(ArtifactCompat, F64EntriesRoundTripWithTheirPrecision) {
  OaFramework framework(gpusim::gtx285(), quick_options());
  Artifact artifact;
  artifact.device = gpusim::gtx285().name;
  artifact.device_fp = libgen::device_fingerprint(gpusim::gtx285());
  artifact.generator = "libgen_test";
  artifact.entries.push_back(
      synthetic_entry(framework, *blas3::find_variant("DGEMM-NN"), 5));
  const std::string text = libgen::to_text(artifact);
  EXPECT_NE(text.find("entry DGEMM-NN"), std::string::npos);
  EXPECT_NE(text.find("precision f64"), std::string::npos);
  auto parsed = libgen::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->entries[0].precision, Precision::kF64);
  EXPECT_EQ(parsed->entries[0].content_hash(),
            artifact.entries[0].content_hash());
}

// Artifacts written before the exec sidecar existed (v2) must keep
// loading, and their entry_hash lines still verify under the v2 field
// set.
TEST(ArtifactCompat, V2ArtifactLoadsWithoutExecSidecar) {
  const Artifact artifact = one_entry_artifact();
  const std::string v2_text = downgrade_to(artifact, 2);
  ASSERT_EQ(v2_text.find("exec"), std::string::npos);
  ASSERT_NE(v2_text.find("precision"), std::string::npos);
  auto parsed = libgen::parse(v2_text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->format_version, 2);
  ASSERT_EQ(parsed->entries.size(), 1u);
  EXPECT_TRUE(parsed->entries[0].exec.empty());
  EXPECT_EQ(parsed->entries[0].content_hash(),
            artifact.entries[0].content_hash());
}

// The exec sidecar (docs/EXECUTION.md) round-trips record-exact, and
// tampering with a record fails the entry hash like any other field.
TEST(ArtifactCompat, ExecSidecarRoundTripsAndIsHashed) {
  Artifact artifact = one_entry_artifact();
  artifact.entries[0].exec.push_back(
      {"gemm_main", 0xDEADBEEFCAFEF00Dull, 91, 4});
  artifact.entries[0].exec.push_back({"gemm_tail", 0x1234, 7, 1});
  const std::string text = libgen::to_text(artifact);
  EXPECT_NE(text.find("exec 2"), std::string::npos);
  EXPECT_NE(text.find("| gemm_main deadbeefcafef00d 91 4"),
            std::string::npos);
  auto parsed = libgen::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->entries[0].exec.size(), 2u);
  EXPECT_EQ(parsed->entries[0].exec[0].kernel, "gemm_main");
  EXPECT_EQ(parsed->entries[0].exec[0].key, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(parsed->entries[0].exec[0].tape_ops, 91);
  EXPECT_EQ(parsed->entries[0].exec[0].segments, 4);
  EXPECT_EQ(parsed->entries[0].exec[1].kernel, "gemm_tail");
  EXPECT_EQ(libgen::to_text(*parsed), text);

  std::string tampered = text;
  const size_t pos = tampered.find(" 91 4");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 5, " 92 4");
  auto bad = libgen::parse(tampered);
  ASSERT_FALSE(bad.is_ok());
  EXPECT_NE(bad.status().message().find("hash"), std::string::npos)
      << bad.status().to_string();
}

TEST(ArtifactDevice, MismatchIsRejectedByCheckAndSetLibrary) {
  Artifact artifact = one_entry_artifact();  // generated for gtx285
  Status check = libgen::check_device(artifact, gpusim::fermi_c2050());
  EXPECT_EQ(check.code(), ErrorCode::kFailedPrecondition);

  OaFramework framework(gpusim::fermi_c2050(), quick_options());
  EXPECT_FALSE(framework.set_library(artifact).is_ok());
  EXPECT_TRUE(
      OaFramework(gpusim::gtx285(), quick_options())
          .set_library(artifact)
          .is_ok());
}

// ----------------------------------------------------- warm starting

TEST(WarmStart, SecondFrameworkServesFromArtifactWithZeroSearchWork) {
  SessionStore::instance().clear();
  const Variant& v = *blas3::find_variant("GEMM-NN");

  OaFramework first(gpusim::gtx285(), quick_options());
  auto tuned = first.generate(v);
  ASSERT_TRUE(tuned.is_ok()) << tuned.status().to_string();
  Artifact artifact = first.export_library();
  ASSERT_EQ(artifact.entries.size(), 1u);

  // A fresh framework + a cleared session store: the only source of
  // warm starts is the artifact.
  SessionStore::instance().clear();
  OaFramework second(gpusim::gtx285(), quick_options());
  ASSERT_TRUE(second.set_library(artifact).is_ok());
  auto warm = second.generate(v);
  ASSERT_TRUE(warm.is_ok()) << warm.status().to_string();

  engine::EngineStats stats = second.engine_stats();
  EXPECT_EQ(stats.warm_starts, 1u);
  EXPECT_EQ(stats.evaluations, 0u);  // zero simulate calls
  EXPECT_EQ(stats.verify_runs, 0u);  // zero verifies
  EXPECT_EQ(warm->candidate.fingerprint(), tuned->candidate.fingerprint());
  EXPECT_EQ(warm->params.fingerprint(), tuned->params.fingerprint());
  EXPECT_EQ(warm->gflops, tuned->gflops);
  EXPECT_EQ(warm->applied_mask, tuned->applied_mask);
  SessionStore::instance().clear();
}

TEST(WarmStart, SessionStoreServesAcrossInstancesWithoutAnArtifact) {
  SessionStore::instance().clear();
  const Variant& v = *blas3::find_variant("GEMM-NN");

  OaFramework first(gpusim::gtx285(), quick_options());
  ASSERT_TRUE(first.generate(v).is_ok());
  EXPECT_GE(SessionStore::instance().size(), 1u);

  OaFramework second(gpusim::gtx285(), quick_options());
  auto warm = second.generate(v);
  ASSERT_TRUE(warm.is_ok()) << warm.status().to_string();
  EXPECT_EQ(second.engine_stats().warm_starts, 1u);
  EXPECT_EQ(second.engine_stats().evaluations, 0u);

  // A different device preset must not be served from that record.
  OaFramework other_device(gpusim::fermi_c2050(), quick_options());
  ASSERT_TRUE(other_device.generate(v).is_ok());
  EXPECT_EQ(other_device.engine_stats().warm_starts, 0u);
  SessionStore::instance().clear();
}

TEST(WarmStart, DisabledByOption) {
  SessionStore::instance().clear();
  const Variant& v = *blas3::find_variant("GEMM-NN");
  OaFramework first(gpusim::gtx285(), quick_options());
  ASSERT_TRUE(first.generate(v).is_ok());

  OaOptions cold = quick_options();
  cold.warm_start = false;
  OaFramework second(gpusim::gtx285(), cold);
  ASSERT_TRUE(second.generate(v).is_ok());
  EXPECT_EQ(second.engine_stats().warm_starts, 0u);
  EXPECT_GT(second.engine_stats().evaluations, 0u);
  SessionStore::instance().clear();
}

TEST(WarmStart, RepeatedGenerateOnOneInstanceStillUsesTheLocalCache) {
  SessionStore::instance().clear();
  const Variant& v = *blas3::find_variant("GEMM-NN");
  OaFramework framework(gpusim::gtx285(), quick_options());
  auto first = framework.generate(v);
  ASSERT_TRUE(first.is_ok());
  const uint64_t evals = framework.engine_stats().evaluations;
  auto again = framework.generate(v);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(framework.engine_stats().evaluations, evals);
  EXPECT_EQ(again->params.fingerprint(), first->params.fingerprint());
  SessionStore::instance().clear();
}

TEST(ExportLibrary, KeepsLoadedEntriesAndReplacesRegenerated) {
  SessionStore::instance().clear();
  OaFramework framework(gpusim::gtx285(), quick_options());
  Artifact artifact = one_entry_artifact();  // synthetic GEMM-NN
  ASSERT_TRUE(framework.set_library(artifact).is_ok());
  // Generating SYMM-LL must not drop the loaded GEMM-NN entry.
  ASSERT_TRUE(
      framework.generate(*blas3::find_variant("SYMM-LL")).is_ok());
  Artifact exported = framework.export_library();
  EXPECT_EQ(exported.entries.size(), 2u);
  EXPECT_NE(exported.find("GEMM-NN"), nullptr);
  EXPECT_NE(exported.find("SYMM-LL"), nullptr);
  SessionStore::instance().clear();
}

}  // namespace
}  // namespace oa
