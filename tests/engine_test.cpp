#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "ir/printer.hpp"
#include "oa/oa.hpp"
#include "tuner/tuner.hpp"

namespace oa::engine {
namespace {

using blas3::find_variant;
using blas3::Variant;

EvalConfig quick_config() {
  EvalConfig cfg;
  cfg.target_size = 256;
  cfg.verify_size = 48;
  return cfg;
}

composer::Candidate gemm_candidate() {
  composer::Candidate c;
  c.script = epod::gemm_nn_script();
  return c;
}

transforms::TuningParams volkov_point() {
  transforms::TuningParams p;
  p.block_tile_y = 64;
  p.block_tile_x = 16;
  p.threads_y = 64;
  p.threads_x = 1;
  p.k_tile = 16;
  p.unroll = 4;
  return p;
}

void expect_identical(const Evaluation& a, const Evaluation& b) {
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.gflops, b.gflops);
  EXPECT_EQ(a.applied_mask, b.applied_mask);
  EXPECT_EQ(a.params.to_string(), b.params.to_string());
  EXPECT_EQ(a.candidate.script.to_string(), b.candidate.script.to_string());
  EXPECT_EQ(a.counters.instructions, b.counters.instructions);
  EXPECT_EQ(a.counters.flops, b.counters.flops);
  EXPECT_EQ(a.counters.global_bytes, b.counters.global_bytes);
  EXPECT_EQ(a.counters.shared_load, b.counters.shared_load);
  EXPECT_EQ(a.counters.gld_coherent, b.counters.gld_coherent);
  EXPECT_EQ(a.counters.gld_incoherent, b.counters.gld_incoherent);
  EXPECT_EQ(ir::to_string(a.program), ir::to_string(b.program));
}

TEST(Fingerprints, StableAndSensitive) {
  composer::Candidate c = gemm_candidate();
  EXPECT_EQ(c.fingerprint(), gemm_candidate().fingerprint());
  composer::Candidate other = c;
  other.conditions.push_back("blank(A).zero = true");
  EXPECT_NE(c.fingerprint(), other.fingerprint());

  epod::Script s = c.script;
  EXPECT_EQ(s.fingerprint(), c.script.fingerprint());
  s.invocations.pop_back();
  EXPECT_NE(s.fingerprint(), c.script.fingerprint());

  transforms::TuningParams p = volkov_point();
  EXPECT_EQ(p.fingerprint(), volkov_point().fingerprint());
  p.unroll = 16;
  EXPECT_NE(p.fingerprint(), volkov_point().fingerprint());
}

TEST(Cache, HitIsBitwiseIdenticalToFreshEvaluation) {
  gpusim::Simulator sim(gpusim::gtx285());
  EvaluationEngine eng(sim);
  auto first = eng.evaluate(*find_variant("GEMM-NN"), gemm_candidate(),
                            volkov_point(), quick_config());
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_FALSE(first->from_cache);

  auto second = eng.evaluate(*find_variant("GEMM-NN"), gemm_candidate(),
                             volkov_point(), quick_config());
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->from_cache);
  expect_identical(*first, *second);

  EngineStats stats = eng.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(Cache, KeyedByDeviceParamsAndConfig) {
  gpusim::Simulator s285(gpusim::gtx285());
  EvaluationEngine eng(s285);
  const Variant& v = *find_variant("GEMM-NN");
  ASSERT_TRUE(
      eng.evaluate(v, gemm_candidate(), volkov_point(), quick_config())
          .is_ok());

  // Different params and different target size are distinct entries.
  transforms::TuningParams p2 = volkov_point();
  p2.unroll = 16;
  ASSERT_TRUE(
      eng.evaluate(v, gemm_candidate(), p2, quick_config()).is_ok());
  EvalConfig big = quick_config();
  big.target_size = 512;
  ASSERT_TRUE(
      eng.evaluate(v, gemm_candidate(), volkov_point(), big).is_ok());
  EXPECT_EQ(eng.stats().cache_hits, 0u);
  EXPECT_EQ(eng.cache_size(), 3u);

  // Verification is shared across points with the same applied mask.
  EXPECT_EQ(eng.stats().verify_runs, 1u);
  EXPECT_EQ(eng.stats().verify_reused, 2u);
}

TEST(Cache, NegativeOutcomesAreMemoized) {
  gpusim::Simulator sim(gpusim::gtx285());
  EvaluationEngine eng(sim);
  const Variant& v = *find_variant("GEMM-NN");
  // A launchable-looking point that cannot fit: giant shared tile.
  transforms::TuningParams bad;
  bad.block_tile_y = 64;
  bad.block_tile_x = 64;
  bad.threads_y = 8;
  bad.threads_x = 8;
  bad.k_tile = 32;
  bad.unroll = 1;
  auto first = eng.evaluate(v, gemm_candidate(), bad, quick_config());
  auto second = eng.evaluate(v, gemm_candidate(), bad, quick_config());
  EXPECT_EQ(first.is_ok(), second.is_ok());
  if (!first.is_ok()) {
    EXPECT_EQ(first.status().code(), second.status().code());
    EXPECT_EQ(eng.stats().cache_hits, 1u);
  }
}

TEST(Cache, DisabledEngineAlwaysEvaluates) {
  gpusim::Simulator sim(gpusim::gtx285());
  EngineOptions opts;
  opts.cache_enabled = false;
  EvaluationEngine eng(sim, opts);
  const Variant& v = *find_variant("GEMM-NN");
  ASSERT_TRUE(
      eng.evaluate(v, gemm_candidate(), volkov_point(), quick_config())
          .is_ok());
  ASSERT_TRUE(
      eng.evaluate(v, gemm_candidate(), volkov_point(), quick_config())
          .is_ok());
  EXPECT_EQ(eng.stats().cache_hits, 0u);
  EXPECT_EQ(eng.stats().evaluations, 2u);
  EXPECT_EQ(eng.cache_size(), 0u);
}

TEST(Batch, ResultsComeBackInRequestOrder) {
  gpusim::Simulator sim(gpusim::gtx285());
  EvaluationEngine eng(sim);
  const Variant& v = *find_variant("GEMM-NN");
  std::vector<EvaluationEngine::Point> points;
  for (int unroll : {1, 4, 16}) {
    EvaluationEngine::Point pt;
    pt.candidate = gemm_candidate();
    pt.params = volkov_point();
    pt.params.unroll = unroll;
    points.push_back(std::move(pt));
  }
  auto results = eng.evaluate_batch(v, points, quick_config());
  ASSERT_EQ(results.size(), points.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].is_ok()) << results[i].status().to_string();
    EXPECT_EQ(results[i]->params.unroll, points[i].params.unroll);
  }
}

// The acceptance property of the engine refactor: a parallel search
// must pick exactly the winner the serial search picks, for both a
// plain and a structured routine, on two device presets.
TEST(ParallelEqualsSerial, SameBestVariantAcrossDevices) {
  for (const gpusim::DeviceModel* device :
       {&gpusim::gtx285(), &gpusim::geforce_9800()}) {
    for (const char* name : {"GEMM-NN", "SYMM-LL"}) {
      OaFramework framework(*device, {});
      const Variant& v = *find_variant(name);
      auto candidates = framework.candidates_for(v);
      ASSERT_TRUE(candidates.is_ok()) << name;

      tuner::TuneOptions topt;
      topt.target_size = 256;
      topt.verify_size = 48;

      topt.jobs = 1;
      tuner::Tuner serial(framework.simulator(), topt);
      auto serial_best = serial.tune(v, *candidates);
      ASSERT_TRUE(serial_best.is_ok())
          << device->name << "/" << name << ": "
          << serial_best.status().to_string();

      topt.jobs = 0;  // hardware_concurrency
      tuner::Tuner parallel(framework.simulator(), topt);
      auto parallel_best = parallel.tune(v, *candidates);
      ASSERT_TRUE(parallel_best.is_ok())
          << device->name << "/" << name << ": "
          << parallel_best.status().to_string();

      expect_identical(*serial_best, *parallel_best);
    }
  }
}

TEST(LineSearchRounds, SecondRoundNeverWorseAndStopsEarly) {
  gpusim::Simulator sim(gpusim::gtx285());
  tuner::TuneOptions one;
  one.target_size = 256;
  one.verify_size = 48;
  one.line_search_rounds = 1;
  tuner::Tuner single(sim, one);
  auto single_best =
      single.tune(*find_variant("GEMM-NN"), {gemm_candidate()});
  ASSERT_TRUE(single_best.is_ok());

  tuner::TuneOptions many = one;
  many.line_search_rounds = 4;
  tuner::Tuner multi(sim, many);
  auto multi_best =
      multi.tune(*find_variant("GEMM-NN"), {gemm_candidate()});
  ASSERT_TRUE(multi_best.is_ok());
  EXPECT_LE(multi_best->seconds, single_best->seconds);
  // The early-stop keeps rounds 3/4 from re-simulating anything: every
  // later round's points either were tried or hit the cache, so the
  // engine ran strictly fewer simulations than 4x the single-round
  // count.
  EXPECT_LT(multi.engine().stats().evaluations,
            4 * single.engine().stats().evaluations);
}

TEST(SharedEngine, CrossVariantCacheCarriesOver) {
  gpusim::Simulator sim(gpusim::gtx285());
  EvaluationEngine shared(sim);
  tuner::TuneOptions topt;
  topt.target_size = 256;
  topt.verify_size = 48;
  tuner::Tuner first(shared, topt);
  ASSERT_TRUE(
      first.tune(*find_variant("GEMM-NN"), {gemm_candidate()}).is_ok());
  const uint64_t evals_before = shared.stats().evaluations;
  EXPECT_GT(evals_before, 0u);

  // Same variant + candidate again through a *new* tuner: everything
  // hits the shared cache, nothing re-simulates.
  tuner::Tuner second(shared, topt);
  ASSERT_TRUE(
      second.tune(*find_variant("GEMM-NN"), {gemm_candidate()}).is_ok());
  EXPECT_EQ(shared.stats().evaluations, evals_before);
  EXPECT_GT(shared.stats().cache_hits, 0u);
}

TEST(EngineStats, ReportsBreakdown) {
  gpusim::Simulator sim(gpusim::gtx285());
  EvaluationEngine eng(sim);
  ASSERT_TRUE(eng.evaluate(*find_variant("GEMM-NN"), gemm_candidate(),
                           volkov_point(), quick_config())
                  .is_ok());
  EngineStats stats = eng.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_GT(stats.simulate_seconds, 0.0);
  EXPECT_GT(stats.verify_seconds, 0.0);
  const std::string text = stats.to_string();
  EXPECT_NE(text.find("hit rate"), std::string::npos);
  EXPECT_NE(text.find("simulate"), std::string::npos);

  eng.reset_stats();
  EXPECT_EQ(eng.stats().requests, 0u);
  eng.clear_cache();
  EXPECT_EQ(eng.cache_size(), 0u);
}

}  // namespace
}  // namespace oa::engine
