// Property tests of the SIMT execution model with hand-crafted kernels:
// each test pins one architectural behaviour of the simulator that the
// paper's evaluation depends on (coalescing rules per device
// generation, bank conflicts, barrier divergence, serialized grid
// waves, register spilling).
#include <gtest/gtest.h>

#include "gpusim/simulator.hpp"
#include "ir/kernel.hpp"

namespace oa::gpusim {
namespace {

using ir::AffineExpr;
using ir::ArrayRef;
using ir::AssignOp;
using ir::Bound;
using ir::LoopMap;
using ir::MemSpace;
using ir::NodePtr;
using ir::Program;

AffineExpr S(const char* s) { return AffineExpr::sym(s); }

/// Program with one global array G (rows x cols) and a 1-block kernel
/// of `threads` threads (threadIdx.x = "tx") whose body is built by
/// `fill`.
Program one_block_program(
    int64_t rows, int64_t cols, int64_t threads,
    const std::function<std::vector<NodePtr>()>& fill) {
  Program p;
  p.name = "crafted";
  p.int_params = {};
  p.globals = {{"G", MemSpace::kGlobal, AffineExpr(rows), AffineExpr(cols),
                0}};
  ir::Kernel k;
  k.name = "main";
  auto tx = ir::make_loop("Ltx", "tx", Bound(0), Bound(AffineExpr(threads)));
  tx->map = LoopMap::kThreadX;
  tx->body = fill();
  auto by = ir::make_loop("Lby", "by", Bound(0), Bound(AffineExpr(1)));
  by->map = LoopMap::kBlockY;
  by->body.push_back(std::move(tx));
  k.body.push_back(std::move(by));
  p.kernels.push_back(std::move(k));
  return p;
}

Counters run_perf(const Program& p, const DeviceModel& dev) {
  Simulator sim(dev);
  RunOptions opts;
  opts.warps_per_block_sample = 0;
  auto r = sim.run_performance(p, opts);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r->counters : Counters{};
}

NodePtr read_stmt(AffineExpr row, AffineExpr col) {
  // G[0][63] = G[row][col]: one load analyzed per thread; the store
  // target is a single shared location (benign for counters).
  return ir::make_assign(ArrayRef{"G", {AffineExpr(0), AffineExpr(63)}},
                         AssignOp::kAssign,
                         ir::make_ref("G", {row, col}));
}

// --------------------------------------------------------- CC 1.0 rules

TEST(StrictCoalescing, PerfectRowIsOneTransactionPerHalfWarp) {
  // 16 lanes read G[tx][0]: consecutive, aligned -> 1 coherent
  // transaction per half-warp.
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(S("tx"), AffineExpr(0)));
    return body;
  });
  Counters c = run_perf(p, geforce_9800());
  EXPECT_EQ(c.gld_coherent, 1);
  EXPECT_EQ(c.gld_incoherent, 0);
}

TEST(StrictCoalescing, StridedRowSerializes) {
  // G[2*tx][0]: stride 2 -> 16 serialized transactions.
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(AffineExpr::sym("tx", 2), AffineExpr(0)));
    return body;
  });
  Counters c = run_perf(p, geforce_9800());
  EXPECT_EQ(c.gld_coherent, 0);
  EXPECT_EQ(c.gld_incoherent, 16);
}

TEST(StrictCoalescing, MisalignedBaseSerializes) {
  // G[tx + 1][0]: consecutive but crossing the 64B alignment -> CC 1.0
  // serializes.
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(S("tx") + 1, AffineExpr(0)));
    return body;
  });
  Counters c = run_perf(p, geforce_9800());
  EXPECT_EQ(c.gld_incoherent, 16);
}

TEST(StrictCoalescing, ColumnMajorStrideSerializes) {
  // The SYMM shadow pattern: G[0][tx] walks the leading dimension ->
  // stride = rows -> serialized on CC 1.0.
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(AffineExpr(0), S("tx")));
    return body;
  });
  Counters c = run_perf(p, geforce_9800());
  EXPECT_EQ(c.gld_incoherent, 16);
}

// --------------------------------------------------------- CC 1.3 rules

TEST(SegmentedCoalescing, StridedRowIsSegmentsNotIncoherent) {
  // The same strided access on GTX285: counted as coherent segment
  // transactions, never incoherent (Table II's "problem did not show
  // up").
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(AffineExpr(0), S("tx")));
    return body;
  });
  Counters c = run_perf(p, gtx285());
  EXPECT_EQ(c.gld_incoherent, 0);
  EXPECT_EQ(c.gld_coherent, 16);  // 16 distinct 64B segments
}

TEST(SegmentedCoalescing, MisalignedDenseIsTwoSegments) {
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(S("tx") + 1, AffineExpr(0)));
    return body;
  });
  Counters c = run_perf(p, gtx285());
  EXPECT_EQ(c.gld_coherent, 2);  // straddles two 64B segments
}

// ------------------------------------------------------------ Fermi L1

TEST(FermiCoalescing, WarpRequestAndLineCount) {
  // 32 lanes read one 128B line: 1 request, 128 bytes.
  Program p = one_block_program(64, 64, 32, [] {
    std::vector<NodePtr> body;
    body.push_back(read_stmt(S("tx"), AffineExpr(0)));
    return body;
  });
  Counters c = run_perf(p, fermi_c2050());
  EXPECT_EQ(c.gld_request, 1);
  EXPECT_EQ(c.global_bytes, 128 + 128);  // load line + the store's line
}

TEST(FermiCoalescing, LineReuseAcrossIterations) {
  // Each lane streams down one column (consecutive rows): after the
  // first touch, iterations hit the same 128B line in L1 — only
  // rows/32 lines of traffic per lane group.
  Program p = one_block_program(128, 64, 32, [] {
    std::vector<NodePtr> body;
    auto loop = ir::make_loop("Lr", "r", Bound(0), Bound(AffineExpr(32)));
    // G[r][tx]: lane-distinct columns; consecutive r shares the line
    // only within a column... swap: G[32*0 + r + 128*? ] — use
    // G[r + 32*0][tx]: stride over r = 1 element in the column.
    loop->body.push_back(read_stmt(S("r"), S("tx")));
    std::vector<NodePtr> out;
    out.push_back(std::move(loop));
    return out;
  });
  Counters c = run_perf(p, fermi_c2050());
  // 32 iterations x 32 lanes, each lane walking one column: every lane
  // touches one line (128B = 32 floats) over the 32 iterations.
  // Requests: one per warp per iteration.
  EXPECT_EQ(c.gld_request, 32);
  // Load lines: the first iteration fetches 32 distinct lines (one per
  // column); later iterations hit the per-lane line cache. The store
  // (un-cached) writes its line every iteration: 32 x 128B.
  EXPECT_EQ(c.global_bytes, 32 * 128 + 32 * 128);
}

// --------------------------------------------------------- shared banks

Program shared_program(int64_t threads, AffineExpr row, AffineExpr col,
                       int64_t pad) {
  Program p;
  p.name = "banky";
  p.globals = {{"G", MemSpace::kGlobal, AffineExpr(64), AffineExpr(64), 0}};
  ir::Kernel k;
  k.name = "main";
  k.local_arrays.push_back(
      {"Sm", MemSpace::kShared, AffineExpr(16), AffineExpr(32), pad});
  auto tx = ir::make_loop("Ltx", "tx", Bound(0), Bound(AffineExpr(threads)));
  tx->map = LoopMap::kThreadX;
  tx->body.push_back(ir::make_assign(
      ArrayRef{"G", {S("tx"), AffineExpr(0)}}, AssignOp::kAssign,
      ir::make_ref("Sm", {std::move(row), std::move(col)})));
  k.body.push_back(std::move(tx));
  p.kernels.push_back(std::move(k));
  return p;
}

TEST(BankConflicts, Stride1NoConflict) {
  Counters c = run_perf(shared_program(16, S("tx"), AffineExpr(0), 0),
                        geforce_9800());
  EXPECT_EQ(c.shared_bank_conflict_replays, 0);
}

TEST(BankConflicts, Stride16FullySerializes) {
  // Sm[0][tx] with ld = 16: addr = 16*tx -> every lane hits bank 0:
  // 15 replays.
  Counters c = run_perf(shared_program(16, AffineExpr(0), S("tx"), 0),
                        geforce_9800());
  EXPECT_EQ(c.shared_bank_conflict_replays, 15);
}

TEST(BankConflicts, PaddingRemovesTheConflict) {
  // The paper's (16,16) -> (16,17) padding: ld = 17 makes the column
  // walk hit 16 different banks.
  Counters c = run_perf(shared_program(16, AffineExpr(0), S("tx"), 1),
                        geforce_9800());
  EXPECT_EQ(c.shared_bank_conflict_replays, 0);
}

TEST(BankConflicts, BroadcastIsFree) {
  // All lanes read the same address: broadcast, no replay.
  Counters c = run_perf(
      shared_program(16, AffineExpr(3), AffineExpr(5), 0), geforce_9800());
  EXPECT_EQ(c.shared_bank_conflict_replays, 0);
}

// ------------------------------------------------------ misc semantics

TEST(Simt, BarrierUnderDivergenceIsAnError) {
  Program p = one_block_program(64, 64, 16, [] {
    std::vector<NodePtr> body;
    std::vector<ir::Pred> preds{{S("tx") - 8, ir::Pred::Op::kLt}};
    std::vector<NodePtr> then_body;
    then_body.push_back(ir::make_sync());
    body.push_back(ir::make_if(std::move(preds), std::move(then_body)));
    return body;
  });
  Simulator sim(gtx285());
  RunOptions opts;
  opts.warps_per_block_sample = 0;
  auto r = sim.run_performance(p, opts);
  EXPECT_FALSE(r.is_ok());
}

TEST(Simt, OutOfBoundsAccessIsAnError) {
  Program p = one_block_program(8, 8, 16, [] {
    std::vector<NodePtr> body;
    body.push_back(
        ir::make_assign(ArrayRef{"G", {S("tx"), AffineExpr(0)}},
                        AssignOp::kAssign, ir::make_const(1.0)));
    return body;
  });
  Simulator sim(gtx285());
  RunOptions opts;
  opts.warps_per_block_sample = 0;
  auto r = sim.run_performance(p, opts);
  EXPECT_FALSE(r.is_ok());  // lanes 8..15 write outside the 8x8 array
}

TEST(Simt, SerialWavesExecuteInOrder) {
  // Kernel with serialized grid Y: wave w writes G[0][w] = G[0][w-1]+1;
  // correct ordering yields G[0][w] == w + 1.
  Program p;
  p.globals = {{"G", MemSpace::kGlobal, AffineExpr(4), AffineExpr(9), 0}};
  ir::Kernel k;
  k.name = "chain";
  auto tx = ir::make_loop("Ltx", "tx", Bound(0), Bound(AffineExpr(1)));
  tx->map = LoopMap::kThreadX;
  tx->body.push_back(ir::make_assign(
      ArrayRef{"G", {AffineExpr(0), S("w") + 1}}, AssignOp::kAssign,
      ir::make_add(ir::make_ref("G", {AffineExpr(0), S("w")}),
                   ir::make_const(1.0))));
  auto wave = ir::make_loop("Lw", "w", Bound(0), Bound(AffineExpr(8)));
  wave->map = LoopMap::kBlockYSerial;
  wave->body.push_back(std::move(tx));
  k.body.push_back(std::move(wave));
  p.kernels.push_back(std::move(k));

  Simulator sim(gtx285());
  RunOptions opts;
  GlobalBuffers buffers = make_buffers(p, {}, {});
  auto r = sim.run_functional(p, opts, buffers);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const std::vector<double>& g = *buffers.find("G");
  for (int w = 1; w <= 8; ++w) {
    EXPECT_FLOAT_EQ(g[static_cast<size_t>(w) * 4], static_cast<float>(w));
  }
}

TEST(Simt, OversizedRegisterBlockSpillsToLocal) {
  // A register array that exceeds the per-thread budget is demoted to
  // local memory: local_read/local_store counters light up.
  Program p;
  p.globals = {{"G", MemSpace::kGlobal, AffineExpr(512), AffineExpr(4), 0}};
  ir::Kernel k;
  k.name = "spilly";
  k.local_arrays.push_back(
      {"R", MemSpace::kRegister, AffineExpr(256), AffineExpr(1), 0});
  auto tx = ir::make_loop("Ltx", "tx", Bound(0), Bound(AffineExpr(256)));
  tx->map = LoopMap::kThreadX;
  tx->body.push_back(ir::make_assign(
      ArrayRef{"R", {AffineExpr(0), AffineExpr(0)}}, AssignOp::kAssign,
      ir::make_const(2.0)));
  tx->body.push_back(ir::make_assign(
      ArrayRef{"G", {S("tx"), AffineExpr(0)}}, AssignOp::kAssign,
      ir::make_ref("R", {AffineExpr(0), AffineExpr(0)})));
  k.body.push_back(std::move(tx));
  p.kernels.push_back(std::move(k));

  Simulator sim(geforce_9800());  // 8192 regs / 256 threads = 32 budget
  RunOptions opts;
  opts.warps_per_block_sample = 0;
  auto r = sim.run_performance(p, opts);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_GT(r->counters.local_store, 0);
  EXPECT_GT(r->counters.local_read, 0);
}

TEST(Simt, CeilDivGridExtent) {
  Program p;
  p.int_params = {"M"};
  p.globals = {{"G", MemSpace::kGlobal, S("M"), AffineExpr(1), 0}};
  ir::Kernel k;
  k.name = "ceil";
  auto tx = ir::make_loop("Ltx", "tx", Bound(0), Bound(AffineExpr(8)));
  tx->map = LoopMap::kThreadX;
  tx->body.push_back(ir::make_sync());
  auto by = ir::make_loop("Lby", "by", Bound(0), Bound(S("M")));
  by->ub_div = 8;
  by->map = LoopMap::kBlockY;
  by->body.push_back(std::move(tx));
  k.body.push_back(std::move(by));
  p.kernels.push_back(std::move(k));
  auto cfg = ir::launch_config(p.main_kernel(), {{"M", 20}});
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_EQ(cfg->grid_y, 3);  // ceil(20 / 8)
}

}  // namespace
}  // namespace oa::gpusim
