// Tests for the src/verify fuzzing & differential-verification
// subsystem: seed determinism (two same-seed campaigns are
// byte-identical), full 48-variant coverage, fuzzer legality
// guarantees, corpus reproducer round trips, the checked-in
// tests/corpus directory, and mutation robustness.
#include <gtest/gtest.h>

#include <fstream>

#include "blas3/routine.hpp"
#include "epod/script.hpp"
#include "gpusim/device.hpp"
#include "support/rng.hpp"
#include "verify/checks.hpp"
#include "verify/corpus.hpp"
#include "verify/harness.hpp"

namespace oa::verify {
namespace {

// ------------------------------------------------- seed determinism

// Satellite (d): `oacheck --seed 42` twice produces byte-identical
// case lists and verdicts. The harness is a pure function of
// (options, device) — no wall clock, no global state.
TEST(SeedDeterminism, TwoSameSeedRunsAreByteIdentical) {
  HarnessOptions options;
  options.seed = 42;
  options.cases = 60;
  Harness first(gpusim::gtx285(), options);
  Harness second(gpusim::gtx285(), options);
  const Report a = first.run();
  const Report b = second.run();
  EXPECT_EQ(a.case_list(), b.case_list());
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_FALSE(a.case_list().empty());
}

TEST(SeedDeterminism, DifferentSeedsProduceDifferentCases) {
  HarnessOptions options;
  options.cases = 20;
  options.seed = 42;
  Harness a(gpusim::gtx285(), options);
  options.seed = 43;
  Harness b(gpusim::gtx285(), options);
  EXPECT_NE(a.run().case_list(), b.run().case_list());
}

TEST(SeedDeterminism, MakeCaseIsAPureFunctionOfSeedAndIndex) {
  const ScriptFuzzer f1(7);
  const ScriptFuzzer f2(7);
  // Same (seed, index) -> identical case, independent of call order.
  const std::string late_first = case_to_text(f1.make_case(55));
  (void)f1.make_case(0);
  EXPECT_EQ(case_to_text(f1.make_case(55)), late_first);
  EXPECT_EQ(case_to_text(f2.make_case(55)), late_first);
}

// ------------------------------------------------- variant coverage

TEST(Coverage, OneRotationOfCasesCoversAllVariantsBothPrecisions) {
  HarnessOptions options;
  options.seed = 3;
  options.cases = static_cast<int>(blas3::all_variants().size());
  // Cheap checks only — coverage is a property of case generation.
  options.fuzzer.differential = false;
  options.fuzzer.fastpath = false;
  Harness harness(gpusim::gtx285(), options);
  const Report report = harness.run();
  EXPECT_EQ(report.variants_covered(), blas3::all_variants().size());
}

// ------------------------------------------------- fuzzer legality

// Satellite (a): epod::parse accepts its own to_text output for every
// fuzzer-emitted script, and fuzzed params/extents always satisfy the
// legality rules the composer enforces.
TEST(Fuzzer, EveryEmittedCaseIsLegal) {
  const ScriptFuzzer fuzzer(11);
  for (uint64_t i = 0; i < 200; ++i) {
    const FuzzCase c = fuzzer.make_case(i);
    SCOPED_TRACE(c.to_string());
    EXPECT_TRUE(c.params.check().is_ok());
    EXPECT_GE(c.m, 1);
    EXPECT_GE(c.n, 1);
    EXPECT_GE(c.k, 1);
    EXPECT_LE(c.m, fuzzer.options().max_size);
    auto parsed = epod::parse(epod::to_text(c.script));
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed->fingerprint(), c.script.fingerprint());
  }
}

// ------------------------------------------------- corpus round trip

TEST(Corpus, ReproducerTextRoundTripsExactly) {
  const ScriptFuzzer fuzzer(9);
  for (uint64_t i = 0; i < 40; ++i) {
    const FuzzCase c = fuzzer.make_case(i);
    const std::string text = case_to_text(c);
    auto back = case_from_text(text);
    ASSERT_TRUE(back.is_ok())
        << c.to_string() << ": " << back.status().to_string();
    EXPECT_EQ(back->to_string(), c.to_string());
    EXPECT_EQ(back->payload, c.payload);  // mutation bytes survive hex
    EXPECT_EQ(case_to_text(*back), text);
  }
}

TEST(Corpus, SaveLoadRoundTripsThroughDisk) {
  const ScriptFuzzer fuzzer(9);
  // Index 12 is a mutation case for this seed stream or not — either
  // way the file round trip must be exact.
  const FuzzCase c = fuzzer.make_case(12);
  const std::string path = testing::TempDir() + "/" + case_filename(c);
  ASSERT_TRUE(save_case(c, path).is_ok());
  auto back = load_case(path);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(case_to_text(*back), case_to_text(c));
  std::remove(path.c_str());
}

TEST(Corpus, MalformedReproducersAreStatusErrors) {
  const std::string good = case_to_text(ScriptFuzzer(9).make_case(0));
  const std::vector<std::string> bad = {
      "",
      "oacheck-case 2\n",                        // unknown version
      good.substr(0, good.size() / 2),           // truncated
      [&] {                                      // illegal params
        std::string t = good;
        const size_t pos = t.find("\nparams ");
        const size_t eol = t.find('\n', pos + 1);
        t.replace(pos, eol - pos, "\nparams 16 16 0 0 1 1");
        return t;
      }(),
      [&] {                                      // non-positive size
        std::string t = good;
        const size_t pos = t.find("\nsizes ");
        const size_t eol = t.find('\n', pos + 1);
        t.replace(pos, eol - pos, "\nsizes 0 4 4");
        return t;
      }(),
  };
  for (const std::string& text : bad) {
    auto parsed = case_from_text(text);
    EXPECT_FALSE(parsed.is_ok()) << text.substr(0, 60);
  }
}

// The checked-in reproducers (tests/corpus/*.case) — every past find
// must stay fixed. OA_CORPUS_DIR points at the source tree.
TEST(Corpus, CheckedInReproducersAllPass) {
  const std::string dir = OA_CORPUS_DIR;
  const std::vector<std::string> files = list_corpus(dir);
  ASSERT_GE(files.size(), 7u) << "corpus directory missing: " << dir;
  HarnessOptions options;
  options.cases = 0;  // corpus only
  options.corpus_dir = dir;
  Harness harness(gpusim::gtx285(), options);
  const Report report = harness.run();
  ASSERT_EQ(report.results.size(), files.size());
  for (const CaseResult& r : report.results) {
    EXPECT_NE(r.verdict, Verdict::kFail)
        << r.source << " " << r.fuzz.to_string() << " | " << r.detail;
  }
}

// ------------------------------------------------- check behaviors

TEST(Checks, KindNamesRoundTrip) {
  for (CheckKind kind :
       {CheckKind::kDifferential, CheckKind::kRoundTrip,
        CheckKind::kMutation, CheckKind::kFastPath}) {
    CheckKind back;
    ASSERT_TRUE(parse_check_kind(check_kind_name(kind), &back));
    EXPECT_EQ(back, kind);
  }
  CheckKind ignored;
  EXPECT_FALSE(parse_check_kind("bogus", &ignored));
}

// Bounded per-kind campaigns: each check kind runs clean on its own
// seeded stream (the full four-kind 500-case campaign is CI's job).
TEST(Checks, PerKindCampaignsRunClean) {
  for (CheckKind kind :
       {CheckKind::kDifferential, CheckKind::kRoundTrip,
        CheckKind::kMutation, CheckKind::kFastPath}) {
    HarnessOptions options;
    options.seed = 5;
    options.cases = 24;
    options.fuzzer.differential = kind == CheckKind::kDifferential;
    options.fuzzer.roundtrip = kind == CheckKind::kRoundTrip;
    options.fuzzer.mutation = kind == CheckKind::kMutation;
    options.fuzzer.fastpath = kind == CheckKind::kFastPath;
    Harness harness(gpusim::gtx285(), options);
    const Report report = harness.run();
    EXPECT_TRUE(report.ok())
        << check_kind_name(kind) << "\n"
        << report.case_list();
  }
}

// Mutation robustness at the harness level: corrupted script and
// artifact bytes must always produce a Status (pass) or a stable
// acceptance — a crash here is the one unacceptable outcome, and under
// ASan/UBSan in CI any memory error fails the test run outright.
TEST(Mutation, CorruptedInputsNeverCrashTheParsers) {
  HarnessOptions options;
  options.seed = 17;
  options.cases = 80;
  options.fuzzer.differential = false;
  options.fuzzer.roundtrip = false;
  options.fuzzer.fastpath = false;
  Harness harness(gpusim::gtx285(), options);
  const Report report = harness.run();
  EXPECT_TRUE(report.ok()) << report.case_list();
  EXPECT_EQ(report.results.size(), 80u);
}

// Failing fuzz cases persist as reproducer files (write_corpus_dir);
// a clean campaign writes none.
TEST(Harness, CleanCampaignWritesNoReproducers) {
  HarnessOptions options;
  options.seed = 42;
  options.cases = 30;
  options.write_corpus_dir = testing::TempDir() + "/oacheck-corpus-out";
  Harness harness(gpusim::gtx285(), options);
  const Report report = harness.run();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.written_reproducers.empty());
  EXPECT_TRUE(list_corpus(options.write_corpus_dir).empty());
}

TEST(Harness, DeviceByNameResolvesPresets) {
  EXPECT_NE(device_by_name("geforce9800"), nullptr);
  EXPECT_NE(device_by_name("gtx285"), nullptr);
  EXPECT_NE(device_by_name("fermi"), nullptr);
  EXPECT_EQ(device_by_name("h100"), nullptr);
}

}  // namespace
}  // namespace oa::verify
