// Additional dependence-analysis properties: distance/direction
// handling, reduction awareness across operators, and interaction with
// transformed (tiled/grouped) nests.
#include <gtest/gtest.h>

#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "deps/dependence.hpp"
#include "ir/kernel.hpp"
#include "transforms/transform.hpp"

namespace oa::deps {
namespace {

using ir::AffineExpr;
using ir::ArrayRef;
using ir::AssignOp;
using ir::Bound;
using ir::Node;
using ir::NodePtr;

AffineExpr sym(const char* s, int64_t c = 1) {
  return AffineExpr::sym(s, c);
}

/// for (i in [lb, ub)) { X[i + w_off][0] = X[i + r_off][0] + 1 }
NodePtr stencil_loop(int64_t lb, int64_t ub, int64_t w_off, int64_t r_off) {
  auto stmt = ir::make_assign(
      ArrayRef{"X", {sym("i") + w_off, AffineExpr(0)}}, AssignOp::kAssign,
      ir::make_add(ir::make_ref("X", {sym("i") + r_off, AffineExpr(0)}),
                   ir::make_const(1.0)));
  auto loop = ir::make_loop("L", "i", Bound(lb), Bound(AffineExpr(ub)));
  loop->body.push_back(std::move(stmt));
  return loop;
}

const ir::RangeEnv kRanges{{"i", {0, 63}}};

TEST(Distance, UnitDistanceCarried) {
  // X[i] = X[i-1] + 1: flow dependence, distance 1 -> carried.
  auto loop = stencil_loop(1, 64, 0, -1);
  EXPECT_TRUE(carries_dependence(*loop, kRanges, Mode::kStrict));
}

TEST(Distance, ZeroDistanceNotCarried) {
  // X[i] = X[i] + 1: loop-independent only.
  auto loop = stencil_loop(0, 64, 0, 0);
  EXPECT_FALSE(carries_dependence(*loop, kRanges, Mode::kStrict));
}

TEST(Distance, DistanceBeyondRangeNotCarried) {
  // X[i] = X[i - 100] with only 64 iterations: never aliases.
  auto loop = stencil_loop(0, 64, 0, -100);
  EXPECT_FALSE(carries_dependence(*loop, kRanges, Mode::kStrict));
}

TEST(Distance, NonIntegralSolutionNotCarried) {
  // X[2i] = X[2i+1]: even vs odd elements never alias.
  auto stmt = ir::make_assign(
      ArrayRef{"X", {sym("i", 2), AffineExpr(0)}}, AssignOp::kAssign,
      ir::make_ref("X", {sym("i", 2) + 1, AffineExpr(0)}));
  auto loop = ir::make_loop("L", "i", Bound(0), Bound(AffineExpr(32)));
  loop->body.push_back(std::move(stmt));
  EXPECT_FALSE(carries_dependence(*loop, kRanges, Mode::kStrict));
}

TEST(Reductions, DivAssignIsNotReorderable) {
  // X[0] /= X[0] is a read-modify-write but not an associative
  // accumulation pair with += semantics... the analysis must still see
  // the RMW pair as a dependence under strict mode.
  auto stmt = ir::make_assign(ArrayRef{"X", {AffineExpr(0), AffineExpr(0)}},
                              AssignOp::kDivAssign, ir::make_const(2.0));
  auto loop = ir::make_loop("L", "i", Bound(0), Bound(AffineExpr(8)));
  loop->body.push_back(std::move(stmt));
  EXPECT_TRUE(carries_dependence(*loop, kRanges, Mode::kStrict));
}

TEST(TransformedNests, GroupedGemmPointLoopsStayParallel) {
  // After thread_grouping + loop_tiling, the i/j point loops must still
  // test parallel (reg_alloc and the filter rely on consistent
  // analysis results post-transformation).
  ir::Program p =
      blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  ASSERT_TRUE(transforms::thread_grouping(p, {"Li", "Lj"}, {"Lii", "Ljj"},
                                          ctx)
                  .is_ok());
  ASSERT_TRUE(transforms::loop_tiling(p, {"Lii", "Ljj", "Lk"},
                                      {"Liii", "Ljjj", "Lkkk"}, ctx)
                  .is_ok());
  const Node* liii = p.main_kernel().find("Liii");
  ASSERT_NE(liii, nullptr);
  EXPECT_FALSE(carries_dependence(p.main_kernel(), *liii,
                                  {{"M", 256}, {"N", 256}, {"K", 256}},
                                  Mode::kStrict));
  const Node* lkkk = p.main_kernel().find("Lkkk");
  ASSERT_NE(lkkk, nullptr);
  // The reduction loop: in strict mode the register-block accumulation
  // carries; reduction-aware mode may reorder it.
  EXPECT_FALSE(carries_dependence(p.main_kernel(), *lkkk,
                                  {{"M", 256}, {"N", 256}, {"K", 256}},
                                  Mode::kReductionAware));
}

TEST(TransformedNests, SyrkPointLoopsParallel) {
  // SYRK's triangular output space: i and j both stay parallel (each
  // C[i][j] is written by exactly one (i, j)).
  ir::Program p =
      blas3::make_source_program(*blas3::find_variant("SYRK-LN"));
  const Node* li = p.main_kernel().find("Li");
  const Node* lj = p.main_kernel().find("Lj");
  const ir::Env params{{"M", 128}, {"N", 128}, {"K", 64}};
  EXPECT_FALSE(
      carries_dependence(p.main_kernel(), *li, params, Mode::kStrict));
  EXPECT_FALSE(
      carries_dependence(p.main_kernel(), *lj, params, Mode::kStrict));
}

TEST(FissionDirection, ForwardDependencePreserved) {
  // for i { X[i] = ...; Y[i] = X[i] } : same-iteration flow; fission
  // keeps X-writes before Y-reads. Legal.
  auto w = ir::make_assign(ArrayRef{"X", {sym("i"), AffineExpr(0)}},
                           AssignOp::kAssign, ir::make_const(1.0));
  auto r = ir::make_assign(ArrayRef{"Y", {sym("i"), AffineExpr(0)}},
                           AssignOp::kAssign,
                           ir::make_ref("X", {sym("i"), AffineExpr(0)}));
  auto loop = ir::make_loop("L", "i", Bound(0), Bound(AffineExpr(16)));
  loop->body.push_back(std::move(w));
  loop->body.push_back(std::move(r));
  EXPECT_TRUE(fission_legal(*loop, 1, {{"i", {0, 15}}}));
}

TEST(FissionDirection, AntiDependenceAcrossGroupsBlocks) {
  // for i { Y[i] = X[i+1]; X[i] = 0 }: the read of X[i+1] must happen
  // before iteration i+1's write. Fission hoists all Y-reads first —
  // still legal. Reversed statement order is the illegal case.
  auto r = ir::make_assign(ArrayRef{"Y", {sym("i"), AffineExpr(0)}},
                           AssignOp::kAssign,
                           ir::make_ref("X", {sym("i") + 1, AffineExpr(0)}));
  auto w = ir::make_assign(ArrayRef{"X", {sym("i"), AffineExpr(0)}},
                           AssignOp::kAssign, ir::make_const(0.0));
  auto loop = ir::make_loop("L", "i", Bound(0), Bound(AffineExpr(16)));
  loop->body.push_back(std::move(r));  // Y[i] = X[i+1]
  loop->body.push_back(std::move(w));  // X[i] = 0
  // Split between them: group 1 = reads, group 2 = writes. The carried
  // dependence runs read(i) before write(i+1): after fission all reads
  // precede all writes — preserved.
  EXPECT_TRUE(fission_legal(*loop, 1, {{"i", {0, 15}}}));
  // Swapped: writes first. Fission would hoist X[i]=0 (all i) before
  // Y[i]=X[i+1]: iteration i reads X[i+1] after it was zeroed — the
  // anti-dependence flips into a broken flow.
  std::swap(loop->body[0], loop->body[1]);
  EXPECT_FALSE(fission_legal(*loop, 1, {{"i", {0, 15}}}));
}

}  // namespace
}  // namespace oa::deps
