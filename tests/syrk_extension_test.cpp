// The SYRK extension (the paper's future work: "extend our method to
// more routines"): a routine whose *output* index space is triangular.
// These tests pin the whole story: catalog, reference semantics, source
// IR, adaptor reuse (Adaptor_Triangular on C), the verification-based
// rejection of the padding rule (which would overwrite C's blank
// triangle), and end-to-end generation.
#include <gtest/gtest.h>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "ir/validate.hpp"
#include "oa/oa.hpp"
#include "support/rng.hpp"
#include "tuner/tuner.hpp"

namespace oa {
namespace {

using blas3::find_variant;
using blas3::Matrix;
using blas3::Variant;

TEST(SyrkCatalog, ExtensionVariantsBothPrecisions) {
  const auto& ext = blas3::extension_variants();
  ASSERT_EQ(ext.size(), 8u);  // 4 shapes x {f32, f64}
  EXPECT_EQ(ext[0].name(), "SYRK-LN");
  EXPECT_NE(find_variant("SYRK-UT"), nullptr);
  EXPECT_NE(find_variant("DSYRK-LN"), nullptr);
  // The paper's catalog is untouched; the full family doubles it.
  EXPECT_EQ(blas3::paper_variants().size(), 24u);
  EXPECT_EQ(blas3::all_variants().size(), 48u);
}

TEST(SyrkCatalog, NominalFlops) {
  Variant v = *find_variant("SYRK-LN");
  EXPECT_DOUBLE_EQ(blas3::nominal_flops(v, 64, 0, 32), 64.0 * 65 * 32);
}

TEST(SyrkReference, MatchesGemmOnStoredTriangle) {
  // C_lower += A * A^T must agree with GEMM(A, A^T) on the stored
  // triangle and leave the blank triangle untouched.
  const int64_t m = 13, k = 7;
  Rng rng(3);
  Matrix a(m, k);
  a.fill_random(rng);
  Matrix at(k, m);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t c = 0; c < k; ++c) at.set(c, r, a.at(r, c));
  }
  Matrix full(m, m);
  blas3::run_reference(*find_variant("GEMM-NN"), a, at, &full);

  Matrix c(m, m);
  Matrix dummy(m, m);
  blas3::run_reference(*find_variant("SYRK-LN"), a, dummy, &c);
  for (int64_t col = 0; col < m; ++col) {
    for (int64_t row = 0; row < m; ++row) {
      if (row >= col) {
        EXPECT_NEAR(c.at(row, col), full.at(row, col), 1e-4f);
      } else {
        EXPECT_EQ(c.at(row, col), 0.0f);  // blank triangle untouched
      }
    }
  }
}

TEST(SyrkReference, TransposedVariantAgrees) {
  const int64_t m = 9, k = 5;
  Rng rng(4);
  Matrix a(m, k);
  a.fill_random(rng);
  Matrix at(k, m);
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t c = 0; c < k; ++c) at.set(c, r, a.at(r, c));
  }
  Matrix dummy(m, m);
  Matrix c1(m, m), c2(m, m);
  blas3::run_reference(*find_variant("SYRK-LN"), a, dummy, &c1);
  blas3::run_reference(*find_variant("SYRK-LT"), at, dummy, &c2);
  EXPECT_LT(blas3::max_abs_diff(c1, c2), 1e-4f);
}

TEST(SyrkSourceIr, ValidatesAndHasTriangularOutputSpace) {
  for (const Variant& v : blas3::extension_variants()) {
    ir::Program p = blas3::make_source_program(v);
    Status s = ir::validate(p);
    EXPECT_TRUE(s.is_ok()) << v.name() << ": " << s.to_string();
    // The j loop is bounded by i (triangular output).
    const ir::Node* lj = p.main_kernel().find("Lj");
    ASSERT_NE(lj, nullptr) << v.name();
    EXPECT_TRUE(lj->lb.depends_on("i") || lj->ub.depends_on("i"))
        << v.name();
  }
}

TEST(SyrkAdaptors, ReusesTriangularAdaptorOnTheOutput) {
  auto adaptors = OaFramework::adaptors_for(*find_variant("SYRK-LN"));
  ASSERT_EQ(adaptors.size(), 1u);
  EXPECT_EQ(adaptors[0].name, "Adaptor_Triangular");
  EXPECT_EQ(adaptors[0].formal, "C");
}

TEST(SyrkPipeline, PaddingRuleIsRejectedByVerification) {
  // Padding the output's index space would compute (and store) the
  // blank triangle of C — numerically wrong, so the verifier must
  // reject every padded candidate while accepting some other rule.
  OaFramework framework(gpusim::gtx285(), [] {
    OaOptions opt;
    opt.tuning_size = 128;
    opt.verify_size = 48;
    return opt;
  }());
  const Variant v = *find_variant("SYRK-LN");
  auto candidates = framework.candidates_for(v);
  ASSERT_TRUE(candidates.is_ok()) << candidates.status().to_string();

  tuner::TuneOptions topt;
  topt.target_size = 128;
  topt.verify_size = 48;
  tuner::Tuner tuner(framework.simulator(), topt);
  transforms::TuningParams probe;
  probe.block_tile_y = 64;
  probe.block_tile_x = 16;
  probe.threads_y = 64;
  probe.threads_x = 1;
  probe.k_tile = 16;
  probe.unroll = 4;

  int accepted = 0;
  for (const composer::Candidate& c : *candidates) {
    bool padded = false;
    for (const auto& inv : c.script.invocations) {
      padded |= inv.component == "padding_triangular";
    }
    auto result = tuner.evaluate(v, c, probe);
    if (padded) {
      EXPECT_FALSE(result.is_ok())
          << "padded SYRK candidate must fail verification: "
          << c.script.to_string();
    } else if (result.is_ok()) {
      ++accepted;
    }
  }
  EXPECT_GT(accepted, 0);
}

TEST(SyrkPipeline, EndToEndGenerationAndRun) {
  OaFramework framework(gpusim::gtx285(), [] {
    OaOptions opt;
    opt.tuning_size = 256;
    opt.verify_size = 48;
    return opt;
  }());
  const Variant v = *find_variant("SYRK-LN");
  auto tuned = framework.generate(v);
  ASSERT_TRUE(tuned.is_ok()) << tuned.status().to_string();
  EXPECT_GT(tuned->gflops, 0.0);

  // Use the generated kernel: C_lower += A * A^T at n = 64.
  const int64_t n = 64;
  Rng rng(9);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(rng);
  ASSERT_TRUE(framework
                  .run(tuned->program, v, a, b, &c,
                       tuner::bools_for(tuned->candidate))
                  .is_ok());
  Matrix expected(n, n);
  Matrix dummy(n, n);
  blas3::run_reference(v, a, dummy, &expected);
  EXPECT_LT(blas3::max_abs_diff(c, expected),
            blas3::accumulation_tolerance(n));
}

}  // namespace
}  // namespace oa
