#include <gtest/gtest.h>

#include "ir/affine.hpp"
#include "ir/expr.hpp"
#include "ir/interval.hpp"
#include "ir/kernel.hpp"
#include "ir/node.hpp"
#include "ir/printer.hpp"
#include "ir/validate.hpp"

namespace oa::ir {
namespace {

AffineExpr sym(const std::string& s, int64_t c = 1) {
  return AffineExpr::sym(s, c);
}

// ---------------------------------------------------------------- affine

TEST(AffineExpr, Arithmetic) {
  AffineExpr e = sym("i", 2) + sym("j") - 3;
  EXPECT_EQ(e.coeff("i"), 2);
  EXPECT_EQ(e.coeff("j"), 1);
  EXPECT_EQ(e.constant_term(), -3);
  e *= 2;
  EXPECT_EQ(e.coeff("i"), 4);
  EXPECT_EQ(e.constant_term(), -6);
}

TEST(AffineExpr, CancellationRemovesSymbol) {
  AffineExpr e = sym("i") - sym("i");
  EXPECT_TRUE(e.is_constant());
  EXPECT_FALSE(e.depends_on("i"));
}

TEST(AffineExpr, Eval) {
  AffineExpr e = sym("i", 16) + sym("k") + 1;
  Env env{{"i", 3}, {"k", 5}};
  EXPECT_EQ(e.eval(env), 16 * 3 + 5 + 1);
}

TEST(AffineExpr, Substitution) {
  // i -> 16*ii + iii
  AffineExpr e = sym("i", 2) + sym("k");
  AffineExpr repl = sym("ii", 16) + sym("iii");
  AffineExpr out = e.substituted("i", repl);
  EXPECT_EQ(out.coeff("ii"), 32);
  EXPECT_EQ(out.coeff("iii"), 2);
  EXPECT_EQ(out.coeff("k"), 1);
  EXPECT_EQ(out.coeff("i"), 0);
}

TEST(AffineExpr, SubstituteAbsentIsNoop) {
  AffineExpr e = sym("i");
  EXPECT_EQ(e.substituted("z", sym("q")), e);
}

TEST(AffineExpr, Rename) {
  AffineExpr e = sym("i") + sym("k", 3);
  AffineExpr out = e.renamed("i", "k");
  EXPECT_EQ(out.coeff("k"), 4);
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ((sym("i", 16) + sym("k") - 1).to_string(), "16*i + k - 1");
  EXPECT_EQ(AffineExpr::constant(0).to_string(), "0");
  EXPECT_EQ((sym("i", -1)).to_string(), "-i");
}

TEST(Bound, MinOfTerms) {
  Bound b = Bound::min_of({sym("K"), sym("kk") + 16});
  Env env{{"K", 100}, {"kk", 96}};
  EXPECT_EQ(b.eval_min(env), 100);
  env["kk"] = 90;
  EXPECT_EQ(b.eval_min(env), 100);
  env["K"] = 95;
  EXPECT_EQ(b.eval_min(env), 95);
}

TEST(Bound, ToString) {
  Bound b = Bound::min_of({sym("K"), sym("kk") + 16});
  EXPECT_EQ(b.to_string(true), "min(K, kk + 16)");
  EXPECT_EQ(Bound(sym("M")).to_string(true), "M");
}

TEST(Pred, Eval) {
  // threadIdx.x == 0
  Pred p{sym("tx"), Pred::Op::kEq};
  EXPECT_TRUE(p.eval({{"tx", 0}}));
  EXPECT_FALSE(p.eval({{"tx", 3}}));
  Pred ge{sym("i") - 4, Pred::Op::kGe};
  EXPECT_TRUE(ge.eval({{"i", 4}}));
  EXPECT_FALSE(ge.eval({{"i", 3}}));
}

// ------------------------------------------------------------------ expr

ExprPtr gemm_rhs() {
  return make_mul(make_ref("A", {sym("i"), sym("k")}),
                  make_ref("B", {sym("k"), sym("j")}));
}

TEST(Expr, CountsOpsAndLoads) {
  auto e = gemm_rhs();
  EXPECT_EQ(e->count_arith_ops(), 1);
  EXPECT_EQ(e->count_loads(), 2);
}

TEST(Expr, CloneIsDeepAndEqual) {
  auto e = gemm_rhs();
  auto c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  c->a->ref.array = "X";
  EXPECT_FALSE(e->equals(*c));
  EXPECT_EQ(e->a->ref.array, "A");
}

TEST(Expr, RenameVarHitsAllRefs) {
  auto e = gemm_rhs();
  e->rename_var("k", "q");
  EXPECT_EQ(e->to_string(), "A[i][q] * B[q][j]");
}

TEST(Expr, ForEachRefVisitsNested) {
  auto e = make_add(make_mul(make_scalar("alpha"), gemm_rhs()),
                    make_ref("C", {sym("i"), sym("j")}));
  int count = 0;
  static_cast<const Expr&>(*e).visit_refs(
      [&](const ArrayRef&) { ++count; });
  EXPECT_EQ(count, 3);
}

// ------------------------------------------------------------------ node

std::vector<NodePtr> gemm_nn_body(bool labeled = true) {
  auto stmt = make_assign(ArrayRef{"C", {sym("i"), sym("j")}},
                          AssignOp::kAddAssign, gemm_rhs());
  auto lk = make_loop(labeled ? "Lk" : "k", "k", Bound(0), Bound(sym("K")));
  lk->body.push_back(std::move(stmt));
  auto lj = make_loop(labeled ? "Lj" : "j", "j", Bound(0), Bound(sym("N")));
  lj->body.push_back(std::move(lk));
  auto li = make_loop(labeled ? "Li" : "i", "i", Bound(0), Bound(sym("M")));
  li->body.push_back(std::move(lj));
  std::vector<NodePtr> body;
  body.push_back(std::move(li));
  return body;
}

TEST(Node, FindLoopByLabel) {
  auto body = gemm_nn_body();
  EXPECT_NE(find_loop(body, "Lk"), nullptr);
  EXPECT_EQ(find_loop(body, "Lz"), nullptr);
  EXPECT_EQ(find_loop(body, "Lk")->var, "k");
}

TEST(Node, LocateLoopReportsParent) {
  auto body = gemm_nn_body();
  LoopLocation loc = locate_loop(body, "Lj");
  ASSERT_NE(loc.loop, nullptr);
  EXPECT_EQ(loc.loop->label, "Lj");
  ASSERT_NE(loc.parent_body, nullptr);
  EXPECT_EQ((*loc.parent_body)[loc.index].get(), loc.loop);
  // Parent of Lj is Li's body.
  EXPECT_EQ(loc.parent_body, &find_loop(body, "Li")->body);
}

TEST(Node, CloneDeepEquality) {
  auto body = gemm_nn_body();
  auto copy = clone_body(body);
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_TRUE(body[0]->equals(*copy[0]));
  copy[0]->label = "Lx";
  EXPECT_FALSE(body[0]->equals(*copy[0]));
}

TEST(Node, SubstituteUses) {
  auto body = gemm_nn_body();
  // i -> 16*bi + ti everywhere i is used.
  find_loop(body, "Li")->body[0]->substitute_uses(
      "i", sym("bi", 16) + sym("ti"));
  const Node* lk = find_loop(body, "Lk");
  const Node& stmt = *lk->body[0];
  EXPECT_EQ(stmt.lhs.index[0].coeff("bi"), 16);
  EXPECT_EQ(stmt.lhs.index[0].coeff("ti"), 1);
}

TEST(Node, WalkVisitsEverything) {
  auto body = gemm_nn_body();
  int loops = 0, assigns = 0;
  walk_const(body, [&](const Node& n) {
    loops += n.is_loop();
    assigns += n.is_assign();
    return true;
  });
  EXPECT_EQ(loops, 3);
  EXPECT_EQ(assigns, 1);
}

TEST(Node, ForEachRefIncludesLhs) {
  auto body = gemm_nn_body();
  int refs = 0;
  visit_refs(body, [&](const ArrayRef&) { ++refs; });
  EXPECT_EQ(refs, 3);  // C lhs, A, B
}

// ---------------------------------------------------------------- kernel

Program gemm_program() {
  Program p;
  p.name = "gemm_nn";
  p.int_params = {"M", "N", "K"};
  p.globals = {
      {"A", MemSpace::kGlobal, sym("M"), sym("K"), 0},
      {"B", MemSpace::kGlobal, sym("K"), sym("N"), 0},
      {"C", MemSpace::kGlobal, sym("M"), sym("N"), 0},
  };
  Kernel k;
  k.name = "main";
  k.body = gemm_nn_body();
  p.kernels.push_back(std::move(k));
  return p;
}

TEST(Kernel, ValidatesCleanProgram) {
  Program p = gemm_program();
  EXPECT_TRUE(validate(p).is_ok()) << validate(p).to_string();
}

TEST(Kernel, ValidateCatchesUndeclaredArray) {
  Program p = gemm_program();
  find_loop(p.main_kernel().body, "Lk")->body[0]->lhs.array = "Z";
  EXPECT_FALSE(validate(p).is_ok());
}

TEST(Kernel, ValidateCatchesOutOfScopeSymbol) {
  Program p = gemm_program();
  find_loop(p.main_kernel().body, "Lk")->body[0]->lhs.index[0] = sym("zz");
  EXPECT_FALSE(validate(p).is_ok());
}

TEST(Kernel, ValidateCatchesDuplicateLabel) {
  Program p = gemm_program();
  find_loop(p.main_kernel().body, "Lk")->label = "Li";
  EXPECT_FALSE(validate(p).is_ok());
}

TEST(Kernel, ArrayDeclColumnMajorOffset) {
  ArrayDecl a{"S", MemSpace::kShared, AffineExpr(16), AffineExpr(16), 1};
  Env env;
  EXPECT_EQ(a.leading_dim(env), 17);
  EXPECT_EQ(a.offset(3, 2, env), 3 + 2 * 17);
  EXPECT_EQ(a.num_elements(env), 17 * 16);
}

TEST(Kernel, LaunchConfigFromMappedLoops) {
  Program p = gemm_program();
  Kernel& k = p.main_kernel();
  // Map Li to blocks(Y), Lj to blocks(X); add thread loops inside.
  Node* li = k.find("Li");
  li->map = LoopMap::kBlockY;
  li->ub = Bound(AffineExpr(8));
  Node* lj = k.find("Lj");
  lj->map = LoopMap::kBlockX;
  lj->ub = Bound(AffineExpr(4));
  Node* lk = k.find("Lk");
  lk->map = LoopMap::kThreadX;
  lk->ub = Bound(AffineExpr(64));
  auto cfg = launch_config(k, {{"M", 128}, {"N", 128}, {"K", 64}});
  ASSERT_TRUE(cfg.is_ok()) << cfg.status().to_string();
  EXPECT_EQ(cfg->grid_y, 8);
  EXPECT_EQ(cfg->grid_x, 4);
  EXPECT_EQ(cfg->block_x, 64);
  EXPECT_EQ(cfg->block_y, 1);
  EXPECT_EQ(cfg->num_blocks(), 32);
  EXPECT_EQ(cfg->threads_per_block(), 64);
  EXPECT_FALSE(cfg->serial_grid_y);
}

TEST(Kernel, SerialGridYPropagates) {
  Program p = gemm_program();
  Kernel& k = p.main_kernel();
  Node* li = k.find("Li");
  li->map = LoopMap::kBlockYSerial;
  li->ub = Bound(AffineExpr(8));
  Node* lj = k.find("Lj");
  lj->map = LoopMap::kThreadX;
  lj->ub = Bound(AffineExpr(32));
  auto cfg = launch_config(k, {{"M", 1}, {"N", 1}, {"K", 1}});
  ASSERT_TRUE(cfg.is_ok());
  EXPECT_TRUE(cfg->serial_grid_y);
  EXPECT_EQ(cfg->grid_y, 8);
}

TEST(Kernel, CopySemanticsAreDeep) {
  Program p = gemm_program();
  Kernel copy = p.main_kernel();
  copy.find("Lk")->body[0]->lhs.array = "Z";
  EXPECT_EQ(p.main_kernel().find("Lk")->body[0]->lhs.array, "C");
}

// -------------------------------------------------------------- interval

TEST(Interval, RangeOfAffine) {
  RangeEnv env{{"i", {0, 15}}, {"k", {0, 3}}};
  auto r = range_of(sym("i", 2) + sym("k") + 1, env);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 1);
  EXPECT_EQ(r->hi, 34);
}

TEST(Interval, NegativeCoefficientFlips) {
  RangeEnv env{{"i", {2, 5}}};
  auto r = range_of(sym("i", -1) + 10, env);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 5);
  EXPECT_EQ(r->hi, 8);
}

TEST(Interval, UnboundSymbolIsNullopt) {
  RangeEnv env;
  EXPECT_FALSE(range_of(sym("q"), env).has_value());
}

TEST(Interval, LoopVarRanges) {
  Program p = gemm_program();
  RangeEnv env = loop_var_ranges(p.main_kernel(),
                                 {{"M", 32}, {"N", 16}, {"K", 8}});
  ASSERT_TRUE(env.contains("i"));
  EXPECT_EQ(env.at("i"), (Interval{0, 31}));
  EXPECT_EQ(env.at("k"), (Interval{0, 7}));
}

// --------------------------------------------------------------- printer

TEST(Printer, RendersGemm) {
  Program p = gemm_program();
  std::string s = to_string(p);
  EXPECT_NE(s.find("Li: for (i = 0; i < M; i++)"), std::string::npos);
  EXPECT_NE(s.find("C[i][j] += A[i][k] * B[k][j];"), std::string::npos);
}

TEST(Printer, RendersMappingAnnotations) {
  auto loop = make_loop("Lt", "tx", Bound(0), Bound(AffineExpr(16)));
  loop->map = LoopMap::kThreadX;
  std::string s = to_string(*loop);
  EXPECT_NE(s.find("threadIdx.x"), std::string::npos);
}

TEST(Printer, RendersIfWithBoolParam) {
  auto n = make_if({}, {}, {});
  n->bool_param = "blank_zero";
  n->then_body.push_back(make_sync());
  std::string s = to_string(*n);
  EXPECT_NE(s.find("if (blank_zero)"), std::string::npos);
  EXPECT_NE(s.find("__syncthreads();"), std::string::npos);
}

}  // namespace
}  // namespace oa::ir
