// Fast-path equivalence gate: the warp-analytic ghost executor must
// produce bit-identical counters to the lockstep interpreter — not
// approximately equal, identical. All 48 BLAS3 variants (the paper's
// 24 at f32 and the doubled f64 family, whose 8-byte accesses price
// differently) run on all three device presets through three schedules
// (untransformed source, family-script tuned, cublas-like baseline)
// with the fast path on and off, and every counter field is compared.
// This is the guarantee that lets the tuner's search run entirely on
// the fast path without ever re-validating against the interpreter.
#include <gtest/gtest.h>

#include <array>

#include "baseline/baseline.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "transforms/transform.hpp"
#include "verify/harness.hpp"

namespace oa::gpusim {
namespace {

const char* family_script(blas3::Family f) {
  // The per-family schedules of the counter-consistency suite: they
  // exercise thread grouping, tiling, unrolling, shared-memory and
  // register allocation — i.e. every fast-path mechanism (affine
  // slots, closed-form coalescing, loop collapsing, masked tile
  // loads).
  static const char* kGemm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrmm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrsm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )";
  switch (f) {
    case blas3::Family::kTrmm: return kTrmm;
    case blas3::Family::kTrsm: return kTrsm;
    default: return kGemm;  // GEMM / SYMM (lenient application)
  }
}

ir::Program tuned_program(const blas3::Variant& v) {
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  auto script = epod::parse_script(family_script(v.family));
  EXPECT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  EXPECT_TRUE(mask.is_ok());
  return p;
}

class FastPathEquivalence
    : public ::testing::TestWithParam<blas3::Variant> {};

TEST_P(FastPathEquivalence, CountersBitIdentical) {
  const blas3::Variant v = GetParam();
  const int64_t n = 96;
  const std::vector<std::pair<const char*, const DeviceModel*>> devices = {
      {"geforce9800", &geforce_9800()},
      {"gtx285", &gtx285()},
      {"fermi", &fermi_c2050()}};
  for (const auto& [dev_name, dev] : devices) {
    std::vector<std::pair<std::string, ir::Program>> programs;
    programs.emplace_back("source", blas3::make_source_program(v));
    programs.emplace_back("tuned", tuned_program(v));
    auto base = baseline::cublas_like(v, *dev);
    ASSERT_TRUE(base.is_ok()) << base.status().to_string();
    programs.emplace_back("baseline", std::move(*base));

    for (auto& [label, p] : programs) {
      RunOptions opts;
      opts.int_params = v.family == blas3::Family::kGemm
                            ? ir::Env{{"M", n}, {"N", n}, {"K", n}}
                            : ir::Env{{"M", n}, {"N", n}};

      Simulator sim(*dev);
      opts.fastpath = true;
      auto fast = sim.run_performance(p, opts);
      ASSERT_TRUE(fast.is_ok())
          << dev_name << " " << label << ": " << fast.status().to_string();
      opts.fastpath = false;
      auto interp = sim.run_performance(p, opts);
      ASSERT_TRUE(interp.is_ok())
          << dev_name << " " << label << ": "
          << interp.status().to_string();

      EXPECT_TRUE(fast->counters == interp->counters)
          << dev_name << " " << label << "\nfast:   "
          << fast->counters.to_string()
          << "\ninterp: " << interp->counters.to_string();
      ASSERT_EQ(fast->kernels.size(), interp->kernels.size());
      for (size_t i = 0; i < fast->kernels.size(); ++i) {
        EXPECT_TRUE(fast->kernels[i].counters ==
                    interp->kernels[i].counters)
            << dev_name << " " << label << " kernel "
            << fast->kernels[i].name;
      }
      // The interpreter run must not have touched the fast path, and
      // the fast run should have priced at least part of the work
      // analytically on these affine kernels.
      EXPECT_EQ(interp->fastpath.fast_statements, 0);
      EXPECT_GT(fast->fastpath.fast_statements, 0)
          << dev_name << " " << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FastPathEquivalence,
    ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<blas3::Variant>& info) {
      std::string name = info.param.name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Rectangular problem shapes make boundary tiles of a peeled loop fall
// back to the interpreter while interior tiles stay analytic, so the
// same load site alternates between the triple-summary and per-lane
// register-reuse mechanisms. The first four shapes are oacheck finds
// (seeds 1, 2, 3, 7) that exposed exactly that handoff going stale;
// the rest cover degenerate and prime extents.
class FastPathEquivalenceRect
    : public ::testing::TestWithParam<blas3::Variant> {};

TEST_P(FastPathEquivalenceRect, CountersBitIdenticalRectangular) {
  const blas3::Variant v = GetParam();
  const std::vector<std::array<int64_t, 3>> shapes = {
      {92, 29, 84}, {63, 72, 67}, {34, 67, 3}, {64, 66, 75},
      {1, 96, 33},  {97, 1, 17},  {31, 89, 1}};
  const std::vector<std::pair<const char*, const DeviceModel*>> devices = {
      {"geforce9800", &geforce_9800()},
      {"gtx285", &gtx285()},
      {"fermi", &fermi_c2050()}};
  for (const auto& [dev_name, dev] : devices) {
    ir::Program p = tuned_program(v);
    for (const auto& [m, n, k] : shapes) {
      RunOptions opts;
      opts.int_params = v.family == blas3::Family::kGemm
                            ? ir::Env{{"M", m}, {"N", n}, {"K", k}}
                            : ir::Env{{"M", m}, {"N", n}};

      Simulator sim(*dev);
      opts.fastpath = true;
      auto fast = sim.run_performance(p, opts);
      opts.fastpath = false;
      auto interp = sim.run_performance(p, opts);
      ASSERT_EQ(fast.is_ok(), interp.is_ok())
          << dev_name << " " << m << "x" << n << "x" << k;
      if (!fast.is_ok()) continue;

      EXPECT_TRUE(fast->counters == interp->counters)
          << dev_name << " " << m << "x" << n << "x" << k << "\nfast:   "
          << fast->counters.to_string()
          << "\ninterp: " << interp->counters.to_string();
      ASSERT_EQ(fast->kernels.size(), interp->kernels.size());
      for (size_t i = 0; i < fast->kernels.size(); ++i) {
        EXPECT_TRUE(fast->kernels[i].counters ==
                    interp->kernels[i].counters)
            << dev_name << " " << m << "x" << n << "x" << k << " kernel "
            << fast->kernels[i].name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FastPathEquivalenceRect,
    ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<blas3::Variant>& info) {
      std::string name = info.param.name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Beyond the fixed per-family schedules: a seeded batch of fuzzer-made
// schedule/params/shape combinations, each cross-checked fast vs
// interpreter by the verify harness. Deterministic — the same cases
// oacheck --seed 7 --check fastpath would run.
TEST(FastPathFuzzedSchedules, SeededCampaignNoDivergence) {
  verify::HarnessOptions options;
  options.seed = 7;
  options.cases = 96;
  options.fuzzer.differential = false;
  options.fuzzer.roundtrip = false;
  options.fuzzer.mutation = false;
  options.fuzzer.fastpath = true;
  verify::Harness harness(gtx285(), options);
  const verify::Report report = harness.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  for (const verify::CaseResult& r : report.results) {
    EXPECT_NE(r.verdict, verify::Verdict::kFail)
        << r.fuzz.to_string() << " | " << r.detail;
  }
}

}  // namespace
}  // namespace oa::gpusim
