// Fast-path equivalence gate: the warp-analytic ghost executor must
// produce bit-identical counters to the lockstep interpreter — not
// approximately equal, identical. Every one of the paper's 24 BLAS3
// variants runs on all three device presets through three schedules
// (untransformed source, family-script tuned, cublas-like baseline)
// with the fast path on and off, and every counter field is compared.
// This is the guarantee that lets the tuner's search run entirely on
// the fast path without ever re-validating against the interpreter.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "blas3/routine.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "transforms/transform.hpp"

namespace oa::gpusim {
namespace {

const char* family_script(blas3::Family f) {
  // The per-family schedules of the counter-consistency suite: they
  // exercise thread grouping, tiling, unrolling, shared-memory and
  // register allocation — i.e. every fast-path mechanism (affine
  // slots, closed-form coalescing, loop collapsing, masked tile
  // loads).
  static const char* kGemm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrmm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    loop_unroll(Ljjj, Lkkk);
    SM_alloc(B, Transpose);
    reg_alloc(C);
  )";
  static const char* kTrsm = R"(
    (Lii, Ljj) = thread_grouping(Li, Lj);
    (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
    peel_triangular(A);
    binding_triangular(A, 0);
    SM_alloc(B, Transpose);
    reg_alloc(B);
  )";
  switch (f) {
    case blas3::Family::kTrmm: return kTrmm;
    case blas3::Family::kTrsm: return kTrsm;
    default: return kGemm;  // GEMM / SYMM (lenient application)
  }
}

ir::Program tuned_program(const blas3::Variant& v) {
  ir::Program p = blas3::make_source_program(v);
  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 16;
  ctx.params.unroll = 4;
  auto script = epod::parse_script(family_script(v.family));
  EXPECT_TRUE(script.is_ok());
  auto mask = epod::apply_script_lenient(p, *script, ctx);
  EXPECT_TRUE(mask.is_ok());
  return p;
}

class FastPathEquivalence
    : public ::testing::TestWithParam<blas3::Variant> {};

TEST_P(FastPathEquivalence, CountersBitIdentical) {
  const blas3::Variant v = GetParam();
  const int64_t n = 96;
  const std::vector<std::pair<const char*, const DeviceModel*>> devices = {
      {"geforce9800", &geforce_9800()},
      {"gtx285", &gtx285()},
      {"fermi", &fermi_c2050()}};
  for (const auto& [dev_name, dev] : devices) {
    std::vector<std::pair<std::string, ir::Program>> programs;
    programs.emplace_back("source", blas3::make_source_program(v));
    programs.emplace_back("tuned", tuned_program(v));
    auto base = baseline::cublas_like(v, *dev);
    ASSERT_TRUE(base.is_ok()) << base.status().to_string();
    programs.emplace_back("baseline", std::move(*base));

    for (auto& [label, p] : programs) {
      RunOptions opts;
      opts.int_params = v.family == blas3::Family::kGemm
                            ? ir::Env{{"M", n}, {"N", n}, {"K", n}}
                            : ir::Env{{"M", n}, {"N", n}};

      Simulator sim(*dev);
      opts.fastpath = true;
      auto fast = sim.run_performance(p, opts);
      ASSERT_TRUE(fast.is_ok())
          << dev_name << " " << label << ": " << fast.status().to_string();
      opts.fastpath = false;
      auto interp = sim.run_performance(p, opts);
      ASSERT_TRUE(interp.is_ok())
          << dev_name << " " << label << ": "
          << interp.status().to_string();

      EXPECT_TRUE(fast->counters == interp->counters)
          << dev_name << " " << label << "\nfast:   "
          << fast->counters.to_string()
          << "\ninterp: " << interp->counters.to_string();
      ASSERT_EQ(fast->kernels.size(), interp->kernels.size());
      for (size_t i = 0; i < fast->kernels.size(); ++i) {
        EXPECT_TRUE(fast->kernels[i].counters ==
                    interp->kernels[i].counters)
            << dev_name << " " << label << " kernel "
            << fast->kernels[i].name;
      }
      // The interpreter run must not have touched the fast path, and
      // the fast run should have priced at least part of the work
      // analytically on these affine kernels.
      EXPECT_EQ(interp->fastpath.fast_statements, 0);
      EXPECT_GT(fast->fastpath.fast_statements, 0)
          << dev_name << " " << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FastPathEquivalence,
    ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<blas3::Variant>& info) {
      std::string name = info.param.name();
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace oa::gpusim
