#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "blas3/routine.hpp"
#include "gpusim/simulator.hpp"
#include "ir/validate.hpp"
#include "tuner/tuner.hpp"

namespace oa::baseline {
namespace {

using blas3::Variant;

// Every CUBLAS-like baseline must be numerically correct: it is the
// denominator of every figure.
class CublasBaseline : public ::testing::TestWithParam<Variant> {};

TEST_P(CublasBaseline, BuildsValidatesAndVerifies) {
  const Variant& v = GetParam();
  auto program = cublas_like(v, gpusim::gtx285());
  ASSERT_TRUE(program.is_ok()) << v.name() << ": "
                               << program.status().to_string();
  Status valid = ir::validate(*program);
  EXPECT_TRUE(valid.is_ok()) << v.name() << ": " << valid.to_string();

  gpusim::Simulator sim(gpusim::gtx285());
  Status verified = tuner::verify_program(sim, v, *program, 48, {});
  EXPECT_TRUE(verified.is_ok()) << v.name() << ": " << verified.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    All24, CublasBaseline, ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = info.param.name();
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(MagmaBaseline, OnlyOnGtx285) {
  const Variant gemm = *blas3::find_variant("GEMM-NN");
  EXPECT_TRUE(magma_like(gemm, gpusim::gtx285()).is_ok());
  EXPECT_EQ(magma_like(gemm, gpusim::geforce_9800()).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(magma_like(gemm, gpusim::fermi_c2050()).status().code(),
            ErrorCode::kNotFound);
}

TEST(MagmaBaseline, NoSymmOrTrmm) {
  // "SYMM and TRMM variants are not compared due to their absence in
  // MAGMA library" (paper §V-A).
  EXPECT_EQ(magma_like(*blas3::find_variant("SYMM-LL"), gpusim::gtx285())
                .status()
                .code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(magma_like(*blas3::find_variant("TRMM-LL-N"), gpusim::gtx285())
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST(MagmaBaseline, GemmAndTrsmVerify) {
  gpusim::Simulator sim(gpusim::gtx285());
  for (const char* name : {"GEMM-NN", "GEMM-TN", "TRSM-LL-N", "TRSM-RU-N"}) {
    const Variant v = *blas3::find_variant(name);
    auto program = magma_like(v, gpusim::gtx285());
    ASSERT_TRUE(program.is_ok()) << name;
    Status verified = tuner::verify_program(sim, v, *program, 48, {});
    EXPECT_TRUE(verified.is_ok()) << name << ": " << verified.to_string();
  }
}

TEST(BaselineShape, SymmSlowerThanGemmOnEveryDevice) {
  // The paper's motivating observation: CUBLAS SYMM is far below CUBLAS
  // GEMM (420 vs 155 GFLOPS on GTX285).
  for (const gpusim::DeviceModel* dev : gpusim::all_devices()) {
    gpusim::Simulator sim(*dev);
    auto measure = [&](const char* name) -> double {
      const Variant v = *blas3::find_variant(name);
      auto program = cublas_like(v, *dev);
      if (!program.is_ok()) return 0.0;
      gpusim::RunOptions opts;
      opts.int_params = v.family == blas3::Family::kGemm
                            ? ir::Env{{"M", 1024}, {"N", 1024}, {"K", 1024}}
                            : ir::Env{{"M", 1024}, {"N", 1024}};
      auto r = sim.run_performance(*program, opts);
      if (!r.is_ok()) return 0.0;
      return r->gflops(blas3::nominal_flops(v, 1024, 1024, 1024));
    };
    const double gemm = measure("GEMM-NN");
    const double symm = measure("SYMM-LL");
    EXPECT_GT(gemm, symm * 1.5) << dev->name;
  }
}

TEST(BaselineShape, SymmHasIncoherentLoadsOnlyOnStrictDevice) {
  // Table I vs Table II: the CC 1.0 device serializes the mixed-mode
  // SYMM reads (gld_incoherent > 0); CC 1.3 coalesces them into
  // segments (gld_incoherent == 0).
  const Variant v = *blas3::find_variant("SYMM-LL");
  auto run = [&](const gpusim::DeviceModel& dev) {
    auto program = cublas_like(v, dev);
    gpusim::Simulator sim(dev);
    gpusim::RunOptions opts;
    opts.int_params = {{"M", 512}, {"N", 512}};
    auto r = sim.run_performance(*program, opts);
    return r->counters;
  };
  EXPECT_GT(run(gpusim::geforce_9800()).gld_incoherent, 0);
  EXPECT_EQ(run(gpusim::gtx285()).gld_incoherent, 0);
}

}  // namespace
}  // namespace oa::baseline
