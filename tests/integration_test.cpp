// End-to-end integration: for every one of the 48 BLAS3 variants, the
// composer must produce at least one candidate script that — applied at
// a standard parameter point — yields a kernel that verifies against
// the CPU reference on the simulated GPU. This is the "library
// generation works for the whole catalog" guarantee behind Figures
// 10-12.
#include <gtest/gtest.h>

#include "oa/oa.hpp"
#include "tuner/tuner.hpp"

namespace oa {
namespace {

using blas3::Variant;

class AllVariants : public ::testing::TestWithParam<Variant> {
 protected:
  static OaFramework& framework() {
    static OaFramework fw(gpusim::gtx285(), [] {
      OaOptions opt;
      opt.tuning_size = 256;
      opt.verify_size = 48;
      return opt;
    }());
    return fw;
  }
};

TEST_P(AllVariants, SomeCandidateVerifiesFunctionally) {
  const Variant& v = GetParam();
  auto candidates = framework().candidates_for(v);
  ASSERT_TRUE(candidates.is_ok())
      << v.name() << ": " << candidates.status().to_string();

  tuner::TuneOptions topt;
  topt.target_size = 256;
  topt.verify_size = 48;
  tuner::Tuner tuner(framework().simulator(), topt);

  transforms::TuningParams probe;
  probe.block_tile_y = 64;
  probe.block_tile_x = 16;
  probe.threads_y = 64;
  probe.threads_x = 1;
  probe.k_tile = 16;
  probe.unroll = 4;

  Status last = Status::ok();
  double best_gflops = 0.0;
  for (const composer::Candidate& c : *candidates) {
    auto result = tuner.evaluate(v, c, probe);
    if (result.is_ok()) {
      best_gflops = std::max(best_gflops, result->gflops);
    } else {
      last = result.status();
    }
  }
  EXPECT_GT(best_gflops, 0.0)
      << v.name() << ": no candidate verified (" << last.to_string() << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllVariants, ::testing::ValuesIn(blas3::all_variants()),
    [](const ::testing::TestParamInfo<Variant>& info) {
      std::string n = info.param.name();
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace oa
