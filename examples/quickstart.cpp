// Quickstart: generate a tuned SYMM kernel for one GPU and use it.
//
//   $ ./examples/quickstart
//
// This walks the full OA pipeline of the paper's Fig 1 on one routine:
// the Adaptor_Symmetry rules are composed with the GEMM-NN EPOD script,
// the candidates are filtered, searched and verified, and the winning
// kernel is executed (on the simulated GTX285) against real matrices.
#include <cstdio>

#include "oa/oa.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

int main() {
  using namespace oa;
  set_log_level(LogLevel::kWarning);

  // 1. Pick a device and a routine.
  OaOptions options;
  options.tuning_size = 512;  // keep the demo snappy
  OaFramework framework(gpusim::gtx285(), options);
  const blas3::Variant symm = *blas3::find_variant("SYMM-LL");

  // 2. Show what the composer generated before the search.
  auto candidates = framework.candidates_for(symm);
  if (!candidates.is_ok()) {
    std::printf("composition failed: %s\n",
                candidates.status().to_string().c_str());
    return 1;
  }
  std::printf("composer produced %zu candidate EPOD scripts for %s\n\n",
              candidates->size(), symm.name().c_str());

  // 3. Generate: compose + filter + search + verify.
  auto tuned = framework.generate(symm);
  if (!tuned.is_ok()) {
    std::printf("generation failed: %s\n",
                tuned.status().to_string().c_str());
    return 1;
  }
  std::printf("best script (params %s):\n%s\n",
              tuned->params.to_string().c_str(),
              tuned->candidate.script.to_string().c_str());

  // 4. Use the generated kernel like a library call: C += A_sym * B.
  const int64_t n = 96;
  Rng rng(42);
  blas3::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(rng);
  a.make_triangular(blas3::Uplo::kLower);  // stored triangle only
  b.fill_random(rng);
  Status run = framework.run(tuned->program, symm, a, b, &c,
                             tuner::bools_for(tuned->candidate));
  if (!run.is_ok()) {
    std::printf("run failed: %s\n", run.to_string().c_str());
    return 1;
  }
  std::printf("executed SYMM-LL at n=%lld; C[0][0] = %f\n",
              static_cast<long long>(n), static_cast<double>(c.at(0, 0)));

  // 5. Report the speedup over the CUBLAS-like baseline at the paper's
  //    problem size.
  auto oa_gflops = framework.measure_gflops(*tuned, symm, 4096);
  auto baseline = baseline::cublas_like(symm, framework.device());
  if (oa_gflops.is_ok() && baseline.is_ok()) {
    auto base_gflops =
        framework.measure_baseline_gflops(*baseline, symm, 4096);
    if (base_gflops.is_ok()) {
      std::printf(
          "\nat N=4096 on %s: OA %.0f GFLOPS vs CUBLAS-like %.0f GFLOPS "
          "(%.2fx)\n",
          framework.device().name.c_str(), *oa_gflops, *base_gflops,
          *oa_gflops / *base_gflops);
    }
  }
  return 0;
}
