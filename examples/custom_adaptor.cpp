// Writing your own adaptor in ADL — the framework's extension story.
//
// The built-in adaptors cover transposition, symmetry and triangularity;
// this example defines a *banded* adaptor for a routine whose matrix is
// lower-banded (only k in [i - bw, i] contributes), reusing
// peel/padding_triangular to handle the resulting trapezoids, and
// composes it with the GEMM-NN script.
#include <cstdio>

#include "adl/adaptor.hpp"
#include "blas3/source_ir.hpp"
#include "composer/composer.hpp"
#include "epod/script.hpp"
#include "ir/printer.hpp"
#include "support/log.hpp"

int main() {
  using namespace oa;
  set_log_level(LogLevel::kWarning);

  // 1. Define the adaptor in ADL. Three alternatives: leave the banded
  //    access pattern as is, peel the band edges off the rectangular
  //    interior, or pad them (requires the blank area stored as zeros).
  auto adaptor = adl::parse_adaptor(R"(
    adaptor Adaptor_Banded(X):
      |
      | peel_triangular(X);
      | padding_triangular(X); {cond(blank(X).zero = true)}
  )");
  if (!adaptor.is_ok()) {
    std::printf("ADL parse failed: %s\n",
                adaptor.status().to_string().c_str());
    return 1;
  }
  std::printf("parsed:\n%s\n", adaptor->to_string().c_str());

  // 2. A banded source nest shares TRMM's trapezoid structure; we use
  //    TRMM-LL-N's labeled source here as the demonstrator.
  const blas3::Variant v = *blas3::find_variant("TRMM-LL-N");
  ir::Program source = blas3::make_source_program(v);
  std::printf("source loop nest:\n%s\n",
              ir::to_string(source.main_kernel()).c_str());

  // 3. Compose with the GEMM-NN tuning experience.
  transforms::TransformContext ctx;
  auto candidates = composer::compose(
      epod::gemm_nn_script(), {adaptor->bind("A")}, source, ctx);
  if (!candidates.is_ok()) {
    std::printf("composition failed: %s\n",
                candidates.status().to_string().c_str());
    return 1;
  }
  std::printf("composer generated %zu candidate scripts:\n\n",
              candidates->size());
  for (size_t i = 0; i < candidates->size(); ++i) {
    const composer::Candidate& c = (*candidates)[i];
    std::printf("--- candidate %zu ---\n%s", i + 1,
                c.script.to_string().c_str());
    for (const std::string& cond : c.conditions) {
      std::printf("  requires cond(%s)\n", cond.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
