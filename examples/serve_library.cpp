// Serve BLAS3 calls from a generated library artifact — the deployment
// half of the paper's pipeline (docs/ARTIFACT.md).
//
//   $ ./examples/serve_library                  generate a small library,
//                                               save, reload, serve
//   $ ./examples/serve_library --load lib.oalib serve an existing
//                                               artifact (CI smoke test)
//
// The serving process never composes or tunes anything: the
// LibraryRuntime rebuilds each tuned kernel from the artifact once and
// answers a mixed request stream through its dispatch table, falling
// back to the CUBLAS-like baseline for routines the artifact does not
// cover. Every answer is spot-checked against the CPU reference.
#include <cstdio>
#include <string>
#include <vector>

#include "blas3/reference.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "obs/metrics.hpp"
#include "runtime/library_runtime.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

using namespace oa;

namespace {

/// Inputs a library client would hand us (the conventions of
/// engine::verify_program).
void prepare(const blas3::Variant& v, Rng& rng, blas3::Matrix& a,
             blas3::Matrix& b) {
  a.fill_random(rng);
  b.fill_random(rng);
  if (v.family == blas3::Family::kTrmm ||
      v.family == blas3::Family::kTrsm ||
      v.family == blas3::Family::kSymm) {
    a.make_triangular(v.uplo);
  }
  if (v.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    a.scale_off_diagonal(1.0f / 16.0f);
  }
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarning);
  std::string load_path, save_path = "serve_library.oalib";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--load" && i + 1 < argc) {
      load_path = argv[++i];
    } else {
      std::printf("usage: serve_library [--load ARTIFACT]\n");
      return 2;
    }
  }
  const gpusim::DeviceModel& device = gpusim::gtx285();

  // 1. Obtain an artifact: load one, or generate a small library and
  //    round-trip it through disk (the serving process below only ever
  //    sees the reloaded copy).
  if (load_path.empty()) {
    OaOptions options;
    options.tuning_size = 256;  // keep the demo snappy
    options.verify_size = 48;
    OaFramework framework(device, options);
    std::printf("generating a 4-routine library on %s...\n",
                device.name.c_str());
    for (const char* name :
         {"GEMM-NN", "SYMM-LL", "TRMM-LL-N", "TRSM-LL-N"}) {
      auto tuned = framework.generate(*blas3::find_variant(name));
      if (!tuned.is_ok()) {
        std::printf("  %s failed: %s\n", name,
                    tuned.status().to_string().c_str());
        return 1;
      }
      std::printf("  %-10s %7.1f GFLOPS\n", name, tuned->gflops);
    }
    Status saved = libgen::save(framework.export_library(), save_path);
    if (!saved.is_ok()) {
      std::printf("save failed: %s\n", saved.to_string().c_str());
      return 1;
    }
    load_path = save_path;
  }
  auto artifact = libgen::load(load_path);
  if (!artifact.is_ok()) {
    std::printf("load failed: %s\n",
                artifact.status().to_string().c_str());
    return 1;
  }
  std::printf("loaded %zu entries from %s\n\n",
              artifact->entries.size(), load_path.c_str());

  // 2. Stand up the runtime and serve a mixed request stream: every
  //    artifact routine at several sizes (exact and near buckets), plus
  //    one routine the artifact may not cover at all.
  runtime::RuntimeOptions ropt;
  ropt.metrics = &obs::MetricsRegistry::global();
  runtime::LibraryRuntime rt(device, *std::move(artifact), ropt);
  if (!rt.load_status().is_ok()) {
    std::printf("degraded: %s\n", rt.load_status().to_string().c_str());
  }
  std::printf("dispatch table: %zu tuned kernel(s)\n", rt.table_size());

  std::vector<std::string> names;
  for (const libgen::ArtifactEntry& e : rt.snapshot()->artifact().entries) {
    names.push_back(e.variant);
  }
  names.push_back("GEMM-TT");  // likely a fallback

  Rng rng(7);
  int verified = 0, requests = 0;
  for (const std::string& name : names) {
    const blas3::Variant* v = blas3::find_variant(name);
    if (v == nullptr) continue;
    for (int64_t n : {64, 160, 256}) {
      const Precision p = v->precision;
      blas3::Matrix a(n, n, p), b(n, n, p), c(n, n, p);
      prepare(*v, rng, a, b);
      blas3::Matrix ref_b = b, ref_c = c;
      auto outcome = rt.run(*v, a, b, &c);
      ++requests;
      if (!outcome.is_ok()) {
        std::printf("%-10s n=%-4lld FAILED: %s\n", name.c_str(),
                    static_cast<long long>(n),
                    outcome.status().to_string().c_str());
        continue;
      }
      blas3::run_reference(*v, a, ref_b, &ref_c);
      const blas3::Matrix& got =
          v->family == blas3::Family::kTrsm ? b : c;
      const blas3::Matrix& want =
          v->family == blas3::Family::kTrsm ? ref_b : ref_c;
      const float err = blas3::max_abs_diff(got, want);
      const bool ok = err <= blas3::accumulation_tolerance(n);
      if (ok) ++verified;
      std::printf("%-10s n=%-4lld %-18s err=%.2g%s\n", name.c_str(),
                  static_cast<long long>(n),
                  runtime::outcome_name(*outcome),
                  static_cast<double>(err), ok ? "" : "  MISMATCH");
    }
  }

  std::printf("\n%s\n", rt.stats().to_string().c_str());

  // 3. Latency report straight from the runtime's metrics registry:
  //    one log2-bucketed histogram per final dispatch outcome.
  std::printf("\ndispatch latency by outcome (us):\n");
  for (const auto& [name, h] :
       rt.metrics().histograms_with_prefix("runtime.dispatch_us.")) {
    if (h->count() == 0) continue;
    std::printf("  %-20s count=%-5llu p50=%-8.0f p95=%-8.0f p99=%.0f\n",
                name.substr(std::string("runtime.dispatch_us.").size())
                    .c_str(),
                static_cast<unsigned long long>(h->count()),
                h->percentile(50), h->percentile(95), h->percentile(99));
  }

  std::printf("\n%d/%d answers match the CPU reference\n", verified,
              requests);
  return verified == requests ? 0 : 1;
}
