// A guided tour of the optimization components: applies the GEMM-NN
// EPOD script to the labeled source one component at a time, printing
// the kernel after every step — the transformation story of the
// paper's §III, made visible.
#include <cstdio>

#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "ir/printer.hpp"
#include "transforms/transform.hpp"

int main() {
  using namespace oa;
  const blas3::Variant v = *blas3::find_variant("GEMM-NN");
  ir::Program p = blas3::make_source_program(v);

  transforms::TransformContext ctx;
  ctx.params.block_tile_y = 32;
  ctx.params.block_tile_x = 16;
  ctx.params.threads_y = 32;
  ctx.params.threads_x = 1;
  ctx.params.k_tile = 8;
  ctx.params.unroll = 4;

  std::printf("=== labeled source (paper Fig 3, top) ===\n%s\n",
              ir::to_string(p.main_kernel()).c_str());

  const epod::Script& script = epod::gemm_nn_script();
  for (const transforms::Invocation& inv : script.invocations) {
    Status s = transforms::apply(p, inv, ctx);
    std::printf("=== after %s ===\n", inv.to_string().c_str());
    if (!s.is_ok()) {
      std::printf("(failed: %s)\n\n", s.to_string().c_str());
      continue;
    }
    std::printf("%s\n", ir::to_string(p.main_kernel()).c_str());
  }

  std::printf(
      "note how:\n"
      " * thread_grouping split i/j into block, thread and point "
      "levels;\n"
      " * loop_tiling hoisted the kk loop and placed the reduction "
      "between the\n   register-block point loops (Volkov order);\n"
      " * SM_alloc staged the transposed B tile with a padded leading\n"
      "   dimension (bank conflicts) and barriers;\n"
      " * reg_alloc gave each thread a private C block with a guarded "
      "flush.\n");
  return 0;
}
