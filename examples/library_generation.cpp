// Library generation — the paper's end product: generate tuned kernels
// for a whole BLAS3 family on every simulated GPU, verify each against
// the CPU reference, and print the resulting "library card".
//
//   $ ./examples/library_generation            # one family (SYMM)
//   $ ./examples/library_generation TRMM       # pick a family
#include <cstdio>
#include <cstring>

#include "oa/oa.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/strings.hpp"
#include "tuner/tuner.hpp"

int main(int argc, char** argv) {
  using namespace oa;
  set_log_level(LogLevel::kWarning);
  const char* family = argc > 1 ? argv[1] : "SYMM";

  std::vector<const blas3::Variant*> variants;
  for (const auto* catalog :
       {&blas3::all_variants(), &blas3::extension_variants()}) {
    for (const blas3::Variant& v : *catalog) {
      if (std::strncmp(v.name().c_str(), family, std::strlen(family)) ==
          0) {
        variants.push_back(&v);
      }
    }
  }
  if (variants.empty()) {
    std::printf(
        "unknown family '%s' (use GEMM, SYMM, TRMM, TRSM or SYRK)\n",
        family);
    return 1;
  }

  for (const gpusim::DeviceModel* device : gpusim::all_devices()) {
    OaOptions options;
    options.tuning_size = 512;
    OaFramework framework(*device, options);
    std::printf("=== %s ===\n", device->name.c_str());
    TextTable table({"routine", "GFLOPS@1024", "verified", "parameters",
                     "script components"});
    for (const blas3::Variant* v : variants) {
      auto tuned = framework.generate(*v);
      if (!tuned.is_ok()) {
        table.add_row({v->name(), "-", "no", "-",
                       tuned.status().to_string()});
        continue;
      }
      // Independent re-verification at a different size than the tuner
      // used.
      Status verified = tuner::verify_program(
          framework.simulator(), *v, tuned->program, 96,
          tuner::bools_for(tuned->candidate));
      auto gflops = framework.measure_gflops(*tuned, *v, 1024);
      std::vector<std::string> comps;
      for (const auto& inv : tuned->candidate.script.invocations) {
        comps.push_back(inv.component);
      }
      table.add_row({v->name(),
                     gflops.is_ok() ? str_format("%.0f", *gflops) : "-",
                     verified.is_ok() ? "yes" : "NO",
                     tuned->params.to_string(), join(comps, ",")});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
