// Native execution backend throughput benchmark (docs/EXECUTION.md).
//
//   $ ./bench/exec_throughput [--out BENCH_exec.json] [--n N]
//                             [--reps N] [--quick]
//
// Times the same tuned kernels through both functional backends:
//
//   interpreter — engine::execute_program (the lockstep gpusim
//                 functional path every prior PR served results with);
//   native      — exec::execute_program (lowered tapes, x86-64 JIT
//                 where the host supports it, portable executor
//                 otherwise).
//
// For tuned GEMM-NN and DGEMM-NN it reports ms/run and
// GFLOP-equivalent throughput (2*M*N*K per run) for each backend, the
// speedup, the max |diff| between the two results (must be within the
// accumulation tolerance; bit-equal on race-free kernels), and the
// exec-cache counters proving that warm re-execution compiles nothing.
//
// Results land in BENCH_exec.json (schema-checked and uploaded by the
// CI tier-1 lane, which asserts native >= 10x interpreter on tuned
// GEMM-NN and warm_recompiles == 0).
//
// A third, batched row times tuned GEMM_BATCHED-NN at batch=256 with
// 64x64 members: the fused native batched path (one run_batched) vs
// per-member dispatch (256 interpreter requests, the pre-batched
// serving path). The process exits non-zero unless that row shows
// >= 5x.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "engine/evaluation_engine.hpp"
#include "exec/executor.hpp"
#include "exec/jit_x86.hpp"
#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "obs/trace.hpp"
#include "runtime/library_runtime.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace oa {
namespace {

using blas3::Matrix;
using blas3::Variant;

struct Row {
  std::string variant;
  int64_t n = 0;
  int64_t batch = 0;  // 0 = single row; else the batched-family row
  double interp_ms = 0.0;        // per run
  double native_ms = 0.0;        // per run
  double interp_gflops = 0.0;
  double native_gflops = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
  bool within_tolerance = false;
  int64_t warm_recompiles = 0;   // compiles during the timed loop
  int64_t cache_compiles = 0;    // total over the variant's lifetime
  int64_t cache_hits = 0;
  int64_t jit_kernels = 0;
  int64_t portable_kernels = 0;
};

Row bench_variant(const gpusim::Simulator& sim,
                  const runtime::DispatchSnapshot::Entry& entry,
                  int64_t n, int interp_reps, int native_reps,
                  exec::ExecCache& cache) {
  const Variant& v = *entry.variant;
  const Precision p = v.precision;
  Rng rng(0xE8EC ^ static_cast<uint64_t>(n));
  Matrix a(n, n, p), b(n, n, p), c(n, n, p);
  a.fill_random(rng);
  b.fill_random(rng);

  Row row;
  row.variant = v.name();
  row.n = n;

  // Interpreter: one warm-up run (also the correctness reference),
  // then the timed loop.
  Matrix ib = b, ic = c;
  Status interp = engine::execute_program(sim, entry.program, v, a, ib,
                                          &ic, entry.bool_params);
  if (!interp.is_ok()) {
    std::fprintf(stderr, "exec_throughput: interpreter %s: %s\n",
                 v.name().c_str(), interp.to_string().c_str());
    std::exit(1);
  }
  double t0 = obs::now_us();
  for (int r = 0; r < interp_reps; ++r) {
    Matrix tb = b, tc = c;
    (void)engine::execute_program(sim, entry.program, v, a, tb, &tc,
                                  entry.bool_params);
  }
  row.interp_ms = (obs::now_us() - t0) / 1000.0 / interp_reps;

  // Native: the first run compiles + lowers (cold). Everything after
  // it must be pure cache hits — `warm_recompiles` proves it.
  Matrix nb = b, nc = c;
  Status native = exec::execute_program(sim.device(), entry.program, v,
                                        a, nb, &nc, entry.bool_params,
                                        cache);
  if (!native.is_ok()) {
    std::fprintf(stderr, "exec_throughput: native %s: %s\n",
                 v.name().c_str(), native.to_string().c_str());
    std::exit(1);
  }
  const int64_t compiles_before = cache.stats().compiles;
  t0 = obs::now_us();
  for (int r = 0; r < native_reps; ++r) {
    Matrix tb = b, tc = c;
    (void)exec::execute_program(sim.device(), entry.program, v, a, tb,
                                &tc, entry.bool_params, cache);
  }
  row.native_ms = (obs::now_us() - t0) / 1000.0 / native_reps;
  row.warm_recompiles = cache.stats().compiles - compiles_before;

  const double flop = 2.0 * static_cast<double>(n) * n * n;
  row.interp_gflops =
      row.interp_ms > 0 ? flop / (row.interp_ms * 1e6) : 0.0;
  row.native_gflops =
      row.native_ms > 0 ? flop / (row.native_ms * 1e6) : 0.0;
  row.speedup = row.native_ms > 0 ? row.interp_ms / row.native_ms : 0.0;

  row.max_abs_diff = blas3::max_abs_diff(ic, nc);
  row.within_tolerance =
      row.max_abs_diff <= blas3::accumulation_tolerance(n, p);

  const exec::ExecStats stats = cache.stats();
  row.cache_compiles = stats.compiles;
  row.cache_hits = stats.cache_hits;
  row.jit_kernels = stats.jit_kernels;
  row.portable_kernels = stats.portable_kernels;

  std::printf(
      "%-10s n=%-4lld interp %9.2f ms (%6.2f GF)  native %7.3f ms "
      "(%7.2f GF)  speedup %6.1fx  diff=%g%s  warm_recompiles=%lld\n",
      v.name().c_str(), static_cast<long long>(n), row.interp_ms,
      row.interp_gflops, row.native_ms, row.native_gflops, row.speedup,
      row.max_abs_diff, row.within_tolerance ? "" : "  OFF-TOLERANCE",
      static_cast<long long>(row.warm_recompiles));
  return row;
}

/// Batched-family row: the fused native batched path
/// (exec::execute_batched — one compile/gate, one sweep over count x
/// blocks, the serving path run_batched takes under
/// ExecutionMode::kNative) against per-member dispatch — the same 256
/// members issued as 256 independent requests through the default
/// (interpreter) serving path, which is the only way a pre-batched
/// library could answer this workload. The speedup is the end-to-end
/// win of the batched family. For the Row fields, interp_* carries the
/// per-member-dispatch leg and native_* the fused leg (the JSON writer
/// renames them for batched rows).
Row bench_batched(const gpusim::Simulator& sim,
                  const runtime::DispatchSnapshot::Entry& entry,
                  int64_t member_n, int64_t batch, int per_member_reps,
                  int fused_reps, exec::ExecCache& cache) {
  const Variant& v = *entry.variant;
  const Precision p = v.precision;
  Rng rng(0xBA7C4 ^ static_cast<uint64_t>(member_n));
  std::vector<Matrix> a, b, c;
  for (int64_t i = 0; i < batch; ++i) {
    Matrix ai(member_n, member_n, p), bi(member_n, member_n, p);
    ai.fill_random(rng);
    bi.fill_random(rng);
    a.push_back(std::move(ai));
    b.push_back(std::move(bi));
    c.emplace_back(member_n, member_n, p);
  }

  Row row;
  row.variant = v.name();
  row.n = member_n;
  row.batch = batch;

  auto run_per_member = [&](std::vector<Matrix>& tb,
                            std::vector<Matrix>& tc) -> Status {
    for (int64_t i = 0; i < batch; ++i) {
      OA_RETURN_IF_ERROR(engine::execute_program(
          sim, entry.program, v, a[static_cast<size_t>(i)],
          tb[static_cast<size_t>(i)], &tc[static_cast<size_t>(i)],
          entry.bool_params));
    }
    return Status::ok();
  };

  // Per-member dispatch leg: warm-up (also the correctness reference),
  // then the timed loop.
  std::vector<Matrix> ib = b, ic = c;
  Status per_member = run_per_member(ib, ic);
  if (!per_member.is_ok()) {
    std::fprintf(stderr, "exec_throughput: per-member %s: %s\n",
                 v.name().c_str(), per_member.to_string().c_str());
    std::exit(1);
  }
  double t0 = obs::now_us();
  for (int r = 0; r < per_member_reps; ++r) {
    std::vector<Matrix> tb = b, tc = c;
    (void)run_per_member(tb, tc);
  }
  row.interp_ms = (obs::now_us() - t0) / 1000.0 / per_member_reps;

  // Fused leg: everything after the (already warm) first run must be
  // cache hits.
  std::vector<Matrix> nb = b, nc = c;
  Status fused = exec::execute_batched(sim.device(), entry.program, v, a,
                                       nb, &nc, entry.bool_params, cache);
  if (!fused.is_ok()) {
    std::fprintf(stderr, "exec_throughput: fused %s: %s\n",
                 v.name().c_str(), fused.to_string().c_str());
    std::exit(1);
  }
  const int64_t compiles_before = cache.stats().compiles;
  t0 = obs::now_us();
  for (int r = 0; r < fused_reps; ++r) {
    std::vector<Matrix> tb = b, tc = c;
    (void)exec::execute_batched(sim.device(), entry.program, v, a, tb,
                                &tc, entry.bool_params, cache);
  }
  row.native_ms = (obs::now_us() - t0) / 1000.0 / fused_reps;
  row.warm_recompiles = cache.stats().compiles - compiles_before;

  const double flop = 2.0 * static_cast<double>(batch) * member_n *
                      member_n * member_n;
  row.interp_gflops =
      row.interp_ms > 0 ? flop / (row.interp_ms * 1e6) : 0.0;
  row.native_gflops =
      row.native_ms > 0 ? flop / (row.native_ms * 1e6) : 0.0;
  row.speedup = row.native_ms > 0 ? row.interp_ms / row.native_ms : 0.0;

  double diff = 0.0;
  for (int64_t i = 0; i < batch; ++i) {
    diff = std::max(diff, blas3::max_abs_diff(ic[static_cast<size_t>(i)],
                                              nc[static_cast<size_t>(i)]));
  }
  row.max_abs_diff = diff;
  row.within_tolerance =
      diff <= blas3::accumulation_tolerance(member_n, p);

  const exec::ExecStats stats = cache.stats();
  row.cache_compiles = stats.compiles;
  row.cache_hits = stats.cache_hits;
  row.jit_kernels = stats.jit_kernels;
  row.portable_kernels = stats.portable_kernels;

  std::printf(
      "%-10s n=%-4lld batch=%-4lld per-member %9.2f ms (%6.2f GF)  "
      "fused %7.3f ms (%7.2f GF)  speedup %6.1fx  diff=%g%s  "
      "warm_recompiles=%lld\n",
      v.name().c_str(), static_cast<long long>(member_n),
      static_cast<long long>(batch), row.interp_ms, row.interp_gflops,
      row.native_ms, row.native_gflops, row.speedup, row.max_abs_diff,
      row.within_tolerance ? "" : "  OFF-TOLERANCE",
      static_cast<long long>(row.warm_recompiles));
  return row;
}

void write_json(const std::string& path, const gpusim::DeviceModel& device,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exec_throughput: cannot write %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"exec_throughput\",\n");
  std::fprintf(f, "  \"device\": \"%s\",\n", device.name.c_str());
  std::fprintf(f, "  \"jit_supported\": %s,\n",
               exec::jit_supported() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (r.batch > 0) {
      // Batched row: both legs are native; the keys name the batching
      // contrast instead of the backend contrast.
      std::fprintf(
          f,
          "    {\"variant\": \"%s\", \"n\": %lld, \"batch\": %lld, "
          "\"per_member_ms_per_run\": %.4f, \"fused_ms_per_run\": %.4f, "
          "\"per_member_gflops\": %.4f, \"fused_gflops\": %.4f, "
          "\"speedup\": %.2f, \"max_abs_diff\": %g, "
          "\"within_tolerance\": %s, \"warm_recompiles\": %lld}%s\n",
          r.variant.c_str(), static_cast<long long>(r.n),
          static_cast<long long>(r.batch), r.interp_ms, r.native_ms,
          r.interp_gflops, r.native_gflops, r.speedup, r.max_abs_diff,
          r.within_tolerance ? "true" : "false",
          static_cast<long long>(r.warm_recompiles),
          i + 1 < rows.size() ? "," : "");
      continue;
    }
    std::fprintf(
        f,
        "    {\"variant\": \"%s\", \"n\": %lld, "
        "\"interp_ms_per_run\": %.4f, \"native_ms_per_run\": %.4f, "
        "\"interp_gflops\": %.4f, \"native_gflops\": %.4f, "
        "\"speedup\": %.2f, \"max_abs_diff\": %g, "
        "\"within_tolerance\": %s, \"warm_recompiles\": %lld, "
        "\"cache_compiles\": %lld, \"cache_hits\": %lld, "
        "\"jit_kernels\": %lld, \"portable_kernels\": %lld}%s\n",
        r.variant.c_str(), static_cast<long long>(r.n), r.interp_ms,
        r.native_ms, r.interp_gflops, r.native_gflops, r.speedup,
        r.max_abs_diff, r.within_tolerance ? "true" : "false",
        static_cast<long long>(r.warm_recompiles),
        static_cast<long long>(r.cache_compiles),
        static_cast<long long>(r.cache_hits),
        static_cast<long long>(r.jit_kernels),
        static_cast<long long>(r.portable_kernels),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace oa

int main(int argc, char** argv) {
  using namespace oa;
  set_log_level(LogLevel::kWarning);

  std::string out_path = "BENCH_exec.json";
  int64_t n = 256;
  int interp_reps = 3;
  int native_reps = 30;
  int64_t tuning_size = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::atoll(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      native_reps = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      n = 192;
      interp_reps = 1;
      native_reps = 10;
      tuning_size = 128;
    } else {
      std::printf(
          "usage: exec_throughput [--out FILE] [--n N] [--reps N] "
          "[--quick]\n");
      return 2;
    }
  }

  const gpusim::DeviceModel& device = gpusim::gtx285();
  gpusim::Simulator sim(device);
  OaOptions options;
  options.tuning_size = tuning_size;
  options.verify_size = 48;
  OaFramework framework(device, options);
  std::printf("tuning the bench kernels on %s...\n", device.name.c_str());
  for (const char* name : {"GEMM-NN", "DGEMM-NN", "GEMM_BATCHED-NN"}) {
    auto tuned = framework.generate(*blas3::find_variant(name));
    if (!tuned.is_ok()) {
      std::printf("  %s failed: %s\n", name,
                  tuned.status().to_string().c_str());
      return 1;
    }
  }
  const libgen::Artifact artifact = framework.export_library();
  runtime::LibraryRuntime rt(device, artifact);
  std::shared_ptr<const runtime::DispatchSnapshot> snap = rt.snapshot();

  std::vector<Row> rows;
  exec::ExecCache cache;
  for (const runtime::DispatchSnapshot::Entry& entry : snap->entries()) {
    if (entry.variant->batch != blas3::Batch::kSingle) {
      rows.push_back(bench_batched(sim, entry, /*member_n=*/64,
                                   /*batch=*/256, interp_reps,
                                   native_reps, cache));
    } else {
      rows.push_back(bench_variant(sim, entry, n, interp_reps,
                                   native_reps, cache));
    }
  }

  write_json(out_path, device, rows);

  bool ok = !rows.empty();
  bool saw_batched = false;
  for (const Row& r : rows) {
    ok = ok && r.within_tolerance && r.warm_recompiles == 0 &&
         r.speedup > 1.0;
    // The batched acceptance bar: the fused path must beat per-member
    // dispatch by >= 5x at batch=256, 64x64 members.
    if (r.batch > 0) {
      saw_batched = true;
      ok = ok && r.speedup >= 5.0;
    }
  }
  return ok && saw_batched ? 0 : 1;
}
