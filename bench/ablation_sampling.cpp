// Ablation (DESIGN.md §6.1): sampled vs exhaustive performance
// simulation. The launcher classifies thread blocks by workload
// signature and interpolates between sampled classes; this bench
// quantifies the counter error and the speedup of sampling on the
// triangular routines (where every block row is its own class).
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "support/strings.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oa;
  int64_t n = 1024;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--size" && i + 1 < argc) {
      n = std::atoll(argv[++i]);
    }
  }
  std::printf(
      "== Ablation: sampled vs exhaustive performance simulation "
      "(N = %lld) ==\n\n",
      static_cast<long long>(n));

  gpusim::Simulator sim(gpusim::gtx285());
  TextTable table({"routine", "mode", "classes", "instr (M)", "bytes (MB)",
                   "sim wall (s)", "instr err"});

  for (const char* name : {"GEMM-NN", "TRMM-LL-N", "TRMM-LU-N"}) {
    const blas3::Variant v = *blas3::find_variant(name);
    ir::Program p = blas3::make_source_program(v);
    transforms::TransformContext ctx;
    auto script = epod::parse_script(R"(
      (Lii, Ljj) = thread_grouping(Li, Lj);
      (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
      loop_unroll(Ljjj, Lkkk);
      SM_alloc(B, Transpose);
      reg_alloc(C);
    )");
    if (!script.is_ok()) return 1;
    if (!epod::apply_script_lenient(p, *script, ctx).is_ok()) return 1;

    gpusim::RunOptions opts;
    opts.int_params = v.family == blas3::Family::kGemm
                          ? ir::Env{{"M", n}, {"N", n}, {"K", n}}
                          : ir::Env{{"M", n}, {"N", n}};
    opts.warps_per_block_sample = 0;  // isolate the class-sampling effect

    opts.max_sampled_classes = 1 << 20;
    auto t0 = std::chrono::steady_clock::now();
    auto exact = sim.run_performance(p, opts);
    const double exact_wall = seconds_since(t0);
    if (!exact.is_ok()) {
      std::printf("%s: %s\n", name, exact.status().to_string().c_str());
      continue;
    }

    opts.max_sampled_classes = 8;
    t0 = std::chrono::steady_clock::now();
    auto sampled = sim.run_performance(p, opts);
    const double sampled_wall = seconds_since(t0);
    if (!sampled.is_ok()) continue;

    const double err =
        std::abs(static_cast<double>(sampled->counters.instructions) -
                 static_cast<double>(exact->counters.instructions)) /
        static_cast<double>(exact->counters.instructions);
    table.add_row({name, "exhaustive", "all",
                   str_format("%.0f", exact->counters.instructions / 1e6),
                   str_format("%.0f", exact->counters.global_bytes / 1e6),
                   str_format("%.3f", exact_wall), "-"});
    table.add_row({name, "sampled (<=8)", "8",
                   str_format("%.0f", sampled->counters.instructions / 1e6),
                   str_format("%.0f", sampled->counters.global_bytes / 1e6),
                   str_format("%.3f", sampled_wall),
                   str_format("%.2f%%", err * 100)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "counters are affine in the block row for BLAS3 trapezoids, so\n"
      "endpoint interpolation is near-exact while simulating far fewer "
      "blocks.\n");
  return 0;
}
