// google-benchmark microbenchmarks for the simulator substrate itself:
// kernel compilation, warp-level block interpretation (ghost and
// functional), and the dependence tester. These guard the costs that
// the tuner's search multiplies by thousands.
#include <benchmark/benchmark.h>

#include "blas3/matrix.hpp"
#include "blas3/source_ir.hpp"
#include "deps/dependence.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace {

using namespace oa;

ir::Program tuned_gemm() {
  ir::Program p =
      blas3::make_source_program(*blas3::find_variant("GEMM-NN"));
  transforms::TransformContext ctx;
  auto mask = epod::apply_script_lenient(p, epod::gemm_nn_script(), ctx);
  if (!mask.is_ok()) std::abort();
  return p;
}

void BM_CompileKernel(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  ir::Env params{{"M", 1024}, {"N", 1024}, {"K", 1024}};
  for (auto _ : state) {
    auto compiled =
        gpusim::compile_kernel(p, p.main_kernel(), params, {});
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileKernel);

void BM_BlockSimGhost(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  ir::Env params{{"M", 256}, {"N", 256}, {"K", 256}};
  auto compiled = gpusim::compile_kernel(p, p.main_kernel(), params, {});
  if (!compiled.is_ok()) std::abort();
  const auto& dev = gpusim::gtx285();
  int64_t flops = 0;
  for (auto _ : state) {
    gpusim::BlockSim sim(*compiled, dev, /*functional=*/false, nullptr);
    gpusim::Counters c;
    if (!sim.run(0, 0, 0, static_cast<int>(
                              compiled->launch.threads_per_block()),
                 c)
             .is_ok()) {
      std::abort();
    }
    flops += c.flops;
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(flops);
}
BENCHMARK(BM_BlockSimGhost);

void BM_FunctionalGemm64(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  gpusim::Simulator sim(gpusim::gtx285());
  gpusim::RunOptions opts;
  opts.int_params = {{"M", 64}, {"N", 64}, {"K", 64}};
  Rng rng(1);
  blas3::Matrix a(64, 64), b(64, 64), c(64, 64);
  a.fill_random(rng);
  b.fill_random(rng);
  for (auto _ : state) {
    gpusim::GlobalBuffers buffers = gpusim::make_buffers(
        p, opts.int_params, {{"A", &a}, {"B", &b}, {"C", &c}});
    auto result = sim.run_functional(p, opts, buffers);
    if (!result.is_ok()) std::abort();
    benchmark::DoNotOptimize(buffers);
  }
}
BENCHMARK(BM_FunctionalGemm64);

void BM_PerformanceGemm1024(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  gpusim::Simulator sim(gpusim::gtx285());
  gpusim::RunOptions opts;
  opts.int_params = {{"M", 1024}, {"N", 1024}, {"K", 1024}};
  for (auto _ : state) {
    auto result = sim.run_performance(p, opts);
    if (!result.is_ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PerformanceGemm1024);

void BM_DependenceTest(benchmark::State& state) {
  ir::Program p =
      blas3::make_source_program(*blas3::find_variant("TRSM-LL-N"));
  const ir::Node* li = p.main_kernel().find("Li");
  ir::Env params{{"M", 256}, {"N", 256}};
  for (auto _ : state) {
    bool carried = deps::carries_dependence(p.main_kernel(), *li, params,
                                            deps::Mode::kStrict);
    benchmark::DoNotOptimize(carried);
  }
}
BENCHMARK(BM_DependenceTest);

}  // namespace

BENCHMARK_MAIN();
