// google-benchmark microbenchmarks for the simulator substrate itself:
// kernel compilation, warp-level block interpretation (ghost and
// functional), and the dependence tester. These guard the costs that
// the tuner's search multiplies by thousands.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/source_ir.hpp"
#include "deps/dependence.hpp"
#include "epod/script.hpp"
#include "gpusim/simulator.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace {

using namespace oa;

ir::Program tuned_gemm(const char* variant = "GEMM-NN") {
  ir::Program p = blas3::make_source_program(*blas3::find_variant(variant));
  transforms::TransformContext ctx;
  auto mask = epod::apply_script_lenient(p, epod::gemm_nn_script(), ctx);
  if (!mask.is_ok()) std::abort();
  return p;
}

void BM_CompileKernel(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  ir::Env params{{"M", 1024}, {"N", 1024}, {"K", 1024}};
  for (auto _ : state) {
    auto compiled =
        gpusim::compile_kernel(p, p.main_kernel(), params, {});
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileKernel);

void ghost_block_bench(benchmark::State& state, bool fastpath) {
  ir::Program p = tuned_gemm();
  ir::Env params{{"M", 256}, {"N", 256}, {"K", 256}};
  auto compiled = gpusim::compile_kernel(p, p.main_kernel(), params, {});
  if (!compiled.is_ok()) std::abort();
  const auto& dev = gpusim::gtx285();
  int64_t flops = 0;
  for (auto _ : state) {
    gpusim::BlockSim sim(*compiled, dev, /*functional=*/false, nullptr,
                         fastpath);
    gpusim::Counters c;
    if (!sim.run(0, 0, 0, static_cast<int>(
                              compiled->launch.threads_per_block()),
                 c)
             .is_ok()) {
      std::abort();
    }
    flops += c.flops;
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(flops);
}

void BM_BlockSimGhost(benchmark::State& state) {
  ghost_block_bench(state, /*fastpath=*/true);
}
BENCHMARK(BM_BlockSimGhost);

void BM_BlockSimGhostInterp(benchmark::State& state) {
  ghost_block_bench(state, /*fastpath=*/false);
}
BENCHMARK(BM_BlockSimGhostInterp);

void BM_FunctionalGemm64(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  gpusim::Simulator sim(gpusim::gtx285());
  gpusim::RunOptions opts;
  opts.int_params = {{"M", 64}, {"N", 64}, {"K", 64}};
  Rng rng(1);
  blas3::Matrix a(64, 64), b(64, 64), c(64, 64);
  a.fill_random(rng);
  b.fill_random(rng);
  for (auto _ : state) {
    gpusim::GlobalBuffers buffers = gpusim::make_buffers(
        p, opts.int_params, {{"A", &a}, {"B", &b}, {"C", &c}});
    auto result = sim.run_functional(p, opts, buffers);
    if (!result.is_ok()) std::abort();
    benchmark::DoNotOptimize(buffers);
  }
}
BENCHMARK(BM_FunctionalGemm64);

void BM_PerformanceGemm1024(benchmark::State& state) {
  ir::Program p = tuned_gemm();
  gpusim::Simulator sim(gpusim::gtx285());
  gpusim::RunOptions opts;
  opts.int_params = {{"M", 1024}, {"N", 1024}, {"K", 1024}};
  for (auto _ : state) {
    auto result = sim.run_performance(p, opts);
    if (!result.is_ok()) std::abort();
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_PerformanceGemm1024);

void BM_DependenceTest(benchmark::State& state) {
  ir::Program p =
      blas3::make_source_program(*blas3::find_variant("TRSM-LL-N"));
  const ir::Node* li = p.main_kernel().find("Li");
  ir::Env params{{"M", 256}, {"N", 256}};
  for (auto _ : state) {
    bool carried = deps::carries_dependence(p.main_kernel(), *li, params,
                                            deps::Mode::kStrict);
    benchmark::DoNotOptimize(carried);
  }
}
BENCHMARK(BM_DependenceTest);

// ---- --json: fast-path speedup report (BENCH_sim.json) --------------
//
// Runs the tuned GEMM-NN and DGEMM-NN ghost simulations of one block
// at N=4096 on every device preset, fast path on vs off, and writes
// per-device, per-precision ns/block, speedup, and fast-path coverage
// (f64's 8-byte accesses price differently, so its ghost throughput is
// tracked separately). CI uploads the file as an artifact;
// EXPERIMENTS.md records representative numbers.

struct DeviceReport {
  std::string name;
  std::string precision;
  double interp_ns = 0.0;
  double fast_ns = 0.0;
  double coverage = 0.0;
  int64_t collapsed_loops = 0;
  double speedup() const { return fast_ns > 0 ? interp_ns / fast_ns : 0; }
};

double time_ghost_block(const gpusim::CompiledKernel& ck,
                        const gpusim::DeviceModel& dev, bool fastpath,
                        gpusim::FastPathStats* stats_out) {
  const int threads = static_cast<int>(ck.launch.threads_per_block());
  auto run_once = [&]() {
    gpusim::BlockSim sim(ck, dev, /*functional=*/false, nullptr, fastpath);
    gpusim::Counters c;
    if (!sim.run(0, 0, 0, threads, c).is_ok()) std::abort();
    if (stats_out != nullptr) *stats_out = sim.fastpath_stats();
  };
  run_once();  // warmup
  double elapsed = 0.0;
  int iters = 0;
  do {
    const auto t0 = std::chrono::steady_clock::now();
    run_once();
    elapsed += std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    ++iters;
  } while (elapsed < 0.2 && iters < 1000);
  return elapsed / iters * 1e9;
}

int write_json_report(const std::string& path) {
  ir::Env params{{"M", 4096}, {"N", 4096}, {"K", 4096}};
  const std::vector<std::pair<std::string, const gpusim::DeviceModel*>>
      devices = {{"geforce9800", &gpusim::geforce_9800()},
                 {"gtx285", &gpusim::gtx285()},
                 {"fermi", &gpusim::fermi_c2050()}};
  const std::vector<std::pair<const char*, const char*>> precisions = {
      {"f32", "GEMM-NN"}, {"f64", "DGEMM-NN"}};
  std::vector<DeviceReport> reports;
  for (const auto& [prec, variant] : precisions) {
    ir::Program p = tuned_gemm(variant);
    for (const auto& [name, dev] : devices) {
      auto compiled =
          gpusim::compile_kernel(p, p.main_kernel(), params, {});
      if (!compiled.is_ok()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     compiled.status().to_string().c_str());
        return 1;
      }
      DeviceReport r;
      r.name = name;
      r.precision = prec;
      gpusim::FastPathStats stats;
      r.interp_ns = time_ghost_block(*compiled, *dev, false, nullptr);
      r.fast_ns = time_ghost_block(*compiled, *dev, true, &stats);
      r.coverage = stats.coverage();
      r.collapsed_loops = stats.collapsed_loops;
      reports.push_back(r);
      std::printf(
          "%-12s %s interp %12.0f ns/block   fast %9.0f ns/block   "
          "speedup %6.2fx   coverage %5.1f%%\n",
          name.c_str(), prec, r.interp_ns, r.fast_ns, r.speedup(),
          r.coverage * 100.0);
    }
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"gpusim_fastpath\",\n"
      << "  \"problem\": \"tuned GEMM-NN / DGEMM-NN, N=4096, ghost "
         "mode, one block\",\n  \"devices\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const DeviceReport& r = reports[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"device\": \"%s\", \"precision\": \"%s\", "
                  "\"interp_ns_per_block\": %.0f, "
                  "\"fast_ns_per_block\": %.0f, \"speedup\": %.2f, "
                  "\"fastpath_coverage\": %.4f, \"collapsed_loops\": "
                  "%lld}%s\n",
                  r.name.c_str(), r.precision.c_str(), r.interp_ns,
                  r.fast_ns, r.speedup(), r.coverage,
                  static_cast<long long>(r.collapsed_loops),
                  i + 1 < reports.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --json <path> before google-benchmark parses the rest.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!json_path.empty()) return write_json_report(json_path);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
