// Figure 12: performance of the 24 BLAS3 variants on Fermi Tesla C2050
// vs the CUBLAS-3.2-like baseline (paper §V-A).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace oa::bench;
  FigureOptions options;
  options.csv_path = "fig12_fermi.csv";
  options = parse_figure_args(argc, argv, options);
  auto rows = run_figure(oa::gpusim::fermi_c2050(), options);
  report_figure("Fig 12: BLAS3 on Fermi Tesla C2050", rows, options);
  return 0;
}
