// Shared implementation for Tables I-III: cuda_profile-style counter
// comparison of OA vs the CUBLAS-like SYMM at size 4096 (per-SM counts,
// as the paper's profiler reports).
#pragma once

#include <cstdio>

#include "bench_common.hpp"
#include "support/strings.hpp"

namespace oa::bench {

inline int run_symm_profile_table(const gpusim::DeviceModel& device,
                                  const char* title, bool fermi_style,
                                  int argc, char** argv) {
  FigureOptions options;
  options.problem_size = 4096;
  options = parse_figure_args(argc, argv, options);

  OaOptions oa_options;
  oa_options.tuning_size = options.tuning_size;
  OaFramework framework(device, oa_options);
  const blas3::Variant v = *blas3::find_variant("SYMM-LL");

  auto tuned = framework.generate(v);
  if (!tuned.is_ok()) {
    std::printf("OA generation failed: %s\n",
                tuned.status().to_string().c_str());
    return 1;
  }
  auto cublas = baseline::cublas_like(v, device);
  if (!cublas.is_ok()) {
    std::printf("baseline failed: %s\n",
                cublas.status().to_string().c_str());
    return 1;
  }
  auto oa_prof = framework.profile(tuned->program, v, options.problem_size,
                                   tuner::bools_for(tuned->candidate));
  auto cu_prof = framework.profile(*cublas, v, options.problem_size);
  if (!oa_prof.is_ok() || !cu_prof.is_ok()) {
    std::printf("profiling failed\n");
    return 1;
  }

  std::printf("== %s ==\n(SYMM-LL, N = %lld, per-SM profiler counts)\n\n",
              title, static_cast<long long>(options.problem_size));
  TextTable table({"Events", "CUBLAS-like", "OA"});
  auto add = [&](const char* name, int64_t cu, int64_t oa) {
    table.add_row({name, format_millions(cu), format_millions(oa)});
  };
  if (fermi_style) {
    add("gld_request", cu_prof->gld_request, oa_prof->gld_request);
    add("gst_request", cu_prof->gst_request, oa_prof->gst_request);
    add("local_read", cu_prof->local_read, oa_prof->local_read);
    add("local_store", cu_prof->local_store, oa_prof->local_store);
    add("inst_executed", cu_prof->instructions, oa_prof->instructions);
  } else {
    add("gld_incoherent", cu_prof->gld_incoherent, oa_prof->gld_incoherent);
    add("gld_coherent", cu_prof->gld_coherent, oa_prof->gld_coherent);
    add("gst_incoherent", cu_prof->gst_incoherent, oa_prof->gst_incoherent);
    add("gst_coherent", cu_prof->gst_coherent, oa_prof->gst_coherent);
    add("instructions", cu_prof->instructions, oa_prof->instructions);
  }
  std::printf("%s\n", table.to_string().c_str());

  const double inst_ratio =
      oa_prof->instructions > 0
          ? static_cast<double>(cu_prof->instructions) /
                static_cast<double>(oa_prof->instructions)
          : 0.0;
  std::printf("instruction ratio (CUBLAS-like / OA): %.2fx\n", inst_ratio);
  if (!fermi_style) {
    std::printf("OA non-coalesced loads: %lld (paper: completely removed)\n",
                static_cast<long long>(oa_prof->gld_incoherent));
  }
  return 0;
}

}  // namespace oa::bench
