// Table I: profiles of SYMM for OA and CUBLAS 3.2 on GeForce 9800.
// Expected relationships (paper §V-A.1): OA halves the dynamic
// instruction count and completely removes gld_incoherent.
#include "table_symm_profile.hpp"

int main(int argc, char** argv) {
  return oa::bench::run_symm_profile_table(
      oa::gpusim::geforce_9800(),
      "Table I: SYMM profile on GeForce 9800 (OA vs CUBLAS-like)",
      /*fermi_style=*/false, argc, argv);
}
