// Figure 13: OA performance across problem sizes 512..4096 on GeForce
// 9800 (paper §V-A.3 — "our OA framework can achieve stable
// performances for BLAS3 routines when the problem size varies").
// Each routine is tuned once; its best kernel is then measured at every
// size, exactly as a generated library would be used.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace oa;
  using namespace oa::bench;
  FigureOptions options;
  options.variants = quick_variants();
  options = parse_figure_args(argc, argv, options);
  // The paper shows GeForce 9800 and notes "similar results can be
  // observed on GTX 285 and Fermi": --device selects the others.
  const gpusim::DeviceModel* device = &gpusim::geforce_9800();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--device" && i + 1 < argc) {
      const std::string name = argv[i + 1];
      if (name == "gtx285") device = &gpusim::gtx285();
      if (name == "fermi") device = &gpusim::fermi_c2050();
    }
  }

  OaOptions oa_options;
  oa_options.tuning_size = options.tuning_size;
  OaFramework framework(*device, oa_options);

  const std::vector<int64_t> sizes = fig13_sizes();
  std::vector<std::string> header = {"routine"};
  for (int64_t n : sizes) header.push_back("N=" + std::to_string(n));
  header.push_back("min/max");
  TextTable table(header);

  for (const std::string& name : options.variants) {
    const blas3::Variant* v = blas3::find_variant(name);
    if (v == nullptr) continue;
    auto tuned = framework.generate(*v);
    if (!tuned.is_ok()) {
      std::printf("%s: generation failed: %s\n", name.c_str(),
                  tuned.status().to_string().c_str());
      continue;
    }
    std::vector<std::string> row = {name};
    double lo = 1e30, hi = 0.0;
    for (int64_t n : sizes) {
      auto g = framework.measure_gflops(*tuned, *v, n);
      const double gf = g.is_ok() ? *g : 0.0;
      lo = std::min(lo, gf);
      hi = std::max(hi, gf);
      row.push_back(str_format("%.0f", gf));
    }
    row.push_back(str_format("%.2f", hi > 0 ? lo / hi : 0.0));
    table.add_row(std::move(row));
  }
  std::printf("== Fig 13: OA GFLOPS vs problem size on %s ==\n\n",
              device->name.c_str());
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "(stability: min/max close to 1.0 reproduces the paper's flat "
      "curves; small sizes dip as blocks no longer cover the SMs)\n");
  return 0;
}
