// Ablation (DESIGN.md §6.4): orthogonal line search (the method of
// Tiwari et al. [4], used by the paper) vs exhaustive sweep of the
// parameter grid: solution quality and number of simulator evaluations.
//
// Also the EvaluationEngine's cost ablation: each strategy runs twice,
// once serial and uncached (the pre-engine baseline) and once with the
// engine's parallel lanes + memoization cache. Both tuners of the
// engine run share one cache, so the exhaustive sweep re-hits the
// line-search round's points — the cache-hit column shows it.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "tuner/tuner.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace oa;
  using namespace oa::bench;
  FigureOptions options;
  options.problem_size = 1024;
  options = parse_figure_args(argc, argv, options);

  std::printf("== Ablation: orthogonal line search vs exhaustive sweep "
              "(GTX285, N = %lld) ==\n\n",
              static_cast<long long>(options.problem_size));
  std::printf("parameter grid: %zu points\n\n",
              tuner::ParameterSpace::default_space().total_points());

  gpusim::Simulator sim(gpusim::gtx285());
  OaFramework framework(gpusim::gtx285(), {});

  // One shared engine for the engine-mode runs of all strategies and
  // routines; the serial baseline gets a fresh uncached engine per run.
  engine::EngineOptions shared_opts;
  shared_opts.jobs = options.jobs;
  engine::EvaluationEngine shared(sim, shared_opts);

  TextTable table({"routine", "strategy", "mode", "best GFLOPS",
                   "wall (s)", "cache hits"});
  for (const char* name : {"GEMM-NN", "SYMM-LL"}) {
    const blas3::Variant v = *blas3::find_variant(name);
    auto candidates = framework.candidates_for(v);
    if (!candidates.is_ok()) continue;
    for (bool exhaustive : {false, true}) {
      tuner::TuneOptions topt;
      topt.target_size = options.problem_size;
      topt.exhaustive = exhaustive;
      const char* strategy = exhaustive ? "exhaustive" : "line search";

      // Serial + uncached: the seed's evaluation cost.
      topt.jobs = 1;
      topt.use_cache = false;
      tuner::Tuner serial(sim, topt);
      auto t0 = std::chrono::steady_clock::now();
      auto serial_best = serial.tune(v, *candidates);
      const double serial_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      table.add_row({name, strategy, "serial",
                     serial_best.is_ok()
                         ? str_format("%.1f", serial_best->gflops)
                         : std::string("failed"),
                     str_format("%.2f", serial_wall), "-"});

      // Parallel + memoized through the shared engine.
      tuner::Tuner engined(shared, topt);
      const uint64_t hits_before = shared.stats().cache_hits;
      t0 = std::chrono::steady_clock::now();
      auto engine_best = engined.tune(v, *candidates);
      const double engine_wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      table.add_row(
          {name, strategy,
           str_format("engine (jobs=%zu)", shared.jobs()),
           engine_best.is_ok()
               ? str_format("%.1f", engine_best->gflops)
               : std::string("failed"),
           str_format("%.2f", engine_wall),
           str_format("%llu",
                      static_cast<unsigned long long>(
                          shared.stats().cache_hits - hits_before))});
      if (serial_best.is_ok() && engine_best.is_ok() &&
          serial_best->gflops != engine_best->gflops) {
        std::printf("WARNING: %s/%s: serial and engine picked different "
                    "optima (%.3f vs %.3f GFLOPS)\n",
                    name, strategy, serial_best->gflops,
                    engine_best->gflops);
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n\n", shared.stats().to_string().c_str());
  std::printf(
      "line search reaches the same neighbourhood with a fraction of "
      "the evaluations, matching the paper's use of [4]; the engine's "
      "lanes + cache cut the wall time without changing the winner.\n");
  return 0;
}
