// Ablation (DESIGN.md §6.4): orthogonal line search (the method of
// Tiwari et al. [4], used by the paper) vs exhaustive sweep of the
// parameter grid: solution quality and number of simulator evaluations.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "tuner/tuner.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace oa;
  using namespace oa::bench;
  FigureOptions options;
  options.problem_size = 1024;
  options = parse_figure_args(argc, argv, options);

  std::printf("== Ablation: orthogonal line search vs exhaustive sweep "
              "(GTX285, N = %lld) ==\n\n",
              static_cast<long long>(options.problem_size));
  std::printf("parameter grid: %zu points\n\n",
              tuner::ParameterSpace::default_space().total_points());

  gpusim::Simulator sim(gpusim::gtx285());
  OaFramework framework(gpusim::gtx285(), {});

  TextTable table({"routine", "strategy", "best GFLOPS", "wall (s)"});
  for (const char* name : {"GEMM-NN", "SYMM-LL"}) {
    const blas3::Variant v = *blas3::find_variant(name);
    auto candidates = framework.candidates_for(v);
    if (!candidates.is_ok()) continue;
    for (bool exhaustive : {false, true}) {
      tuner::TuneOptions topt;
      topt.target_size = options.problem_size;
      topt.exhaustive = exhaustive;
      tuner::Tuner tuner(sim, topt);
      auto t0 = std::chrono::steady_clock::now();
      auto best = tuner.tune(v, *candidates);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      table.add_row({name, exhaustive ? "exhaustive" : "line search",
                     best.is_ok() ? str_format("%.1f", best->gflops)
                                  : std::string("failed"),
                     str_format("%.1f", wall)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "line search reaches the same neighbourhood with a fraction of "
      "the evaluations, matching the paper's use of [4].\n");
  return 0;
}
