// Table III: profiles of SYMM for OA and CUBLAS 3.2 on Fermi Tesla
// C2050. Expected relationships (paper §V-A.1): the improvement comes
// from reductions in both executed instructions and global load
// requests.
#include "table_symm_profile.hpp"

int main(int argc, char** argv) {
  return oa::bench::run_symm_profile_table(
      oa::gpusim::fermi_c2050(),
      "Table III: SYMM profile on Fermi C2050 (OA vs CUBLAS-like)",
      /*fermi_style=*/true, argc, argv);
}
