// Ablation (DESIGN.md §6.2): mixer pruning. The mixer enforces location
// constraints (GM_map first) *during* enumeration; this bench counts how
// many interleavings a post-hoc filter would have had to try instead,
// across every adaptor rule of every routine family.
#include <cstdio>

#include "adl/adaptor.hpp"
#include "bench_common.hpp"
#include "blas3/source_ir.hpp"
#include "composer/composer.hpp"
#include "support/strings.hpp"

namespace {

// Unconstrained interleaving count: C(n+m, m).
long long binomial(int n, int k) {
  long long r = 1;
  for (int i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

}  // namespace

int main() {
  using namespace oa;
  std::printf("== Ablation: mixer location-constraint pruning ==\n\n");
  composer::SplitSequence base =
      composer::split(epod::gemm_nn_script().invocations);
  const int nb = static_cast<int>(base.polyhedral.size());

  TextTable table({"adaptor", "rule", "rule length", "unconstrained",
                   "mixer output", "pruned"});
  struct Case {
    const adl::Adaptor* adaptor;
  };
  for (const adl::Adaptor* a :
       {&adl::adaptor_transpose(), &adl::adaptor_symmetry(),
        &adl::adaptor_triangular(), &adl::adaptor_solver()}) {
    for (size_t r = 0; r < a->rules.size(); ++r) {
      composer::SplitSequence rs = composer::split(a->rules[r].sequence);
      const int nr = static_cast<int>(rs.polyhedral.size());
      const long long unconstrained = binomial(nb + nr, nr);
      const auto mixed = composer::mix(base.polyhedral, rs.polyhedral);
      table.add_row({a->name, std::to_string(r + 1), std::to_string(nr),
                     std::to_string(unconstrained),
                     std::to_string(mixed.size()),
                     std::to_string(unconstrained -
                                    static_cast<long long>(mixed.size()))});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // End-to-end: candidates actually surviving the filter per routine.
  std::printf("candidate scripts surviving filter + dedup, per routine:\n");
  transforms::TransformContext ctx;
  for (const char* name :
       {"GEMM-TN", "GEMM-TT", "SYMM-LL", "TRMM-LL-N", "TRSM-LL-N"}) {
    const blas3::Variant v = *blas3::find_variant(name);
    ir::Program src = blas3::make_source_program(v);
    auto result = composer::compose(epod::gemm_nn_script(),
                                    OaFramework::adaptors_for(v), src, ctx);
    std::printf("  %-10s %zu\n", name,
                result.is_ok() ? result->size() : 0);
  }
  return 0;
}
