// Shared harness for the figure/table benches: generates the OA library
// for a device, measures OA vs the baselines at the paper's problem
// size, and prints paper-style rows (plus CSV files next to the
// binary's working directory).
#pragma once

#include <string>
#include <vector>

#include "oa/oa.hpp"
#include "support/precision.hpp"
#include "support/table.hpp"

namespace oa::bench {

struct RoutineRow {
  std::string name;
  double oa_gflops = 0.0;
  double cublas_gflops = 0.0;
  double magma_gflops = 0.0;  // 0 = not available
  /// Wall time OaFramework::generate spent searching this routine.
  double generate_seconds = 0.0;
  /// Wall time of one tuned-variant performance simulation (averaged
  /// over the --min-time measurement loop, after warmup).
  double measure_seconds = 0.0;
  double speedup() const {
    return cublas_gflops > 0 ? oa_gflops / cublas_gflops : 0.0;
  }
};

struct FigureOptions {
  int64_t problem_size = 4096;
  /// Subset of variant names; empty = every variant at the selected
  /// precision(s).
  std::vector<std::string> variants;
  /// Precision filter for the empty-`variants` default (--precision
  /// s|d|all). The paper's figures are single precision, so benches
  /// default to f32 only; "all" sweeps the full 48-variant family.
  /// An explicit --precision s|d also remaps named variants (--quick,
  /// --variants) to the requested flavor of the same shape.
  bool all_precisions = false;
  bool precision_set = false;  // --precision was given explicitly
  Precision precision = kLegacyPrecision;
  bool with_magma = false;
  int64_t tuning_size = 512;
  std::string csv_path;  // empty = no CSV
  /// Parallel evaluation lanes for the search (0 = all cores).
  size_t jobs = 0;
  /// Disable the evaluation cache (--no-cache).
  bool engine_cache = true;
  /// Print the engine's search-cost breakdown after the run.
  bool engine_stats = false;
  /// Ghost-mode fast path in every performance simulation
  /// (--no-fastpath disables; counters and GFLOPS are identical).
  bool fastpath = true;
  /// Untimed measurement iterations before the timed ones (--warmup).
  int warmup = 1;
  /// Keep re-measuring each routine's tuned simulation until this much
  /// wall time has accumulated (--min-time; 0 = single iteration).
  double min_time_seconds = 0.0;
};

/// Wall-time + cache-hit report for a finished generation run: total
/// search seconds across `rows` plus the engine's stats line.
void report_search_cost(const std::vector<RoutineRow>& rows,
                        const engine::EngineStats& stats);

/// Parse --size N / --quick / --variants a,b,c from argv.
FigureOptions parse_figure_args(int argc, char** argv,
                                FigureOptions defaults);

/// Run the OA generation + baseline comparison for every requested
/// variant on `device`.
std::vector<RoutineRow> run_figure(const gpusim::DeviceModel& device,
                                   const FigureOptions& options);

/// Print the rows as a table + speedup bar chart, and write the CSV.
void report_figure(const std::string& title,
                   const std::vector<RoutineRow>& rows,
                   const FigureOptions& options);

/// Problem sizes of the paper's Fig 13 sweep.
std::vector<int64_t> fig13_sizes();

/// The "quick" subset used by --quick and the default CI runs: one
/// representative per family.
std::vector<std::string> quick_variants();

}  // namespace oa::bench
