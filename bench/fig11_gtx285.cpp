// Figure 11: performance of the 24 BLAS3 variants on GTX285 vs the
// CUBLAS-3.2-like baseline, plus MAGMA-v0.2-like for the GEMM/TRSM
// variants (SYMM/TRMM are absent from MAGMA v0.2, as in the paper).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace oa::bench;
  FigureOptions options;
  options.with_magma = true;
  options.csv_path = "fig11_gtx285.csv";
  options = parse_figure_args(argc, argv, options);
  auto rows = run_figure(oa::gpusim::gtx285(), options);
  report_figure("Fig 11: BLAS3 on GTX285 (incl. MAGMA-like)", rows,
                options);
  return 0;
}
