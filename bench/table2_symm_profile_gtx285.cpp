// Table II: profiles of SYMM for OA and CUBLAS 3.2 on GTX285.
// Expected relationships (paper §V-A.1): no incoherent accesses on
// either side (CC 1.3 coalescing), but the CUBLAS-like baseline issues
// ~4x the coherent load transactions (127M vs 33M in the paper) and
// ~2x the instructions.
#include "table_symm_profile.hpp"

int main(int argc, char** argv) {
  return oa::bench::run_symm_profile_table(
      oa::gpusim::gtx285(),
      "Table II: SYMM profile on GTX285 (OA vs CUBLAS-like)",
      /*fermi_style=*/false, argc, argv);
}
