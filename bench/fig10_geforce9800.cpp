// Figure 10: performance of the 24 BLAS3 variants on GeForce 9800,
// OA-generated kernels vs the CUBLAS-3.2-like baseline, problem size
// 4096 (paper §V-A). Run with --quick for one representative per
// family, or --variants a,b,c / --size N.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace oa::bench;
  FigureOptions options;
  options.csv_path = "fig10_geforce9800.csv";
  options = parse_figure_args(argc, argv, options);
  auto rows = run_figure(oa::gpusim::geforce_9800(), options);
  report_figure("Fig 10: BLAS3 on GeForce 9800", rows, options);
  return 0;
}
