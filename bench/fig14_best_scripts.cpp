// Figure 14: the best-performing EPOD scripts the search selects for
// GEMM-TN, SYMM-LL, TRMM-LL-N and TRSM-LL-N (the paper's SYMM-LN is our
// SYMM-LL naming). Also narrates the composer's §IV-B.2 filter example:
// 9 mixed sequences -> 7 semi-output sequences.
#include <cstdio>

#include "adl/adaptor.hpp"
#include "bench_common.hpp"
#include "composer/composer.hpp"
#include "blas3/source_ir.hpp"
#include "support/strings.hpp"

namespace {

void print_filter_example() {
  using namespace oa;
  std::printf(
      "-- Composer filter example (paper §IV-B.2): Adaptor_Triangular x "
      "GEMM-NN script on TRMM-LL-N --\n\n");
  ir::Program src =
      blas3::make_source_program(*blas3::find_variant("TRMM-LL-N"));
  transforms::TransformContext ctx;
  composer::SplitSequence base =
      composer::split(epod::gemm_nn_script().invocations);
  const adl::Adaptor bound = adl::adaptor_triangular().bind("A");

  int mixed_count = 0;
  std::vector<std::vector<transforms::Invocation>> semi;
  for (const adl::AdaptorRule& rule : bound.rules) {
    composer::SplitSequence rs = composer::split(rule.sequence);
    for (const auto& seq : composer::mix(base.polyhedral, rs.polyhedral)) {
      ++mixed_count;
      std::vector<std::string> names;
      for (const auto& inv : seq) names.push_back(inv.component);
      composer::FilterOutcome out =
          composer::filter_sequence(src, seq, ctx);
      std::vector<std::string> surv;
      for (const auto& inv : out.surviving) surv.push_back(inv.component);
      std::printf("  %2d) %-70s -> %s\n", mixed_count,
                  join(names, ", ").c_str(), join(surv, ", ").c_str());
      if (std::find(semi.begin(), semi.end(), out.surviving) ==
          semi.end()) {
        semi.push_back(out.surviving);
      }
    }
  }
  std::printf("\n  mixed sequences: %d, semi-output after the filter: %zu "
              "(paper: 9 -> 7)\n\n",
              mixed_count, semi.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oa;
  using namespace oa::bench;
  FigureOptions options;
  options = parse_figure_args(argc, argv, options);

  print_filter_example();

  std::printf("-- Fig 14: best-performing EPOD scripts (per device) --\n\n");
  for (const gpusim::DeviceModel* device :
       {&gpusim::geforce_9800(), &gpusim::gtx285()}) {
    OaOptions oa_options;
    oa_options.tuning_size = options.tuning_size;
    OaFramework framework(*device, oa_options);
    std::printf("=== %s ===\n\n", device->name.c_str());
    for (const char* name :
         {"GEMM-TN", "SYMM-LL", "TRMM-LL-N", "TRSM-LL-N"}) {
      const blas3::Variant v = *blas3::find_variant(name);
      auto tuned = framework.generate(v);
      if (!tuned.is_ok()) {
        std::printf("%s: generation failed (%s)\n\n", name,
                    tuned.status().to_string().c_str());
        continue;
      }
      std::printf("%s  (params %s)\n%s\n", name,
                  tuned->params.to_string().c_str(),
                  tuned->candidate.script.to_string().c_str());
    }
  }
  return 0;
}
