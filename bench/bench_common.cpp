#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa::bench {

std::vector<std::string> quick_variants() {
  return {"GEMM-NN", "GEMM-TN", "SYMM-LL", "TRMM-LL-N", "TRSM-LL-N"};
}

FigureOptions parse_figure_args(int argc, char** argv,
                                FigureOptions defaults) {
  FigureOptions out = std::move(defaults);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      out.variants = quick_variants();
    } else if (arg == "--size" && i + 1 < argc) {
      out.problem_size = std::atoll(argv[++i]);
    } else if (arg == "--tuning-size" && i + 1 < argc) {
      out.tuning_size = std::atoll(argv[++i]);
    } else if (arg == "--variants" && i + 1 < argc) {
      out.variants = split(argv[++i], ',', /*skip_empty=*/true);
    } else if (arg == "--precision" && i + 1 < argc) {
      const std::string token = argv[++i];
      out.precision_set = true;
      if (token == "all") {
        out.all_precisions = true;
      } else if (!parse_precision(token, &out.precision)) {
        std::fprintf(stderr,
                     "--precision must be s, d, f32, f64 or all, got "
                     "'%s'\n",
                     token.c_str());
        std::exit(2);
      }
    } else if (arg == "--csv" && i + 1 < argc) {
      out.csv_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      out.jobs = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--no-cache") {
      out.engine_cache = false;
    } else if (arg == "--engine-stats") {
      out.engine_stats = true;
    } else if (arg == "--no-fastpath") {
      out.fastpath = false;
    } else if (arg == "--warmup" && i + 1 < argc) {
      out.warmup = std::atoi(argv[++i]);
    } else if (arg == "--min-time" && i + 1 < argc) {
      out.min_time_seconds = std::atof(argv[++i]);
    } else if (arg == "--help") {
      std::printf(
          "options: --quick | --size N | --tuning-size N | "
          "--variants a,b,c | --precision s|d|all | --csv path | "
          "--jobs N | --no-cache | --engine-stats | --no-fastpath | "
          "--warmup N | --min-time S\n");
      std::exit(0);
    }
  }
  return out;
}

std::vector<RoutineRow> run_figure(const gpusim::DeviceModel& device,
                                   const FigureOptions& options) {
  OaOptions oa_options;
  oa_options.tuning_size = options.tuning_size;
  oa_options.jobs = options.jobs;
  oa_options.engine_cache = options.engine_cache;
  oa_options.fastpath = options.fastpath;
  OaFramework framework(device, oa_options);

  std::vector<std::string> names = options.variants;
  if (names.empty()) {
    for (const auto& v : blas3::all_variants()) {
      if (options.all_precisions || v.precision == options.precision) {
        names.push_back(v.name());
      }
    }
  } else if (options.precision_set && !options.all_precisions) {
    // An explicit --precision s|d composes with --quick/--variants:
    // each named shape is remapped to the requested flavor ("GEMM-NN"
    // <-> "DGEMM-NN") so quick f64 runs need no D-prefixed list.
    for (std::string& name : names) {
      const blas3::Variant* v = blas3::find_variant(name);
      if (v == nullptr || v->precision == options.precision) continue;
      const std::string flipped =
          options.precision == Precision::kF64
              ? std::string(precision_prefix(Precision::kF64)) + name
              : name.substr(1);
      if (blas3::find_variant(flipped) != nullptr) name = flipped;
    }
  }

  std::vector<RoutineRow> rows;
  for (const std::string& name : names) {
    const blas3::Variant* v = blas3::find_variant(name);
    if (v == nullptr) {
      OA_LOG(kError) << "unknown variant " << name;
      continue;
    }
    RoutineRow row;
    row.name = name;

    const auto t0 = std::chrono::steady_clock::now();
    auto tuned = framework.generate(*v);
    row.generate_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    if (tuned.is_ok()) {
      // Warmup + min-time measurement loop: the GFLOPS estimate is
      // deterministic, but the wall time of one simulation is what the
      // microbenchmarks track, so measure it like a benchmark would.
      for (int w = 0; w < options.warmup; ++w) {
        (void)framework.measure_gflops(*tuned, *v, options.problem_size);
      }
      double elapsed = 0.0;
      int iters = 0;
      StatusOr<double> g = illegal("unmeasured");
      do {
        const auto m0 = std::chrono::steady_clock::now();
        g = framework.measure_gflops(*tuned, *v, options.problem_size);
        elapsed += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - m0)
                       .count();
        ++iters;
      } while (g.is_ok() && elapsed < options.min_time_seconds);
      row.measure_seconds = elapsed / iters;
      if (g.is_ok()) row.oa_gflops = *g;
    } else {
      OA_LOG(kError) << name << ": OA generation failed: "
                     << tuned.status().to_string();
    }

    auto cublas = baseline::cublas_like(*v, device);
    if (cublas.is_ok()) {
      auto g = framework.measure_baseline_gflops(*cublas, *v,
                                                 options.problem_size);
      if (g.is_ok()) row.cublas_gflops = *g;
    }
    if (options.with_magma) {
      auto magma = baseline::magma_like(*v, device);
      if (magma.is_ok()) {
        auto g = framework.measure_baseline_gflops(*magma, *v,
                                                   options.problem_size);
        if (g.is_ok()) row.magma_gflops = *g;
      }
    }
    OA_LOG(kInfo) << name << ": OA " << row.oa_gflops << " / CUBLAS-like "
                  << row.cublas_gflops << " GFLOPS (search "
                  << row.generate_seconds << "s)";
    rows.push_back(row);
  }
  if (options.engine_stats) {
    report_search_cost(rows, framework.engine_stats());
  }
  return rows;
}

void report_search_cost(const std::vector<RoutineRow>& rows,
                        const engine::EngineStats& stats) {
  double total = 0.0;
  for (const RoutineRow& r : rows) total += r.generate_seconds;
  std::printf("search wall time: %.2fs across %zu routine(s)\n", total,
              rows.size());
  std::printf("%s\n\n", stats.to_string().c_str());
}

void report_figure(const std::string& title,
                   const std::vector<RoutineRow>& rows,
                   const FigureOptions& options) {
  std::printf("== %s (N = %lld) ==\n\n", title.c_str(),
              static_cast<long long>(options.problem_size));
  const bool magma =
      std::any_of(rows.begin(), rows.end(),
                  [](const RoutineRow& r) { return r.magma_gflops > 0; });
  std::vector<std::string> header = {"routine", "OA GFLOPS",
                                     "CUBLAS-like GFLOPS"};
  if (magma) header.push_back("MAGMA-like GFLOPS");
  header.push_back("speedup over CUBLAS");
  TextTable table(header);
  double max_speedup = 0.0;
  std::string max_name;
  for (const RoutineRow& r : rows) {
    std::vector<std::string> row = {r.name, str_format("%.1f", r.oa_gflops),
                                    str_format("%.1f", r.cublas_gflops)};
    if (magma) {
      row.push_back(r.magma_gflops > 0
                        ? str_format("%.1f", r.magma_gflops)
                        : std::string("-"));
    }
    row.push_back(str_format("%.2fx", r.speedup()));
    table.add_row(std::move(row));
    if (r.speedup() > max_speedup) {
      max_speedup = r.speedup();
      max_name = r.name;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("maximum speedup over CUBLAS-like: %.2fx (%s)\n\n",
              max_speedup, max_name.c_str());

  std::vector<std::pair<std::string, double>> bars;
  for (const RoutineRow& r : rows) bars.emplace_back(r.name, r.speedup());
  std::printf("speedup over CUBLAS-like\n%s\n",
              ascii_bar_chart(bars, std::max(1.0, max_speedup)).c_str());

  if (!options.csv_path.empty()) {
    std::ofstream csv(options.csv_path);
    csv << table.to_csv();
    std::printf("wrote %s\n", options.csv_path.c_str());
  }
}

std::vector<int64_t> fig13_sizes() {
  return {512, 1024, 1536, 2048, 2560, 3072, 3584, 4096};
}

}  // namespace oa::bench
