// Closed-loop load benchmark for the serving path (docs/SERVING.md).
//
//   $ ./bench/serve_load [--out BENCH_serve.json] [--duration-ms N]
//                        [--reloads N] [--quick]
//
// Four sections, all against one small generated library (both
// precisions):
//
//   1. dispatch microbench — pure lookup throughput of the lock-free
//      snapshot dispatcher vs the pre-refactor design (mutex around a
//      string-keyed map, per-dispatch bool_params copy), 1..8 client
//      threads, plus heap allocations per dispatch (the hot-path
//      micro-fix this bench exists to prove: snapshot dispatch is
//      allocation-free);
//   2. closed-loop serve — N client threads issuing a mixed
//      f32/f64 request stream through serve(), with and without
//      request coalescing: QPS, latency percentiles, batch stats;
//   3. admission control — the same closed loop against a tight
//      latency SLO and queue bound: shed rate and the accounting
//      invariant requests == served + shed;
//   4. swap-under-load — clients hammer run() while another thread
//      hot-reloads the artifact in a loop: every request must be
//      answered (zero drops) across >= 100 snapshot republishes.
//
// Results land in BENCH_serve.json (consumed by the CI smoke lane,
// checked in at the repo root for the current container).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "libgen/artifact.hpp"
#include "oa/oa.hpp"
#include "obs/trace.hpp"
#include "runtime/library_runtime.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

// --- allocation counter ----------------------------------------------
// Replacing global new/delete lets the microbench report heap
// allocations per dispatch; the old design paid one map node per
// bool_param copied, the snapshot design pays zero.
static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oa {
namespace {

using blas3::Variant;
using runtime::DispatchOutcome;
using runtime::DispatchSnapshot;
using runtime::LibraryRuntime;

/// The pre-refactor dispatcher, preserved as the comparison baseline:
/// one mutex around a string-keyed index, nearest-bucket resolution on
/// every call, and a per-dispatch copy of the entry's bool_params —
/// exactly the costs the DispatchSnapshot design removed. Built over
/// the same entries the snapshot serves, so both answer identically.
class LegacyDispatcher {
 public:
  explicit LegacyDispatcher(const DispatchSnapshot& snap) {
    for (const DispatchSnapshot::Entry& e : snap.entries()) {
      index_[e.variant->name()]
            [LibraryRuntime::size_bucket(e.tuned_size)] = table_.size();
      table_.push_back(&e);
    }
  }

  struct Result {
    const ir::Program* program = nullptr;
    std::map<std::string, bool> bool_params;  // the old per-call copy
    bool hit = false;
  };

  Result dispatch(const Variant& v, int64_t n) const {
    std::lock_guard<std::mutex> lock(mu_);
    Result r;
    auto it = index_.find(v.name());
    if (it == index_.end()) return r;
    const std::map<int, size_t>& buckets = it->second;
    const int want = LibraryRuntime::size_bucket(n);
    size_t idx;
    auto exact = buckets.find(want);
    if (exact != buckets.end()) {
      idx = exact->second;
      r.hit = true;
    } else {
      auto lo = buckets.lower_bound(want);
      if (lo == buckets.end()) {
        idx = std::prev(lo)->second;
      } else if (lo == buckets.begin()) {
        idx = lo->second;
      } else {
        auto below = std::prev(lo);
        idx = (lo->first - want) < (want - below->first) ? lo->second
                                                         : below->second;
      }
    }
    r.program = &table_[idx]->program;
    r.bool_params = table_[idx]->bool_params;
    return r;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<int, size_t>> index_;
  std::vector<const DispatchSnapshot::Entry*> table_;
};

/// One request of the closed-loop mix.
struct RequestShape {
  const Variant* v;
  int64_t n;
};

/// Both precisions, hit and near-hit buckets, more than one family —
/// small sizes keep a serve interpreter-cheap so the closed loop is
/// throughput-bound on the serving machinery, not the simulator.
std::vector<RequestShape> request_mix() {
  std::vector<RequestShape> mix;
  for (const char* name : {"GEMM-NN", "DGEMM-NN", "SYMM-LL", "DSYMM-LL"}) {
    const Variant* v = blas3::find_variant(name);
    if (v == nullptr) continue;
    mix.push_back({v, 48});
    mix.push_back({v, 96});
  }
  return mix;
}

void prepare(const Variant& v, Rng& rng, blas3::Matrix& a,
             blas3::Matrix& b) {
  a.fill_random(rng);
  b.fill_random(rng);
  if (v.family == blas3::Family::kTrmm ||
      v.family == blas3::Family::kTrsm ||
      v.family == blas3::Family::kSymm) {
    a.make_triangular(v.uplo);
  }
  if (v.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    a.scale_off_diagonal(1.0f / 16.0f);
  }
}

/// Pre-built inputs per mix entry, reused by every client thread
/// (serve() only writes b/c for TRSM-free mixes into per-thread
/// copies).
struct PreparedRequest {
  const Variant* v;
  blas3::Matrix a, b, c;
};

std::vector<PreparedRequest> prepare_mix(
    const std::vector<RequestShape>& mix) {
  std::vector<PreparedRequest> prepared;
  Rng rng(0x5E21);
  for (const RequestShape& shape : mix) {
    PreparedRequest p;
    p.v = shape.v;
    p.a = blas3::Matrix(shape.n, shape.n, shape.v->precision);
    p.b = blas3::Matrix(shape.n, shape.n, shape.v->precision);
    p.c = blas3::Matrix(shape.n, shape.n, shape.v->precision);
    prepare(*shape.v, rng, p.a, p.b);
    prepared.push_back(std::move(p));
  }
  return prepared;
}

double pct(const obs::Histogram& h, double p) {
  return h.count() == 0 ? 0.0 : h.percentile(p);
}

// --- section 1: dispatch microbench ----------------------------------

struct DispatchRow {
  int threads;
  /// The serving hot path: snapshot pinned once per batch of work (as
  /// run()/serve_batch() execute it), lookup per request.
  double snapshot_mops;
  /// The public dispatch() API: thread-cached pin handed out with
  /// every Dispatch (one shared_ptr copy per call).
  double api_mops;
  double legacy_mops;  // mutex + string map + bool_params copy
  double speedup;      // snapshot_mops / legacy_mops
  double api_speedup;  // api_mops / legacy_mops
};

template <typename DispatchFn>
double measure_mops(int threads, int64_t ops_per_thread,
                    const DispatchFn& one_op) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  const double t0_barrier = obs::now_us();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int64_t i = 0; i < ops_per_thread; ++i) {
        one_op(t, i);
      }
    });
  }
  while (ready.load() < threads) {
  }
  (void)t0_barrier;
  const double t0 = obs::now_us();
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const double us = obs::now_us() - t0;
  return us > 0 ? static_cast<double>(threads * ops_per_thread) / us
                : 0.0;
}

std::vector<DispatchRow> run_dispatch_microbench(
    const LibraryRuntime& rt, const std::vector<RequestShape>& mix,
    int64_t ops_per_thread, uint64_t* snapshot_allocs_per_kop,
    uint64_t* legacy_allocs_per_kop) {
  std::shared_ptr<const DispatchSnapshot> snap = rt.snapshot();
  LegacyDispatcher legacy(*snap);

  // Consuming `sink` keeps the optimizer honest in all three loops.
  std::atomic<uint64_t> sink{0};
  // The serving hot path exactly as run()/serve_batch() execute it:
  // the snapshot pin is amortized across requests, each lookup is a
  // variant-code encode + bit scan + two array loads.
  auto snapshot_op = [&](int, int64_t i) {
    const RequestShape& r = mix[static_cast<size_t>(i) % mix.size()];
    bool exact = false;
    const DispatchSnapshot::Entry* e =
        snap->lookup(runtime::variant_code(*r.v),
                     DispatchSnapshot::size_bucket(r.n), &exact);
    sink.fetch_add(e != nullptr, std::memory_order_relaxed);
  };
  // The public dispatch() API: same lookup plus a pinned shared_ptr
  // handed to the caller with every Dispatch.
  auto api_op = [&](int, int64_t i) {
    const RequestShape& r = mix[static_cast<size_t>(i) % mix.size()];
    LibraryRuntime::Dispatch d = rt.dispatch(*r.v, r.n);
    sink.fetch_add(d.program != nullptr, std::memory_order_relaxed);
  };
  auto legacy_op = [&](int, int64_t i) {
    const RequestShape& r = mix[static_cast<size_t>(i) % mix.size()];
    LegacyDispatcher::Result d = legacy.dispatch(*r.v, r.n);
    sink.fetch_add(d.program != nullptr, std::memory_order_relaxed);
  };

  // Allocation cost per 1000 dispatches, measured single-threaded on
  // the API path (the one that hands anything to a caller).
  const int64_t kAllocOps = 4096;
  uint64_t before = g_allocs.load();
  for (int64_t i = 0; i < kAllocOps; ++i) api_op(0, i);
  *snapshot_allocs_per_kop =
      (g_allocs.load() - before) * 1000 / kAllocOps;
  before = g_allocs.load();
  for (int64_t i = 0; i < kAllocOps; ++i) legacy_op(0, i);
  *legacy_allocs_per_kop = (g_allocs.load() - before) * 1000 / kAllocOps;

  std::vector<DispatchRow> rows;
  for (int threads : {1, 2, 4, 8}) {
    DispatchRow row;
    row.threads = threads;
    row.snapshot_mops = measure_mops(threads, ops_per_thread, snapshot_op);
    row.api_mops = measure_mops(threads, ops_per_thread, api_op);
    row.legacy_mops = measure_mops(threads, ops_per_thread, legacy_op);
    row.speedup =
        row.legacy_mops > 0 ? row.snapshot_mops / row.legacy_mops : 0.0;
    row.api_speedup =
        row.legacy_mops > 0 ? row.api_mops / row.legacy_mops : 0.0;
    rows.push_back(row);
    std::printf(
        "dispatch  threads=%d  snapshot %8.2f Mops/s  api %8.2f Mops/s  "
        "legacy %8.2f Mops/s  speedup %.2fx (api %.2fx)\n",
        threads, row.snapshot_mops, row.api_mops, row.legacy_mops,
        row.speedup, row.api_speedup);
  }
  return rows;
}

// --- sections 2+3: closed-loop serve ---------------------------------

struct ServeRow {
  std::string mode;
  int clients;
  uint64_t requests = 0;
  uint64_t shed = 0;
  uint64_t batches = 0;
  uint64_t coalesced = 0;
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  double shed_rate = 0.0;
  uint64_t requests_f32 = 0, requests_f64 = 0;
  bool accounting_ok = false;
};

ServeRow run_closed_loop(const gpusim::DeviceModel& device,
                         const libgen::Artifact& artifact,
                         const std::vector<PreparedRequest>& mix,
                         const std::string& mode, int clients,
                         double duration_ms,
                         runtime::RuntimeOptions ropt) {
  LibraryRuntime rt(device, artifact, ropt);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      // Per-thread copies of the write targets; `a` is shared
      // read-only.
      std::vector<blas3::Matrix> b, c;
      for (const PreparedRequest& p : mix) {
        b.push_back(p.b);
        c.push_back(p.c);
      }
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Skewed mix: half the traffic hits the hottest key, the rest
        // spreads over the tail — the shape coalescing exists for.
        ++i;
        const size_t k = i % 2 == 0 ? 0 : (i / 2) % mix.size();
        auto outcome = rt.serve(*mix[k].v, mix[k].a, b[k], &c[k]);
        if (!outcome.is_ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        } else if (*outcome == DispatchOutcome::kShed) {
          // A real client backs off when shed; a tight retry loop
          // would only measure the shed fast path.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
    });
  }
  const double t0 = obs::now_us();
  while (obs::now_us() - t0 < duration_ms * 1000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (std::thread& w : workers) w.join();
  const double elapsed_us = obs::now_us() - t0;

  const runtime::DispatchStats stats = rt.stats();
  ServeRow row;
  row.mode = mode;
  row.clients = clients;
  row.requests = stats.requests;
  row.shed = stats.shed;
  row.batches = stats.batches;
  row.coalesced = stats.coalesced;
  row.qps = elapsed_us > 0
                ? static_cast<double>(stats.requests) / elapsed_us * 1e6
                : 0.0;
  const obs::Histogram& serve_us =
      rt.metrics().histogram("runtime.serve_us");
  row.p50_us = pct(serve_us, 50);
  row.p95_us = pct(serve_us, 95);
  row.p99_us = pct(serve_us, 99);
  row.shed_rate = stats.requests > 0 ? static_cast<double>(stats.shed) /
                                           static_cast<double>(stats.requests)
                                     : 0.0;
  row.requests_f32 = stats.requests_f32;
  row.requests_f64 = stats.requests_f64;
  // The derived-sum contract: every request is accounted to exactly
  // one outcome once the loop has drained, and nothing errored.
  row.accounting_ok =
      errors.load() == 0 &&
      stats.requests == stats.hits + stats.near_hits +
                            stats.baseline_fallbacks +
                            stats.reference_fallbacks + stats.shed +
                            stats.failed_requests &&
      stats.failed_requests == 0;
  std::printf(
      "serve     mode=%-12s clients=%d  %6.0f req/s  p50=%-6.0f "
      "p99=%-8.0f shed=%.1f%%  batches=%llu coalesced=%llu%s\n",
      mode.c_str(), clients, row.qps, row.p50_us, row.p99_us,
      row.shed_rate * 100.0,
      static_cast<unsigned long long>(row.batches),
      static_cast<unsigned long long>(row.coalesced),
      row.accounting_ok ? "" : "  ACCOUNTING MISMATCH");
  return row;
}

// --- section 4: swap under load --------------------------------------

struct SwapResult {
  uint64_t reloads = 0;
  uint64_t requests = 0;
  uint64_t answered = 0;
  uint64_t dropped = 0;  // requests that returned an error status
  bool zero_drops = false;
};

SwapResult run_swap_under_load(const gpusim::DeviceModel& device,
                               const libgen::Artifact& artifact,
                               const std::vector<PreparedRequest>& mix,
                               int clients, int reloads) {
  LibraryRuntime rt(device, artifact);
  // Alternate between the full artifact and a truncated one so every
  // swap genuinely changes the published table.
  libgen::Artifact small = artifact;
  if (small.entries.size() > 1) {
    small.entries.resize(small.entries.size() / 2);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sent{0}, ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < clients; ++t) {
    workers.emplace_back([&, t] {
      std::vector<blas3::Matrix> b, c;
      for (const PreparedRequest& p : mix) {
        b.push_back(p.b);
        c.push_back(p.c);
      }
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t k = i++ % mix.size();
        sent.fetch_add(1, std::memory_order_relaxed);
        auto outcome = rt.run(*mix[k].v, mix[k].a, b[k], &c[k]);
        if (outcome.is_ok()) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < reloads; ++i) {
    Status swapped =
        rt.swap_artifact(i % 2 == 0 ? small : artifact);
    if (!swapped.is_ok()) {
      std::printf("swap %d: %s\n", i, swapped.to_string().c_str());
    }
    // Space the reloads out so clients actually serve between
    // republishes (a reload every ~10ms is already far more violent
    // than any production cadence).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Let the clients keep serving against the last snapshot long
  // enough for the drop accounting to mean something.
  const double t_wait = obs::now_us();
  while (sent.load() < 200 && obs::now_us() - t_wait < 10e6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (std::thread& w : workers) w.join();

  SwapResult r;
  r.reloads = rt.stats().reloads;
  r.requests = sent.load();
  r.answered = ok.load();
  r.dropped = r.requests - r.answered;
  r.zero_drops = r.dropped == 0 && r.reloads >= static_cast<uint64_t>(reloads);
  std::printf(
      "swap      %llu reloads under %d clients: %llu requests, %llu "
      "answered, %llu dropped%s\n",
      static_cast<unsigned long long>(r.reloads), clients,
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.answered),
      static_cast<unsigned long long>(r.dropped),
      r.zero_drops ? "" : "  DROPPED REQUESTS");
  return r;
}

// --- JSON emission ---------------------------------------------------

void write_json(const std::string& path, const gpusim::DeviceModel& device,
                const std::vector<DispatchRow>& dispatch,
                uint64_t snapshot_allocs_per_kop,
                uint64_t legacy_allocs_per_kop,
                const std::vector<ServeRow>& serve,
                const SwapResult& swap) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "serve_load: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_load\",\n");
  std::fprintf(f, "  \"device\": \"%s\",\n", device.name.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"dispatch_microbench\": {\n");
  std::fprintf(f, "    \"snapshot_allocs_per_1k_dispatches\": %llu,\n",
               static_cast<unsigned long long>(snapshot_allocs_per_kop));
  std::fprintf(f, "    \"legacy_allocs_per_1k_dispatches\": %llu,\n",
               static_cast<unsigned long long>(legacy_allocs_per_kop));
  std::fprintf(f, "    \"threads\": [\n");
  for (size_t i = 0; i < dispatch.size(); ++i) {
    const DispatchRow& r = dispatch[i];
    std::fprintf(f,
                 "      {\"threads\": %d, \"snapshot_mops\": %.3f, "
                 "\"api_mops\": %.3f, \"legacy_mops\": %.3f, "
                 "\"speedup\": %.3f, \"api_speedup\": %.3f}%s\n",
                 r.threads, r.snapshot_mops, r.api_mops, r.legacy_mops,
                 r.speedup, r.api_speedup,
                 i + 1 < dispatch.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"closed_loop\": [\n");
  for (size_t i = 0; i < serve.size(); ++i) {
    const ServeRow& r = serve[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %d, \"requests\": %llu, "
        "\"qps\": %.1f, \"p50_us\": %.1f, \"p95_us\": %.1f, "
        "\"p99_us\": %.1f, \"shed\": %llu, \"shed_rate\": %.4f, "
        "\"batches\": %llu, \"coalesced\": %llu, "
        "\"requests_f32\": %llu, \"requests_f64\": %llu, "
        "\"accounting_ok\": %s}%s\n",
        r.mode.c_str(), r.clients,
        static_cast<unsigned long long>(r.requests), r.qps, r.p50_us,
        r.p95_us, r.p99_us, static_cast<unsigned long long>(r.shed),
        r.shed_rate, static_cast<unsigned long long>(r.batches),
        static_cast<unsigned long long>(r.coalesced),
        static_cast<unsigned long long>(r.requests_f32),
        static_cast<unsigned long long>(r.requests_f64),
        r.accounting_ok ? "true" : "false",
        i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"swap_under_load\": {\"reloads\": %llu, \"requests\": %llu, "
      "\"answered\": %llu, \"dropped\": %llu, \"zero_drops\": %s}\n",
      static_cast<unsigned long long>(swap.reloads),
      static_cast<unsigned long long>(swap.requests),
      static_cast<unsigned long long>(swap.answered),
      static_cast<unsigned long long>(swap.dropped),
      swap.zero_drops ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace oa

int main(int argc, char** argv) {
  using namespace oa;
  set_log_level(LogLevel::kWarning);

  std::string out_path = "BENCH_serve.json";
  double duration_ms = 1200.0;
  int reloads = 120;
  int64_t dispatch_ops = 200000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--duration-ms" && i + 1 < argc) {
      duration_ms = std::atof(argv[++i]);
    } else if (arg == "--reloads" && i + 1 < argc) {
      reloads = std::atoi(argv[++i]);
    } else if (arg == "--quick") {
      duration_ms = 300.0;
      reloads = 100;
      dispatch_ops = 50000;
    } else {
      std::printf(
          "usage: serve_load [--out FILE] [--duration-ms N] "
          "[--reloads N] [--quick]\n");
      return 2;
    }
  }

  // One small two-precision library for every section.
  const gpusim::DeviceModel& device = gpusim::gtx285();
  OaOptions options;
  options.tuning_size = 256;
  options.verify_size = 48;
  OaFramework framework(device, options);
  std::printf("generating the bench library on %s...\n",
              device.name.c_str());
  for (const char* name :
       {"GEMM-NN", "DGEMM-NN", "SYMM-LL", "DSYMM-LL"}) {
    auto tuned = framework.generate(*blas3::find_variant(name));
    if (!tuned.is_ok()) {
      std::printf("  %s failed: %s\n", name,
                  tuned.status().to_string().c_str());
      return 1;
    }
  }
  const libgen::Artifact artifact = framework.export_library();

  const std::vector<RequestShape> mix = request_mix();
  const std::vector<PreparedRequest> prepared = prepare_mix(mix);

  // Section 1: pure dispatch throughput, snapshot vs legacy.
  LibraryRuntime dispatch_rt(device, artifact);
  uint64_t snapshot_allocs = 0, legacy_allocs = 0;
  const std::vector<DispatchRow> dispatch_rows = run_dispatch_microbench(
      dispatch_rt, mix, dispatch_ops, &snapshot_allocs, &legacy_allocs);
  std::printf(
      "dispatch  allocations per 1k dispatches: snapshot %llu, legacy "
      "%llu\n",
      static_cast<unsigned long long>(snapshot_allocs),
      static_cast<unsigned long long>(legacy_allocs));

  // Sections 2+3: closed-loop serving.
  std::vector<ServeRow> serve_rows;
  for (int clients : {1, 2, 4, 8}) {
    runtime::RuntimeOptions ropt;
    ropt.coalesce = true;
    // Linger long enough for concurrent same-key arrivals to pile on
    // (service time is tens of ms on this interpreter, so a 20ms
    // window costs little relative latency).
    ropt.batch_window_us = 20000.0;
    serve_rows.push_back(run_closed_loop(device, artifact, prepared,
                                         "coalesce", clients, duration_ms,
                                         ropt));
  }
  for (int clients : {1, 8}) {
    runtime::RuntimeOptions ropt;
    ropt.coalesce = false;
    serve_rows.push_back(run_closed_loop(device, artifact, prepared,
                                         "direct", clients, duration_ms,
                                         ropt));
  }
  {
    // Tight SLO + shallow queue: with 8 closed-loop clients the
    // admission controller must shed; the row proves shed accounting.
    runtime::RuntimeOptions ropt;
    ropt.coalesce = false;
    ropt.slo_p99_us = 200.0;
    ropt.max_queue_depth = 2;
    serve_rows.push_back(run_closed_loop(device, artifact, prepared,
                                         "admission", 8, duration_ms,
                                         ropt));
  }

  // Section 4: hot reloads under load.
  const SwapResult swap =
      run_swap_under_load(device, artifact, prepared, 4, reloads);

  write_json(out_path, device, dispatch_rows, snapshot_allocs,
             legacy_allocs, serve_rows, swap);

  const bool ok = swap.zero_drops &&
                  std::all_of(serve_rows.begin(), serve_rows.end(),
                              [](const ServeRow& r) {
                                return r.accounting_ok;
                              });
  return ok ? 0 : 1;
}
