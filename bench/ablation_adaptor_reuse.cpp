// Ablation (DESIGN.md §6.3): what the paper's Figures 10-12 actually
// demonstrate — reusing GEMM-NN tuning experience through adaptors vs
// applying the GEMM-NN scheme *directly* (no adaptor) to each routine.
// The direct scheme cannot restructure the symmetric/triangular
// iteration spaces, so its candidates either degenerate or stay slow.
#include <cstdio>

#include "bench_common.hpp"
#include "tuner/tuner.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace oa;
  using namespace oa::bench;
  FigureOptions options;
  options.problem_size = 1024;
  options.tuning_size = 1024;
  options = parse_figure_args(argc, argv, options);

  std::printf(
      "== Ablation: adaptor reuse vs direct GEMM scheme (GTX285, "
      "N = %lld) ==\n\n",
      static_cast<long long>(options.problem_size));

  gpusim::Simulator sim(gpusim::gtx285());
  tuner::TuneOptions topt;
  topt.target_size = options.problem_size;
  tuner::Tuner tuner(sim, topt);

  OaOptions oa_options;
  oa_options.tuning_size = options.problem_size;
  OaFramework framework(gpusim::gtx285(), oa_options);

  TextTable table({"routine", "with adaptors (GFLOPS)",
                   "direct GEMM scheme (GFLOPS)", "adaptor benefit"});
  for (const char* name : {"GEMM-TN", "SYMM-LL", "TRMM-LL-N", "TRSM-LL-N"}) {
    const blas3::Variant v = *blas3::find_variant(name);

    double with_adaptor = 0.0;
    if (auto tuned = framework.generate(v); tuned.is_ok()) {
      if (auto g = framework.measure_gflops(*tuned, v, options.problem_size);
          g.is_ok()) {
        with_adaptor = *g;
      }
    }

    // Direct: the raw GEMM-NN script, no adaptor knowledge.
    composer::Candidate direct;
    direct.script = epod::gemm_nn_script();
    double direct_gflops = 0.0;
    if (auto tuned = tuner.tune(v, {direct}); tuned.is_ok()) {
      direct_gflops = tuned->gflops;
    }

    table.add_row(
        {name, str_format("%.1f", with_adaptor),
         direct_gflops > 0 ? str_format("%.1f", direct_gflops)
                           : std::string("no legal variant"),
         direct_gflops > 0 ? str_format("%.2fx", with_adaptor / direct_gflops)
                           : std::string("-")});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "(TRSM has no legal direct variant: without Adaptor_Solver the "
      "dependence-carrying rows race and verification rejects every "
      "candidate — the adaptor is what makes the routine expressible "
      "at all.)\n");
  return 0;
}
