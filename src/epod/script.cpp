#include "epod/script.hpp"

#include <sstream>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::epod {

using transforms::Invocation;

uint64_t Script::fingerprint() const {
  Fingerprint fp;
  fp.mix(routine);
  fp.mix(static_cast<uint64_t>(invocations.size()));
  for (const Invocation& inv : invocations) fp.mix(inv.fingerprint());
  return fp.digest();
}

std::string Script::to_string() const {
  std::ostringstream os;
  if (!routine.empty()) os << "// EPOD script for " << routine << "\n";
  for (const Invocation& inv : invocations) {
    os << inv.to_string() << ";\n";
  }
  return os.str();
}

namespace {

/// Strip //-comments and collapse whitespace.
std::string strip_comments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_comment = false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (in_comment) {
      if (text[i] == '\n') in_comment = false;
      continue;
    }
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      in_comment = true;
      ++i;
      continue;
    }
    out += text[i];
  }
  return out;
}

StatusOr<Invocation> parse_statement(std::string_view stmt) {
  Invocation inv;
  std::string_view rest = trim(stmt);

  // Optional result list before '='. Careful: args contain no '='.
  const size_t eq = rest.find('=');
  if (eq != std::string_view::npos) {
    std::string_view lhs = trim(rest.substr(0, eq));
    if (!lhs.empty() && lhs.front() == '(') {
      if (lhs.back() != ')') {
        return invalid_argument("unbalanced result list in '" +
                                std::string(stmt) + "'");
      }
      lhs = trim(lhs.substr(1, lhs.size() - 2));
    }
    inv.results = split(lhs, ',', /*skip_empty=*/true);
    rest = trim(rest.substr(eq + 1));
  }

  const size_t open = rest.find('(');
  if (open == std::string_view::npos || rest.back() != ')') {
    return invalid_argument("expected 'name(args)' in '" +
                            std::string(stmt) + "'");
  }
  inv.component = std::string(trim(rest.substr(0, open)));
  // Tolerate the paper's doubled parentheses: thread_grouping((Li, Lj)).
  std::string_view args = rest.substr(open + 1, rest.size() - open - 2);
  args = trim(args);
  if (!args.empty() && args.front() == '(' && args.back() == ')') {
    args = trim(args.substr(1, args.size() - 2));
  }
  inv.args = split(args, ',', /*skip_empty=*/true);

  if (!transforms::is_known_component(inv.component)) {
    return invalid_argument("unknown optimization component '" +
                            inv.component + "'");
  }
  return inv;
}

}  // namespace

StatusOr<Script> parse_script(std::string_view text) {
  Script script;
  const std::string clean = strip_comments(text);
  for (const std::string& stmt : split(clean, ';')) {
    std::string_view s = trim(stmt);
    if (s.empty()) continue;
    OA_ASSIGN_OR_RETURN(Invocation inv, parse_statement(s));
    script.invocations.push_back(std::move(inv));
  }
  return script;
}

Status apply_script(ir::Program& program, const Script& script,
                    const transforms::TransformContext& ctx) {
  for (const Invocation& inv : script.invocations) {
    Status s = transforms::apply(program, inv, ctx);
    if (!s.is_ok()) {
      return Status(s.code(),
                    inv.to_string() + " failed: " + s.message());
    }
  }
  return Status::ok();
}

StatusOr<uint64_t> apply_script_lenient(
    ir::Program& program, const Script& script,
    const transforms::TransformContext& ctx) {
  if (script.invocations.size() > 64) {
    return invalid_argument("script too long for the applied-mask");
  }
  uint64_t applied = 0;
  for (size_t i = 0; i < script.invocations.size(); ++i) {
    ir::Program backup = program;
    Status s = transforms::apply(program, script.invocations[i], ctx);
    if (s.is_ok()) {
      applied |= uint64_t{1} << i;
    } else {
      program = std::move(backup);
    }
  }
  return applied;
}

const Script& gemm_nn_script() {
  static const Script script = [] {
    auto parsed = parse_script(R"(
      (Lii, Ljj) = thread_grouping(Li, Lj);
      (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
      loop_unroll(Ljjj, Lkkk);
      SM_alloc(B, Transpose);
      reg_alloc(C);
    )");
    Script s = std::move(parsed).value();
    s.routine = "GEMM-NN";
    return s;
  }();
  return script;
}

}  // namespace oa::epod
