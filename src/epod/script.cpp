#include "epod/script.hpp"

#include <sstream>

#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::epod {

using transforms::Invocation;

uint64_t Script::fingerprint() const {
  Fingerprint fp;
  fp.mix(routine);
  fp.mix(static_cast<uint64_t>(invocations.size()));
  for (const Invocation& inv : invocations) fp.mix(inv.fingerprint());
  return fp.digest();
}

std::string Script::to_string() const {
  std::ostringstream os;
  if (!routine.empty()) os << "// EPOD script for " << routine << "\n";
  for (const Invocation& inv : invocations) {
    os << inv.to_string() << ";\n";
  }
  return os.str();
}

std::string to_text(const Script& script) {
  std::string out;
  if (!script.routine.empty()) {
    out += "//! routine: " + script.routine + "\n";
  }
  for (const Invocation& inv : script.invocations) {
    out += inv.to_string();
    out += ";\n";
  }
  return out;
}

namespace {

/// One lexical token with its 1-based source position.
struct Token {
  enum Kind { kIdent, kLParen, kRParen, kComma, kEquals, kSemi, kEnd };
  Kind kind = kEnd;
  std::string text;
  int line = 1;
  int col = 1;
};

const char* token_name(Token::Kind k) {
  switch (k) {
    case Token::kIdent: return "identifier";
    case Token::kLParen: return "'('";
    case Token::kRParen: return "')'";
    case Token::kComma: return "','";
    case Token::kEquals: return "'='";
    case Token::kSemi: return "';'";
    case Token::kEnd: return "end of script";
  }
  return "?";
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.';
}

/// Tokenizer tracking line/column; `//! routine:` directive comments
/// set `routine`, plain `//` comments are skipped.
struct LexOutcome {
  std::vector<Token> tokens;
  std::string routine;
};

StatusOr<LexOutcome> lex(std::string_view text) {
  LexOutcome out;
  int line = 1, col = 1;
  size_t i = 0;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = text.size();
      std::string_view comment = text.substr(i + 2, end - i - 2);
      // Directive comments survive the round trip; everything else is
      // documentation.
      std::string_view body = trim(comment);
      if (!body.empty() && body.front() == '!') {
        body = trim(body.substr(1));
        constexpr std::string_view kRoutine = "routine:";
        if (starts_with(body, kRoutine)) {
          out.routine = std::string(trim(body.substr(kRoutine.size())));
        }
      }
      advance(end - i);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.col = col;
    switch (c) {
      case '(': tok.kind = Token::kLParen; advance(1); break;
      case ')': tok.kind = Token::kRParen; advance(1); break;
      case ',': tok.kind = Token::kComma; advance(1); break;
      case '=': tok.kind = Token::kEquals; advance(1); break;
      case ';': tok.kind = Token::kSemi; advance(1); break;
      default: {
        if (!is_ident_char(c)) {
          return invalid_argument(
              str_format("line %d, col %d: unexpected character '%c'",
                         line, col, c));
        }
        size_t end = i;
        while (end < text.size() && is_ident_char(text[end])) ++end;
        tok.kind = Token::kIdent;
        tok.text = std::string(text.substr(i, end - i));
        advance(end - i);
        break;
      }
    }
    out.tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = Token::kEnd;
  eof.line = line;
  eof.col = col;
  out.tokens.push_back(eof);
  return out;
}

Status error_at(const Token& tok, const std::string& message) {
  return invalid_argument(
      str_format("line %d, col %d: %s", tok.line, tok.col,
                 message.c_str()));
}

}  // namespace

StatusOr<Script> parse(std::string_view text) {
  OA_ASSIGN_OR_RETURN(LexOutcome lexed, lex(text));
  const std::vector<Token>& toks = lexed.tokens;
  Script script;
  script.routine = std::move(lexed.routine);

  size_t i = 0;
  while (toks[i].kind != Token::kEnd) {
    if (toks[i].kind == Token::kSemi) {  // tolerate empty statements
      ++i;
      continue;
    }
    Invocation inv;
    // Optional result list before '=': either a single label or a
    // parenthesized list — only treated as results when an '=' follows.
    if (toks[i].kind == Token::kLParen) {
      size_t close = i + 1;
      while (toks[close].kind != Token::kRParen &&
             toks[close].kind != Token::kEnd) {
        ++close;
      }
      if (toks[close].kind == Token::kEnd) {
        return error_at(toks[i], "unbalanced '(' in result list");
      }
      if (toks[close + 1].kind == Token::kEquals) {
        for (size_t k = i + 1; k < close; ++k) {
          if (toks[k].kind == Token::kComma) continue;
          if (toks[k].kind != Token::kIdent) {
            return error_at(toks[k],
                            std::string("expected label in result list, "
                                        "got ") +
                                token_name(toks[k].kind));
          }
          inv.results.push_back(toks[k].text);
        }
        i = close + 2;
      }
    } else if (toks[i].kind == Token::kIdent &&
               toks[i + 1].kind == Token::kEquals) {
      inv.results.push_back(toks[i].text);
      i += 2;
    }

    if (toks[i].kind != Token::kIdent) {
      return error_at(toks[i], std::string("expected component name, got ") +
                                   token_name(toks[i].kind));
    }
    const Token& name_tok = toks[i];
    inv.component = toks[i].text;
    ++i;
    if (toks[i].kind != Token::kLParen) {
      return error_at(toks[i], "expected '(' after component name '" +
                                   inv.component + "'");
    }
    ++i;
    // Tolerate the paper's doubled parentheses: thread_grouping((Li, Lj)).
    bool doubled = false;
    if (toks[i].kind == Token::kLParen) {
      doubled = true;
      ++i;
    }
    while (toks[i].kind != Token::kRParen) {
      if (toks[i].kind != Token::kIdent) {
        return error_at(toks[i], std::string("expected argument, got ") +
                                     token_name(toks[i].kind));
      }
      inv.args.push_back(toks[i].text);
      ++i;
      if (toks[i].kind == Token::kComma) {
        ++i;
        continue;
      }
      if (toks[i].kind != Token::kRParen) {
        return error_at(toks[i],
                        std::string("expected ',' or ')' in argument "
                                    "list, got ") +
                            token_name(toks[i].kind));
      }
    }
    ++i;
    if (doubled) {
      if (toks[i].kind != Token::kRParen) {
        return error_at(toks[i], "unbalanced '(' in argument list");
      }
      ++i;
    }
    if (toks[i].kind != Token::kSemi) {
      return error_at(toks[i], std::string("expected ';' after "
                                           "invocation, got ") +
                                   token_name(toks[i].kind));
    }
    ++i;
    if (!transforms::is_known_component(inv.component)) {
      return error_at(name_tok, "unknown optimization component '" +
                                    inv.component + "'");
    }
    script.invocations.push_back(std::move(inv));
  }
  return script;
}

StatusOr<Script> parse_script(std::string_view text) { return parse(text); }

Status apply_script(ir::Program& program, const Script& script,
                    const transforms::TransformContext& ctx) {
  for (const Invocation& inv : script.invocations) {
    Status s = transforms::apply(program, inv, ctx);
    if (!s.is_ok()) {
      return Status(s.code(),
                    inv.to_string() + " failed: " + s.message());
    }
  }
  return Status::ok();
}

StatusOr<uint64_t> apply_script_lenient(
    ir::Program& program, const Script& script,
    const transforms::TransformContext& ctx) {
  if (script.invocations.size() > 64) {
    return invalid_argument("script too long for the applied-mask");
  }
  uint64_t applied = 0;
  for (size_t i = 0; i < script.invocations.size(); ++i) {
    ir::Program backup = program;
    Status s = transforms::apply(program, script.invocations[i], ctx);
    if (s.is_ok()) {
      applied |= uint64_t{1} << i;
    } else {
      program = std::move(backup);
    }
  }
  return applied;
}

const Script& gemm_nn_script() {
  static const Script script = [] {
    auto parsed = parse_script(R"(
      (Lii, Ljj) = thread_grouping(Li, Lj);
      (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
      loop_unroll(Ljjj, Lkkk);
      SM_alloc(B, Transpose);
      reg_alloc(C);
    )");
    Script s = std::move(parsed).value();
    s.routine = "GEMM-NN";
    return s;
  }();
  return script;
}

}  // namespace oa::epod
