// EPOD scripts (paper §III): an optimization scheme is an ordered list
// of component invocations over a labeled code region. Developers write
// them to encapsulate tuning experience (Fig 3); the composer generates
// new ones from adaptors (Fig 14 shows the best performers).
//
// Grammar (one invocation per ';'-terminated statement):
//   script      := { statement }
//   statement   := [ results "=" ] name "(" args ")" ";"
//   results     := label | "(" label { "," label } ")"
//   args        := [ arg { "," arg } ]
//   comments    := "//" to end of line
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "support/status.hpp"
#include "transforms/transform.hpp"

namespace oa::epod {

struct Script {
  /// Optional routine name the script was written for (informational).
  std::string routine;
  std::vector<transforms::Invocation> invocations;

  bool operator==(const Script&) const = default;

  /// Paper-style rendering, one invocation per line.
  std::string to_string() const;

  /// Stable content hash over routine + every invocation; two scripts
  /// with the same fingerprint apply identically (engine cache key
  /// component).
  uint64_t fingerprint() const;
};

/// Canonical text serialization: a `//! routine: NAME` directive (when
/// the script names its routine) followed by one `;`-terminated
/// invocation per line. parse() round-trips it exactly — including the
/// routine name, which a plain `// ...` comment would lose — so the
/// library-artifact format (libgen/) and `oagen --dump-scripts` can
/// store scripts as human-readable text without losing fingerprints.
std::string to_text(const Script& script);

/// Parse the textual form. Unknown component names are rejected here so
/// a typo fails fast rather than at application time. Errors carry the
/// 1-based line and column of the offending token ("line 3, col 12:
/// unknown optimization component 'warp_specialize'").
StatusOr<Script> parse(std::string_view text);

/// Historical alias of parse().
StatusOr<Script> parse_script(std::string_view text);

/// The EPOD translator: apply the script's components, in order, to the
/// program. The first failing component aborts with its status (the
/// composer's filter uses apply_prefix semantics instead — see
/// composer/).
Status apply_script(ir::Program& program, const Script& script,
                    const transforms::TransformContext& ctx);

/// Filter-semantics application: a failing component is *omitted* (the
/// sequence degenerates) instead of aborting. Returns a bitmask of the
/// invocations that actually applied (bit i = invocation i); used when
/// re-applying composer-generated scripts under different tuning
/// parameters — two parameter points with different masks are different
/// kernels and must be re-verified separately.
StatusOr<uint64_t> apply_script_lenient(
    ir::Program& program, const Script& script,
    const transforms::TransformContext& ctx);

/// The paper's Fig 3 script for GEMM-NN — the tuning experience every
/// adaptor extends:
///   (Lii, Ljj) = thread_grouping(Li, Lj);
///   (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
///   loop_unroll(Ljjj, Lkkk);
///   SM_alloc(B, Transpose);
///   reg_alloc(C);
const Script& gemm_nn_script();

}  // namespace oa::epod
