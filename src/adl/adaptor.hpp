// The Adaptor Definition Language (paper §IV-A): an adaptor relates a
// new routine to an existing optimization scheme by listing alternative
// component sequences for one matrix argument:
//
//   adaptor Adaptor_Transpose(X):
//     |
//     | GM_map(X, Transpose);
//     | SM_alloc(X, Transpose);
//
// Each '|' starts one rule; an empty rule keeps X unchanged. A rule may
// carry a condition, e.g. {cond(blank(X).zero = true)}, which makes the
// composer emit multi-versioned code.
#pragma once

#include <string>
#include <vector>

#include "support/status.hpp"
#include "transforms/transform.hpp"

namespace oa::adl {

struct AdaptorRule {
  std::vector<transforms::Invocation> sequence;  // may be empty
  /// Raw condition text ("blank(X).zero = true"); empty when absent.
  std::string condition;

  bool operator==(const AdaptorRule&) const = default;
};

struct Adaptor {
  std::string name;    // "Adaptor_Transpose"
  std::string formal;  // formal parameter, usually "X"
  std::vector<AdaptorRule> rules;

  /// Substitute the formal parameter with an actual matrix name
  /// ("A", "B"): returns the bound adaptor ready for composition.
  Adaptor bind(const std::string& actual) const;

  /// ADL-syntax rendering.
  std::string to_string() const;
};

/// Parse an ADL definition.
StatusOr<Adaptor> parse_adaptor(std::string_view text);

/// The four built-in adaptors of the paper (§IV-A.1 - §IV-A.4).
const Adaptor& adaptor_transpose();
const Adaptor& adaptor_symmetry();
const Adaptor& adaptor_triangular();
const Adaptor& adaptor_solver();
/// Batched-family extension: the batch-dimension grouping axis
/// (batch_grouping(per_member) | batch_grouping(batch_tiled)).
const Adaptor& adaptor_batch();

/// Look up a built-in by name (nullptr when unknown).
const Adaptor* find_adaptor(std::string_view name);

}  // namespace oa::adl
