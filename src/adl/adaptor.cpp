#include "adl/adaptor.hpp"

#include <sstream>

#include "epod/script.hpp"
#include "support/strings.hpp"

namespace oa::adl {

using transforms::Invocation;

Adaptor Adaptor::bind(const std::string& actual) const {
  Adaptor out = *this;
  for (AdaptorRule& rule : out.rules) {
    for (Invocation& inv : rule.sequence) {
      for (std::string& arg : inv.args) {
        if (arg == formal) arg = actual;
      }
    }
    // Conditions mention the formal too: blank(X).zero -> blank(A).zero.
    size_t pos;
    const std::string pat = "(" + formal + ")";
    while ((pos = rule.condition.find(pat)) != std::string::npos) {
      rule.condition.replace(pos, pat.size(), "(" + actual + ")");
    }
  }
  out.formal = actual;
  return out;
}

std::string Adaptor::to_string() const {
  std::ostringstream os;
  os << "adaptor " << name << "(" << formal << "):\n";
  for (const AdaptorRule& rule : rules) {
    os << "  |";
    for (size_t i = 0; i < rule.sequence.size(); ++i) {
      os << ' ' << rule.sequence[i].to_string() << ';';
    }
    if (!rule.condition.empty()) {
      os << " {cond(" << rule.condition << ")}";
    }
    os << '\n';
  }
  return os.str();
}

StatusOr<Adaptor> parse_adaptor(std::string_view text) {
  Adaptor out;
  // Header: "adaptor NAME(FORMAL):".
  size_t pos = text.find("adaptor");
  if (pos == std::string_view::npos) {
    return invalid_argument("missing 'adaptor' keyword");
  }
  size_t open = text.find('(', pos);
  size_t close = text.find(')', pos);
  size_t colon = text.find(':', pos);
  if (open == std::string_view::npos || close == std::string_view::npos ||
      colon == std::string_view::npos || close < open || colon < close) {
    return invalid_argument("malformed adaptor header");
  }
  out.name = std::string(trim(text.substr(pos + 7, open - pos - 7)));
  out.formal = std::string(trim(text.substr(open + 1, close - open - 1)));
  if (out.name.empty() || out.formal.empty()) {
    return invalid_argument("adaptor needs a name and a formal parameter");
  }

  // Rules: '|'-separated; the segment before the first '|' is dropped
  // (whitespace), every later segment is one rule — an empty segment is
  // the "keep X unchanged" rule.
  std::string_view body = text.substr(colon + 1);
  std::vector<std::string> segments = split(body, '|');
  if (segments.size() < 2) {
    return invalid_argument("adaptor '" + out.name + "' has no rules");
  }
  for (size_t seg = 1; seg < segments.size(); ++seg) {
    std::string_view rt = trim(segments[seg]);
    AdaptorRule rule;
    // Optional {cond(...)} suffix.
    const size_t cond_pos = rt.find("{cond(");
    if (cond_pos != std::string_view::npos) {
      const size_t cond_end = rt.rfind(")}");
      if (cond_end == std::string_view::npos || cond_end < cond_pos) {
        return invalid_argument("malformed cond(...) clause");
      }
      rule.condition =
          std::string(trim(rt.substr(cond_pos + 6, cond_end - cond_pos - 6)));
      rt = trim(rt.substr(0, cond_pos));
    }
    if (!rt.empty()) {
      OA_ASSIGN_OR_RETURN(epod::Script seq, epod::parse_script(rt));
      rule.sequence = std::move(seq.invocations);
    }
    out.rules.push_back(std::move(rule));
  }
  if (out.rules.empty()) {
    return invalid_argument("adaptor '" + out.name + "' has no rules");
  }
  return out;
}

namespace {

Adaptor parse_builtin(const char* text) {
  auto parsed = parse_adaptor(text);
  return std::move(parsed).value();
}

}  // namespace

const Adaptor& adaptor_transpose() {
  static const Adaptor a = parse_builtin(R"(
    adaptor Adaptor_Transpose(X):
      |
      | GM_map(X, Transpose);
      | SM_alloc(X, Transpose);
  )");
  return a;
}

const Adaptor& adaptor_symmetry() {
  static const Adaptor a = parse_builtin(R"(
    adaptor Adaptor_Symmetry(X):
      |
      | GM_map(X, Symmetry); format_iteration(X, Symmetry);
      | format_iteration(X, Symmetry); SM_alloc(X, Symmetry);
  )");
  return a;
}

const Adaptor& adaptor_triangular() {
  static const Adaptor a = parse_builtin(R"(
    adaptor Adaptor_Triangular(X):
      |
      | peel_triangular(X);
      | padding_triangular(X); {cond(blank(X).zero = true)}
  )");
  return a;
}

const Adaptor& adaptor_solver() {
  static const Adaptor a = parse_builtin(R"(
    adaptor Adaptor_Solver(X):
      | peel_triangular(X); binding_triangular(X, 0);
  )");
  return a;
}

const Adaptor& adaptor_batch() {
  // The new thread-grouping axis over the batch dimension (ROADMAP
  // item 5): one member grid per batch member, or the whole batch
  // tiled into a single launch. The formal X is the structured array
  // by convention, but the component acts on the program's batch
  // layout, not on one matrix.
  static const Adaptor a = parse_builtin(R"(
    adaptor Adaptor_Batch(X):
      | batch_grouping(per_member);
      | batch_grouping(batch_tiled);
  )");
  return a;
}

const Adaptor* find_adaptor(std::string_view name) {
  for (const Adaptor* a :
       {&adaptor_transpose(), &adaptor_symmetry(), &adaptor_triangular(),
        &adaptor_solver(), &adaptor_batch()}) {
    if (a->name == name) return a;
  }
  return nullptr;
}

}  // namespace oa::adl
