// DispatchSnapshot: one immutable, fully-precomputed serving table.
//
// The serving hot path must cost a couple of array loads, not a
// string-keyed map walk: a snapshot interns every routine variant into
// a dense integer code (a perfect encoding of the Variant fields that
// name() is derived from, canonicalized per family so fields a family
// ignores cannot split the code space) and precomputes, for every
// (variant code, size bucket) cell, which table entry serves it and
// whether that is an exact hit or a near hit. Nearest-bucket
// resolution — the policy LibraryRuntime::dispatch() used to run per
// request — happens once at snapshot build time.
//
// Snapshots are immutable after build() and published by the runtime
// through an atomic shared_ptr: readers pin a snapshot for the
// duration of one request, hot reloads build a fresh snapshot and
// publish it without touching the one in-flight requests still hold.
// Baseline fallback programs are part of the same picture: they are
// built once per device into a BaselineTable (they depend only on
// (variant, device), never on the artifact) and shared by every
// snapshot the runtime ever publishes, replacing the old lazily-built,
// mutex-guarded baseline cache.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blas3/routine.hpp"
#include "gpusim/simulator.hpp"
#include "ir/kernel.hpp"
#include "libgen/artifact.hpp"
#include "support/status.hpp"

namespace oa::runtime {

/// Dense, canonical integer code for a routine variant. Two Variant
/// values with the same name() always map to the same code (fields a
/// family ignores are zeroed before encoding); distinct names map to
/// distinct codes. Always in [0, kVariantCodes).
int variant_code(const blas3::Variant& v);

/// 5 families x 5 canonicalized flag bits x 2 precisions x 3 batch
/// modes (single / batched / strided-batched).
inline constexpr int kVariantCodes = 5 * 32 * 2 * 3;

/// Baseline (CUBLAS-like) programs for every catalog variant on one
/// device, indexed by variant code. Immutable after build; shared by
/// every DispatchSnapshot of a runtime (the schedule depends only on
/// the device model, not on the artifact being served).
class BaselineTable {
 public:
  /// Builds the baseline program for every variant in the catalog
  /// (both precisions, extensions included). Variants whose baseline
  /// cannot be built simply stay null and serve from the CPU
  /// reference.
  static std::shared_ptr<const BaselineTable> build(
      const gpusim::DeviceModel& device);

  /// Baseline program for a variant code, or nullptr.
  const ir::Program* find(int code) const {
    return programs_[static_cast<size_t>(code)].get();
  }

 private:
  std::array<std::unique_ptr<const ir::Program>, kVariantCodes> programs_;
};

class DispatchSnapshot {
 public:
  /// Power-of-two size buckets (floor(log2(n)) for int64 sizes).
  static constexpr int kBuckets = 63;

  /// The power-of-two problem-size bucket of n (floor(log2(n))).
  static int size_bucket(int64_t n);

  /// One servable tuned kernel, reconstructed from an artifact entry.
  struct Entry {
    const blas3::Variant* variant = nullptr;
    ir::Program program;
    /// Runtime bool parameters implied by the entry's rule conditions.
    /// Stable for the snapshot's lifetime — Dispatch hands out a
    /// pointer to this map instead of copying it per request.
    std::map<std::string, bool> bool_params;
    double gflops = 0.0;
    int64_t tuned_size = 0;
  };

  /// Build a snapshot from an artifact: reconstruct every admissible
  /// entry, then resolve the full (variant code x bucket) plan table.
  /// Never fails — a mismatched or partially-stale artifact yields a
  /// smaller (possibly empty) table with the reason in load_status().
  /// `baselines` may be null (no baseline fallback).
  static std::shared_ptr<const DispatchSnapshot> build(
      const gpusim::DeviceModel& device, libgen::Artifact artifact,
      std::shared_ptr<const BaselineTable> baselines);

  /// The artifact this snapshot serves (kept for introspection; pin
  /// the snapshot while reading it).
  const libgen::Artifact& artifact() const { return artifact_; }

  /// OK when every artifact entry was admitted; otherwise the
  /// (non-fatal) reason serving is degraded.
  const Status& load_status() const { return load_status_; }

  /// Number of servable tuned kernels.
  size_t table_size() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The entry serving (code, bucket), or nullptr when the variant has
  /// no tuned kernel at all. `*exact` reports whether the request
  /// bucket is the entry's own tuning bucket (hit) or the nearest
  /// registered one (near hit).
  const Entry* lookup(int code, int bucket, bool* exact) const {
    const Plan& plan = plans_[static_cast<size_t>(code)];
    const int16_t idx = plan.entry[static_cast<size_t>(bucket)];
    if (idx < 0) return nullptr;
    *exact = plan.exact[static_cast<size_t>(bucket)] != 0;
    return &entries_[static_cast<size_t>(idx)];
  }

  /// Baseline program for a variant code, or nullptr (no baseline
  /// table, or the baseline could not be built for this variant).
  const ir::Program* baseline(int code) const {
    return baselines_ == nullptr ? nullptr : baselines_->find(code);
  }

 private:
  /// Per-variant-code serving plan: for every size bucket, the entry
  /// index that serves it (-1 = no tuned kernel) and whether that is
  /// an exact bucket match. int16 keeps the 960-plan table compact; a
  /// library has at most a few hundred entries.
  struct Plan {
    std::array<int16_t, kBuckets> entry;
    std::array<uint8_t, kBuckets> exact;
  };

  libgen::Artifact artifact_;
  Status load_status_;
  std::vector<Entry> entries_;
  std::vector<Plan> plans_;
  std::shared_ptr<const BaselineTable> baselines_;
};

}  // namespace oa::runtime
