#include "runtime/library_runtime.hpp"

#include <algorithm>
#include <utility>

#include "blas3/reference.hpp"
#include "engine/evaluation_engine.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa::runtime {

using blas3::Variant;

namespace {
/// Fallback executions carry no rule-implied bool params.
const std::map<std::string, bool>& no_bool_params() {
  static const std::map<std::string, bool> empty;
  return empty;
}

/// Monotonic snapshot-version source, shared by every runtime in the
/// process so a (destroyed runtime, recycled address) can never alias
/// a live pinned() cache entry.
uint64_t next_snapshot_version() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Stats key for the per-family request split: the routine family with
/// its batch qualifier ("GEMM", "GEMM_BATCHED", "GEMM_STRIDED_BATCHED",
/// "TRSM", ...). Precisions share a key — the split already exists on
/// its own axis.
std::string family_key(blas3::Family family, blas3::Batch batch) {
  std::string key = blas3::family_name(family);
  if (batch == blas3::Batch::kBatched) key += "_BATCHED";
  if (batch == blas3::Batch::kStridedBatched) key += "_STRIDED_BATCHED";
  return key;
}
}  // namespace

const char* outcome_name(DispatchOutcome outcome) {
  switch (outcome) {
    case DispatchOutcome::kHit: return "hit";
    case DispatchOutcome::kNearHit: return "near-hit";
    case DispatchOutcome::kFallbackBaseline: return "baseline-fallback";
    case DispatchOutcome::kFallbackReference: return "reference-fallback";
    case DispatchOutcome::kShed: return "shed";
  }
  return "?";
}

std::string DispatchStats::to_string() const {
  std::string out = str_format(
      "dispatch: %llu requests — %llu hits, %llu near-hits, %llu "
      "baseline fallbacks, %llu reference fallbacks, %llu shed, %llu "
      "recovered kernel errors, %llu failed; f32 %llu req / %llu tuned, "
      "f64 %llu req / %llu tuned; %llu native serves (%llu interpreter "
      "fallbacks); %llu reloads, %llu batches (%llu coalesced)",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(near_hits),
      static_cast<unsigned long long>(baseline_fallbacks),
      static_cast<unsigned long long>(reference_fallbacks),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(recovered_errors),
      static_cast<unsigned long long>(failed_requests),
      static_cast<unsigned long long>(requests_f32),
      static_cast<unsigned long long>(tuned_served_f32),
      static_cast<unsigned long long>(requests_f64),
      static_cast<unsigned long long>(tuned_served_f64),
      static_cast<unsigned long long>(native_serves),
      static_cast<unsigned long long>(native_fallbacks),
      static_cast<unsigned long long>(reloads),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(coalesced));
  if (batched_requests > 0) {
    out += str_format("; %llu batched calls (%llu members)",
                      static_cast<unsigned long long>(batched_requests),
                      static_cast<unsigned long long>(batched_members));
  }
  for (const auto& [family, count] : requests_by_family) {
    out += str_format("\n  %-21s %llu requests", family.c_str(),
                      static_cast<unsigned long long>(count));
  }
  return out;
}

LibraryRuntime::LibraryRuntime(const gpusim::DeviceModel& device,
                               libgen::Artifact artifact,
                               RuntimeOptions options)
    : sim_(device), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // Pre-register every serving instrument so an exported snapshot
  // always carries the full runtime schema, even for outcomes that
  // never happened.
  ins_.requests = &metrics_->counter("runtime.requests");
  for (Precision p : {Precision::kF32, Precision::kF64}) {
    const int i = static_cast<int>(p);
    const std::string suffix = std::string(".") + precision_name(p);
    ins_.requests_by_prec[i] =
        &metrics_->counter("runtime.requests" + suffix);
    ins_.tuned_served_by_prec[i] =
        &metrics_->counter("runtime.tuned_served" + suffix);
  }
  ins_.hits = &metrics_->counter("runtime.hits");
  ins_.near_hits = &metrics_->counter("runtime.near_hits");
  ins_.baseline_fallbacks = &metrics_->counter("runtime.baseline_fallbacks");
  ins_.reference_fallbacks =
      &metrics_->counter("runtime.reference_fallbacks");
  ins_.shed = &metrics_->counter("runtime.shed");
  ins_.recovered_errors = &metrics_->counter("runtime.recovered_errors");
  ins_.failed_requests = &metrics_->counter("runtime.failed_requests");
  ins_.native_serves = &metrics_->counter("runtime.native_serves");
  ins_.native_fallbacks = &metrics_->counter("runtime.native_fallbacks");
  ins_.reloads = &metrics_->counter("runtime.reloads");
  ins_.batches = &metrics_->counter("runtime.batches");
  ins_.coalesced = &metrics_->counter("runtime.coalesced");
  ins_.batched_requests = &metrics_->counter("runtime.batched_requests");
  ins_.batched_members = &metrics_->counter("runtime.batched_members");
  for (int f = 0; f < 5; ++f) {
    const auto family = static_cast<blas3::Family>(f);
    for (int bm = 0; bm < 3; ++bm) {
      // Batched families only exist for GEMM; other rows alias their
      // single-mode counter so a stray Variant cannot mint a key.
      const blas3::Batch batch = family == blas3::Family::kGemm
                                     ? static_cast<blas3::Batch>(bm)
                                     : blas3::Batch::kSingle;
      ins_.family_requests[f][bm] = &metrics_->counter(
          "runtime.requests.family." + family_key(family, batch));
    }
  }
  ins_.hit_us = &metrics_->histogram("runtime.dispatch_us.hit");
  ins_.near_hit_us = &metrics_->histogram("runtime.dispatch_us.near_hit");
  ins_.baseline_us =
      &metrics_->histogram("runtime.dispatch_us.baseline_fallback");
  ins_.reference_us =
      &metrics_->histogram("runtime.dispatch_us.reference_fallback");
  ins_.shed_us = &metrics_->histogram("runtime.dispatch_us.shed");
  ins_.failed_us = &metrics_->histogram("runtime.dispatch_us.failed");
  ins_.serve_us = &metrics_->histogram("runtime.serve_us");
  ins_.reload_us = &metrics_->histogram("runtime.reload_us");
  ins_.batch_size = &metrics_->histogram("runtime.batch_size");
  ins_.queue_wait_us = &metrics_->histogram("runtime.queue_wait_us");
  ins_.batch_exec_us = &metrics_->histogram("runtime.batch_exec_us");

  if (options_.baseline_fallback) {
    baselines_ = BaselineTable::build(device);
  }
  auto snap =
      DispatchSnapshot::build(device, std::move(artifact), baselines_);
  if (!snap->load_status().is_ok()) {
    OA_LOG(kWarning) << "LibraryRuntime: "
                     << snap->load_status().to_string()
                     << (snap->table_size() == 0 ? " — serving fallbacks only"
                                                 : "");
  }
  metrics_->gauge("runtime.table_size")
      .set(static_cast<double>(snap->table_size()));
  prewarm(*snap);
  snapshot_.store(std::move(snap), std::memory_order_release);
  version_.store(next_snapshot_version(), std::memory_order_release);

  AdmissionController::Options adm;
  adm.slo_p99_us = options_.slo_p99_us;
  adm.max_queue_depth = options_.max_queue_depth;
  admission_ =
      std::make_unique<AdmissionController>(adm, ins_.serve_us);
  BatchQueue::Options bq;
  bq.max_batch = options_.coalesce ? options_.max_batch : 1;
  bq.window_us = options_.batch_window_us;
  queue_ = std::make_unique<BatchQueue>(
      [this](uint64_t key, const std::vector<BatchQueue::Request*>& batch) {
        serve_batch(key, batch);
      },
      bq);
}

Status LibraryRuntime::swap_artifact(libgen::Artifact artifact) {
  const double start_us = obs::now_us();
  Status status;
  {
    // One snapshot build at a time; lookups never take this lock.
    std::lock_guard<std::mutex> lock(swap_mu_);
    auto snap = DispatchSnapshot::build(sim_.device(), std::move(artifact),
                                        baselines_);
    status = snap->load_status();
    metrics_->gauge("runtime.table_size")
        .set(static_cast<double>(snap->table_size()));
    // Warm the exec cache *before* publishing: requests never race a
    // cold compile after a reload (unchanged entries hit anyway —
    // keys are content-addressed).
    prewarm(*snap);
    snapshot_.store(std::move(snap), std::memory_order_release);
    version_.store(next_snapshot_version(), std::memory_order_release);
  }
  ins_.reloads->add();
  ins_.reload_us->record(obs::now_us() - start_us);
  if (!status.is_ok()) {
    OA_LOG(kWarning) << "LibraryRuntime: swap_artifact: "
                     << status.to_string();
  }
  return status;
}

int64_t LibraryRuntime::dispatch_size(const Variant& v,
                                      const blas3::Matrix& a,
                                      const blas3::Matrix& b,
                                      const blas3::Matrix* c) {
  int64_t m = 0, n = 0, k = 0;
  switch (v.family) {
    case blas3::Family::kGemm:
      // C(m×n) += op(A)·op(B): m/n are the output extents, k is A's
      // contraction extent.
      m = c != nullptr ? c->rows() : b.rows();
      n = c != nullptr ? c->cols() : b.cols();
      k = v.trans_a == blas3::Trans::kT ? a.rows() : a.cols();
      break;
    case blas3::Family::kSyrk:
      // C(n×n) += op(A)·op(A)^T: the routine never reads b, so its
      // shape must not steer dispatch.
      m = c != nullptr ? c->rows() : b.rows();
      n = c != nullptr ? c->cols() : b.cols();
      k = v.trans == blas3::Trans::kT ? a.rows() : a.cols();
      break;
    default:
      // SYMM / TRMM / TRSM: the structured operand A is square over one
      // of B's extents, so the in/out panel B carries both true dims.
      m = b.rows();
      n = b.cols();
      break;
  }
  return std::max({m, n, k, int64_t{1}});
}

const std::shared_ptr<const DispatchSnapshot>& LibraryRuntime::pinned()
    const {
  struct Cache {
    uint64_t version = 0;  // 0 is never a published version
    std::shared_ptr<const DispatchSnapshot> pin;
  };
  thread_local Cache cache;
  // Publication order is snapshot_ then version_, so a reader that
  // observes a version observes at least that version's snapshot; a
  // reader that loses the race serves one request on the snapshot it
  // already pinned, exactly as if the reload had landed a moment
  // later.
  const uint64_t v = version_.load(std::memory_order_acquire);
  if (cache.version != v) {
    cache.pin = snapshot_.load(std::memory_order_acquire);
    cache.version = v;
  }
  return cache.pin;
}

LibraryRuntime::Dispatch LibraryRuntime::dispatch_on(
    const DispatchSnapshot& snap, const Variant& v, int64_t n) const {
  Dispatch d;
  bool exact = false;
  const DispatchSnapshot::Entry* entry =
      snap.lookup(variant_code(v), size_bucket(n), &exact);
  if (entry == nullptr) return d;
  d.outcome = exact ? DispatchOutcome::kHit : DispatchOutcome::kNearHit;
  d.program = &entry->program;
  d.bool_params = &entry->bool_params;
  d.tuned_gflops = entry->gflops;
  return d;
}

LibraryRuntime::Dispatch LibraryRuntime::dispatch(const Variant& v,
                                                  int64_t n) const {
  const std::shared_ptr<const DispatchSnapshot>& pin = pinned();
  Dispatch d = dispatch_on(*pin, v, n);
  d.snapshot = pin;  // the caller's own pin for the pointers handed out
  return d;
}

void LibraryRuntime::count_request(const Variant& v) const {
  ins_.requests->add();
  ins_.requests_by_prec[static_cast<int>(v.precision)]->add();
  ins_.family_requests[static_cast<int>(v.family)]
                      [static_cast<int>(v.batch)]
      ->add();
}

Status LibraryRuntime::execute_dispatched(
    const ir::Program& program, const Variant& v, const blas3::Matrix& a,
    blas3::Matrix& b, blas3::Matrix* c,
    const std::map<std::string, bool>& bool_params) const {
  if (options_.execution == ExecutionMode::kNative) {
    Status native = exec::execute_program(sim_.device(), program, v, a, b,
                                          c, bool_params, exec_cache_);
    if (native.is_ok()) {
      ins_.native_serves->add();
      return native;
    }
    // A failed native attempt never touched b/c (outputs are only
    // written on success), so the interpreter can retry cleanly.
    ins_.native_fallbacks->add();
    OA_LOG(kWarning) << "LibraryRuntime: native execution of " << v.name()
                     << " failed (" << native.to_string()
                     << "), retrying on the interpreter";
  }
  return engine::execute_program(sim_, program, v, a, b, c, bool_params);
}

void LibraryRuntime::prewarm(const DispatchSnapshot& snap) const {
  if (options_.execution != ExecutionMode::kNative) return;
  for (const DispatchSnapshot::Entry& entry : snap.entries()) {
    const ir::Env int_params =
        engine::size_env(*entry.variant, entry.tuned_size);
    for (const ir::Kernel& kernel : entry.program.kernels) {
      auto ck = gpusim::compile_kernel(entry.program, kernel, int_params,
                                       entry.bool_params);
      if (!ck.is_ok()) continue;
      // Failure is fine: the entry serves through the per-request
      // interpreter fallback (and the failure is negatively cached).
      (void)exec_cache_.get_or_compile(*ck);
    }
  }
}

StatusOr<DispatchOutcome> LibraryRuntime::serve_with(
    const DispatchSnapshot& snap, const Dispatch& d, const Variant& v,
    const blas3::Matrix& a, blas3::Matrix& b, blas3::Matrix* c,
    double start_us, bool pre_executed) const {
  // Whole-call latency lands in the histogram of the *final* outcome,
  // so p99 per path answers "what does a request cost when it ends up
  // here" — including queue wait and the failed attempts before it.
  auto settle = [&](obs::Histogram* h) {
    const double us = obs::now_us() - start_us;
    h->record(us);
    ins_.serve_us->record(us);
    admission_->on_complete();
  };
  // Kernel failures along the way are only "recovered" if some later
  // stage actually answers the request.
  uint64_t pending_errors = 0;

  if (d.program != nullptr) {
    Status served =
        pre_executed ? Status::ok()
                     : execute_dispatched(*d.program, v, a, b, c,
                                          *d.bool_params);
    if (served.is_ok()) {
      if (d.outcome == DispatchOutcome::kHit) {
        ins_.hits->add();
        settle(ins_.hit_us);
      } else {
        ins_.near_hits->add();
        settle(ins_.near_hit_us);
      }
      ins_.tuned_served_by_prec[static_cast<int>(v.precision)]->add();
      return d.outcome;
    }
    // A tuned kernel that fails at this problem size (occupancy,
    // launch) is usually recovered by the fallback chain — counted as
    // recovered only once a fallback serves the request.
    ++pending_errors;
    OA_LOG(kWarning) << "LibraryRuntime: tuned " << v.name()
                     << " failed (" << served.to_string()
                     << "), falling back";
  }

  if (options_.baseline_fallback) {
    const ir::Program* base = snap.baseline(variant_code(v));
    if (base != nullptr) {
      Status served =
          execute_dispatched(*base, v, a, b, c, no_bool_params());
      if (served.is_ok()) {
        ins_.baseline_fallbacks->add();
        ins_.recovered_errors->add(pending_errors);
        settle(ins_.baseline_us);
        return DispatchOutcome::kFallbackBaseline;
      }
      ++pending_errors;
    }
  }

  if (v.family != blas3::Family::kTrsm && c == nullptr) {
    ins_.failed_requests->add();
    settle(ins_.failed_us);
    return invalid_argument("reference fallback for " + v.name() +
                            " needs an output matrix c");
  }
  if (v.family == blas3::Family::kTrsm) {
    // TRSM solves in place in b; stage into a copy so a failed kernel
    // attempt above can't have left partial results behind.
    blas3::Matrix b_ref = b;
    blas3::run_reference(v, a, b_ref, c);
    b = std::move(b_ref);
  } else {
    // Every other family only *reads* b (output goes to c), so the
    // staging copy is pure waste.
    blas3::run_reference(v, a, b, c);
  }
  ins_.reference_fallbacks->add();
  ins_.recovered_errors->add(pending_errors);
  settle(ins_.reference_us);
  return DispatchOutcome::kFallbackReference;
}

StatusOr<DispatchOutcome> LibraryRuntime::run(const Variant& v,
                                              const blas3::Matrix& a,
                                              blas3::Matrix& b,
                                              blas3::Matrix* c) const {
  const double start_us = obs::now_us();
  count_request(v);

  // Requests must hand in matrices of the variant's element type: an
  // f64 routine silently fed f32-tagged storage (or vice versa) would
  // compute at the wrong precision, so it is an error, not a fallback.
  if (a.precision() != v.precision || b.precision() != v.precision ||
      (c != nullptr && c->precision() != v.precision)) {
    ins_.failed_requests->add();
    ins_.failed_us->record(obs::now_us() - start_us);
    return invalid_argument(
        str_format("%s expects %s matrices", v.name().c_str(),
                   precision_name(v.precision)));
  }

  // One snapshot pin for the whole request: dispatch, execution and
  // fallbacks all resolve against the same immutable table, however
  // many hot reloads land meanwhile. The thread-local pin stays put
  // for the whole serve (this thread only refreshes it on its next
  // request).
  const DispatchSnapshot& snap = *pinned();
  Dispatch d = dispatch_on(snap, v, dispatch_size(v, a, b, c));
  return serve_with(snap, d, v, a, b, c, start_us);
}

StatusOr<DispatchOutcome> LibraryRuntime::serve(const Variant& v,
                                                const blas3::Matrix& a,
                                                blas3::Matrix& b,
                                                blas3::Matrix* c) const {
  const double start_us = obs::now_us();
  count_request(v);

  if (a.precision() != v.precision || b.precision() != v.precision ||
      (c != nullptr && c->precision() != v.precision)) {
    ins_.failed_requests->add();
    ins_.failed_us->record(obs::now_us() - start_us);
    return invalid_argument(
        str_format("%s expects %s matrices", v.name().c_str(),
                   precision_name(v.precision)));
  }

  // Admission control: the depth the candidate sees excludes itself.
  const size_t depth = in_flight_.load(std::memory_order_relaxed);
  if (!admission_->admit(depth)) {
    ins_.shed->add();
    ins_.shed_us->record(obs::now_us() - start_us);
    return DispatchOutcome::kShed;
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);

  StatusOr<DispatchOutcome> outcome = [&]() -> StatusOr<DispatchOutcome> {
    if (options_.coalesce) {
      const int64_t n = dispatch_size(v, a, b, c);
      // Key axes: variant code | batch-count bucket | size bucket. The
      // serve() path carries single-member calls (batch count 1 →
      // bucket 0); the batch axis keeps the key scheme shared with
      // batched traffic accounting.
      const uint64_t key =
          (static_cast<uint64_t>(variant_code(v)) << 12) |
          (static_cast<uint64_t>(batch_bucket(1)) << 6) |
          static_cast<uint64_t>(size_bucket(n));
      return queue_->submit(key, v, a, b, c);
    }
    const DispatchSnapshot& snap = *pinned();
    Dispatch d = dispatch_on(snap, v, dispatch_size(v, a, b, c));
    return serve_with(snap, d, v, a, b, c, start_us);
  }();

  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return outcome;
}

Status LibraryRuntime::execute_batched_dispatched(
    const ir::Program& program, const Variant& v,
    const std::vector<blas3::Matrix>& a, std::vector<blas3::Matrix>& b,
    std::vector<blas3::Matrix>* c,
    const std::map<std::string, bool>& bool_params) const {
  if (options_.execution == ExecutionMode::kNative) {
    Status native = exec::execute_batched(sim_.device(), program, v, a, b,
                                          c, bool_params, exec_cache_);
    if (native.is_ok()) {
      ins_.native_serves->add();
      return native;
    }
    // Failed native members may have written into the strided staging
    // buffers but never into b/c (read-back happens only on success),
    // so the interpreter loop retries cleanly.
    ins_.native_fallbacks->add();
    OA_LOG(kWarning) << "LibraryRuntime: native batched execution of "
                     << v.name() << " failed (" << native.to_string()
                     << "), retrying on the interpreter";
  }
  return engine::execute_batched(sim_, program, v, a, b, c, bool_params);
}

StatusOr<DispatchOutcome> LibraryRuntime::run_batched(
    const Variant& v, const std::vector<blas3::Matrix>& a,
    std::vector<blas3::Matrix>& b, std::vector<blas3::Matrix>* c) const {
  const double start_us = obs::now_us();
  count_request(v);
  ins_.batched_requests->add();
  ins_.batched_members->add(static_cast<uint64_t>(a.size()));

  auto fail = [&](Status status) -> StatusOr<DispatchOutcome> {
    ins_.failed_requests->add();
    ins_.failed_us->record(obs::now_us() - start_us);
    return status;
  };
  if (v.batch == blas3::Batch::kSingle) {
    return fail(invalid_argument("run_batched needs a batched variant; " +
                                 v.name() + " is single"));
  }
  if (a.empty() || a.size() != b.size() ||
      (c != nullptr && c->size() != a.size())) {
    return fail(
        invalid_argument("batched operands disagree on batch count"));
  }
  if (c == nullptr) {
    return fail(invalid_argument("batched " + v.name() +
                                 " needs output matrices c"));
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].precision() != v.precision ||
        b[i].precision() != v.precision ||
        (*c)[i].precision() != v.precision) {
      return fail(invalid_argument(
          str_format("%s expects %s matrices", v.name().c_str(),
                     precision_name(v.precision))));
    }
  }

  auto settle = [&](obs::Histogram* h) {
    const double us = obs::now_us() - start_us;
    h->record(us);
    ins_.serve_us->record(us);
    admission_->on_complete();
  };
  uint64_t pending_errors = 0;

  // One pin, one member-size dispatch for the whole batch; the batched
  // variant has its own code, so tuned batched entries never collide
  // with single-GEMM ones.
  const DispatchSnapshot& snap = *pinned();
  Dispatch d = dispatch_on(snap, v, dispatch_size(v, a[0], b[0], &(*c)[0]));

  if (d.program != nullptr) {
    Status served =
        execute_batched_dispatched(*d.program, v, a, b, c, *d.bool_params);
    if (served.is_ok()) {
      if (d.outcome == DispatchOutcome::kHit) {
        ins_.hits->add();
        settle(ins_.hit_us);
      } else {
        ins_.near_hits->add();
        settle(ins_.near_hit_us);
      }
      ins_.tuned_served_by_prec[static_cast<int>(v.precision)]->add();
      return d.outcome;
    }
    ++pending_errors;
    OA_LOG(kWarning) << "LibraryRuntime: tuned batched " << v.name()
                     << " failed (" << served.to_string()
                     << "), falling back";
  }

  if (options_.baseline_fallback) {
    const ir::Program* base = snap.baseline(variant_code(v));
    if (base != nullptr) {
      Status served =
          execute_batched_dispatched(*base, v, a, b, c, no_bool_params());
      if (served.is_ok()) {
        ins_.baseline_fallbacks->add();
        ins_.recovered_errors->add(pending_errors);
        settle(ins_.baseline_us);
        return DispatchOutcome::kFallbackBaseline;
      }
      ++pending_errors;
    }
  }

  for (size_t i = 0; i < a.size(); ++i) {
    blas3::run_reference(v, a[i], b[i], &(*c)[i]);
  }
  ins_.reference_fallbacks->add();
  ins_.recovered_errors->add(pending_errors);
  settle(ins_.reference_us);
  return DispatchOutcome::kFallbackReference;
}

StatusOr<DispatchOutcome> LibraryRuntime::serve_batched(
    const Variant& v, const std::vector<blas3::Matrix>& a,
    std::vector<blas3::Matrix>& b, std::vector<blas3::Matrix>* c) const {
  // Admission sees one request per batched call (the batch is the unit
  // of work the caller retries); no coalescing — it is already a batch.
  const size_t depth = in_flight_.load(std::memory_order_relaxed);
  if (!admission_->admit(depth)) {
    ins_.shed->add();
    ins_.shed_us->record(0.0);
    return DispatchOutcome::kShed;
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  StatusOr<DispatchOutcome> outcome = run_batched(v, a, b, c);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  return outcome;
}

void LibraryRuntime::serve_batch(
    uint64_t key, const std::vector<BatchQueue::Request*>& batch) const {
  ins_.batches->add();
  ins_.batch_size->record(static_cast<double>(batch.size()));
  if (batch.size() > 1) {
    ins_.coalesced->add(static_cast<uint64_t>(batch.size() - 1));
  }
  // One snapshot pin and one dispatch for the whole batch — every
  // request shares the (variant code, size bucket) of `key`, so the
  // same table cell serves them all.
  const DispatchSnapshot& snap = *pinned();
  Dispatch d;
  bool exact = false;
  const int code = static_cast<int>(key >> 12);
  const int bucket = static_cast<int>(key & 63);
  const DispatchSnapshot::Entry* entry = snap.lookup(code, bucket, &exact);
  if (entry != nullptr) {
    d.outcome = exact ? DispatchOutcome::kHit : DispatchOutcome::kNearHit;
    d.program = &entry->program;
    d.bool_params = &entry->bool_params;
    d.tuned_gflops = entry->gflops;
  }
  const double serve_start = obs::now_us();

  // ExecutionMode::kNative: the leader pushes every member of the
  // batch through one executor invocation loop — the shared dispatch
  // means one cached ExecutedKernel serves all members, so the loop is
  // pure execution (zero per-member compiles) and its total time is
  // the batch's amortizable cost ("runtime.batch_exec_us").
  std::vector<bool> pre_executed(batch.size(), false);
  if (options_.execution == ExecutionMode::kNative &&
      d.program != nullptr) {
    const double exec_start = obs::now_us();
    for (size_t i = 0; i < batch.size(); ++i) {
      BatchQueue::Request* req = batch[i];
      Status native =
          exec::execute_program(sim_.device(), *d.program, *req->v,
                                *req->a, *req->b, req->c, *d.bool_params,
                                exec_cache_);
      if (native.is_ok()) {
        ins_.native_serves->add();
        pre_executed[i] = true;
      } else {
        // This member retries on the interpreter in serve_with below;
        // its outputs are untouched (native writes only on success).
        ins_.native_fallbacks->add();
      }
    }
    ins_.batch_exec_us->record(obs::now_us() - exec_start);
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    BatchQueue::Request* req = batch[i];
    ins_.queue_wait_us->record(serve_start - req->submit_us);
    req->result = serve_with(snap, d, *req->v, *req->a, *req->b, req->c,
                             req->submit_us, pre_executed[i]);
  }
}

DispatchStats LibraryRuntime::stats() const {
  DispatchStats s;
  s.hits = ins_.hits->value();
  s.near_hits = ins_.near_hits->value();
  s.baseline_fallbacks = ins_.baseline_fallbacks->value();
  s.reference_fallbacks = ins_.reference_fallbacks->value();
  s.shed = ins_.shed->value();
  s.recovered_errors = ins_.recovered_errors->value();
  s.failed_requests = ins_.failed_requests->value();
  // Derived, not read from the raw entry counter: the consistency
  // contract (header) promises requests == sum(components) in every
  // snapshot, which independent relaxed counters cannot offer.
  s.requests = s.hits + s.near_hits + s.baseline_fallbacks +
               s.reference_fallbacks + s.shed + s.failed_requests;
  s.requests_f32 =
      ins_.requests_by_prec[static_cast<int>(Precision::kF32)]->value();
  s.requests_f64 =
      ins_.requests_by_prec[static_cast<int>(Precision::kF64)]->value();
  s.tuned_served_f32 =
      ins_.tuned_served_by_prec[static_cast<int>(Precision::kF32)]->value();
  s.tuned_served_f64 =
      ins_.tuned_served_by_prec[static_cast<int>(Precision::kF64)]->value();
  s.native_serves = ins_.native_serves->value();
  s.native_fallbacks = ins_.native_fallbacks->value();
  s.reloads = ins_.reloads->value();
  s.batches = ins_.batches->value();
  s.coalesced = ins_.coalesced->value();
  s.batched_requests = ins_.batched_requests->value();
  s.batched_members = ins_.batched_members->value();
  for (int f = 0; f < 5; ++f) {
    const auto family = static_cast<blas3::Family>(f);
    const int modes = family == blas3::Family::kGemm ? 3 : 1;
    for (int bm = 0; bm < modes; ++bm) {
      const uint64_t count = ins_.family_requests[f][bm]->value();
      if (count > 0) {
        s.requests_by_family[family_key(
            family, static_cast<blas3::Batch>(bm))] = count;
      }
    }
  }
  return s;
}

void LibraryRuntime::reset_stats() {
  metrics_->reset("runtime.");
  // The table itself survives a stats sweep; restore its size gauge.
  metrics_->gauge("runtime.table_size")
      .set(static_cast<double>(snapshot()->table_size()));
}

}  // namespace oa::runtime
