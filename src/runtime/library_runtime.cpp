#include "runtime/library_runtime.hpp"

#include <cstdlib>

#include "baseline/baseline.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa::runtime {

using blas3::Variant;

const char* outcome_name(DispatchOutcome outcome) {
  switch (outcome) {
    case DispatchOutcome::kHit: return "hit";
    case DispatchOutcome::kNearHit: return "near-hit";
    case DispatchOutcome::kFallbackBaseline: return "baseline-fallback";
    case DispatchOutcome::kFallbackReference: return "reference-fallback";
  }
  return "?";
}

std::string DispatchStats::to_string() const {
  return str_format(
      "dispatch: %llu requests — %llu hits, %llu near-hits, %llu "
      "baseline fallbacks, %llu reference fallbacks, %llu recovered "
      "kernel errors",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(near_hits),
      static_cast<unsigned long long>(baseline_fallbacks),
      static_cast<unsigned long long>(reference_fallbacks),
      static_cast<unsigned long long>(errors));
}

int LibraryRuntime::size_bucket(int64_t n) {
  int b = 0;
  while (b < 62 && (int64_t{1} << (b + 1)) <= n) ++b;
  return b;
}

LibraryRuntime::LibraryRuntime(const gpusim::DeviceModel& device,
                               libgen::Artifact artifact,
                               RuntimeOptions options)
    : sim_(device), artifact_(std::move(artifact)), options_(options) {
  load_status_ = libgen::check_device(artifact_, device);
  if (!load_status_.is_ok()) {
    // Graceful degradation: a mismatched artifact serves nothing from
    // the table; every request takes the fallback path.
    OA_LOG(kWarning) << "LibraryRuntime: " << load_status_.to_string()
                     << " — serving fallbacks only";
    return;
  }
  size_t skipped = 0;
  std::string skip_reason;
  for (const libgen::ArtifactEntry& entry : artifact_.entries) {
    const Variant* v = blas3::find_variant(entry.variant);
    if (v == nullptr) {
      ++skipped;
      skip_reason = "unknown variant '" + entry.variant + "'";
      continue;
    }
    auto eval = libgen::reconstruct(entry, *v, {entry.candidate()});
    if (!eval.is_ok()) {
      ++skipped;
      skip_reason = entry.variant + ": " + eval.status().message();
      continue;
    }
    TableEntry te;
    te.variant = v;
    te.program = std::move(eval->program);
    te.bool_params = engine::bools_for(eval->candidate);
    te.gflops = entry.gflops;
    te.tuned_size = entry.tuned_size;
    index_[entry.variant][size_bucket(entry.tuned_size)] = table_.size();
    table_.push_back(std::move(te));
  }
  if (skipped > 0) {
    load_status_ = failed_precondition(str_format(
        "%zu artifact entr%s not servable (last: %s)", skipped,
        skipped == 1 ? "y" : "ies", skip_reason.c_str()));
    OA_LOG(kWarning) << "LibraryRuntime: " << load_status_.to_string();
  }
}

LibraryRuntime::Dispatch LibraryRuntime::dispatch(const Variant& v,
                                                  int64_t n) const {
  Dispatch d;
  auto it = index_.find(v.name());
  if (it == index_.end() || it->second.empty()) return d;
  const std::map<int, size_t>& buckets = it->second;
  const int want = size_bucket(n);
  auto exact = buckets.find(want);
  size_t idx;
  if (exact != buckets.end()) {
    d.outcome = DispatchOutcome::kHit;
    idx = exact->second;
  } else {
    // Nearest registered bucket: these affine schedules are
    // size-agnostic, so a tuned kernel from an adjacent regime beats
    // the baseline; the near-hit counter records how often serving
    // leaves the tuned regime.
    auto lo = buckets.lower_bound(want);
    if (lo == buckets.end()) {
      idx = std::prev(lo)->second;
    } else if (lo == buckets.begin()) {
      idx = lo->second;
    } else {
      auto below = std::prev(lo);
      idx = (lo->first - want) < (want - below->first) ? lo->second
                                                       : below->second;
    }
    d.outcome = DispatchOutcome::kNearHit;
  }
  const TableEntry& te = table_[idx];
  d.program = &te.program;
  d.bool_params = te.bool_params;
  d.tuned_gflops = te.gflops;
  return d;
}

StatusOr<const ir::Program*> LibraryRuntime::baseline_for(
    const Variant& v) const {
  std::lock_guard<std::mutex> lock(baseline_mu_);
  auto it = baselines_.find(v.name());
  if (it != baselines_.end()) return it->second.get();
  auto program = baseline::cublas_like(v, sim_.device());
  if (!program.is_ok()) return program.status();
  auto owned = std::make_unique<ir::Program>(std::move(program).value());
  const ir::Program* raw = owned.get();
  baselines_.emplace(v.name(), std::move(owned));
  return raw;
}

StatusOr<DispatchOutcome> LibraryRuntime::run(const Variant& v,
                                              const blas3::Matrix& a,
                                              blas3::Matrix& b,
                                              blas3::Matrix* c) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const int64_t n = std::max(b.rows(), b.cols());

  Dispatch d = dispatch(v, n);
  if (d.program != nullptr) {
    Status served = engine::execute_program(sim_, *d.program, v, a, b, c,
                                            d.bool_params);
    if (served.is_ok()) {
      (d.outcome == DispatchOutcome::kHit ? hits_ : near_hits_)
          .fetch_add(1, std::memory_order_relaxed);
      return d.outcome;
    }
    // A tuned kernel that fails at this problem size (occupancy,
    // launch) is recovered by the fallback chain, but counted.
    errors_.fetch_add(1, std::memory_order_relaxed);
    OA_LOG(kWarning) << "LibraryRuntime: tuned " << v.name()
                     << " failed (" << served.to_string()
                     << "), falling back";
  }

  if (options_.baseline_fallback) {
    auto base = baseline_for(v);
    if (base.is_ok()) {
      Status served =
          engine::execute_program(sim_, **base, v, a, b, c, {});
      if (served.is_ok()) {
        baseline_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return DispatchOutcome::kFallbackBaseline;
      }
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (v.family != blas3::Family::kTrsm && c == nullptr) {
    return invalid_argument("reference fallback for " + v.name() +
                            " needs an output matrix c");
  }
  blas3::Matrix b_ref = b;
  blas3::run_reference(v, a, b_ref, c);
  b = std::move(b_ref);
  reference_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return DispatchOutcome::kFallbackReference;
}

DispatchStats LibraryRuntime::stats() const {
  DispatchStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.near_hits = near_hits_.load(std::memory_order_relaxed);
  s.baseline_fallbacks =
      baseline_fallbacks_.load(std::memory_order_relaxed);
  s.reference_fallbacks =
      reference_fallbacks_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

void LibraryRuntime::reset_stats() {
  requests_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  near_hits_.store(0, std::memory_order_relaxed);
  baseline_fallbacks_.store(0, std::memory_order_relaxed);
  reference_fallbacks_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
}

}  // namespace oa::runtime
