#include "runtime/library_runtime.hpp"

#include <algorithm>
#include <cstdlib>

#include "baseline/baseline.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "obs/trace.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa::runtime {

using blas3::Variant;

const char* outcome_name(DispatchOutcome outcome) {
  switch (outcome) {
    case DispatchOutcome::kHit: return "hit";
    case DispatchOutcome::kNearHit: return "near-hit";
    case DispatchOutcome::kFallbackBaseline: return "baseline-fallback";
    case DispatchOutcome::kFallbackReference: return "reference-fallback";
  }
  return "?";
}

std::string DispatchStats::to_string() const {
  return str_format(
      "dispatch: %llu requests — %llu hits, %llu near-hits, %llu "
      "baseline fallbacks, %llu reference fallbacks, %llu recovered "
      "kernel errors, %llu failed; f32 %llu req / %llu tuned, f64 %llu "
      "req / %llu tuned",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(near_hits),
      static_cast<unsigned long long>(baseline_fallbacks),
      static_cast<unsigned long long>(reference_fallbacks),
      static_cast<unsigned long long>(recovered_errors),
      static_cast<unsigned long long>(failed_requests),
      static_cast<unsigned long long>(requests_f32),
      static_cast<unsigned long long>(tuned_served_f32),
      static_cast<unsigned long long>(requests_f64),
      static_cast<unsigned long long>(tuned_served_f64));
}

int LibraryRuntime::size_bucket(int64_t n) {
  int b = 0;
  while (b < 62 && (int64_t{1} << (b + 1)) <= n) ++b;
  return b;
}

LibraryRuntime::LibraryRuntime(const gpusim::DeviceModel& device,
                               libgen::Artifact artifact,
                               RuntimeOptions options)
    : sim_(device), artifact_(std::move(artifact)), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  // Pre-register every serving instrument so an exported snapshot
  // always carries the full runtime schema, even for outcomes that
  // never happened.
  ins_.requests = &metrics_->counter("runtime.requests");
  for (Precision p : {Precision::kF32, Precision::kF64}) {
    const int i = static_cast<int>(p);
    const std::string suffix = std::string(".") + precision_name(p);
    ins_.requests_by_prec[i] =
        &metrics_->counter("runtime.requests" + suffix);
    ins_.tuned_served_by_prec[i] =
        &metrics_->counter("runtime.tuned_served" + suffix);
  }
  ins_.hits = &metrics_->counter("runtime.hits");
  ins_.near_hits = &metrics_->counter("runtime.near_hits");
  ins_.baseline_fallbacks = &metrics_->counter("runtime.baseline_fallbacks");
  ins_.reference_fallbacks =
      &metrics_->counter("runtime.reference_fallbacks");
  ins_.recovered_errors = &metrics_->counter("runtime.recovered_errors");
  ins_.failed_requests = &metrics_->counter("runtime.failed_requests");
  ins_.hit_us = &metrics_->histogram("runtime.dispatch_us.hit");
  ins_.near_hit_us = &metrics_->histogram("runtime.dispatch_us.near_hit");
  ins_.baseline_us =
      &metrics_->histogram("runtime.dispatch_us.baseline_fallback");
  ins_.reference_us =
      &metrics_->histogram("runtime.dispatch_us.reference_fallback");
  ins_.failed_us = &metrics_->histogram("runtime.dispatch_us.failed");

  load_status_ = libgen::check_device(artifact_, device);
  if (!load_status_.is_ok()) {
    // Graceful degradation: a mismatched artifact serves nothing from
    // the table; every request takes the fallback path.
    OA_LOG(kWarning) << "LibraryRuntime: " << load_status_.to_string()
                     << " — serving fallbacks only";
    return;
  }
  size_t skipped = 0;
  std::string skip_reason;
  for (const libgen::ArtifactEntry& entry : artifact_.entries) {
    const Variant* v = blas3::find_variant(entry.variant);
    if (v == nullptr) {
      ++skipped;
      skip_reason = "unknown variant '" + entry.variant + "'";
      continue;
    }
    auto eval = libgen::reconstruct(entry, *v, {entry.candidate()});
    if (!eval.is_ok()) {
      ++skipped;
      skip_reason = entry.variant + ": " + eval.status().message();
      continue;
    }
    TableEntry te;
    te.variant = v;
    te.program = std::move(eval->program);
    te.bool_params = engine::bools_for(eval->candidate);
    te.gflops = entry.gflops;
    te.tuned_size = entry.tuned_size;
    index_[entry.variant][size_bucket(entry.tuned_size)] = table_.size();
    table_.push_back(std::move(te));
  }
  if (skipped > 0) {
    load_status_ = failed_precondition(str_format(
        "%zu artifact entr%s not servable (last: %s)", skipped,
        skipped == 1 ? "y" : "ies", skip_reason.c_str()));
    OA_LOG(kWarning) << "LibraryRuntime: " << load_status_.to_string();
  }
  metrics_->gauge("runtime.table_size").set(static_cast<double>(table_.size()));
}

int64_t LibraryRuntime::dispatch_size(const Variant& v,
                                      const blas3::Matrix& a,
                                      const blas3::Matrix& b,
                                      const blas3::Matrix* c) {
  int64_t m = 0, n = 0, k = 0;
  switch (v.family) {
    case blas3::Family::kGemm:
      // C(m×n) += op(A)·op(B): m/n are the output extents, k is A's
      // contraction extent.
      m = c != nullptr ? c->rows() : b.rows();
      n = c != nullptr ? c->cols() : b.cols();
      k = v.trans_a == blas3::Trans::kT ? a.rows() : a.cols();
      break;
    case blas3::Family::kSyrk:
      // C(n×n) += op(A)·op(A)^T: the routine never reads b, so its
      // shape must not steer dispatch.
      m = c != nullptr ? c->rows() : b.rows();
      n = c != nullptr ? c->cols() : b.cols();
      k = v.trans == blas3::Trans::kT ? a.rows() : a.cols();
      break;
    default:
      // SYMM / TRMM / TRSM: the structured operand A is square over one
      // of B's extents, so the in/out panel B carries both true dims.
      m = b.rows();
      n = b.cols();
      break;
  }
  return std::max({m, n, k, int64_t{1}});
}

LibraryRuntime::Dispatch LibraryRuntime::dispatch(const Variant& v,
                                                  int64_t n) const {
  Dispatch d;
  auto it = index_.find(v.name());
  if (it == index_.end() || it->second.empty()) return d;
  const std::map<int, size_t>& buckets = it->second;
  const int want = size_bucket(n);
  auto exact = buckets.find(want);
  size_t idx;
  if (exact != buckets.end()) {
    d.outcome = DispatchOutcome::kHit;
    idx = exact->second;
  } else {
    // Nearest registered bucket: these affine schedules are
    // size-agnostic, so a tuned kernel from an adjacent regime beats
    // the baseline; the near-hit counter records how often serving
    // leaves the tuned regime.
    auto lo = buckets.lower_bound(want);
    if (lo == buckets.end()) {
      idx = std::prev(lo)->second;
    } else if (lo == buckets.begin()) {
      idx = lo->second;
    } else {
      auto below = std::prev(lo);
      idx = (lo->first - want) < (want - below->first) ? lo->second
                                                       : below->second;
    }
    d.outcome = DispatchOutcome::kNearHit;
  }
  const TableEntry& te = table_[idx];
  d.program = &te.program;
  d.bool_params = te.bool_params;
  d.tuned_gflops = te.gflops;
  return d;
}

StatusOr<const ir::Program*> LibraryRuntime::baseline_for(
    const Variant& v) const {
  std::lock_guard<std::mutex> lock(baseline_mu_);
  auto it = baselines_.find(v.name());
  if (it != baselines_.end()) return it->second.get();
  auto program = baseline::cublas_like(v, sim_.device());
  if (!program.is_ok()) return program.status();
  auto owned = std::make_unique<ir::Program>(std::move(program).value());
  const ir::Program* raw = owned.get();
  baselines_.emplace(v.name(), std::move(owned));
  return raw;
}

StatusOr<DispatchOutcome> LibraryRuntime::run(const Variant& v,
                                              const blas3::Matrix& a,
                                              blas3::Matrix& b,
                                              blas3::Matrix* c) const {
  ins_.requests->add();
  const int prec = static_cast<int>(v.precision);
  ins_.requests_by_prec[prec]->add();
  const double start_us = obs::now_us();
  // Whole-call latency lands in the histogram of the *final* outcome,
  // so p99 per path answers "what does a request cost when it ends up
  // here" — including the failed attempts before it.
  auto settle = [&](obs::Histogram* h) { h->record(obs::now_us() - start_us); };
  // Kernel failures along the way are only "recovered" if some later
  // stage actually answers the request.
  uint64_t pending_errors = 0;

  // Requests must hand in matrices of the variant's element type: an
  // f64 routine silently fed f32-tagged storage (or vice versa) would
  // compute at the wrong precision, so it is an error, not a fallback.
  if (a.precision() != v.precision || b.precision() != v.precision ||
      (c != nullptr && c->precision() != v.precision)) {
    ins_.failed_requests->add();
    settle(ins_.failed_us);
    return invalid_argument(
        str_format("%s expects %s matrices", v.name().c_str(),
                   precision_name(v.precision)));
  }

  Dispatch d = dispatch(v, dispatch_size(v, a, b, c));
  if (d.program != nullptr) {
    Status served = engine::execute_program(sim_, *d.program, v, a, b, c,
                                            d.bool_params);
    if (served.is_ok()) {
      if (d.outcome == DispatchOutcome::kHit) {
        ins_.hits->add();
        settle(ins_.hit_us);
      } else {
        ins_.near_hits->add();
        settle(ins_.near_hit_us);
      }
      ins_.tuned_served_by_prec[prec]->add();
      return d.outcome;
    }
    // A tuned kernel that fails at this problem size (occupancy,
    // launch) is usually recovered by the fallback chain — counted as
    // recovered only once a fallback serves the request.
    ++pending_errors;
    OA_LOG(kWarning) << "LibraryRuntime: tuned " << v.name()
                     << " failed (" << served.to_string()
                     << "), falling back";
  }

  if (options_.baseline_fallback) {
    auto base = baseline_for(v);
    if (base.is_ok()) {
      Status served =
          engine::execute_program(sim_, **base, v, a, b, c, {});
      if (served.is_ok()) {
        ins_.baseline_fallbacks->add();
        ins_.recovered_errors->add(pending_errors);
        settle(ins_.baseline_us);
        return DispatchOutcome::kFallbackBaseline;
      }
      ++pending_errors;
    }
  }

  if (v.family != blas3::Family::kTrsm && c == nullptr) {
    ins_.failed_requests->add();
    settle(ins_.failed_us);
    return invalid_argument("reference fallback for " + v.name() +
                            " needs an output matrix c");
  }
  if (v.family == blas3::Family::kTrsm) {
    // TRSM solves in place in b; stage into a copy so a failed kernel
    // attempt above can't have left partial results behind.
    blas3::Matrix b_ref = b;
    blas3::run_reference(v, a, b_ref, c);
    b = std::move(b_ref);
  } else {
    // Every other family only *reads* b (output goes to c), so the
    // staging copy is pure waste.
    blas3::run_reference(v, a, b, c);
  }
  ins_.reference_fallbacks->add();
  ins_.recovered_errors->add(pending_errors);
  settle(ins_.reference_us);
  return DispatchOutcome::kFallbackReference;
}

DispatchStats LibraryRuntime::stats() const {
  DispatchStats s;
  s.requests = ins_.requests->value();
  s.hits = ins_.hits->value();
  s.near_hits = ins_.near_hits->value();
  s.baseline_fallbacks = ins_.baseline_fallbacks->value();
  s.reference_fallbacks = ins_.reference_fallbacks->value();
  s.recovered_errors = ins_.recovered_errors->value();
  s.failed_requests = ins_.failed_requests->value();
  s.requests_f32 =
      ins_.requests_by_prec[static_cast<int>(Precision::kF32)]->value();
  s.requests_f64 =
      ins_.requests_by_prec[static_cast<int>(Precision::kF64)]->value();
  s.tuned_served_f32 =
      ins_.tuned_served_by_prec[static_cast<int>(Precision::kF32)]->value();
  s.tuned_served_f64 =
      ins_.tuned_served_by_prec[static_cast<int>(Precision::kF64)]->value();
  return s;
}

void LibraryRuntime::reset_stats() {
  metrics_->reset("runtime.");
  // The table is immutable; restore its size gauge after the sweep.
  metrics_->gauge("runtime.table_size")
      .set(static_cast<double>(table_.size()));
}

}  // namespace oa::runtime
