#include "runtime/dispatch_snapshot.hpp"

#include <utility>

#include "baseline/baseline.hpp"
#include "engine/evaluation_engine.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa::runtime {

using blas3::Family;
using blas3::Side;
using blas3::Trans;
using blas3::Uplo;
using blas3::Variant;

int variant_code(const Variant& v) {
  // Only the fields name() prints for the family take part in the
  // code; everything else is forced to its default so a caller-built
  // Variant with stray values in ignored fields still lands on the
  // catalog variant of the same name.
  int ta = 0, tb = 0, side = 0, uplo = 0, tr = 0;
  switch (v.family) {
    case Family::kGemm:
      ta = v.trans_a == Trans::kT;
      tb = v.trans_b == Trans::kT;
      break;
    case Family::kSymm:
      side = v.side == Side::kRight;
      uplo = v.uplo == Uplo::kUpper;
      break;
    case Family::kTrmm:
    case Family::kTrsm:
      side = v.side == Side::kRight;
      uplo = v.uplo == Uplo::kUpper;
      tr = v.trans == Trans::kT;
      break;
    case Family::kSyrk:
      uplo = v.uplo == Uplo::kUpper;
      tr = v.trans == Trans::kT;
      break;
  }
  // Only GEMM has batched family members today; the batch axis is
  // canonicalized away everywhere else.
  const int batch =
      v.family == Family::kGemm ? static_cast<int>(v.batch) : 0;
  int code = static_cast<int>(v.family);
  code = code * 2 + ta;
  code = code * 2 + tb;
  code = code * 2 + side;
  code = code * 2 + uplo;
  code = code * 2 + tr;
  code = code * 2 + (v.precision == Precision::kF64 ? 1 : 0);
  code = code * 3 + batch;
  return code;
}

int DispatchSnapshot::size_bucket(int64_t n) {
  if (n <= 1) return 0;
  // floor(log2(n)) as a single bit scan; n > 0 here so clz is defined.
  const int b = 63 - __builtin_clzll(static_cast<uint64_t>(n));
  return b < kBuckets ? b : kBuckets - 1;
}

std::shared_ptr<const BaselineTable> BaselineTable::build(
    const gpusim::DeviceModel& device) {
  auto table = std::make_shared<BaselineTable>();
  auto add = [&](const Variant& v) {
    auto program = baseline::cublas_like(v, device);
    if (!program.is_ok()) return;  // null entry -> reference fallback
    table->programs_[static_cast<size_t>(variant_code(v))] =
        std::make_unique<const ir::Program>(std::move(program).value());
  };
  for (const Variant& v : blas3::all_variants()) add(v);
  for (const Variant& v : blas3::extension_variants()) add(v);
  // Batched codes reuse the member GEMM schedule: cublas_like builds
  // the member program, and the serving loop supplies the batch.
  for (const Variant& v : blas3::batched_variants()) add(v);
  return table;
}

std::shared_ptr<const DispatchSnapshot> DispatchSnapshot::build(
    const gpusim::DeviceModel& device, libgen::Artifact artifact,
    std::shared_ptr<const BaselineTable> baselines) {
  auto snap = std::make_shared<DispatchSnapshot>();
  snap->artifact_ = std::move(artifact);
  snap->baselines_ = std::move(baselines);
  snap->plans_.resize(kVariantCodes);
  for (Plan& plan : snap->plans_) {
    plan.entry.fill(-1);
    plan.exact.fill(0);
  }

  snap->load_status_ = libgen::check_device(snap->artifact_, device);
  if (!snap->load_status_.is_ok()) {
    // Graceful degradation: a mismatched artifact serves nothing from
    // the table; every request takes the fallback path.
    return snap;
  }

  // Registered buckets per variant code, in artifact order (a repeated
  // (variant, bucket) keeps the last entry, as the mutable-map table
  // always did).
  std::map<int, std::map<int, int16_t>> registered;
  size_t skipped = 0;
  std::string skip_reason;
  for (const libgen::ArtifactEntry& entry : snap->artifact_.entries) {
    const Variant* v = blas3::find_variant(entry.variant);
    if (v == nullptr) {
      ++skipped;
      skip_reason = "unknown variant '" + entry.variant + "'";
      continue;
    }
    auto eval = libgen::reconstruct(entry, *v, {entry.candidate()});
    if (!eval.is_ok()) {
      ++skipped;
      skip_reason = entry.variant + ": " + eval.status().message();
      continue;
    }
    Entry e;
    e.variant = v;
    e.program = std::move(eval->program);
    e.bool_params = engine::bools_for(eval->candidate);
    e.gflops = entry.gflops;
    e.tuned_size = entry.tuned_size;
    registered[variant_code(*v)][size_bucket(entry.tuned_size)] =
        static_cast<int16_t>(snap->entries_.size());
    snap->entries_.push_back(std::move(e));
  }
  if (skipped > 0) {
    snap->load_status_ = failed_precondition(str_format(
        "%zu artifact entr%s not servable (last: %s)", skipped,
        skipped == 1 ? "y" : "ies", skip_reason.c_str()));
  }

  // Resolve the whole plan table now so dispatch() is two array loads:
  // exact buckets are hits, every other bucket is pre-pointed at its
  // nearest registered neighbour (ties to the lower bucket — these
  // affine schedules are size-agnostic, so a tuned kernel from an
  // adjacent regime beats the baseline).
  for (const auto& [code, buckets] : registered) {
    Plan& plan = snap->plans_[static_cast<size_t>(code)];
    for (int want = 0; want < kBuckets; ++want) {
      auto exact = buckets.find(want);
      if (exact != buckets.end()) {
        plan.entry[static_cast<size_t>(want)] = exact->second;
        plan.exact[static_cast<size_t>(want)] = 1;
        continue;
      }
      auto lo = buckets.lower_bound(want);
      int16_t idx;
      if (lo == buckets.end()) {
        idx = std::prev(lo)->second;
      } else if (lo == buckets.begin()) {
        idx = lo->second;
      } else {
        auto below = std::prev(lo);
        idx = (lo->first - want) < (want - below->first) ? lo->second
                                                         : below->second;
      }
      plan.entry[static_cast<size_t>(want)] = idx;
    }
  }
  return snap;
}

}  // namespace oa::runtime
