// Request coalescing and admission control for the serving path.
//
// BatchQueue groups concurrent requests for the same (variant code,
// size bucket) into one batch: the first submitter of a key becomes
// the batch *leader*, optionally lingers for a short window so
// followers can pile on, then serves the whole batch with a single
// dispatch lookup (followers block until the leader publishes their
// result). Under a closed-loop client population this converts k
// same-shape requests into one queue transaction and one dispatch —
// the model batched-BLAS serving assumes.
//
// AdmissionController is the load-shedding half: it turns the serving
// latency the obs log2 histograms already record into an admit/shed
// decision against a p99 SLO target. It sheds when the queue is
// already deeper than the configured bound, or when the *windowed*
// p99 (recent traffic, not process lifetime) is above target and
// other requests are in flight — an idle server always admits, so a
// bad spell can drain instead of wedging the controller open.
//
// Both classes are self-contained and runtime-agnostic: the queue
// serves batches through a caller-provided function, the controller
// reads any Histogram. LibraryRuntime::serve() wires them together.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"
#include "obs/metrics.hpp"
#include "support/status.hpp"

namespace oa::runtime {

enum class DispatchOutcome;

class BatchQueue {
 public:
  struct Options {
    /// Largest batch one leader serves; a full batch closes early.
    size_t max_batch = 16;
    /// How long a leader lingers for followers before serving. 0
    /// serves immediately — the enrolment window is then only the
    /// instant between batch creation and close, so meaningful
    /// coalescing needs a window comparable to the request arrival
    /// spacing.
    double window_us = 0.0;
  };

  /// One queued request. The matrices belong to the (blocked)
  /// submitter and stay valid until submit() returns.
  struct Request {
    const blas3::Variant* v = nullptr;
    const blas3::Matrix* a = nullptr;
    blas3::Matrix* b = nullptr;
    blas3::Matrix* c = nullptr;
    double submit_us = 0.0;
    /// Filled by the batch leader; the initializer only survives if a
    /// ServeBatchFn fails its contract.
    StatusOr<DispatchOutcome> result = internal_error("request not served");
  };

  /// Serves every request of one coalesced batch (all share `key`).
  /// Runs on the leader's thread with no queue locks held; must fill
  /// every request's `result`.
  using ServeBatchFn =
      std::function<void(uint64_t key, const std::vector<Request*>&)>;

  BatchQueue(ServeBatchFn serve, Options options);

  /// Blocks until the request is served (by this thread as leader or
  /// by a batch leader) and returns its outcome.
  StatusOr<DispatchOutcome> submit(uint64_t key, const blas3::Variant& v,
                                   const blas3::Matrix& a, blas3::Matrix& b,
                                   blas3::Matrix* c);

 private:
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    /// Guarded by the owning shard's mutex while the batch is open
    /// (listed in `Shard::open`); leader-private afterwards.
    std::vector<Request*> requests;
    bool full = false;  // guarded by mu (signals the leader to close)
    bool done = false;  // guarded by mu
  };

  /// Keys are sharded so unrelated (variant, bucket) streams never
  /// contend on one queue lock. Lock order: shard.mu before batch.mu,
  /// never the reverse.
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<Batch>> open;
  };
  static constexpr size_t kShards = 16;

  Shard& shard_for(uint64_t key) {
    // Golden-ratio mix: keys are (code << 6 | bucket), so low bits
    // alone would map all buckets of one variant to few shards.
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> 60];
  }

  ServeBatchFn serve_;
  Options options_;
  std::array<Shard, kShards> shards_;
};

class AdmissionController {
 public:
  struct Options {
    /// Target p99 serving latency in microseconds; 0 disables the
    /// latency-based check.
    double slo_p99_us = 0.0;
    /// Hard in-flight bound (counting the candidate); 0 = unbounded.
    size_t max_queue_depth = 0;
    /// Completions between p99 window rotations.
    uint64_t window_every = 1024;
  };

  /// `serve_us` is the histogram serving latency is recorded into
  /// (e.g. the runtime's "runtime.serve_us"); the controller reads
  /// its recent window, it never writes.
  AdmissionController(Options options, const obs::Histogram* serve_us);

  /// Admit a request when `depth` others are in flight (excluding the
  /// candidate). Thread-safe.
  bool admit(size_t depth) const;

  /// Completion hook: rotates the latency window every
  /// `window_every` completions so admit() tracks recent traffic.
  void on_complete();

 private:
  Options options_;
  obs::HistogramWindow window_;
  std::atomic<uint64_t> completions_{0};
};

}  // namespace oa::runtime
