// LibraryRuntime: serve BLAS3 calls from a generated library artifact.
//
// This is the deployment half of the paper's pipeline: `oagen
// --emit-lib` persists the tuning trajectory (libgen/), and this
// runtime loads that artifact once, rebuilds every tuned kernel, and
// answers a stream of BLAS3 requests through a dispatch table keyed by
// (routine variant, device, problem-size bucket) — no composing, no
// searching, no re-tuning on the serving path.
//
// Dispatch policy:
//   * exact hit    — the artifact holds an entry for the variant whose
//                    tuning size falls in the request's power-of-two
//                    size bucket;
//   * near hit     — an entry for the variant exists in another bucket
//                    (the tuned schedule is size-agnostic for these
//                    affine kernels; the bucket records how far from
//                    its tuning regime the request landed);
//   * miss         — no entry (unknown variant, mismatched device, or
//                    an artifact entry that no longer re-applies):
//                    gracefully fall back to the CUBLAS-like baseline
//                    schedule, and to the CPU reference if even the
//                    baseline is unavailable.
//
// All serving paths are thread-safe: the dispatch table is immutable
// after construction, per-request state lives on the caller's stack,
// and the serving counters and latency histograms are relaxed atomics
// in a MetricsRegistry (the concurrency test hammers run() from the
// shared thread pool).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"
#include "gpusim/simulator.hpp"
#include "libgen/artifact.hpp"
#include "obs/metrics.hpp"

namespace oa::runtime {

struct RuntimeOptions {
  /// Serve misses from the CUBLAS-like baseline schedule (simulated on
  /// the same device). Off = CPU reference only.
  bool baseline_fallback = true;
  /// Registry the serving counters and per-outcome dispatch-latency
  /// histograms live in (instrument names prefixed "runtime."). Null
  /// gives the runtime a private registry; `oagen` and the serving
  /// example inject a shared one for a single export file.
  obs::MetricsRegistry* metrics = nullptr;
};

enum class DispatchOutcome {
  kHit,                // tuned kernel, matching size bucket
  kNearHit,            // tuned kernel from another size bucket
  kFallbackBaseline,   // CUBLAS-like baseline schedule
  kFallbackReference,  // CPU reference implementation
};

const char* outcome_name(DispatchOutcome outcome);

/// Monotonic serving counters — a snapshot *view* over the runtime's
/// MetricsRegistry (one source of truth, also exported by
/// `--metrics-out`). Kernel failures are split by what happened next:
/// a tuned/baseline kernel that failed but whose request a later
/// fallback stage answered is *recovered*; a request that failed on
/// every path is *failed* (and never reported as recovered).
struct DispatchStats {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t near_hits = 0;
  uint64_t baseline_fallbacks = 0;
  uint64_t reference_fallbacks = 0;
  uint64_t recovered_errors = 0;  // kernel failures a fallback absorbed
  uint64_t failed_requests = 0;   // requests that failed on every path
  /// Per-precision split of the same stream (the f64 half of the
  /// library serves independently of the f32 half): requests and tuned
  /// serves (exact + near hits), indexed by precision.
  uint64_t requests_f32 = 0;
  uint64_t requests_f64 = 0;
  uint64_t tuned_served_f32 = 0;
  uint64_t tuned_served_f64 = 0;

  std::string to_string() const;
};

class LibraryRuntime {
 public:
  /// Takes ownership of the artifact. Construction never fails: an
  /// artifact for the wrong device or with stale entries simply yields
  /// an empty dispatch table (everything falls back), with the reason
  /// reported by load_status().
  LibraryRuntime(const gpusim::DeviceModel& device,
                 libgen::Artifact artifact, RuntimeOptions options = {});

  const gpusim::DeviceModel& device() const { return sim_.device(); }
  const libgen::Artifact& artifact() const { return artifact_; }

  /// OK when every artifact entry was admitted to the dispatch table;
  /// otherwise the (non-fatal) reason serving is degraded — device
  /// mismatch, entries that no longer re-apply.
  const Status& load_status() const { return load_status_; }

  /// Number of servable tuned kernels.
  size_t table_size() const { return table_.size(); }

  /// The power-of-two problem-size bucket of n (floor(log2(n))).
  static int size_bucket(int64_t n);

  /// Representative problem size for dispatch: the largest of the
  /// routine family's true dims (M, N, K derived from a/b/c shapes),
  /// so rectangular requests land in the bucket of their dominant
  /// extent instead of whatever `b`'s shape happens to be.
  static int64_t dispatch_size(const blas3::Variant& v,
                               const blas3::Matrix& a,
                               const blas3::Matrix& b,
                               const blas3::Matrix* c);

  /// Result of a dispatch lookup (no execution, no counter updates).
  struct Dispatch {
    DispatchOutcome outcome = DispatchOutcome::kFallbackReference;
    /// Tuned program for hits, nullptr for fallbacks.
    const ir::Program* program = nullptr;
    /// Runtime bool parameters implied by the entry's rule conditions.
    std::map<std::string, bool> bool_params;
    /// GFLOPS the tuner measured for the served entry (0 on fallback).
    double tuned_gflops = 0.0;
  };

  /// Pure thread-safe lookup for (variant, problem size n).
  Dispatch dispatch(const blas3::Variant& v, int64_t n) const;

  /// Serve one BLAS3 call: run the dispatched kernel functionally on
  /// the simulated device (matrix conventions as OaFramework::run),
  /// falling back to baseline / CPU reference on a miss or execution
  /// failure. Thread-safe; returns how the request was ultimately
  /// served.
  StatusOr<DispatchOutcome> run(const blas3::Variant& v,
                                const blas3::Matrix& a, blas3::Matrix& b,
                                blas3::Matrix* c) const;

  DispatchStats stats() const;
  void reset_stats();

  /// The registry the serving counters and the per-outcome dispatch
  /// latency histograms ("runtime.dispatch_us.<outcome>") live in.
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct TableEntry {
    const blas3::Variant* variant = nullptr;
    ir::Program program;
    std::map<std::string, bool> bool_params;
    double gflops = 0.0;
    int64_t tuned_size = 0;
  };

  /// Baseline program for a variant, built lazily and memoized.
  StatusOr<const ir::Program*> baseline_for(const blas3::Variant& v) const;

  gpusim::Simulator sim_;
  libgen::Artifact artifact_;
  RuntimeOptions options_;
  Status load_status_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Cached instrument handles (stable for the registry's lifetime).
  struct Instruments {
    obs::Counter* requests;
    /// Per-precision request / tuned-serve counters, indexed by
    /// Precision ("runtime.requests.f32" etc.).
    obs::Counter* requests_by_prec[2];
    obs::Counter* tuned_served_by_prec[2];
    obs::Counter* hits;
    obs::Counter* near_hits;
    obs::Counter* baseline_fallbacks;
    obs::Counter* reference_fallbacks;
    obs::Counter* recovered_errors;
    obs::Counter* failed_requests;
    obs::Histogram* hit_us;
    obs::Histogram* near_hit_us;
    obs::Histogram* baseline_us;
    obs::Histogram* reference_us;
    obs::Histogram* failed_us;
  };
  Instruments ins_;

  std::vector<TableEntry> table_;
  /// variant name -> (size bucket -> table_ index).
  std::map<std::string, std::map<int, size_t>> index_;

  mutable std::mutex baseline_mu_;
  mutable std::map<std::string, std::unique_ptr<ir::Program>> baselines_;
};

}  // namespace oa::runtime
