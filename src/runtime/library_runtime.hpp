// LibraryRuntime: serve BLAS3 calls from a generated library artifact.
//
// This is the deployment half of the paper's pipeline: `oagen
// --emit-lib` persists the tuning trajectory (libgen/), and this
// runtime loads that artifact once, rebuilds every tuned kernel, and
// answers a stream of BLAS3 requests — no composing, no searching, no
// re-tuning on the serving path.
//
// Serving architecture (docs/SERVING.md):
//   * lock-free snapshot dispatch — every request pins an immutable
//     DispatchSnapshot through an atomic shared_ptr and resolves its
//     (variant code, size bucket) cell with two array loads; no maps,
//     no string keys, no per-request copies on the hot path;
//   * hot reload — swap_artifact() builds a fresh snapshot from a new
//     artifact and publishes it atomically; in-flight requests finish
//     on the snapshot they pinned, so a reload never drops a request;
//   * coalescing + admission control — serve() routes requests
//     through a BatchQueue that batches same-(variant, size-bucket)
//     traffic under one dispatch, and an AdmissionController that
//     sheds load (DispatchOutcome::kShed) when the p99 latency SLO is
//     unattainable; run() is the direct, uncoalesced path.
//
// Dispatch policy:
//   * exact hit    — the artifact holds an entry for the variant whose
//                    tuning size falls in the request's power-of-two
//                    size bucket;
//   * near hit     — an entry for the variant exists in another bucket
//                    (the tuned schedule is size-agnostic for these
//                    affine kernels; the bucket records how far from
//                    its tuning regime the request landed);
//   * miss         — no entry (unknown variant, mismatched device, or
//                    an artifact entry that no longer re-applies):
//                    gracefully fall back to the CUBLAS-like baseline
//                    schedule, and to the CPU reference if even the
//                    baseline is unavailable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"
#include "exec/executor.hpp"
#include "gpusim/simulator.hpp"
#include "libgen/artifact.hpp"
#include "obs/metrics.hpp"
#include "runtime/batch_queue.hpp"
#include "runtime/dispatch_snapshot.hpp"

namespace oa::runtime {

/// How dispatched kernels compute their results.
enum class ExecutionMode {
  /// Lockstep SIMT interpretation (gpusim) — the validated original.
  kInterpreter,
  /// Native execution backend (src/exec): kernels are lowered once,
  /// JIT-compiled where the host supports it, cached process-wide, and
  /// run as machine code. Results are checked against the interpreter
  /// by the verification harness (oacheck --check native); a kernel
  /// the backend cannot lower or that fails natively falls back to the
  /// interpreter per request, so kNative never serves fewer requests
  /// than kInterpreter.
  kNative,
};

struct RuntimeOptions {
  /// Execution backend for tuned and baseline kernels. kNative serves
  /// actual computed matrices from JIT-lowered kernels, with the
  /// interpreter as a per-request fallback.
  ExecutionMode execution = ExecutionMode::kInterpreter;
  /// Serve misses from the CUBLAS-like baseline schedule (simulated on
  /// the same device). Off = CPU reference only.
  bool baseline_fallback = true;
  /// Registry the serving counters and per-outcome dispatch-latency
  /// histograms live in (instrument names prefixed "runtime."). Null
  /// gives the runtime a private registry; `oagen` and the serving
  /// example inject a shared one for a single export file.
  obs::MetricsRegistry* metrics = nullptr;

  // --- serve() path (coalescing + admission control) -----------------
  /// Coalesce same-(variant, size-bucket) requests into one batched
  /// execution. Off = serve() behaves like run() plus admission.
  bool coalesce = true;
  /// Largest coalesced batch.
  size_t max_batch = 16;
  /// Batch-leader linger window in microseconds (0 = no added wait).
  double batch_window_us = 0.0;
  /// p99 latency SLO in microseconds; above-target recent traffic
  /// sheds new requests while the queue is non-empty. 0 = off.
  double slo_p99_us = 0.0;
  /// Hard in-flight request bound for serve(); 0 = unbounded.
  size_t max_queue_depth = 0;
};

enum class DispatchOutcome {
  kHit,                // tuned kernel, matching size bucket
  kNearHit,            // tuned kernel from another size bucket
  kFallbackBaseline,   // CUBLAS-like baseline schedule
  kFallbackReference,  // CPU reference implementation
  kShed,               // admission control refused the request
};

const char* outcome_name(DispatchOutcome outcome);

/// Monotonic serving counters — a snapshot *view* over the runtime's
/// MetricsRegistry (one source of truth, also exported by
/// `--metrics-out`).
///
/// Consistency contract: every component counter is an independent
/// relaxed atomic, so a snapshot taken while requests are in flight
/// can see a request whose outcome counter is already bumped next to
/// one that is not yet counted. `requests` is therefore *derived* as
/// the sum of the component counters (hits + near_hits + fallbacks +
/// failed + shed): the invariant `requests == sum(components)` holds
/// by construction in every snapshot, and a concurrent snapshot only
/// ever under-reports completed requests, never tears one across
/// components. The raw "runtime.requests" counter (bumped at request
/// entry) still exists in the registry for in-flight visibility:
/// `runtime.requests - stats().requests` is the number of requests
/// currently being served.
///
/// Kernel failures are split by what happened next: a tuned/baseline
/// kernel that failed but whose request a later fallback stage
/// answered is *recovered*; a request that failed on every path is
/// *failed* (and never reported as recovered).
struct DispatchStats {
  uint64_t requests = 0;  // derived: sum of the component counters
  uint64_t hits = 0;
  uint64_t near_hits = 0;
  uint64_t baseline_fallbacks = 0;
  uint64_t reference_fallbacks = 0;
  uint64_t shed = 0;              // refused by admission control
  uint64_t recovered_errors = 0;  // kernel failures a fallback absorbed
  uint64_t failed_requests = 0;   // requests that failed on every path
  /// Per-precision split of the same stream (the f64 half of the
  /// library serves independently of the f32 half): requests and tuned
  /// serves (exact + near hits), indexed by precision. Raw counters
  /// (bumped at request entry), not derived.
  uint64_t requests_f32 = 0;
  uint64_t requests_f64 = 0;
  uint64_t tuned_served_f32 = 0;
  uint64_t tuned_served_f64 = 0;
  /// Native-execution trajectory (ExecutionMode::kNative): requests
  /// whose kernel ran as native code / native attempts that fell back
  /// to the interpreter.
  uint64_t native_serves = 0;
  uint64_t native_fallbacks = 0;
  /// Hot-reload trajectory: snapshots published after the first.
  uint64_t reloads = 0;
  /// Coalescing trajectory: batches served / requests that rode along
  /// in a batch behind a leader.
  uint64_t batches = 0;
  uint64_t coalesced = 0;
  /// Batched-family trajectory (run_batched/serve_batched): batched
  /// calls served and the total member count across them.
  uint64_t batched_requests = 0;
  uint64_t batched_members = 0;
  /// Requests split by routine family key ("GEMM", "GEMM_BATCHED",
  /// "DGEMM" shares "GEMM", ...); only keys with traffic appear.
  std::map<std::string, uint64_t> requests_by_family;

  std::string to_string() const;
};

class LibraryRuntime {
 public:
  /// Takes ownership of the artifact. Construction never fails: an
  /// artifact for the wrong device or with stale entries simply yields
  /// an empty dispatch table (everything falls back), with the reason
  /// reported by load_status().
  LibraryRuntime(const gpusim::DeviceModel& device,
                 libgen::Artifact artifact, RuntimeOptions options = {});

  const gpusim::DeviceModel& device() const { return sim_.device(); }

  /// Pins and returns the current snapshot (artifact, load status,
  /// entries). The snapshot stays valid as long as the returned
  /// pointer lives, across any number of concurrent swap_artifact()s.
  std::shared_ptr<const DispatchSnapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// OK when every entry of the *current* snapshot's artifact was
  /// admitted; otherwise the (non-fatal) reason serving is degraded.
  Status load_status() const { return snapshot()->load_status(); }

  /// Number of servable tuned kernels in the current snapshot.
  size_t table_size() const { return snapshot()->table_size(); }

  /// Hot reload: build a snapshot for `artifact` and publish it
  /// atomically. In-flight requests finish on the snapshot they
  /// pinned; new requests dispatch against the new one — zero dropped
  /// requests by construction. Returns the new snapshot's load status
  /// (a degraded artifact still publishes, mirroring the
  /// constructor). Thread-safe against serving and against concurrent
  /// swaps; the build runs on the calling thread, off the serving
  /// threads.
  Status swap_artifact(libgen::Artifact artifact);

  /// The power-of-two problem-size bucket of n (floor(log2(n))).
  static int size_bucket(int64_t n) {
    return DispatchSnapshot::size_bucket(n);
  }

  /// Representative problem size for dispatch: the largest of the
  /// routine family's true dims (M, N, K derived from a/b/c shapes),
  /// so rectangular requests land in the bucket of their dominant
  /// extent instead of whatever `b`'s shape happens to be.
  static int64_t dispatch_size(const blas3::Variant& v,
                               const blas3::Matrix& a,
                               const blas3::Matrix& b,
                               const blas3::Matrix* c);

  /// Result of a dispatch lookup (no execution, no counter updates).
  /// `program` and `bool_params` point into `snapshot`, which the
  /// Dispatch pins: they stay valid until the Dispatch is destroyed,
  /// hot reloads notwithstanding.
  struct Dispatch {
    DispatchOutcome outcome = DispatchOutcome::kFallbackReference;
    /// Tuned program for hits, nullptr for fallbacks.
    const ir::Program* program = nullptr;
    /// Runtime bool parameters implied by the entry's rule conditions
    /// (never null on hits; stable — no per-dispatch copy).
    const std::map<std::string, bool>* bool_params = nullptr;
    /// GFLOPS the tuner measured for the served entry (0 on fallback).
    double tuned_gflops = 0.0;
    /// Keeps the pointers above alive.
    std::shared_ptr<const DispatchSnapshot> snapshot;
  };

  /// Pure thread-safe lookup for (variant, problem size n).
  Dispatch dispatch(const blas3::Variant& v, int64_t n) const;

  /// Serve one BLAS3 call directly: run the dispatched kernel
  /// functionally on the simulated device (matrix conventions as
  /// OaFramework::run), falling back to baseline / CPU reference on a
  /// miss or execution failure. Thread-safe; returns how the request
  /// was ultimately served. Never coalesces, never sheds.
  StatusOr<DispatchOutcome> run(const blas3::Variant& v,
                                const blas3::Matrix& a, blas3::Matrix& b,
                                blas3::Matrix* c) const;

  /// Serve one BLAS3 call through the production path: admission
  /// control first (DispatchOutcome::kShed when the SLO is
  /// unattainable — an OK StatusOr whose outcome the caller must
  /// check), then the coalescing BatchQueue (RuntimeOptions::coalesce)
  /// or the direct path. Blocks until served or shed.
  StatusOr<DispatchOutcome> serve(const blas3::Variant& v,
                                  const blas3::Matrix& a, blas3::Matrix& b,
                                  blas3::Matrix* c) const;

  /// Serve one *batched* BLAS3 call directly (v.batch != kSingle):
  /// operand vectors carry one matrix per batch member and must agree
  /// on the batch count. Dispatch resolves on the member size under
  /// the batched variant's own code; execution is native-first under
  /// ExecutionMode::kNative (the fused exec::execute_batched), then
  /// the interpreter loop-of-members, then the CPU reference loop.
  /// Thread-safe; never coalesces, never sheds.
  StatusOr<DispatchOutcome> run_batched(const blas3::Variant& v,
                                        const std::vector<blas3::Matrix>& a,
                                        std::vector<blas3::Matrix>& b,
                                        std::vector<blas3::Matrix>* c) const;

  /// run_batched behind admission control (DispatchOutcome::kShed when
  /// the SLO is unattainable). Batched requests never enter the
  /// coalescing queue — they already are a batch.
  StatusOr<DispatchOutcome> serve_batched(
      const blas3::Variant& v, const std::vector<blas3::Matrix>& a,
      std::vector<blas3::Matrix>& b, std::vector<blas3::Matrix>* c) const;

  /// Power-of-two bucket of a batch count (floor(log2(count))); the
  /// third axis of the coalescing dispatch key next to the variant
  /// code and the size bucket.
  static int batch_bucket(int64_t count) {
    return DispatchSnapshot::size_bucket(count);
  }

  DispatchStats stats() const;
  void reset_stats();

  /// Native-backend compile/cache counters (all zero under
  /// ExecutionMode::kInterpreter). A warm re-serve of the same library
  /// shows cache_hits growing while compiles stays put.
  exec::ExecStats exec_stats() const { return exec_cache_.stats(); }

  /// The registry the serving counters and the per-outcome dispatch
  /// latency histograms ("runtime.dispatch_us.<outcome>") live in.
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  /// The serving hot path's snapshot pin. `snapshot_` is a lock-based
  /// atomic<shared_ptr> (libstdc++), so loading it per request costs
  /// several atomic RMWs and, worse, a spinlock a preempted reader can
  /// hold across a scheduling quantum. pinned() instead keeps one
  /// shared_ptr pin per (thread, published version) in a thread-local
  /// cache keyed by a globally-unique version stamp: steady-state
  /// requests pay two plain atomic loads, and only the first request a
  /// thread makes after a hot reload (or against a new runtime) takes
  /// the slow path. The returned reference is stable until this thread
  /// calls pinned() again — callers must finish one request per call,
  /// which run()/serve()/serve_batch() do.
  const std::shared_ptr<const DispatchSnapshot>& pinned() const;

  /// Lookup against a pinned snapshot (no refcount traffic).
  Dispatch dispatch_on(const DispatchSnapshot& snap,
                       const blas3::Variant& v, int64_t n) const;

  /// The serving tail shared by run(), serve() and batch leaders:
  /// execute the dispatched kernel, walk the fallback chain, settle
  /// counters and the latency histogram of the final outcome.
  /// `start_us` is when the request entered the runtime (queue wait
  /// counts toward its latency). `pre_executed` marks a request whose
  /// tuned kernel a batch leader already ran natively (serve_batch's
  /// single executor loop): the tuned stage only settles counters.
  StatusOr<DispatchOutcome> serve_with(const DispatchSnapshot& snap,
                                       const Dispatch& d,
                                       const blas3::Variant& v,
                                       const blas3::Matrix& a,
                                       blas3::Matrix& b, blas3::Matrix* c,
                                       double start_us,
                                       bool pre_executed = false) const;

  /// Native-first execution of a dispatched program under
  /// ExecutionMode::kNative (counts native_serves / native_fallbacks),
  /// plain interpreter execution otherwise.
  Status execute_dispatched(const ir::Program& program,
                            const blas3::Variant& v, const blas3::Matrix& a,
                            blas3::Matrix& b, blas3::Matrix* c,
                            const std::map<std::string, bool>& bool_params)
      const;

  /// Batched counterpart of execute_dispatched: fused native path
  /// first under kNative, interpreter loop-of-members otherwise or on
  /// native failure.
  Status execute_batched_dispatched(
      const ir::Program& program, const blas3::Variant& v,
      const std::vector<blas3::Matrix>& a, std::vector<blas3::Matrix>& b,
      std::vector<blas3::Matrix>* c,
      const std::map<std::string, bool>& bool_params) const;

  /// ExecutionMode::kNative: compile + JIT every kernel of every
  /// snapshot entry into the exec cache so the first request after a
  /// (re)load doesn't pay compile latency.
  void prewarm(const DispatchSnapshot& snap) const;

  /// BatchQueue callback: serve one coalesced batch with a single
  /// dispatch lookup.
  void serve_batch(uint64_t key,
                   const std::vector<BatchQueue::Request*>& batch) const;

  /// Counter/histogram bookkeeping shared by every entry point.
  void count_request(const blas3::Variant& v) const;

  gpusim::Simulator sim_;
  RuntimeOptions options_;

  /// Process-lifetime cache of lowered/JIT'd kernels (kNative). Shared
  /// across snapshots: hot reloads of an unchanged entry hit the cache
  /// because keys are content-addressed.
  mutable exec::ExecCache exec_cache_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Cached instrument handles (stable for the registry's lifetime).
  struct Instruments {
    obs::Counter* requests;
    /// Per-precision request / tuned-serve counters, indexed by
    /// Precision ("runtime.requests.f32" etc.).
    obs::Counter* requests_by_prec[2];
    obs::Counter* tuned_served_by_prec[2];
    obs::Counter* hits;
    obs::Counter* near_hits;
    obs::Counter* baseline_fallbacks;
    obs::Counter* reference_fallbacks;
    obs::Counter* shed;
    obs::Counter* recovered_errors;
    obs::Counter* failed_requests;
    obs::Counter* native_serves;
    obs::Counter* native_fallbacks;
    obs::Counter* reloads;
    obs::Counter* batches;
    obs::Counter* coalesced;
    obs::Counter* batched_requests;
    obs::Counter* batched_members;
    /// Per-family request counters ("runtime.requests.family.<KEY>"),
    /// indexed by [family][batch mode]; non-GEMM rows alias their
    /// batch-0 counter (no batched families outside GEMM).
    obs::Counter* family_requests[5][3];
    obs::Histogram* hit_us;
    obs::Histogram* near_hit_us;
    obs::Histogram* baseline_us;
    obs::Histogram* reference_us;
    obs::Histogram* shed_us;
    obs::Histogram* failed_us;
    obs::Histogram* serve_us;       // all outcomes; admission reads it
    obs::Histogram* reload_us;      // snapshot build + publish time
    obs::Histogram* batch_size;
    obs::Histogram* queue_wait_us;  // submit -> batch-serve delay
    obs::Histogram* batch_exec_us;  // leader's native batch-execution loop
  };
  Instruments ins_;

  /// Baselines depend only on (variant, device): built once here,
  /// shared by every snapshot this runtime publishes.
  std::shared_ptr<const BaselineTable> baselines_;

  /// The published serving table. Readers load-acquire and pin;
  /// swap_artifact() store-releases a fresh snapshot.
  std::atomic<std::shared_ptr<const DispatchSnapshot>> snapshot_;
  /// Globally-unique stamp of the published snapshot (bumped on every
  /// publish, never reused across runtimes) — the pinned() cache key.
  std::atomic<uint64_t> version_{0};
  /// Serializes snapshot builds (not lookups) across concurrent
  /// swap_artifact() calls.
  mutable std::mutex swap_mu_;

  /// serve() machinery; mutable because serving is logically const.
  mutable std::unique_ptr<BatchQueue> queue_;
  mutable std::unique_ptr<AdmissionController> admission_;
  mutable std::atomic<size_t> in_flight_{0};
};

}  // namespace oa::runtime
