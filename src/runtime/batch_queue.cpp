#include "runtime/batch_queue.hpp"

#include <chrono>

#include "obs/trace.hpp"

namespace oa::runtime {

BatchQueue::BatchQueue(ServeBatchFn serve, Options options)
    : serve_(std::move(serve)), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
}

StatusOr<DispatchOutcome> BatchQueue::submit(uint64_t key,
                                             const blas3::Variant& v,
                                             const blas3::Matrix& a,
                                             blas3::Matrix& b,
                                             blas3::Matrix* c) {
  Request req;
  req.v = &v;
  req.a = &a;
  req.b = &b;
  req.c = c;
  req.submit_us = obs::now_us();

  Shard& shard = shard_for(key);
  std::shared_ptr<Batch> batch;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.open.find(key);
    if (it != shard.open.end()) {
      batch = it->second;
      batch->requests.push_back(&req);
      if (batch->requests.size() >= options_.max_batch) {
        // Full: close enrolment and wake the lingering leader early.
        shard.open.erase(it);
        std::lock_guard<std::mutex> bl(batch->mu);
        batch->full = true;
        batch->cv.notify_all();
      }
    } else {
      batch = std::make_shared<Batch>();
      batch->requests.push_back(&req);
      if (options_.max_batch > 1) shard.open.emplace(key, batch);
      leader = true;
    }
  }

  if (!leader) {
    // Follower: the leader serves this request; block until it says
    // so. The result lives in our own stack frame.
    std::unique_lock<std::mutex> bl(batch->mu);
    batch->cv.wait(bl, [&] { return batch->done; });
    return std::move(req.result);
  }

  if (options_.window_us > 0.0 && options_.max_batch > 1) {
    // Linger for followers; a full batch cuts the window short.
    std::unique_lock<std::mutex> bl(batch->mu);
    batch->cv.wait_for(
        bl,
        std::chrono::nanoseconds(
            static_cast<int64_t>(options_.window_us * 1e3)),
        [&] { return batch->full; });
  }
  {
    // Close enrolment (a full batch is already closed). After this
    // block no other thread can reach the request list.
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.open.find(key);
    if (it != shard.open.end() && it->second == batch) {
      shard.open.erase(it);
    }
  }

  serve_(key, batch->requests);

  {
    std::lock_guard<std::mutex> bl(batch->mu);
    batch->done = true;
  }
  batch->cv.notify_all();
  return std::move(req.result);
}

AdmissionController::AdmissionController(Options options,
                                         const obs::Histogram* serve_us)
    : options_(options), window_(serve_us) {}

bool AdmissionController::admit(size_t depth) const {
  if (options_.max_queue_depth > 0 &&
      depth + 1 > options_.max_queue_depth) {
    return false;
  }
  if (options_.slo_p99_us > 0.0 && depth > 0) {
    // Recent traffic already misses the SLO: adding to the queue can
    // only push p99 further out, so shed while others are in flight.
    if (window_.percentile(99) > options_.slo_p99_us) return false;
    // Expected queueing delay alone blows the budget: `depth` requests
    // ahead of us at the recent median each.
    if (static_cast<double>(depth) * window_.percentile(50) >
        options_.slo_p99_us) {
      return false;
    }
  }
  return true;
}

void AdmissionController::on_complete() {
  const uint64_t done =
      completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.window_every > 0 && done % options_.window_every == 0) {
    window_.rotate();
  }
}

}  // namespace oa::runtime
