#include "composer/composer.hpp"

#include <algorithm>

#include "ir/validate.hpp"
#include "obs/metrics.hpp"
#include "support/hash.hpp"
#include "support/log.hpp"

namespace oa::composer {

uint64_t Candidate::fingerprint() const {
  Fingerprint fp;
  fp.mix(script.fingerprint());
  fp.mix(static_cast<uint64_t>(conditions.size()));
  for (const std::string& c : conditions) fp.mix(c);
  return fp.digest();
}

SplitSequence split(const std::vector<Invocation>& sequence) {
  SplitSequence out;
  for (const Invocation& inv : sequence) {
    if (transforms::is_memory_component(inv.component)) {
      out.memory.push_back(inv);
    } else {
      out.polyhedral.push_back(inv);
    }
  }
  return out;
}

namespace {

void mix_rec(const std::vector<Invocation>& a, size_t ia,
             const std::vector<Invocation>& b, size_t ib,
             std::vector<Invocation>& cur,
             std::vector<std::vector<Invocation>>& out) {
  if (ia == a.size() && ib == b.size()) {
    out.push_back(cur);
    return;
  }
  // Location constraint: a must-be-first component may only be placed
  // at position 0 — prune the branch otherwise.
  auto placeable = [&](const Invocation& inv) {
    return !transforms::must_be_first(inv.component) || cur.empty();
  };
  if (ia < a.size() && placeable(a[ia])) {
    cur.push_back(a[ia]);
    mix_rec(a, ia + 1, b, ib, cur, out);
    cur.pop_back();
  }
  if (ib < b.size() && placeable(b[ib])) {
    cur.push_back(b[ib]);
    mix_rec(a, ia, b, ib + 1, cur, out);
    cur.pop_back();
  }
}

}  // namespace

std::vector<std::vector<Invocation>> mix(
    const std::vector<Invocation>& a, const std::vector<Invocation>& b) {
  std::vector<std::vector<Invocation>> out;
  std::vector<Invocation> cur;
  mix_rec(a, 0, b, 0, cur, out);
  // Drop duplicates (possible when a or b is empty).
  std::vector<std::vector<Invocation>> unique;
  for (auto& seq : out) {
    if (std::find(unique.begin(), unique.end(), seq) == unique.end()) {
      unique.push_back(std::move(seq));
    }
  }
  return unique;
}

FilterOutcome filter_sequence(const ir::Program& source,
                              const std::vector<Invocation>& sequence,
                              const transforms::TransformContext& ctx) {
  FilterOutcome out;
  out.program = source;  // deep copy (Kernel has deep copy semantics)
  for (const Invocation& inv : sequence) {
    ir::Program backup = out.program;
    Status s = transforms::apply(out.program, inv, ctx);
    if (s.is_ok()) {
      out.surviving.push_back(inv);
    } else {
      // Component omitted: the sequence degenerates (paper §IV-B.2).
      out.program = std::move(backup);
    }
  }
  out.valid = ir::validate(out.program).is_ok();
  return out;
}

namespace {

transforms::AllocMode compose_modes(transforms::AllocMode script_mode,
                                    transforms::AllocMode adaptor_mode) {
  using transforms::AllocMode;
  if (script_mode == AllocMode::kNoChange) return adaptor_mode;
  if (adaptor_mode == AllocMode::kNoChange) return script_mode;
  if (script_mode == AllocMode::kTranspose &&
      adaptor_mode == AllocMode::kTranspose) {
    // The adaptor says the matrix is already stored transposed: two
    // transpositions cancel (the paper's C = alpha*A*B^T + beta*C
    // example yields SM_alloc(B, NoChange)).
    return AllocMode::kNoChange;
  }
  // Symmetry composed with anything keeps the symmetric staging.
  return AllocMode::kSymmetry;
}

}  // namespace

std::vector<Invocation> merge_allocations(
    const std::vector<Invocation>& base,
    const std::vector<Invocation>& adaptor) {
  std::vector<Invocation> out = base;
  for (const Invocation& inv : adaptor) {
    if (inv.component == "SM_alloc" && inv.args.size() == 2) {
      auto same = std::find_if(out.begin(), out.end(),
                               [&](const Invocation& o) {
                                 return o.component == "SM_alloc" &&
                                        !o.args.empty() &&
                                        o.args[0] == inv.args[0];
                               });
      if (same != out.end()) {
        auto m1 = transforms::parse_alloc_mode(same->args[1]);
        auto m2 = transforms::parse_alloc_mode(inv.args[1]);
        if (m1.is_ok() && m2.is_ok()) {
          same->args[1] =
              transforms::alloc_mode_name(compose_modes(*m1, *m2));
          continue;
        }
      }
    }
    // reg_alloc / new-array SM_alloc: keep both unless identical.
    if (std::find(out.begin(), out.end(), inv) == out.end()) {
      out.push_back(inv);
    }
  }
  return out;
}

StatusOr<std::vector<Candidate>> compose(
    const epod::Script& base, const std::vector<adl::Adaptor>& adaptors,
    const ir::Program& source, const transforms::TransformContext& ctx) {
  const SplitSequence base_split = split(base.invocations);

  // Enumerate the cartesian product of adaptor rules.
  std::vector<std::vector<const adl::AdaptorRule*>> combos{{}};
  for (const adl::Adaptor& a : adaptors) {
    std::vector<std::vector<const adl::AdaptorRule*>> next;
    for (const auto& combo : combos) {
      for (const adl::AdaptorRule& rule : a.rules) {
        auto extended = combo;
        extended.push_back(&rule);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }

  uint64_t mixed_total = 0;
  uint64_t filtered_out = 0;
  std::vector<Candidate> candidates;
  for (const auto& combo : combos) {
    // Mix the polyhedral parts of all rules into the base, in order.
    std::vector<std::vector<Invocation>> mixed{base_split.polyhedral};
    std::vector<Invocation> memory = base_split.memory;
    std::vector<std::string> conditions;
    for (const adl::AdaptorRule* rule : combo) {
      SplitSequence rule_split = split(rule->sequence);
      memory = merge_allocations(memory, rule_split.memory);
      if (!rule->condition.empty()) conditions.push_back(rule->condition);
      if (rule_split.polyhedral.empty()) continue;
      std::vector<std::vector<Invocation>> next;
      for (const auto& seq : mixed) {
        for (auto& m : mix(seq, rule_split.polyhedral)) {
          next.push_back(std::move(m));
        }
      }
      mixed = std::move(next);
    }

    // Filter every mixed sequence; deduplicate the semi-output.
    mixed_total += mixed.size();
    std::vector<std::vector<Invocation>> semi_output;
    for (const auto& seq : mixed) {
      FilterOutcome outcome = filter_sequence(source, seq, ctx);
      if (!outcome.valid) {
        ++filtered_out;
        continue;
      }
      if (std::find(semi_output.begin(), semi_output.end(),
                    outcome.surviving) == semi_output.end()) {
        semi_output.push_back(outcome.surviving);
      }
    }

    // Generator: polyhedral survivors + merged memory part.
    for (const auto& poly : semi_output) {
      Candidate c;
      c.script.routine = source.name;
      c.script.invocations = poly;
      c.script.invocations.insert(c.script.invocations.end(),
                                  memory.begin(), memory.end());
      c.conditions = conditions;
      if (std::find(candidates.begin(), candidates.end(), c) ==
          candidates.end()) {
        candidates.push_back(std::move(c));
      }
    }
  }
  if (ctx.metrics != nullptr) {
    // Where the composition budget goes: how many interleavings the
    // mixer proposed, how many the filter rejected outright, and how
    // many deduplicated candidates the generator emitted.
    ctx.metrics->counter("composer.compositions").add();
    ctx.metrics->counter("composer.rule_combos").add(combos.size());
    ctx.metrics->counter("composer.sequences_mixed").add(mixed_total);
    ctx.metrics->counter("composer.sequences_filtered_out")
        .add(filtered_out);
    ctx.metrics->counter("composer.candidates").add(candidates.size());
  }
  if (candidates.empty()) {
    return failed_precondition("composition produced no legal script");
  }
  return candidates;
}

}  // namespace oa::composer
