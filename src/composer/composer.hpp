// The Composer (paper §IV-B, Fig 8): takes an existing EPOD script plus
// user-defined adaptors and derives the candidate EPOD scripts for a
// new routine.
//
//   splitter  — separates a sequence into its polyhedral part and its
//               memory-allocation part (SM_alloc / reg_alloc);
//   mixer     — order-preserving interleavings of the base and adaptor
//               polyhedral sequences, honouring location constraints
//               (GM_map must come first), Fig 9;
//   filter    — tries every mixed sequence component-by-component on
//               the routine's source IR; failing components are
//               omitted (sequences degenerate, §IV-B.2) and duplicate
//               survivors are merged (the "semi-output");
//   allocator — merges the memory-allocation declarations (two nested
//               Transpose allocations cancel to NoChange — the paper's
//               C = A * B^T example);
//   generator — emits the final scripts (+ rule conditions for
//               multi-versioned code).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adl/adaptor.hpp"
#include "epod/script.hpp"
#include "ir/kernel.hpp"

namespace oa::composer {

using transforms::Invocation;

/// Result of the splitter.
struct SplitSequence {
  std::vector<Invocation> polyhedral;
  std::vector<Invocation> memory;
};

SplitSequence split(const std::vector<Invocation>& sequence);

/// Order-preserving interleavings of `a` and `b`; sequences violating a
/// location constraint (must_be_first component not first) are not
/// generated.
std::vector<std::vector<Invocation>> mix(
    const std::vector<Invocation>& a, const std::vector<Invocation>& b);

/// Filter one sequence: apply component-by-component to a copy of
/// `source`; a failing component is omitted. Returns the surviving
/// subsequence and the transformed program.
struct FilterOutcome {
  std::vector<Invocation> surviving;
  ir::Program program;
  bool valid = false;  // final structural/dependence check passed
};

FilterOutcome filter_sequence(const ir::Program& source,
                              const std::vector<Invocation>& sequence,
                              const transforms::TransformContext& ctx);

/// The allocator: merge the base script's memory declarations with the
/// adaptors'. Same-array SM_alloc modes compose (Transpose ∘ Transpose
/// = NoChange).
std::vector<Invocation> merge_allocations(
    const std::vector<Invocation>& base,
    const std::vector<Invocation>& adaptor);

/// One generated candidate.
struct Candidate {
  epod::Script script;
  /// Conditions from the adaptor rules used (e.g. "blank(A).zero =
  /// true") — the tuner runs the multi-versioned code accordingly.
  std::vector<std::string> conditions;

  bool operator==(const Candidate&) const = default;

  /// Stable content hash (script fingerprint + conditions); the
  /// evaluation engine keys its memoization cache on it.
  uint64_t fingerprint() const;
};

/// Full composition: base script x all rule combinations of the bound
/// adaptors, mixed, filtered on `source`, allocations merged.
StatusOr<std::vector<Candidate>> compose(
    const epod::Script& base, const std::vector<adl::Adaptor>& adaptors,
    const ir::Program& source, const transforms::TransformContext& ctx);

}  // namespace oa::composer
