// Baseline vendor libraries for the paper's comparisons.
//
// The paper compares against CUBLAS 3.2 (all 24 variants) and MAGMA
// v0.2 (GEMM and TRSM variants, GTX285 only). Neither ships source we
// can run here, so DESIGN.md's substitution applies: each baseline is a
// *fixed* kernel schedule in the same IR, synthesized from the
// documented behaviour of those libraries and run through the same
// simulator:
//
//  * cublas-like GEMM: the Volkov & Demmel schedule [2] (CUBLAS 1.x-3.x
//    shipped descendants of that code): one thread per row, B tile in
//    shared memory, register C strip, fixed tile sizes.
//  * cublas-like SYMM: the mixed-mode triangle traversal of
//    ssymm_main_hw_lo_left_fulltile — the stored triangle is read in
//    both orientations from global memory and the real/shadow loops
//    stay unfused: ~2x dynamic instructions, and the shadow-orientation
//    access is non-coalesced on CC 1.0 (Table I), segment-inflated on
//    CC 1.3 (Table II) and line-inflated on Fermi (Table III).
//  * cublas-like TRMM: the GEMM schedule on the triangular bounds,
//    without peel/padding (divergent bounds, no unrolling).
//  * cublas-like TRSM: wave-serialized solver with a small 16-wide
//    block tile (many waves, per-wave launch overhead).
//  * magma-like (GTX285): a stronger GEMM (deeper unroll) and a
//    moderate blocked TRSM; SYMM/TRMM are absent, as in MAGMA v0.2.
#pragma once

#include "blas3/routine.hpp"
#include "gpusim/device.hpp"
#include "ir/kernel.hpp"
#include "support/status.hpp"

namespace oa::baseline {

/// The CUBLAS-3.2-like implementation of `v` for `device`.
StatusOr<ir::Program> cublas_like(const blas3::Variant& v,
                                  const gpusim::DeviceModel& device);

/// The MAGMA-v0.2-like implementation: only GEMM and TRSM variants, and
/// only on GTX285 (kNotFound otherwise) — matching the paper's Fig 11.
StatusOr<ir::Program> magma_like(const blas3::Variant& v,
                                 const gpusim::DeviceModel& device);

}  // namespace oa::baseline
