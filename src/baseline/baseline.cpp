#include "baseline/baseline.hpp"

#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "transforms/transform.hpp"

namespace oa::baseline {

using blas3::Family;
using blas3::Variant;
using gpusim::DeviceModel;
using transforms::TransformContext;
using transforms::TuningParams;

namespace {

/// Volkov-style fixed schedule parameters: one thread per row, 16-wide
/// column strip in registers, 16-deep k tiles.
TuningParams volkov_params() {
  TuningParams p;
  p.block_tile_y = 64;
  p.block_tile_x = 16;
  p.threads_y = 64;
  p.threads_x = 1;
  p.k_tile = 16;
  p.unroll = 4;
  return p;
}

StatusOr<ir::Program> apply_fixed(const Variant& v,
                                  const std::string& script_text,
                                  const TuningParams& params) {
  ir::Program p = blas3::make_source_program(v);
  OA_ASSIGN_OR_RETURN(epod::Script script, epod::parse_script(script_text));
  TransformContext ctx;
  ctx.params = params;
  // Baselines use filter semantics too: loop_unroll legitimately fails
  // on the divergent triangular bounds (that *is* the baseline's
  // weakness).
  OA_ASSIGN_OR_RETURN(uint64_t applied,
                      epod::apply_script_lenient(p, script, ctx));
  if (applied == 0) {
    return internal_error("baseline schedule failed to apply for " +
                          v.name());
  }
  return p;
}

constexpr const char* kGemmSchedule = R"(
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(B, Transpose);
  reg_alloc(C);
)";

// Transposed-A GEMM: CUBLAS stages the A tile through shared memory so
// the transposed traversal stays coalesced (a fixed schedule, not the
// searched variants OA generates).
constexpr const char* kGemmTransASchedule = R"(
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(A, Transpose);
  SM_alloc(B, Transpose);
  reg_alloc(C);
)";

// Mixed-mode SYMM: fission the triangle (format_iteration without a
// preceding GM_map cannot fuse), then the GEMM schedule. The shadow
// loop keeps its transposed-orientation global reads.
constexpr const char* kSymmSchedule = R"(
  format_iteration(A, Symmetry);
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(B, Transpose);
  reg_alloc(C);
)";

// Right-side SYMM: the mixed-mode traversal reads A[j][k]/A[k][j] as a
// per-iteration broadcast, which CC 1.0 would serialize into oblivion;
// like the real library, the baseline stages the symmetric tile in
// shared memory (the instruction-count penalty of the unfused loops
// remains).
constexpr const char* kSymmScheduleRight = R"(
  format_iteration(A, Symmetry);
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(B, Transpose);
  SM_alloc(A, Symmetry);
  reg_alloc(C);
)";

constexpr const char* kTrsmSchedule = R"(
  (Lii, Ljj) = thread_grouping(Li, Lj);
  (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
  peel_triangular(A);
  binding_triangular(A, 0);
  loop_unroll(Ljjj, Lkkk);
  SM_alloc(B, Transpose);
  reg_alloc(B);
)";

constexpr const char* kTrsmScheduleRight = R"(
  (Ljj, Lii) = thread_grouping(Lj, Li);
  (Ljjj, Liii, Lkkk) = loop_tiling(Ljj, Lii, Lk);
  peel_triangular(A);
  binding_triangular(A, 0);
  loop_unroll(Liii, Lkkk);
  SM_alloc(B, Transpose);
  reg_alloc(B);
)";

bool is_right_side(const Variant& v) {
  return (v.family == Family::kTrsm || v.family == Family::kTrmm ||
          v.family == Family::kSymm) &&
         v.side == blas3::Side::kRight;
}

}  // namespace

StatusOr<ir::Program> cublas_like(const Variant& v,
                                  const DeviceModel& device) {
  switch (v.family) {
    case Family::kGemm:
      return apply_fixed(v,
                         v.trans_a == blas3::Trans::kT
                             ? kGemmTransASchedule
                             : kGemmSchedule,
                         volkov_params());
    case Family::kSymm:
      return apply_fixed(
          v, is_right_side(v) ? kSymmScheduleRight : kSymmSchedule,
          volkov_params());
    case Family::kTrmm:
      // GEMM schedule straight onto the triangular bounds: no peeling,
      // no padding — the divergent k bounds defeat loop_unroll. The
      // transposed and right-side variants read A strided/broadcast, so
      // (like the real library) A is staged through shared memory.
      return apply_fixed(v,
                         v.trans == blas3::Trans::kT || is_right_side(v)
                             ? kGemmTransASchedule
                             : kGemmSchedule,
                         volkov_params());
    case Family::kTrsm: {
      // Small tiles and shallow unrolling: many serialized waves. The
      // Fermi build of CUBLAS 3.2 shipped a better 32-row solver.
      TuningParams p;
      const bool fermi =
          device.coalescing == gpusim::CoalescingModel::kFermi;
      p.block_tile_y = fermi ? 64 : 16;
      p.block_tile_x = 16;
      p.threads_y = fermi ? 16 : 16;
      p.threads_x = fermi ? 4 : 1;
      p.k_tile = 16;
      p.unroll = fermi ? 4 : 1;
      return apply_fixed(
          v, is_right_side(v) ? kTrsmScheduleRight : kTrsmSchedule, p);
    }
    case Family::kSyrk:
      return not_found(
          "no CUBLAS-3.2-like SYRK baseline: SYRK is a post-paper "
          "extension routine");
  }
  return internal_error("unhandled family");
}

StatusOr<ir::Program> magma_like(const Variant& v,
                                 const DeviceModel& device) {
  if (device.name != gpusim::gtx285().name) {
    return not_found(
        "MAGMA v0.2 comparison is only available on GTX285 (the paper "
        "reports it performs no better than CUBLAS elsewhere)");
  }
  switch (v.family) {
    case Family::kGemm: {
      TuningParams p = volkov_params();
      p.unroll = 16;  // deeper unrolling than the CUBLAS build
      return apply_fixed(v, kGemmSchedule, p);
    }
    case Family::kTrsm: {
      TuningParams p;
      p.block_tile_y = 32;
      p.block_tile_x = 16;
      p.threads_y = 32;
      p.threads_x = 1;
      p.k_tile = 16;
      p.unroll = 1;
      return apply_fixed(
          v, is_right_side(v) ? kTrsmScheduleRight : kTrsmSchedule, p);
    }
    case Family::kSymm:
    case Family::kTrmm:
    case Family::kSyrk:
      return not_found("MAGMA v0.2 has no " +
                       std::string(blas3::family_name(v.family)));
  }
  return internal_error("unhandled family");
}

}  // namespace oa::baseline
