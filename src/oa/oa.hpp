// The public entry point of the library: the OA (Optimization Adaptor)
// framework of the paper, Fig 1. Given a routine and a device, it
//   1. picks the adaptors that relate the routine to GEMM-NN
//      (Adaptor_Transpose / _Symmetry / _Triangular / _Solver),
//   2. composes them with the GEMM-NN EPOD script (composer/),
//   3. searches the generated variants and tuning parameters (tuner/),
// returning the best verified kernel for the simulated device.
//
// Typical use (see examples/quickstart.cpp):
//
//   oa::OaFramework oa(oa::gpusim::gtx285());
//   auto tuned = oa.generate(*oa::blas3::find_variant("SYMM-LL"));
//   auto result = oa.run(*tuned, a, b, &c);   // functional execution
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adl/adaptor.hpp"
#include "baseline/baseline.hpp"
#include "blas3/matrix.hpp"
#include "composer/composer.hpp"
#include "engine/evaluation_engine.hpp"
#include "gpusim/simulator.hpp"
#include "libgen/artifact.hpp"
#include "tuner/tuner.hpp"

namespace oa {

struct OaOptions {
  /// Problem size the tuner times candidates at.
  int64_t tuning_size = 1024;
  /// Functional-verification size (0 disables verification — not
  /// recommended).
  int64_t verify_size = 72;
  /// Exhaustive parameter sweep instead of orthogonal line search.
  bool exhaustive_search = false;
  /// Parallel evaluation lanes for the search (0 = all hardware
  /// threads, 1 = serial).
  size_t jobs = 0;
  /// Memoize evaluations across rounds, candidates, and variants.
  bool engine_cache = true;
  /// Warp-analytic ghost-mode fast path in every performance
  /// simulation (tuning, measurement, profiling). Counters are
  /// bit-identical either way; disable (`--no-fastpath` in the CLIs)
  /// only to cross-check or time the plain interpreter.
  bool fastpath = true;
  /// Base script to extend. Defaults to the paper's Fig 3 GEMM-NN
  /// script.
  epod::Script base_script = epod::gemm_nn_script();
  /// Serve generate() from a loaded library artifact / the process-wide
  /// session store when the entry's fingerprints still match the fresh
  /// candidates — zero verify/simulate calls for warm variants.
  bool warm_start = true;
  /// When a warm start is impossible (fingerprints drifted) but a
  /// library entry exists, seed the parameter search from the entry's
  /// tuned parameters instead of the default probe point
  /// (`oagen --warm-start`).
  bool seed_from_artifact = false;
  /// Observability sinks (docs/OBSERVABILITY.md). Null metrics gives
  /// the framework a private registry (per-instance stats, the
  /// historical behaviour); the CLIs inject
  /// obs::MetricsRegistry::global() so engine, tuner, composer, and
  /// runtime all export into one `--metrics-out` file. Null tracer
  /// disables span collection.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* tracer = nullptr;
};

class OaFramework {
 public:
  explicit OaFramework(const gpusim::DeviceModel& device,
                       OaOptions options = {});

  const gpusim::DeviceModel& device() const { return sim_.device(); }
  const gpusim::Simulator& simulator() const { return sim_; }

  /// The evaluation engine every generate() call tunes through: one
  /// memoization cache shared across variants, so cross-variant
  /// adaptor reuse (identical degenerated points) is measurable.
  engine::EvaluationEngine& engine() { return *engine_; }
  /// Search-cost accounting (cache hits, verify/simulate wall time).
  engine::EngineStats engine_stats() const { return engine_->stats(); }
  /// The registry all framework layers (engine, tuner, composer)
  /// record into — options.metrics when injected, otherwise the
  /// framework-owned instance.
  obs::MetricsRegistry& metrics() const { return engine_->metrics(); }

  /// Bound adaptors relating `v` to GEMM-NN (empty for GEMM-NN itself).
  static std::vector<adl::Adaptor> adaptors_for(const blas3::Variant& v);

  /// Candidate EPOD scripts for `v` (composer output).
  StatusOr<std::vector<composer::Candidate>> candidates_for(
      const blas3::Variant& v) const;

  /// Full generation: compose + search. Results are cached per variant,
  /// warm-started from a loaded library artifact or the process-wide
  /// SessionStore when options.warm_start (default) and the recorded
  /// fingerprints still match the freshly composed candidates.
  StatusOr<tuner::TunedVariant> generate(const blas3::Variant& v);

  /// Attach a library artifact as the warm-start source for later
  /// generate() calls (kFailedPrecondition unless it was generated for
  /// this device preset).
  Status set_library(libgen::Artifact artifact);
  /// set_library(libgen::load(path)).
  Status load_library(const std::string& path);
  /// The attached artifact, if any.
  const std::optional<libgen::Artifact>& library() const {
    return library_;
  }

  /// Snapshot of everything generated so far (plus any still-matching
  /// entries of the attached artifact) as a saveable artifact.
  libgen::Artifact export_library() const;

  /// Performance of a tuned variant at problem size n (GFLOPS).
  StatusOr<double> measure_gflops(const tuner::TunedVariant& tuned,
                                  const blas3::Variant& v, int64_t n) const;

  /// Performance of a baseline program at size n.
  StatusOr<double> measure_baseline_gflops(const ir::Program& program,
                                           const blas3::Variant& v,
                                           int64_t n) const;

  /// Profiler counters (per-SM, like the paper's tables) at size n.
  StatusOr<gpusim::Counters> profile(const ir::Program& program,
                                     const blas3::Variant& v, int64_t n,
                                     const std::map<std::string, bool>&
                                         bool_params = {}) const;

  /// Functional execution of any program (tuned or baseline) on real
  /// matrices; the output array is written back into `b` (TRSM) or `c`.
  Status run(const ir::Program& program, const blas3::Variant& v,
             const blas3::Matrix& a, blas3::Matrix& b, blas3::Matrix* c,
             const std::map<std::string, bool>& bool_params = {}) const;

 private:
  gpusim::Simulator sim_;
  OaOptions options_;
  std::unique_ptr<engine::EvaluationEngine> engine_;
  std::map<std::string, tuner::TunedVariant> cache_;
  /// Warm-start source attached via set_library()/load_library().
  std::optional<libgen::Artifact> library_;
  /// Artifact entries for every generate() outcome (export_library()).
  std::map<std::string, libgen::ArtifactEntry> generated_;
  /// SessionStore key for this device preset (name + fingerprint).
  std::string store_key_;
};

}  // namespace oa
