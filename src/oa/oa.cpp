#include "oa/oa.hpp"

#include <algorithm>

#include "blas3/source_ir.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace oa {

using blas3::Family;
using blas3::Trans;
using blas3::Variant;

OaFramework::OaFramework(const gpusim::DeviceModel& device,
                         OaOptions options)
    : sim_(device),
      options_(std::move(options)),
      engine_(std::make_unique<engine::EvaluationEngine>(
          sim_, engine::EngineOptions{options_.jobs, options_.engine_cache,
                                      options_.metrics, options_.tracer})),
      store_key_(str_format("%s#%016llx", device.name.c_str(),
                            static_cast<unsigned long long>(
                                libgen::device_fingerprint(device)))) {}

std::vector<adl::Adaptor> OaFramework::adaptors_for(const Variant& v) {
  std::vector<adl::Adaptor> out;
  switch (v.family) {
    case Family::kGemm:
      if (v.trans_a == Trans::kT) {
        out.push_back(adl::adaptor_transpose().bind("A"));
      }
      if (v.trans_b == Trans::kT) {
        out.push_back(adl::adaptor_transpose().bind("B"));
      }
      // Batched families add the batch-dimension grouping axis: every
      // member-schedule candidate exists with per_member and with
      // batch_tiled grid layout, and the search prices both.
      if (v.batch != blas3::Batch::kSingle) {
        out.push_back(adl::adaptor_batch().bind("A"));
      }
      break;
    case Family::kSymm:
      out.push_back(adl::adaptor_symmetry().bind("A"));
      break;
    case Family::kTrmm:
      out.push_back(adl::adaptor_triangular().bind("A"));
      if (v.trans == Trans::kT) {
        out.push_back(adl::adaptor_transpose().bind("A"));
      }
      break;
    case Family::kTrsm:
      out.push_back(adl::adaptor_solver().bind("A"));
      if (v.trans == Trans::kT) {
        out.push_back(adl::adaptor_transpose().bind("A"));
      }
      break;
    case Family::kSyrk:
      // Extension: the triangular *output* space reuses the same
      // peel/padding machinery; padding would overwrite the blank
      // triangle of C and is rejected by functional verification, so
      // the search settles on the empty or peeled rule.
      out.push_back(adl::adaptor_triangular().bind("C"));
      break;
  }
  return out;
}

StatusOr<std::vector<composer::Candidate>> OaFramework::candidates_for(
    const Variant& v) const {
  ir::Program source = blas3::make_source_program(v);
  obs::Span compose_span(engine_->tracer(), "oa.compose",
                         &engine_->metrics().histogram("oa.compose_us"));
  // The GEMM-NN base script extends unmodified to every routine:
  // thread_grouping assigns the serialized grid dimension to whichever
  // loop carries a dependence (TRSM's solve dimension, either side),
  // and loop_tiling orders the point chain by actual nesting. For the
  // structured families the *mirrored* grouping (Lj across grid Y) is
  // composed as well — right-side routines carry their triangle along
  // j, and the search picks whichever orientation wins.
  transforms::TransformContext ctx;
  ctx.metrics = &engine_->metrics();
  auto result =
      composer::compose(options_.base_script, adaptors_for(v), source, ctx);
  if (!result.is_ok()) return result.status();
  if (v.family != Family::kGemm) {
    auto mirrored_script = epod::parse_script(R"(
      (Ljj, Lii) = thread_grouping(Lj, Li);
      (Liii, Ljjj, Lkkk) = loop_tiling(Lii, Ljj, Lk);
      loop_unroll(Ljjj, Lkkk);
      SM_alloc(B, Transpose);
      reg_alloc(C);
    )");
    if (mirrored_script.is_ok()) {
      auto mirrored =
          composer::compose(*mirrored_script, adaptors_for(v), source, ctx);
      if (mirrored.is_ok()) {
        for (composer::Candidate& c : *mirrored) {
          if (std::find(result->begin(), result->end(), c) ==
              result->end()) {
            result->push_back(std::move(c));
          }
        }
      }
    }
  }
  // Staging twin: CC 1.0 serializes broadcast/strided global reads, so
  // the tuning experience also includes optionally staging the
  // structured operand in shared memory; the allocator appends the
  // declaration and the search decides whether it pays off.
  if (source.find_global("A") != nullptr) {
    const size_t original = result->size();
    for (size_t i = 0; i < original; ++i) {
      composer::Candidate twin = (*result)[i];
      bool has_a_alloc = false;
      for (const auto& inv : twin.script.invocations) {
        if (inv.component == "SM_alloc" && !inv.args.empty() &&
            inv.args[0] == "A") {
          has_a_alloc = true;
        }
      }
      if (has_a_alloc) continue;
      twin.script.invocations.push_back(
          transforms::Invocation{"SM_alloc", {"A", "NoChange"}, {}});
      if (std::find(result->begin(), result->end(), twin) ==
          result->end()) {
        result->push_back(std::move(twin));
      }
    }
  }
  // The base script names GEMM's arrays; routines without a separate C
  // (TRSM updates B in place) have their memory declarations retargeted
  // to the actual output array — the allocator's job in the paper.
  const char* out_array = blas3::output_array(v);
  for (composer::Candidate& c : *result) {
    for (transforms::Invocation& inv : c.script.invocations) {
      if (!transforms::is_memory_component(inv.component)) continue;
      // batch_grouping's argument is a layout mode, not an array.
      if (inv.component == "batch_grouping") continue;
      if (!inv.args.empty() && source.find_global(inv.args[0]) == nullptr) {
        inv.args[0] = out_array;
      }
    }
  }
  return result;
}

Status OaFramework::set_library(libgen::Artifact artifact) {
  OA_RETURN_IF_ERROR(libgen::check_device(artifact, sim_.device()));
  library_ = std::move(artifact);
  return Status::ok();
}

Status OaFramework::load_library(const std::string& path) {
  OA_ASSIGN_OR_RETURN(libgen::Artifact artifact, libgen::load(path));
  return set_library(std::move(artifact));
}

libgen::Artifact OaFramework::export_library() const {
  libgen::Artifact artifact;
  artifact.device = sim_.device().name;
  artifact.device_fp = libgen::device_fingerprint(sim_.device());
  artifact.generator = "oa::OaFramework";
  if (library_) {
    // Re-exporting a loaded library keeps entries that were not
    // regenerated this session; fresh results below replace stale ones.
    artifact.entries = library_->entries;
  }
  for (const auto& [name, entry] : generated_) {
    artifact.upsert(entry);
  }
  return artifact;
}

StatusOr<tuner::TunedVariant> OaFramework::generate(const Variant& v) {
  auto it = cache_.find(v.name());
  if (it != cache_.end()) return it->second;
  obs::Span generate_span(
      engine_->tracer(), "oa.generate." + v.name(),
      &engine_->metrics().histogram("oa.generate_us"));

  OA_ASSIGN_OR_RETURN(std::vector<composer::Candidate> candidates,
                      candidates_for(v));

  const libgen::ArtifactEntry* lib_entry =
      library_ ? library_->find(v.name()) : nullptr;
  const int64_t tuned_size =
      v.family == Family::kTrsm
          ? std::max<int64_t>(options_.tuning_size, 2048)
          : options_.tuning_size;
  auto admit = [&](tuner::TunedVariant eval,
                   int64_t size) -> tuner::TunedVariant {
    engine_->note_warm_start();
    libgen::SessionStore::instance().put(store_key_, v.name(),
                                         {eval, size});
    generated_[v.name()] = libgen::make_entry(v, eval, size);
    cache_.emplace(v.name(), eval);
    return eval;
  };
  if (options_.warm_start) {
    // First a loaded artifact, then the process-wide session store: a
    // recorded result is served without any verify/simulate call when
    // its candidate fingerprint still matches a fresh candidate and the
    // script re-applies to the identical component mask.
    if (lib_entry != nullptr) {
      auto warm = libgen::reconstruct(*lib_entry, v, candidates);
      if (warm.is_ok()) {
        OA_LOG(kInfo) << v.name() << ": warm start from library artifact";
        return admit(*std::move(warm), lib_entry->tuned_size);
      }
      OA_LOG(kInfo) << v.name() << ": artifact entry stale ("
                    << warm.status().to_string() << "), searching";
    }
    auto stored =
        libgen::SessionStore::instance().get(store_key_, v.name());
    if (stored) {
      const uint64_t fp = stored->eval.candidate.fingerprint();
      for (const composer::Candidate& c : candidates) {
        if (c.fingerprint() == fp) {
          OA_LOG(kInfo) << v.name() << ": warm start from session store";
          return admit(std::move(stored->eval), stored->tuned_size);
        }
      }
    }
  }

  tuner::TuneOptions topt;
  // Wave-serialized solvers have size-dependent trade-offs (launch
  // overhead vs parallel width): tune them at a size large enough for
  // the asymptotic regime (folded into tuned_size above).
  topt.target_size = tuned_size;
  topt.verify_size = options_.verify_size;
  topt.exhaustive = options_.exhaustive_search;
  topt.run_options.fastpath = options_.fastpath;
  if (options_.seed_from_artifact && lib_entry != nullptr) {
    // The artifact's tuning experience drifted but is still a good
    // neighbourhood: start the line search from its parameters.
    topt.seed = lib_entry->params;
  }
  // All variants tune through the shared engine: identical points that
  // reappear across variants (cross-variant adaptor reuse) and across
  // the figure benches hit its cache instead of re-simulating.
  tuner::Tuner tuner(*engine_, topt);
  OA_ASSIGN_OR_RETURN(tuner::TunedVariant best, tuner.tune(v, candidates));
  libgen::SessionStore::instance().put(store_key_, v.name(),
                                       {best, tuned_size});
  generated_[v.name()] = libgen::make_entry(v, best, tuned_size);
  cache_.emplace(v.name(), best);
  return best;
}

using engine::size_env;

StatusOr<double> OaFramework::measure_gflops(
    const tuner::TunedVariant& tuned, const Variant& v, int64_t n) const {
  gpusim::RunOptions opts;
  opts.fastpath = options_.fastpath;
  opts.int_params = size_env(v, n);
  opts.bool_params = tuner::bools_for(tuned.candidate);
  OA_ASSIGN_OR_RETURN(gpusim::RunResult result,
                      sim_.run_performance(tuned.program, opts));
  return result.gflops(blas3::nominal_flops(v, n, n, n) *
                       static_cast<double>(blas3::tuning_batch(v)));
}

StatusOr<double> OaFramework::measure_baseline_gflops(
    const ir::Program& program, const Variant& v, int64_t n) const {
  gpusim::RunOptions opts;
  opts.fastpath = options_.fastpath;
  opts.int_params = size_env(v, n);
  OA_ASSIGN_OR_RETURN(gpusim::RunResult result,
                      sim_.run_performance(program, opts));
  return result.gflops(blas3::nominal_flops(v, n, n, n) *
                       static_cast<double>(blas3::tuning_batch(v)));
}

StatusOr<gpusim::Counters> OaFramework::profile(
    const ir::Program& program, const Variant& v, int64_t n,
    const std::map<std::string, bool>& bool_params) const {
  gpusim::RunOptions opts;
  opts.fastpath = options_.fastpath;
  opts.int_params = size_env(v, n);
  opts.bool_params = bool_params;
  OA_ASSIGN_OR_RETURN(gpusim::RunResult result,
                      sim_.run_performance(program, opts));
  // cuda_profile reports per kernel; the paper profiles the main
  // computation kernel (e.g. ssymm_main_hw_lo_left_fulltile), so
  // data-layout pre-passes (GM_map) are not included.
  return gpusim::report_per_sm(result.kernels.back().counters,
                               sim_.device());
}

Status OaFramework::run(const ir::Program& program, const Variant& v,
                        const blas3::Matrix& a, blas3::Matrix& b,
                        blas3::Matrix* c,
                        const std::map<std::string, bool>& bool_params)
    const {
  // Shared with runtime::LibraryRuntime, which serves the same matrix
  // conventions without an OaFramework.
  return engine::execute_program(sim_, program, v, a, b, c, bool_params);
}

}  // namespace oa
