#include "tuner/tuner.hpp"

#include <algorithm>
#include <set>

#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace oa::tuner {

using blas3::Variant;
using composer::Candidate;
using gpusim::RunOptions;
using transforms::TransformContext;
using transforms::TuningParams;

const ParameterSpace& ParameterSpace::default_space() {
  static const ParameterSpace space = [] {
    ParameterSpace s;
    s.block_shapes = {{64, 16}, {32, 32}, {64, 32}, {32, 16}, {16, 16},
                      {64, 64}};
    s.thread_shapes = {{64, 1}, {32, 1}, {16, 1}, {16, 4}, {8, 8},
                       {16, 16}};
    s.k_tiles = {8, 16, 32};
    s.unrolls = {1, 4, 16};
    return s;
  }();
  return space;
}

size_t ParameterSpace::total_points() const {
  return block_shapes.size() * thread_shapes.size() * k_tiles.size() *
         unrolls.size();
}

std::map<std::string, bool> bools_for(const Candidate& c) {
  std::map<std::string, bool> out;
  for (const std::string& cond : c.conditions) {
    // "blank(X).zero = true" enables the padded version; the benches
    // guarantee the blank triangle is stored as zeros.
    if (cond.find(".zero") != std::string::npos) out["blank_zero"] = true;
  }
  return out;
}

namespace {

/// Build the problem-size bindings for an n x n problem.
ir::Env params_for(const Variant& v, int64_t n) {
  if (v.family == blas3::Family::kGemm ||
      v.family == blas3::Family::kSyrk) {
    return {{"M", n}, {"N", n}, {"K", n}};
  }
  return {{"M", n}, {"N", n}};
}

/// Valid (params, variant) combinations only: thread shapes must divide
/// the block shape.
bool compatible(const TuningParams& p) { return p.check().is_ok(); }

}  // namespace

Status verify_program(const gpusim::Simulator& sim, const Variant& variant,
                      const ir::Program& program, int64_t n,
                      const std::map<std::string, bool>& bool_params) {
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(n));
  blas3::Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(rng);
  b.fill_random(rng);
  if (variant.family == blas3::Family::kTrmm ||
      variant.family == blas3::Family::kTrsm ||
      variant.family == blas3::Family::kSymm) {
    a.make_triangular(variant.uplo);
  }
  if (variant.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    // Keep the solve well-conditioned so the absolute tolerance holds.
    a.scale_off_diagonal(1.0f / 16.0f);
  }

  RunOptions opts;
  opts.int_params = params_for(variant, n);
  opts.bool_params = bool_params;
  gpusim::GlobalBuffers buffers = gpusim::make_buffers(
      program, opts.int_params, {{"A", &a}, {"B", &b}, {"C", &c}});
  auto run = sim.run_functional(program, opts, buffers);
  OA_RETURN_IF_ERROR(run.status());

  blas3::Matrix ref_b = b;
  blas3::Matrix ref_c = c;
  blas3::run_reference(variant, a, ref_b, &ref_c);
  const char* out_name = blas3::output_array(variant);
  blas3::Matrix out(n, n);
  OA_RETURN_IF_ERROR(
      gpusim::read_back(buffers, program, opts.int_params, out_name, out));
  const blas3::Matrix& expected =
      variant.family == blas3::Family::kTrsm ? ref_b : ref_c;
  const float err = blas3::max_abs_diff(out, expected);
  if (err > blas3::accumulation_tolerance(n)) {
    return illegal(str_format("functional verification failed: err=%g",
                              static_cast<double>(err)));
  }
  return Status::ok();
}

StatusOr<TunedVariant> Tuner::evaluate(
    const Variant& variant, const Candidate& candidate,
    const TuningParams& params, std::set<uint64_t>* verified_masks) const {
  if (!compatible(params)) {
    return failed_precondition("incompatible tuning parameters");
  }
  TransformContext ctx;
  ctx.params = params;
  ir::Program program = blas3::make_source_program(variant);
  OA_ASSIGN_OR_RETURN(
      uint64_t applied,
      epod::apply_script_lenient(program, candidate.script, ctx));
  if (applied == 0) {
    return failed_precondition("no component of the script applied");
  }
  const std::map<std::string, bool> bools = bools_for(candidate);

  // Re-verify whenever this parameter point degenerated the script into
  // a component set not seen before (a dropped peel/binding changes the
  // kernel's semantics, not just its speed).
  const bool need_verify =
      verified_masks == nullptr || !verified_masks->contains(applied);
  if (need_verify && options_.verify_size > 0) {
    OA_RETURN_IF_ERROR(verify_program(sim_, variant, program,
                                      options_.verify_size, bools));
    if (verified_masks != nullptr) verified_masks->insert(applied);
  }

  RunOptions opts = options_.run_options;
  opts.int_params = params_for(variant, options_.target_size);
  opts.bool_params = bools;
  OA_ASSIGN_OR_RETURN(gpusim::RunResult perf,
                      sim_.run_performance(program, opts));

  TunedVariant out;
  out.candidate = candidate;
  out.params = params;
  out.applied_mask = applied;
  out.program = std::move(program);
  out.seconds = perf.seconds;
  out.counters = perf.counters;
  out.gflops = perf.gflops(blas3::nominal_flops(
      variant, options_.target_size, options_.target_size,
      options_.target_size));
  return out;
}

StatusOr<TunedVariant> Tuner::line_search(const Variant& variant,
                                          const Candidate& candidate) const {
  const ParameterSpace& space = ParameterSpace::default_space();
  TuningParams cur;
  cur.block_tile_y = 64;
  cur.block_tile_x = 16;
  cur.threads_y = 64;
  cur.threads_x = 1;
  cur.k_tile = 16;
  cur.unroll = 4;

  std::optional<TunedVariant> best;
  std::set<uint64_t> verified_masks;
  std::set<std::string> tried;
  auto try_point = [&](const TuningParams& p) {
    if (!tried.insert(p.to_string()).second) return Status::ok();
    auto result = evaluate(variant, candidate, p, &verified_masks);
    if (!result.is_ok()) {
      // A point whose degenerated kernel fails verification is skipped;
      // other parameter points of the same script may still be valid.
      return Status::ok();
    }
    if (!best || result->seconds < best->seconds) {
      best = std::move(result).value();
      cur = best->params;
    }
    return Status::ok();
  };

  OA_RETURN_IF_ERROR(try_point(cur));
  // One round of orthogonal line search over the four axes (the probe
  // stage already seeded `cur` near the optimum; a second round is
  // available through TuneOptions::exhaustive for the ablation bench).
  for (int round = 0; round < 1; ++round) {
    for (const auto& [bty, btx] : space.block_shapes) {
      TuningParams p = cur;
      p.block_tile_y = bty;
      p.block_tile_x = btx;
      // Keep the thread shape feasible.
      p.threads_y = std::min(p.threads_y, bty);
      p.threads_x = std::min(p.threads_x, btx);
      OA_RETURN_IF_ERROR(try_point(p));
    }
    for (const auto& [ty, tx] : space.thread_shapes) {
      TuningParams p = cur;
      p.threads_y = ty;
      p.threads_x = tx;
      OA_RETURN_IF_ERROR(try_point(p));
    }
    for (int64_t kt : space.k_tiles) {
      TuningParams p = cur;
      p.k_tile = kt;
      OA_RETURN_IF_ERROR(try_point(p));
    }
    for (int u : space.unrolls) {
      TuningParams p = cur;
      p.unroll = u;
      OA_RETURN_IF_ERROR(try_point(p));
    }
  }
  if (!best) {
    return failed_precondition("no feasible parameter point");
  }
  return *std::move(best);
}

StatusOr<TunedVariant> Tuner::sweep(const Variant& variant,
                                    const Candidate& candidate) const {
  const ParameterSpace& space = ParameterSpace::default_space();
  std::optional<TunedVariant> best;
  std::set<uint64_t> verified_masks;
  for (const auto& [bty, btx] : space.block_shapes) {
    for (const auto& [ty, tx] : space.thread_shapes) {
      for (int64_t kt : space.k_tiles) {
        for (int u : space.unrolls) {
          TuningParams p;
          p.block_tile_y = bty;
          p.block_tile_x = btx;
          p.threads_y = ty;
          p.threads_x = tx;
          p.k_tile = kt;
          p.unroll = u;
          if (!compatible(p)) continue;
          auto result = evaluate(variant, candidate, p, &verified_masks);
          if (!result.is_ok()) continue;
          if (!best || result->seconds < best->seconds) {
            best = std::move(result).value();
          }
        }
      }
    }
  }
  if (!best) return failed_precondition("no feasible parameter point");
  return *std::move(best);
}

StatusOr<TunedVariant> Tuner::tune(
    const Variant& variant,
    const std::vector<Candidate>& candidates) const {
  // Stage 1: score every candidate script at the default parameter
  // point (verifying each functionally once); stage 2: full parameter
  // search on the most promising scripts only.
  TuningParams probe;
  probe.block_tile_y = 64;
  probe.block_tile_x = 16;
  probe.threads_y = 64;
  probe.threads_x = 1;
  probe.k_tile = 16;
  probe.unroll = 4;

  struct Scored {
    const Candidate* candidate;
    double seconds;
  };
  std::vector<Scored> scored;
  Status last_error = Status::ok();
  for (const Candidate& candidate : candidates) {
    auto result = evaluate(variant, candidate, probe, nullptr);
    if (!result.is_ok()) {
      last_error = result.status();
      OA_LOG(kDebug) << variant.name() << ": candidate rejected ("
                     << last_error.to_string() << ")";
      continue;
    }
    scored.push_back({&candidate, result->seconds});
  }
  if (scored.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "no candidate for " + variant.name() + " survived (" +
                      last_error.to_string() + ")");
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.seconds < b.seconds;
            });
  const size_t searched = std::min<size_t>(scored.size(), 2);

  std::optional<TunedVariant> best;
  for (size_t i = 0; i < searched; ++i) {
    auto result = options_.exhaustive
                      ? sweep(variant, *scored[i].candidate)
                      : line_search(variant, *scored[i].candidate);
    if (!result.is_ok()) continue;
    if (!best || result->seconds < best->seconds) {
      best = std::move(result).value();
    }
  }
  if (!best) {
    return failed_precondition("parameter search failed for " +
                               variant.name());
  }
  OA_LOG(kInfo) << variant.name() << ": best " << best->gflops
                << " GFLOPS with " << best->params.to_string();
  return *std::move(best);
}

}  // namespace oa::tuner
