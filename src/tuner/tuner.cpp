#include "tuner/tuner.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace oa::tuner {

using blas3::Variant;
using composer::Candidate;
using engine::EvaluationEngine;
using transforms::TuningParams;

const ParameterSpace& ParameterSpace::default_space() {
  static const ParameterSpace space = [] {
    ParameterSpace s;
    s.block_shapes = {{64, 16}, {32, 32}, {64, 32}, {32, 16}, {16, 16},
                      {64, 64}};
    s.thread_shapes = {{64, 1}, {32, 1}, {16, 1}, {16, 4}, {8, 8},
                       {16, 16}};
    s.k_tiles = {8, 16, 32};
    s.unrolls = {1, 4, 16};
    return s;
  }();
  return space;
}

size_t ParameterSpace::total_points() const {
  return block_shapes.size() * thread_shapes.size() * k_tiles.size() *
         unrolls.size();
}

namespace {

/// The probe point every search starts from (Volkov-style skinny
/// blocks).
TuningParams probe_point() {
  TuningParams p;
  p.block_tile_y = 64;
  p.block_tile_x = 16;
  p.threads_y = 64;
  p.threads_x = 1;
  p.k_tile = 16;
  p.unroll = 4;
  return p;
}

}  // namespace

Tuner::Tuner(const gpusim::Simulator& simulator, TuneOptions options)
    : owned_engine_(std::make_unique<EvaluationEngine>(
          simulator,
          engine::EngineOptions{options.jobs, options.use_cache})),
      engine_(owned_engine_.get()),
      options_(std::move(options)) {}

Tuner::Tuner(EvaluationEngine& engine, TuneOptions options)
    : engine_(&engine), options_(std::move(options)) {}

engine::EvalConfig Tuner::config() const {
  engine::EvalConfig cfg;
  cfg.target_size = options_.target_size;
  cfg.verify_size = options_.verify_size;
  cfg.run_options = options_.run_options;
  return cfg;
}

StatusOr<TunedVariant> Tuner::evaluate(
    const Variant& variant, const Candidate& candidate,
    const TuningParams& params, std::set<uint64_t>* verified_masks) const {
  auto result = engine_->evaluate(variant, candidate, params, config());
  if (result.is_ok() && verified_masks != nullptr) {
    verified_masks->insert(result->applied_mask);
  }
  return result;
}

StatusOr<TunedVariant> Tuner::line_search(const Variant& variant,
                                          const Candidate& candidate) const {
  const ParameterSpace& space = ParameterSpace::default_space();
  const engine::EvalConfig cfg = config();
  // A valid warm-start seed replaces the default probe as the search
  // origin; an infeasible seed (artifact from a different parameter
  // space) silently falls back.
  TuningParams cur =
      options_.seed && options_.seed->check().is_ok() ? *options_.seed
                                                      : probe_point();

  std::optional<TunedVariant> best;
  std::set<std::string> tried;
  // Evaluate every untried point of one axis as a parallel batch;
  // results come back in input order, so the first of equally fast
  // points wins regardless of the parallel schedule. A point whose
  // degenerated kernel fails verification is skipped; other parameter
  // points of the same script may still be valid.
  auto run_axis = [&](const std::vector<TuningParams>& axis) {
    std::vector<EvaluationEngine::Point> points;
    for (const TuningParams& p : axis) {
      if (tried.insert(p.to_string()).second) {
        points.push_back({candidate, p});
      }
    }
    bool improved = false;
    auto results = engine_->evaluate_batch(variant, points, cfg);
    for (auto& result : results) {
      if (!result.is_ok()) continue;
      if (!best || result->seconds < best->seconds) {
        best = std::move(result).value();
        improved = true;
      }
    }
    if (improved) cur = best->params;
    return improved;
  };

  {
    obs::Span probe_span(engine_->tracer(), "tuner.probe",
                         &engine_->metrics().histogram("tuner.probe_us"));
    run_axis({cur});
  }
  // Orthogonal line search over the four axes, re-centred on the best
  // point after each axis; later rounds refine the first round's
  // winner and the search stops as soon as a whole round improves
  // nothing.
  for (int round = 0; round < options_.line_search_rounds; ++round) {
    obs::Span round_span(
        engine_->tracer(), "tuner.round",
        &engine_->metrics().histogram("tuner.round_us"));
    engine_->metrics().counter("tuner.rounds").add();
    bool improved = false;
    std::vector<TuningParams> axis;
    for (const auto& [bty, btx] : space.block_shapes) {
      TuningParams p = cur;
      p.block_tile_y = bty;
      p.block_tile_x = btx;
      // Keep the thread shape feasible.
      p.threads_y = std::min(p.threads_y, bty);
      p.threads_x = std::min(p.threads_x, btx);
      axis.push_back(p);
    }
    improved |= run_axis(axis);
    axis.clear();
    for (const auto& [ty, tx] : space.thread_shapes) {
      TuningParams p = cur;
      p.threads_y = ty;
      p.threads_x = tx;
      axis.push_back(p);
    }
    improved |= run_axis(axis);
    axis.clear();
    for (int64_t kt : space.k_tiles) {
      TuningParams p = cur;
      p.k_tile = kt;
      axis.push_back(p);
    }
    improved |= run_axis(axis);
    axis.clear();
    for (int u : space.unrolls) {
      TuningParams p = cur;
      p.unroll = u;
      axis.push_back(p);
    }
    improved |= run_axis(axis);
    if (!improved) {
      engine_->metrics().counter("tuner.rounds_stopped_early").add();
      break;
    }
  }
  if (!best) {
    return failed_precondition("no feasible parameter point");
  }
  return *std::move(best);
}

StatusOr<TunedVariant> Tuner::sweep(const Variant& variant,
                                    const Candidate& candidate) const {
  const ParameterSpace& space = ParameterSpace::default_space();
  std::vector<EvaluationEngine::Point> points;
  for (const auto& [bty, btx] : space.block_shapes) {
    for (const auto& [ty, tx] : space.thread_shapes) {
      for (int64_t kt : space.k_tiles) {
        for (int u : space.unrolls) {
          TuningParams p;
          p.block_tile_y = bty;
          p.block_tile_x = btx;
          p.threads_y = ty;
          p.threads_x = tx;
          p.k_tile = kt;
          p.unroll = u;
          if (!p.check().is_ok()) continue;
          points.push_back({candidate, p});
        }
      }
    }
  }
  auto results = engine_->evaluate_batch(variant, points, config());
  std::optional<TunedVariant> best;
  for (auto& result : results) {
    if (!result.is_ok()) continue;
    if (!best || result->seconds < best->seconds) {
      best = std::move(result).value();
    }
  }
  if (!best) return failed_precondition("no feasible parameter point");
  return *std::move(best);
}

StatusOr<TunedVariant> Tuner::tune(
    const Variant& variant,
    const std::vector<Candidate>& candidates) const {
  if (candidates.empty()) {
    return failed_precondition("no candidate scripts for " +
                               variant.name());
  }
  // Stage 1: score every candidate script at the default parameter
  // point, in one parallel batch (verifying each functionally once);
  // stage 2: full parameter search on the most promising scripts only.
  std::vector<EvaluationEngine::Point> points;
  points.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    points.push_back({candidate, probe_point()});
  }
  auto probed = engine_->evaluate_batch(variant, points, config());

  struct Scored {
    const Candidate* candidate;
    double seconds;
  };
  std::vector<Scored> scored;
  Status last_error = Status::ok();
  for (size_t i = 0; i < probed.size(); ++i) {
    if (!probed[i].is_ok()) {
      last_error = probed[i].status();
      OA_LOG(kDebug) << variant.name() << ": candidate rejected ("
                     << last_error.to_string() << ")";
      continue;
    }
    scored.push_back({&candidates[i], probed[i]->seconds});
  }
  if (scored.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "no candidate for " + variant.name() + " survived (" +
                      last_error.to_string() + ")");
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.seconds < b.seconds;
                   });
  const size_t searched = std::min<size_t>(scored.size(), 2);

  std::optional<TunedVariant> best;
  for (size_t i = 0; i < searched; ++i) {
    auto result = options_.exhaustive
                      ? sweep(variant, *scored[i].candidate)
                      : line_search(variant, *scored[i].candidate);
    if (!result.is_ok()) continue;
    if (!best || result->seconds < best->seconds) {
      best = std::move(result).value();
    }
  }
  if (!best) {
    return failed_precondition("parameter search failed for " +
                               variant.name());
  }
  OA_LOG(kInfo) << variant.name() << ": best " << best->gflops
                << " GFLOPS with " << best->params.to_string();
  return *std::move(best);
}

}  // namespace oa::tuner
