// The search stage of the OA framework (paper §II: "Our OA framework
// will generate a set of code variants according to the composed EPOD
// scripts obtained. The best among the set is searched for.
// Optimization parameters, such as tile size, are automatically tuned
// with the method in [4]").
//
// For every candidate script the tuner:
//   1. re-applies the script (filter semantics) to the routine source;
//   2. verifies the variant *functionally* against the CPU reference at
//      a small problem size — candidates whose degenerated sequence is
//      no longer semantics-preserving (e.g. a Solver sequence that lost
//      binding_triangular) are rejected here, playing the role of the
//      paper's final PolyDeps legality check;
//   3. estimates performance at the target size on the simulator.
// Tile/thread/unroll parameters are tuned per script with orthogonal
// line search (the method of Tiwari et al. [4]) over a curated
// parameter grid; an exhaustive sweep is available for the ablation
// bench.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "blas3/routine.hpp"
#include "composer/composer.hpp"
#include "gpusim/simulator.hpp"

namespace oa::tuner {

struct TuneOptions {
  /// Problem size used for the performance estimate.
  int64_t target_size = 1024;
  /// Problem size for functional verification (0 disables — only for
  /// benches that re-verify elsewhere).
  int64_t verify_size = 72;
  /// Use exhaustive parameter sweep instead of orthogonal line search.
  bool exhaustive = false;
  /// Extra simulator knobs.
  gpusim::RunOptions run_options;
};

struct TunedVariant {
  composer::Candidate candidate;
  transforms::TuningParams params;
  ir::Program program;      // transformed, ready to simulate
  double seconds = 0.0;     // at target_size
  double gflops = 0.0;
  gpusim::Counters counters;
  /// Which script invocations applied under `params` (filter
  /// semantics): parameter points with different masks are different
  /// kernels.
  uint64_t applied_mask = 0;
};

/// Parameter axes explored by the search.
struct ParameterSpace {
  std::vector<std::pair<int64_t, int64_t>> block_shapes;  // (bty, btx)
  std::vector<std::pair<int64_t, int64_t>> thread_shapes; // (ty, tx)
  std::vector<int64_t> k_tiles;
  std::vector<int> unrolls;

  /// Default space: Volkov-style skinny shapes through square 2-D
  /// blocks.
  static const ParameterSpace& default_space();
  size_t total_points() const;
};

class Tuner {
 public:
  Tuner(const gpusim::Simulator& simulator, TuneOptions options)
      : sim_(simulator), options_(std::move(options)) {}

  /// Tune one candidate set for a routine; returns the best verified
  /// variant. Fails when no candidate both verifies and launches.
  StatusOr<TunedVariant> tune(const blas3::Variant& variant,
                              const std::vector<composer::Candidate>&
                                  candidates) const;

  /// Evaluate one (candidate, params) point: apply + verify + time.
  /// `verified_masks` (optional) caches applied-component masks that
  /// already passed functional verification; a point whose degenerated
  /// script matches a verified mask skips re-verification. Exposed for
  /// the ablation benches.
  StatusOr<TunedVariant> evaluate(
      const blas3::Variant& variant, const composer::Candidate& candidate,
      const transforms::TuningParams& params,
      std::set<uint64_t>* verified_masks = nullptr) const;

 private:
  StatusOr<TunedVariant> line_search(const blas3::Variant& variant,
                                     const composer::Candidate& candidate)
      const;
  StatusOr<TunedVariant> sweep(const blas3::Variant& variant,
                               const composer::Candidate& candidate) const;

  const gpusim::Simulator& sim_;
  TuneOptions options_;
};

/// Functional verification helper shared with tests/benches: run
/// `program` at size (n x n) and compare against the CPU reference.
Status verify_program(const gpusim::Simulator& sim,
                      const blas3::Variant& variant,
                      const ir::Program& program, int64_t n,
                      const std::map<std::string, bool>& bool_params);

/// Runtime bool parameters implied by adaptor conditions ("blank(A)
/// .zero = true" -> blank_zero = true).
std::map<std::string, bool> bools_for(const composer::Candidate& c);

}  // namespace oa::tuner
