// The search stage of the OA framework (paper §II: "Our OA framework
// will generate a set of code variants according to the composed EPOD
// scripts obtained. The best among the set is searched for.
// Optimization parameters, such as tile size, are automatically tuned
// with the method in [4]").
//
// The tuner is a thin *search policy* over the EvaluationEngine
// (engine/): it decides which (candidate, params) points to try —
// orthogonal line search (the method of Tiwari et al. [4]) over a
// curated parameter grid, or an exhaustive sweep for the ablation
// bench — while the engine owns the apply -> verify -> simulate
// pipeline, its parallel execution, and its memoization cache.
//
// Candidates whose degenerated sequence is no longer semantics-
// preserving (e.g. a Solver sequence that lost binding_triangular) are
// rejected by the engine's functional verification, playing the role
// of the paper's final PolyDeps legality check.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "blas3/routine.hpp"
#include "composer/composer.hpp"
#include "engine/evaluation_engine.hpp"
#include "gpusim/simulator.hpp"

namespace oa::tuner {

struct TuneOptions {
  /// Problem size used for the performance estimate.
  int64_t target_size = 1024;
  /// Problem size for functional verification (0 disables — only for
  /// benches that re-verify elsewhere).
  int64_t verify_size = 72;
  /// Use exhaustive parameter sweep instead of orthogonal line search.
  bool exhaustive = false;
  /// Orthogonal line-search rounds; a round that improves nothing stops
  /// the search early.
  int line_search_rounds = 2;
  /// Parallel evaluation lanes (0 = hardware_concurrency, 1 = serial).
  /// Only used when the Tuner owns its engine.
  size_t jobs = 0;
  /// Memoize evaluations (only used when the Tuner owns its engine).
  bool use_cache = true;
  /// Optional warm-start seed: start the orthogonal line search from
  /// these parameters instead of the default probe point. Used when a
  /// library artifact's fingerprints no longer match the fresh
  /// candidates but its tuning outcome is still a good neighbourhood
  /// (`oagen --warm-start`).
  std::optional<transforms::TuningParams> seed;
  /// Extra simulator knobs.
  gpusim::RunOptions run_options;
};

/// The best verified variant of a search — the engine's evaluation
/// record (candidate, params, transformed program, timing, counters,
/// applied-component mask).
using TunedVariant = engine::Evaluation;

/// Parameter axes explored by the search.
struct ParameterSpace {
  std::vector<std::pair<int64_t, int64_t>> block_shapes;  // (bty, btx)
  std::vector<std::pair<int64_t, int64_t>> thread_shapes; // (ty, tx)
  std::vector<int64_t> k_tiles;
  std::vector<int> unrolls;

  /// Default space: Volkov-style skinny shapes through square 2-D
  /// blocks.
  static const ParameterSpace& default_space();
  size_t total_points() const;
};

class Tuner {
 public:
  /// Owns a private EvaluationEngine configured from `options`.
  Tuner(const gpusim::Simulator& simulator, TuneOptions options);

  /// Runs against a shared engine (one memoization cache across many
  /// tuners / variants — see OaFramework::generate).
  Tuner(engine::EvaluationEngine& engine, TuneOptions options);

  /// Tune one candidate set for a routine; returns the best verified
  /// variant. Fails when no candidate both verifies and launches.
  StatusOr<TunedVariant> tune(const blas3::Variant& variant,
                              const std::vector<composer::Candidate>&
                                  candidates) const;

  /// Evaluate one (candidate, params) point: apply + verify + time.
  /// `verified_masks` (optional) mirrors the engine's verified-mask
  /// cache for callers that track it: masks of successful evaluations
  /// are added. Exposed for the ablation benches.
  StatusOr<TunedVariant> evaluate(
      const blas3::Variant& variant, const composer::Candidate& candidate,
      const transforms::TuningParams& params,
      std::set<uint64_t>* verified_masks = nullptr) const;

  /// The engine this tuner evaluates through (shared or owned).
  engine::EvaluationEngine& engine() const { return *engine_; }

 private:
  engine::EvalConfig config() const;
  StatusOr<TunedVariant> line_search(const blas3::Variant& variant,
                                     const composer::Candidate& candidate)
      const;
  StatusOr<TunedVariant> sweep(const blas3::Variant& variant,
                               const composer::Candidate& candidate) const;

  std::unique_ptr<engine::EvaluationEngine> owned_engine_;
  engine::EvaluationEngine* engine_;
  TuneOptions options_;
};

/// Functional verification helper shared with tests/benches: run
/// `program` at size (n x n) and compare against the CPU reference
/// (engine::verify_program re-exported under its historical name).
using engine::verify_program;

/// Runtime bool parameters implied by adaptor conditions ("blank(A)
/// .zero = true" -> blank_zero = true).
using engine::bools_for;

}  // namespace oa::tuner
