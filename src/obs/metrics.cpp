#include "obs/metrics.hpp"

#include <cmath>
#include <fstream>

#include "support/strings.hpp"

namespace oa::obs {

namespace {

/// Smallest bucket index whose upper bound 2^i exceeds `value`.
int bucket_index(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN
  const int b = static_cast<int>(std::floor(std::log2(value))) + 1;
  return b >= Histogram::kBuckets ? Histogram::kBuckets - 1 : b;
}

double bucket_upper(int i) { return std::ldexp(1.0, i); }
double bucket_lower(int i) { return i == 0 ? 0.0 : std::ldexp(1.0, i - 1); }

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// JSON string escaping (instrument names are plain identifiers, but
/// the exporter must emit valid JSON for any input).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number: finite doubles only (NaN/inf have no JSON spelling).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  return str_format("%.17g", v);
}

}  // namespace

void Histogram::record(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  bool first = false;
  if (!has_values_.load(std::memory_order_relaxed) &&
      has_values_.compare_exchange_strong(first, true,
                                          std::memory_order_relaxed)) {
    // First recorder seeds min; concurrent recorders fix it up below
    // (min_ starts at 0, so atomic_min alone would stick at 0).
    min_.store(value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::min() const {
  return has_values_.load(std::memory_order_relaxed)
             ? min_.load(std::memory_order_relaxed)
             : 0.0;
}

double Histogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the requested percentile (1-based, nearest-rank).
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Linear interpolation inside the bucket.
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      const double lo = bucket_lower(i);
      const double hi = std::min(bucket_upper(i), max());
      double v = lo + frac * (hi - lo);
      if (v < min()) v = min();
      return v;
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::bucket_counts(std::array<uint64_t, kBuckets>& out) const {
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
}

void HistogramWindow::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  h_->bucket_counts(base_);
}

uint64_t HistogramWindow::count() const {
  std::array<uint64_t, Histogram::kBuckets> now;
  h_->bucket_counts(now);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    total += now[static_cast<size_t>(i)] - base_[static_cast<size_t>(i)];
  }
  return total;
}

double HistogramWindow::percentile(double p) const {
  std::array<uint64_t, Histogram::kBuckets> now;
  h_->bucket_counts(now);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    now[static_cast<size_t>(i)] -= base_[static_cast<size_t>(i)];
    total += now[static_cast<size_t>(i)];
  }
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const uint64_t in_bucket = now[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // No window-local min/max exists, so interpolate between the
      // bucket bounds alone (exact to within one octave, like the
      // lifetime percentile).
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return bucket_lower(i) + frac * (bucket_upper(i) - bucket_lower(i));
    }
    seen += in_bucket;
  }
  return bucket_upper(Histogram::kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  has_values_.store(false, std::memory_order_relaxed);
}

std::vector<std::pair<double, uint64_t>> Histogram::nonzero_buckets()
    const {
  std::vector<std::pair<double, uint64_t>> out;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) out.emplace_back(bucket_upper(i), n);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::piecewise_construct,
                         std::forward_as_tuple(name),
                         std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple())
             .first;
  }
  return it->second;
}

uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::histograms_with_prefix(std::string_view prefix) const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = histograms_.lower_bound(prefix);
       it != histograms_.end() && it->first.starts_with(prefix); ++it) {
    out.emplace_back(it->first, &it->second);
  }
  return out;
}

void MetricsRegistry::reset(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    if (name.starts_with(prefix)) c.reset();
  }
  for (auto& [name, g] : gauges_) {
    if (name.starts_with(prefix)) g.reset();
  }
  for (auto& [name, h] : histograms_) {
    if (name.starts_with(prefix)) h.reset();
  }
}

std::string MetricsRegistry::to_string() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += str_format("%-48s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += str_format("%-48s %g\n", name.c_str(), g.value());
  }
  for (const auto& [name, h] : histograms_) {
    out += str_format(
        "%-48s count=%llu sum=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
        name.c_str(), static_cast<unsigned long long>(h.count()), h.sum(),
        h.percentile(50), h.percentile(95), h.percentile(99), h.max());
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += str_format("%s\n    \"%s\": %llu", first ? "" : ",",
                      json_escape(name).c_str(),
                      static_cast<unsigned long long>(c.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += str_format("%s\n    \"%s\": %s", first ? "" : ",",
                      json_escape(name).c_str(),
                      json_number(g.value()).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += str_format(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, "
        "\"buckets\": [",
        first ? "" : ",", json_escape(name).c_str(),
        static_cast<unsigned long long>(h.count()),
        json_number(h.sum()).c_str(), json_number(h.min()).c_str(),
        json_number(h.max()).c_str(), json_number(h.mean()).c_str(),
        json_number(h.percentile(50)).c_str(),
        json_number(h.percentile(95)).c_str(),
        json_number(h.percentile(99)).c_str());
    bool first_bucket = true;
    for (const auto& [le, n] : h.nonzero_buckets()) {
      out += str_format("%s{\"le\": %s, \"count\": %llu}",
                        first_bucket ? "" : ", ",
                        json_number(le).c_str(),
                        static_cast<unsigned long long>(n));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool write_json(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << registry.to_json();
  return static_cast<bool>(out);
}

}  // namespace oa::obs
