#include "obs/trace.hpp"

#include <chrono>
#include <functional>
#include <thread>

#include "support/strings.hpp"

namespace oa::obs {

namespace {

/// Stable small id per thread (std::thread::id is opaque).
uint32_t this_thread_id() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

double now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

TraceCollector& TraceCollector::global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::record(TraceEvent event) {
  event.tid = this_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string TraceCollector::to_chrome_json() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += str_format(
        "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
        "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
        first ? "" : ",", json_escape(e.name).c_str(), e.tid, e.start_us,
        e.dur_us);
    first = false;
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

double Span::finish() {
  if (start_us_ < 0.0) return 0.0;
  const double dur = now_us() - start_us_;
  if (latency_ != nullptr) latency_->record(dur);
  if (collector_ != nullptr) {
    collector_->record(TraceEvent{name_, start_us_, dur, 0});
  }
  start_us_ = -1.0;
  return dur;
}

}  // namespace oa::obs
