// RAII span tracing: wall-clock spans around pipeline stages (engine
// apply/verify/simulate, tuner rounds, runtime dispatch) collected
// into a thread-safe, bounded buffer and exported as Chrome trace
// JSON (`chrome://tracing`, Perfetto) or a human summary.
//
// Tracing is opt-in: a Span with a null collector skips the clock
// reads entirely unless it also feeds a latency Histogram, so the
// default (metrics only) costs two steady_clock reads per stage and
// the fully-disabled path costs nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace oa::obs {

/// Microseconds since an arbitrary process-stable epoch.
double now_us();

/// One completed span.
struct TraceEvent {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

/// Thread-safe bounded span collector. Spans past the capacity are
/// counted but dropped (a serving process must not grow without bound).
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 1 << 18)
      : capacity_(capacity) {}
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector (`oagen --trace-out` exports it).
  static TraceCollector& global();

  void record(TraceEvent event);
  std::vector<TraceEvent> snapshot() const;
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void clear();

  /// Chrome trace format: {"traceEvents": [{"name", "ph": "X", "ts",
  /// "dur", "pid", "tid"}, ...]}.
  std::string to_chrome_json() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<uint64_t> dropped_{0};
};

/// RAII span: times its scope, then reports the duration to the
/// collector (as a trace event) and/or a histogram (as a latency
/// sample). Both sinks are optional; with neither, the constructor
/// does not even read the clock.
class Span {
 public:
  Span(TraceCollector* collector, std::string name,
       Histogram* latency = nullptr)
      : collector_(collector), latency_(latency), name_(std::move(name)) {
    if (armed()) start_us_ = now_us();
  }
  ~Span() { finish(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span early (idempotent); returns the duration in µs.
  double finish();

 private:
  bool armed() const {
    return collector_ != nullptr || latency_ != nullptr;
  }

  TraceCollector* collector_;
  Histogram* latency_;
  std::string name_;
  double start_us_ = -1.0;
};

}  // namespace oa::obs
