// Low-overhead metrics for the OA framework: a registry of named
// counters, gauges, and log2-bucketed latency histograms that every
// layer (engine/, tuner/, composer/, runtime/) writes into, so search
// budget and serving latency are observable from one place.
//
// Design rules:
//   * the hot path is an atomic add — instruments are looked up once
//     (registry lookup takes a mutex) and the returned references are
//     stable for the registry's lifetime, so callers cache them;
//   * every instrument is thread-safe on its own (relaxed atomics; the
//     counters are monotonic so torn reads across instruments only
//     ever under-report a snapshot, never corrupt it);
//   * registries are instantiable — components own a private registry
//     by default so tests stay isolated — and `global()` provides the
//     process-wide instance the CLIs export with `--metrics-out`;
//   * exporters: `to_string()` for humans, `to_json()` for machines
//     (histograms carry count/sum/min/max and p50/p95/p99).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace oa::obs {

/// Lock-free add for pre-C++20-fetch_add platforms; relaxed ordering is
/// enough for statistics.
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d,
                                  std::memory_order_relaxed)) {
  }
}

/// Monotonic event counter.
class Counter {
 public:
  void add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value instrument (table sizes, cache occupancy).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution, built for latencies in microseconds but
/// unit-agnostic: bucket i counts values in [2^(i-1), 2^i) (bucket 0
/// holds everything below 1). Percentiles interpolate linearly inside
/// the winning bucket, so p50/p95/p99 are exact to within one octave —
/// plenty for "where does the time go" questions at ~zero record cost.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;
  /// p in [0, 100]; returns 0 when empty.
  double percentile(double p) const;
  void reset();

  /// (upper_bound, count) for every non-empty bucket, in order.
  std::vector<std::pair<double, uint64_t>> nonzero_buckets() const;

  /// Allocation-free copy of the raw per-bucket counts (relaxed loads;
  /// concurrent recorders can make the copy a torn-but-monotonic view,
  /// which only ever under-reports — fine for windowed percentiles).
  void bucket_counts(std::array<uint64_t, kBuckets>& out) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> has_values_{false};
};

/// Percentile over a *window* of a Histogram: the delta between the
/// histogram's current bucket counts and the counts captured at the
/// last rotate(). A lifetime histogram answers "what has latency been
/// since the process started"; an admission controller needs "what is
/// latency *right now*" — a long fast warm-up must not mask a current
/// overload (and vice versa). rotate() starts a new window; both
/// methods are thread-safe (internally locked — callers are expected
/// to poll at a bounded rate, e.g. once per admission batch, not per
/// request).
class HistogramWindow {
 public:
  explicit HistogramWindow(const Histogram* h) : h_(h) {}

  /// Start a new window at the histogram's current totals.
  void rotate();
  /// Samples recorded since the last rotate().
  uint64_t count() const;
  /// Percentile over the window delta; 0 when the window is empty.
  double percentile(double p) const;

 private:
  const Histogram* h_;
  mutable std::mutex mu_;
  std::array<uint64_t, Histogram::kBuckets> base_{};
};

/// Named instrument registry. Instrument references are stable until
/// the registry dies; lookups are mutex-guarded, so cache the result.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (`oagen --metrics-out` exports it).
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, or 0 when it was never registered.
  uint64_t counter_value(std::string_view name) const;

  /// Histograms whose name starts with `prefix` (stable pointers).
  std::vector<std::pair<std::string, const Histogram*>>
  histograms_with_prefix(std::string_view prefix) const;

  /// Zero every instrument whose name starts with `prefix` (all of
  /// them for the empty prefix). Registration is kept.
  void reset(std::string_view prefix = {});

  /// Human-readable dump, one instrument per line.
  std::string to_string() const;
  /// Machine-readable export: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count,sum,min,max,mean,p50,p95,p99,
  /// buckets:[{le,count}]}}}.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so instrument addresses survive inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Write `registry.to_json()` to `path`; returns false on I/O error.
bool write_json(const MetricsRegistry& registry, const std::string& path);

}  // namespace oa::obs
