#include "blas3/matrix.hpp"

#include <cassert>
#include <cmath>

namespace oa::blas3 {

void Matrix::make_triangular(Uplo uplo) {
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < rows_; ++r) {
      const bool keep =
          uplo == Uplo::kLower ? r >= c : r <= c;
      if (!keep) at(r, c) = 0.0f;
    }
  }
}

void Matrix::set_unit_diagonal() {
  const int64_t n = std::min(rows_, cols_);
  for (int64_t i = 0; i < n; ++i) at(i, i) = 1.0f;
}

void Matrix::scale_off_diagonal(float factor) {
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < rows_; ++r) {
      if (r != c) at(r, c) *= factor;
    }
  }
}

void Matrix::make_symmetric_from(Uplo uplo) {
  assert(rows_ == cols_);
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < c; ++r) {
      // (r, c) is in the upper triangle, (c, r) in the lower.
      if (uplo == Uplo::kLower) {
        at(r, c) = at(c, r);
      } else {
        at(c, r) = at(r, c);
      }
    }
  }
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  float worst = 0.0f;
  auto da = a.data();
  auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  }
  return worst;
}

float accumulation_tolerance(int64_t k) {
  // Inputs are in [-1, 1); a length-k float accumulation keeps error
  // well under k * eps with a generous constant.
  return 32.0f * static_cast<float>(k) * 1.19e-7f + 1e-5f;
}

}  // namespace oa::blas3
