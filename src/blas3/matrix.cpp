#include "blas3/matrix.hpp"

#include <cassert>
#include <cmath>

namespace oa::blas3 {

void Matrix::make_triangular(Uplo uplo) {
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < rows_; ++r) {
      const bool keep =
          uplo == Uplo::kLower ? r >= c : r <= c;
      if (!keep) set(r, c, 0.0);
    }
  }
}

void Matrix::set_unit_diagonal() {
  const int64_t n = std::min(rows_, cols_);
  for (int64_t i = 0; i < n; ++i) set(i, i, 1.0);
}

void Matrix::scale_off_diagonal(double factor) {
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < rows_; ++r) {
      if (r != c) set(r, c, at(r, c) * factor);
    }
  }
}

void Matrix::make_symmetric_from(Uplo uplo) {
  assert(rows_ == cols_);
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t r = 0; r < c; ++r) {
      // (r, c) is in the upper triangle, (c, r) in the lower.
      if (uplo == Uplo::kLower) {
        set(r, c, at(c, r));
      } else {
        set(c, r, at(r, c));
      }
    }
  }
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::fabs(da[i] - db[i]));
  }
  return worst;
}

double accumulation_tolerance(int64_t k, Precision p) {
  // Inputs are in [-1, 1); a length-k accumulation at precision p keeps
  // error well under k * eps with a generous constant. The absolute
  // floor scales with eps too so f64 checks are meaningfully tighter.
  const double eps = 2.0 * precision_eps(p);  // machine epsilon
  return 32.0 * static_cast<double>(k) * eps + 1e2 * eps;
}

}  // namespace oa::blas3
