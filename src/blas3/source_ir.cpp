#include "blas3/source_ir.hpp"

#include <cassert>

namespace oa::blas3 {

using ir::AffineExpr;
using ir::ArrayRef;
using ir::AssignOp;
using ir::Bound;
using ir::ExprPtr;
using ir::Kernel;
using ir::MemSpace;
using ir::NodePtr;
using ir::Program;

namespace {

AffineExpr S(const char* name) { return AffineExpr::sym(name); }

NodePtr assign(ArrayRef lhs, AssignOp op, ExprPtr rhs) {
  return ir::make_assign(std::move(lhs), op, std::move(rhs));
}

ExprPtr mul_refs(ArrayRef x, ArrayRef y) {
  return ir::make_mul(ir::make_ref(std::move(x)), ir::make_ref(std::move(y)));
}

/// Wrap `inner` in Li (i over [0, M)) and Lj (j over [0, N)).
std::vector<NodePtr> ij_nest(std::vector<NodePtr> inner) {
  auto lj = ir::make_loop("Lj", "j", Bound(0), Bound(S("N")));
  lj->body = std::move(inner);
  auto li = ir::make_loop("Li", "i", Bound(0), Bound(S("M")));
  li->body.push_back(std::move(lj));
  std::vector<NodePtr> out;
  out.push_back(std::move(li));
  return out;
}

/// A k-loop with the given bounds around one or more statements.
NodePtr k_loop(Bound lb, Bound ub, std::vector<NodePtr> body) {
  auto lk = ir::make_loop("Lk", "k", std::move(lb), std::move(ub));
  lk->body = std::move(body);
  return lk;
}

std::vector<NodePtr> single(NodePtr n) {
  std::vector<NodePtr> v;
  v.push_back(std::move(n));
  return v;
}

// ----------------------------------------------------------------- GEMM

void build_gemm(const Variant& v, Program& p) {
  p.int_params = {"M", "N", "K"};
  p.globals = {
      {"A", MemSpace::kGlobal,
       v.trans_a == Trans::kN ? S("M") : S("K"),
       v.trans_a == Trans::kN ? S("K") : S("M"), 0},
      {"B", MemSpace::kGlobal,
       v.trans_b == Trans::kN ? S("K") : S("N"),
       v.trans_b == Trans::kN ? S("N") : S("K"), 0},
      {"C", MemSpace::kGlobal, S("M"), S("N"), 0},
  };
  ArrayRef a = v.trans_a == Trans::kN ? ArrayRef{"A", {S("i"), S("k")}}
                                      : ArrayRef{"A", {S("k"), S("i")}};
  ArrayRef b = v.trans_b == Trans::kN ? ArrayRef{"B", {S("k"), S("j")}}
                                      : ArrayRef{"B", {S("j"), S("k")}};
  auto stmt = assign(ArrayRef{"C", {S("i"), S("j")}}, AssignOp::kAddAssign,
                     mul_refs(std::move(a), std::move(b)));
  p.kernels.emplace_back();
  p.main_kernel().name = v.name();
  p.main_kernel().body =
      ij_nest(single(k_loop(Bound(0), Bound(S("K")), single(std::move(stmt)))));
}

// ----------------------------------------------------------------- SYMM

void build_symm(const Variant& v, Program& p) {
  p.int_params = {"M", "N"};
  const char* dim = v.side == Side::kLeft ? "M" : "N";
  p.globals = {
      {"A", MemSpace::kGlobal, S(dim), S(dim), 0},
      {"B", MemSpace::kGlobal, S("M"), S("N"), 0},
      {"C", MemSpace::kGlobal, S("M"), S("N"), 0},
  };
  std::vector<NodePtr> inner;
  if (v.side == Side::kLeft) {
    // Triangle iterated over (i, k), k < i; stored triangle selects the
    // subscript order of A.
    ArrayRef a = v.uplo == Uplo::kLower ? ArrayRef{"A", {S("i"), S("k")}}
                                        : ArrayRef{"A", {S("k"), S("i")}};
    std::vector<NodePtr> kbody;
    // Real area: contributes to C[i][j].
    kbody.push_back(assign(ArrayRef{"C", {S("i"), S("j")}},
                           AssignOp::kAddAssign,
                           mul_refs(a, ArrayRef{"B", {S("k"), S("j")}})));
    // Shadow area: contributes to C[k][j].
    kbody.push_back(assign(ArrayRef{"C", {S("k"), S("j")}},
                           AssignOp::kAddAssign,
                           mul_refs(a, ArrayRef{"B", {S("i"), S("j")}})));
    inner.push_back(k_loop(Bound(0), Bound(S("i")), std::move(kbody)));
    // Diagonal elements.
    inner.push_back(assign(
        ArrayRef{"C", {S("i"), S("j")}}, AssignOp::kAddAssign,
        mul_refs(ArrayRef{"A", {S("i"), S("i")}},
                 ArrayRef{"B", {S("i"), S("j")}})));
  } else {
    // C += B * A_sym, triangle iterated over (j, k), k < j.
    ArrayRef a = v.uplo == Uplo::kLower ? ArrayRef{"A", {S("j"), S("k")}}
                                        : ArrayRef{"A", {S("k"), S("j")}};
    std::vector<NodePtr> kbody;
    kbody.push_back(assign(ArrayRef{"C", {S("i"), S("j")}},
                           AssignOp::kAddAssign,
                           mul_refs(ArrayRef{"B", {S("i"), S("k")}}, a)));
    kbody.push_back(assign(ArrayRef{"C", {S("i"), S("k")}},
                           AssignOp::kAddAssign,
                           mul_refs(ArrayRef{"B", {S("i"), S("j")}}, a)));
    inner.push_back(k_loop(Bound(0), Bound(S("j")), std::move(kbody)));
    inner.push_back(assign(
        ArrayRef{"C", {S("i"), S("j")}}, AssignOp::kAddAssign,
        mul_refs(ArrayRef{"B", {S("i"), S("j")}},
                 ArrayRef{"A", {S("j"), S("j")}})));
  }
  p.kernels.emplace_back();
  p.main_kernel().name = v.name();
  p.main_kernel().body = ij_nest(std::move(inner));
}

// ----------------------------------------------------------------- TRMM

void build_trmm(const Variant& v, Program& p) {
  p.int_params = {"M", "N"};
  const char* dim = v.side == Side::kLeft ? "M" : "N";
  p.globals = {
      {"A", MemSpace::kGlobal, S(dim), S(dim), 0},
      {"B", MemSpace::kGlobal, S("M"), S("N"), 0},
      {"C", MemSpace::kGlobal, S("M"), S("N"), 0},
  };
  // k bounds: which k have a non-zero op(A) element (diagonal included).
  Bound lb(0), ub(0);
  ArrayRef a{"A", {}};
  ExprPtr rhs;
  if (v.side == Side::kLeft) {
    // C[i][j] += op(A)[i][k] * B[k][j].
    a.index = v.trans == Trans::kN
                  ? std::vector<AffineExpr>{S("i"), S("k")}
                  : std::vector<AffineExpr>{S("k"), S("i")};
    const bool lower_effective =
        (v.uplo == Uplo::kLower) == (v.trans == Trans::kN);
    if (lower_effective) {
      lb = Bound(0);
      ub = Bound(S("i") + 1);  // k <= i
    } else {
      lb = Bound(S("i"));
      ub = Bound(S("M"));
    }
    rhs = mul_refs(std::move(a), ArrayRef{"B", {S("k"), S("j")}});
  } else {
    // C[i][j] += B[i][k] * op(A)[k][j].
    a.index = v.trans == Trans::kN
                  ? std::vector<AffineExpr>{S("k"), S("j")}
                  : std::vector<AffineExpr>{S("j"), S("k")};
    // op(A)[k][j] non-zero: lower effective triangle -> k >= j.
    const bool lower_effective =
        (v.uplo == Uplo::kLower) == (v.trans == Trans::kN);
    if (lower_effective) {
      lb = Bound(S("j"));
      ub = Bound(S("N"));
    } else {
      lb = Bound(0);
      ub = Bound(S("j") + 1);  // k <= j
    }
    rhs = mul_refs(ArrayRef{"B", {S("i"), S("k")}}, std::move(a));
  }
  auto stmt = assign(ArrayRef{"C", {S("i"), S("j")}}, AssignOp::kAddAssign,
                     std::move(rhs));
  p.kernels.emplace_back();
  p.main_kernel().name = v.name();
  p.main_kernel().body = ij_nest(
      single(k_loop(std::move(lb), std::move(ub), single(std::move(stmt)))));
}

// ----------------------------------------------------------------- TRSM

void build_trsm(const Variant& v, Program& p) {
  p.int_params = {"M", "N"};
  const char* dim = v.side == Side::kLeft ? "M" : "N";
  p.globals = {
      {"A", MemSpace::kGlobal, S(dim), S(dim), 0},
      {"B", MemSpace::kGlobal, S("M"), S("N"), 0},
  };
  // Effective triangle of op(A): transposition flips it.
  const bool lower_effective =
      (v.uplo == Uplo::kLower) == (v.trans == Trans::kN);
  // Forward substitution when the effective triangle is lower (solve
  // dimension ascending); otherwise backward. Backward solves reverse
  // *both* the solve variable and the reduction variable in the
  // subscripts (row = M-1-i, dependency row = M-1-k), which keeps the
  // triangular bound in the canonical ascending form k < i that
  // peel/padding_triangular align tiles against.
  if (v.side == Side::kLeft) {
    // Solve rows: B[row][j] -= op(A)[row][krow] * B[krow][j] over the
    // already-solved rows.
    AffineExpr row = lower_effective ? S("i") : S("M") - S("i") - 1;
    AffineExpr krow = lower_effective ? S("k") : S("M") - S("k") - 1;
    Bound lb(0);
    Bound ub(S("i"));  // k < i: strictly earlier solve steps
    ArrayRef a = v.trans == Trans::kN ? ArrayRef{"A", {row, krow}}
                                      : ArrayRef{"A", {krow, row}};
    auto stmt =
        assign(ArrayRef{"B", {row, S("j")}}, AssignOp::kSubAssign,
               mul_refs(std::move(a), ArrayRef{"B", {krow, S("j")}}));
    p.kernels.emplace_back();
    p.main_kernel().name = v.name();
    p.main_kernel().body = ij_nest(
        single(k_loop(std::move(lb), std::move(ub), single(std::move(stmt)))));
  } else {
    // Solve columns: B[i][col] -= B[i][kcol] * op(A)[kcol][col] over the
    // already-solved columns. Lower effective triangle -> backward.
    const bool forward = !lower_effective;
    AffineExpr col = forward ? S("j") : S("N") - S("j") - 1;
    AffineExpr kcol = forward ? S("k") : S("N") - S("k") - 1;
    Bound lb(0);
    Bound ub(S("j"));  // k < j
    ArrayRef a = v.trans == Trans::kN ? ArrayRef{"A", {kcol, col}}
                                      : ArrayRef{"A", {col, kcol}};
    auto stmt =
        assign(ArrayRef{"B", {S("i"), col}}, AssignOp::kSubAssign,
               mul_refs(ArrayRef{"B", {S("i"), kcol}}, std::move(a)));
    // For right-side solves the dependence runs along j: put Lj
    // outermost so thread_grouping can serialize it.
    auto lk = k_loop(std::move(lb), std::move(ub), single(std::move(stmt)));
    auto li = ir::make_loop("Li", "i", Bound(0), Bound(S("M")));
    li->body.push_back(std::move(lk));
    auto lj = ir::make_loop("Lj", "j", Bound(0), Bound(S("N")));
    lj->body.push_back(std::move(li));
    p.kernels.emplace_back();
    p.main_kernel().name = v.name();
    p.main_kernel().body = single(std::move(lj));
  }
}

// ----------------------------------------------------------------- SYRK

void build_syrk(const Variant& v, Program& p) {
  // Extension routine (the paper's future work): the triangular index
  // space is on the *output* — for uplo = Lower only C[i][j], j <= i,
  // is computed. A is M x K (N) or K x M (T); the second operand is A
  // itself read in the transposed role.
  p.int_params = {"M", "N", "K"};  // N unused; kept for a uniform API
  p.globals = {
      {"A", MemSpace::kGlobal,
       v.trans == Trans::kN ? S("M") : S("K"),
       v.trans == Trans::kN ? S("K") : S("M"), 0},
      {"C", MemSpace::kGlobal, S("M"), S("M"), 0},
  };
  ArrayRef a1 = v.trans == Trans::kN ? ArrayRef{"A", {S("i"), S("k")}}
                                     : ArrayRef{"A", {S("k"), S("i")}};
  ArrayRef a2 = v.trans == Trans::kN ? ArrayRef{"A", {S("j"), S("k")}}
                                     : ArrayRef{"A", {S("k"), S("j")}};
  auto stmt = assign(ArrayRef{"C", {S("i"), S("j")}}, AssignOp::kAddAssign,
                     mul_refs(std::move(a1), std::move(a2)));
  auto lk = k_loop(Bound(0), Bound(S("K")), single(std::move(stmt)));
  // Triangular j range: j <= i (lower) or j >= i (upper).
  auto lj = ir::make_loop("Lj", "j",
                          v.uplo == Uplo::kLower ? Bound(0) : Bound(S("i")),
                          v.uplo == Uplo::kLower ? Bound(S("i") + 1)
                                                 : Bound(S("M")));
  lj->body.push_back(std::move(lk));
  auto li = ir::make_loop("Li", "i", Bound(0), Bound(S("M")));
  li->body.push_back(std::move(lj));
  p.kernels.emplace_back();
  p.main_kernel().name = v.name();
  p.main_kernel().body = single(std::move(li));
}

}  // namespace

Program make_source_program(const Variant& v) {
  Program p;
  p.name = v.name();
  p.precision = v.precision;
  switch (v.family) {
    case Family::kGemm: build_gemm(v, p); break;
    case Family::kSymm: build_symm(v, p); break;
    case Family::kTrmm: build_trmm(v, p); break;
    case Family::kTrsm: build_trsm(v, p); break;
    case Family::kSyrk: build_syrk(v, p); break;
  }
  // Batched families reuse the member loop nest unchanged: the arrays
  // and kernels describe one batch member, and the batch dimension is
  // an execution/pricing attribute (per_member until a batch_grouping
  // component picks the layout).
  if (v.batch != Batch::kSingle) {
    p.batched = true;
    p.batch_grouping = ir::BatchGrouping::kPerMember;
  }
  return p;
}

const char* output_array(const Variant& v) {
  return v.family == Family::kTrsm ? "B" : "C";
}

const char* structured_array(const Variant&) { return "A"; }

}  // namespace oa::blas3
