#include "blas3/routine.hpp"

namespace oa::blas3 {

const char* family_name(Family f) {
  switch (f) {
    case Family::kGemm: return "GEMM";
    case Family::kSymm: return "SYMM";
    case Family::kTrmm: return "TRMM";
    case Family::kTrsm: return "TRSM";
    case Family::kSyrk: return "SYRK";
  }
  return "?";
}

const char* batch_name(Batch b) {
  switch (b) {
    case Batch::kSingle: return "single";
    case Batch::kBatched: return "batched";
    case Batch::kStridedBatched: return "strided_batched";
  }
  return "?";
}

std::string Variant::name() const {
  std::string out = precision_prefix(precision);
  out += family_name(family);
  if (batch == Batch::kBatched) out += "_BATCHED";
  if (batch == Batch::kStridedBatched) out += "_STRIDED_BATCHED";
  out += '-';
  switch (family) {
    case Family::kGemm:
      out += trans_a == Trans::kN ? 'N' : 'T';
      out += trans_b == Trans::kN ? 'N' : 'T';
      break;
    case Family::kSymm:
      out += side == Side::kLeft ? 'L' : 'R';
      out += uplo == Uplo::kLower ? 'L' : 'U';
      break;
    case Family::kTrmm:
    case Family::kTrsm:
      out += side == Side::kLeft ? 'L' : 'R';
      out += uplo == Uplo::kLower ? 'L' : 'U';
      out += '-';
      out += trans == Trans::kN ? 'N' : 'T';
      break;
    case Family::kSyrk:
      out += uplo == Uplo::kLower ? 'L' : 'U';
      out += trans == Trans::kN ? 'N' : 'T';
      break;
  }
  return out;
}

const std::vector<Variant>& paper_variants() {
  static const std::vector<Variant> variants = [] {
    std::vector<Variant> v;
    for (Trans ta : {Trans::kN, Trans::kT}) {
      for (Trans tb : {Trans::kN, Trans::kT}) {
        Variant g;
        g.family = Family::kGemm;
        g.trans_a = ta;
        g.trans_b = tb;
        v.push_back(g);
      }
    }
    for (Side s : {Side::kLeft, Side::kRight}) {
      for (Uplo u : {Uplo::kLower, Uplo::kUpper}) {
        Variant m;
        m.family = Family::kSymm;
        m.side = s;
        m.uplo = u;
        v.push_back(m);
      }
    }
    for (Family f : {Family::kTrmm, Family::kTrsm}) {
      for (Side s : {Side::kLeft, Side::kRight}) {
        for (Uplo u : {Uplo::kLower, Uplo::kUpper}) {
          for (Trans t : {Trans::kN, Trans::kT}) {
            Variant m;
            m.family = f;
            m.side = s;
            m.uplo = u;
            m.trans = t;
            v.push_back(m);
          }
        }
      }
    }
    return v;
  }();
  return variants;
}

namespace {

// The 24 paper shapes at f32 followed by the same shapes at f64 — the
// f32 prefix keeps legacy index-based orderings (figures, corpus
// rotation) stable.
std::vector<Variant> with_both_precisions(const std::vector<Variant>& base) {
  std::vector<Variant> v = base;
  for (const Variant& b : base) {
    Variant d = b;
    d.precision = Precision::kF64;
    v.push_back(d);
  }
  return v;
}

}  // namespace

const std::vector<Variant>& all_variants() {
  static const std::vector<Variant> variants =
      with_both_precisions(paper_variants());
  return variants;
}

const std::vector<Variant>& extension_variants() {
  static const std::vector<Variant> variants = [] {
    std::vector<Variant> v;
    for (Uplo u : {Uplo::kLower, Uplo::kUpper}) {
      for (Trans t : {Trans::kN, Trans::kT}) {
        Variant m;
        m.family = Family::kSyrk;
        m.uplo = u;
        m.trans = t;
        v.push_back(m);
      }
    }
    return with_both_precisions(v);
  }();
  return variants;
}

const std::vector<Variant>& batched_variants() {
  static const std::vector<Variant> variants = [] {
    std::vector<Variant> v;
    for (Batch b : {Batch::kBatched, Batch::kStridedBatched}) {
      for (Trans ta : {Trans::kN, Trans::kT}) {
        for (Trans tb : {Trans::kN, Trans::kT}) {
          Variant g;
          g.family = Family::kGemm;
          g.trans_a = ta;
          g.trans_b = tb;
          g.batch = b;
          v.push_back(g);
        }
      }
    }
    return with_both_precisions(v);
  }();
  return variants;
}

namespace {

/// "GEMM_BATCHED_NN" (the CLI-safe all-underscore spelling) ->
/// "GEMM_BATCHED-NN": rewrite the last underscore before the
/// transpose suffix to the canonical dash. Only batched names have
/// underscores, so plain names pass through unchanged.
std::string canonical_batched_name(const std::string& name) {
  const size_t last = name.rfind('_');
  if (last == std::string::npos || name.find('-') != std::string::npos) {
    return name;
  }
  std::string out = name;
  out[last] = '-';
  return out;
}

}  // namespace

const Variant* find_variant(const std::string& name) {
  for (const Variant& v : all_variants()) {
    if (v.name() == name) return &v;
  }
  for (const Variant& v : batched_variants()) {
    if (v.name() == name) return &v;
  }
  for (const Variant& v : extension_variants()) {
    if (v.name() == name) return &v;
  }
  const std::string canonical = canonical_batched_name(name);
  if (canonical != name) {
    for (const Variant& v : batched_variants()) {
      if (v.name() == canonical) return &v;
    }
  }
  return nullptr;
}

int64_t tuning_batch(const Variant& v) {
  return v.batch == Batch::kSingle ? 1 : 256;
}

double nominal_flops(const Variant& v, int64_t m, int64_t n, int64_t k) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  switch (v.family) {
    case Family::kGemm:
      return 2.0 * dm * dn * dk;
    case Family::kSymm:
      // Full symmetric multiply: 2*M*N*(M or N) depending on side.
      return 2.0 * dm * dn * (v.side == Side::kLeft ? dm : dn);
    case Family::kTrmm:
    case Family::kTrsm:
      // Triangular operand: half the multiply-adds of the square case.
      return dm * dn * (v.side == Side::kLeft ? dm : dn);
    case Family::kSyrk:
      // Triangular output: M*(M+1)*K multiply-adds.
      return dm * (dm + 1.0) * dk;
  }
  return 0.0;
}

}  // namespace oa::blas3
