// Straightforward CPU reference implementations of the 24 BLAS3
// variants; the oracle every simulated kernel is verified against.
#pragma once

#include <cstdint>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"

namespace oa::blas3 {

/// Run variant `v` on host. For GEMM/SYMM/TRMM, accumulates into `c`
/// (C += op(A) * op(B)); `c` must be pre-sized M x N. For TRSM, solves
/// in place into `b` and ignores `c` (may be null for TRSM only).
/// Shapes: see routine.hpp conventions. `m`/`n`/`k` are taken from the
/// matrix shapes.
void run_reference(const Variant& v, const Matrix& a, Matrix& b, Matrix* c);

/// Element accessor of a symmetric matrix stored in triangle `uplo`.
inline float sym_at(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return stored ? a.at(r, c) : a.at(c, r);
}

/// Element accessor of a triangular matrix: zero outside the triangle.
inline float tri_at(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return stored ? a.at(r, c) : 0.0f;
}

}  // namespace oa::blas3
