// Straightforward CPU reference implementations of the BLAS3 variant
// family; the oracle every simulated kernel is verified against.
// Scalar-generic: arithmetic runs natively at the variant's precision
// (float accumulators for f32, double for f64).
#pragma once

#include <cstdint>

#include "blas3/matrix.hpp"
#include "blas3/routine.hpp"

namespace oa::blas3 {

/// Run variant `v` on host. For GEMM/SYMM/TRMM, accumulates into `c`
/// (C += op(A) * op(B)); `c` must be pre-sized M x N. For TRSM, solves
/// in place into `b` and ignores `c` (may be null for TRSM only).
/// Shapes: see routine.hpp conventions. `m`/`n`/`k` are taken from the
/// matrix shapes.
void run_reference(const Variant& v, const Matrix& a, Matrix& b, Matrix* c);

/// Element accessor of a symmetric matrix stored in triangle `uplo`.
inline double sym_at(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return stored ? a.at(r, c) : a.at(c, r);
}

/// Element accessor of a triangular matrix: zero outside the triangle.
inline double tri_at(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return stored ? a.at(r, c) : 0.0;
}

}  // namespace oa::blas3
