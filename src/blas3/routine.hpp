// The BLAS3 routine catalog: the 24 single-precision variants the paper
// evaluates (Figures 10-12): GEMM x4 transpose combinations, SYMM x4
// side/uplo, TRMM x8 and TRSM x8 side/uplo/trans.
//
// Conventions (matching the paper's source listings):
//  * column-major storage;
//  * GEMM/SYMM/TRMM compute C += op(A)*op(B) into a separate C
//    (alpha = beta = 1, as in the paper's labeled source code);
//  * TRSM solves op(A) * X = B (left) or X * op(A) = B (right) in place
//    with a *unit* triangular A — the paper's TRSM source
//    (`B[i][j] -= A[i][k] * B[k][j]`, k < i) has no diagonal division,
//    i.e. unit diagonal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oa::blas3 {

enum class Family { kGemm, kSymm, kTrmm, kTrsm, kSyrk };
enum class Trans { kN, kT };
enum class Side { kLeft, kRight };
enum class Uplo { kLower, kUpper };

const char* family_name(Family f);

/// Identity of one routine variant (e.g. TRSM-LL-N).
struct Variant {
  Family family = Family::kGemm;
  // GEMM: transposition of A and B.
  Trans trans_a = Trans::kN;
  Trans trans_b = Trans::kN;
  // SYMM / TRMM / TRSM: side and triangle of the structured matrix A.
  Side side = Side::kLeft;
  Uplo uplo = Uplo::kLower;
  // TRMM / TRSM: transposition of A.
  Trans trans = Trans::kN;

  /// Paper-style name: "GEMM-NN", "SYMM-LL", "TRSM-LL-N", ...
  std::string name() const;

  bool operator==(const Variant&) const = default;
};

/// All 24 variants in the order the paper's figures list them
/// (GEMM, SYMM, TRMM, TRSM).
const std::vector<Variant>& all_variants();

/// Extension routines beyond the paper's 24 (its stated future work:
/// "extend our method to more routines"): SYRK, the symmetric rank-k
/// update C_tri += op(A) * op(A)^T, whose *output* index space is
/// triangular — a shape none of the original 24 exercises.
const std::vector<Variant>& extension_variants();

/// Look a variant up by its paper-style name (searches the paper's 24
/// and the extensions); returns nullptr when the name is unknown.
const Variant* find_variant(const std::string& name);

/// Nominal useful FLOPs for problem size (m, n) with square structured
/// matrices (GEMM uses k = m). Used to convert measured time to GFLOPS
/// the way the paper does.
double nominal_flops(const Variant& v, int64_t m, int64_t n, int64_t k);

}  // namespace oa::blas3
