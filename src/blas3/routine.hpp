// The BLAS3 routine catalog. The paper evaluates 24 single-precision
// variants (Figures 10-12): GEMM x4 transpose combinations, SYMM x4
// side/uplo, TRMM x8 and TRSM x8 side/uplo/trans. This catalog carries
// a precision axis on top: each of the 24 shapes exists at f32 (the
// paper's names, "GEMM-NN") and at f64 (BLAS-style "D" prefix,
// "DGEMM-NN"), for a 48-variant s/d family.
//
// Conventions (matching the paper's source listings):
//  * column-major storage;
//  * GEMM/SYMM/TRMM compute C += op(A)*op(B) into a separate C
//    (alpha = beta = 1, as in the paper's labeled source code);
//  * TRSM solves op(A) * X = B (left) or X * op(A) = B (right) in place
//    with a *unit* triangular A — the paper's TRSM source
//    (`B[i][j] -= A[i][k] * B[k][j]`, k < i) has no diagonal division,
//    i.e. unit diagonal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/precision.hpp"

namespace oa::blas3 {

enum class Family { kGemm, kSymm, kTrmm, kTrsm, kSyrk };
enum class Trans { kN, kT };
enum class Side { kLeft, kRight };
enum class Uplo { kLower, kUpper };

/// Batch axis: a single-call routine, a batched family (independent
/// member problems addressed via per-member pointers), or a
/// strided-batched family (members at a fixed element stride inside
/// one allocation). The member semantics are identical; the axis
/// changes grouping over the batch dimension, pricing, buffers, and
/// the dispatch key.
enum class Batch { kSingle, kBatched, kStridedBatched };

const char* family_name(Family f);
const char* batch_name(Batch b);

/// Identity of one routine variant (e.g. TRSM-LL-N, DTRSM-LL-N).
struct Variant {
  Family family = Family::kGemm;
  // GEMM: transposition of A and B.
  Trans trans_a = Trans::kN;
  Trans trans_b = Trans::kN;
  // SYMM / TRMM / TRSM: side and triangle of the structured matrix A.
  Side side = Side::kLeft;
  Uplo uplo = Uplo::kLower;
  // TRMM / TRSM: transposition of A.
  Trans trans = Trans::kN;
  // Scalar precision of every operand and of the accumulation.
  Precision precision = Precision::kF32;
  // Batch axis (GEMM only today): kSingle for the classic catalog.
  Batch batch = Batch::kSingle;

  /// Paper-style name: "GEMM-NN", "SYMM-LL", "TRSM-LL-N", ... at f32;
  /// "D"-prefixed ("DGEMM-NN") at f64. Batched families interleave the
  /// batch kind before the shape suffix: "GEMM_BATCHED-NN",
  /// "DGEMM_STRIDED_BATCHED-TT".
  std::string name() const;

  bool operator==(const Variant&) const = default;
};

/// The paper's 24 single-precision variants in the order its figures
/// list them (GEMM, SYMM, TRMM, TRSM).
const std::vector<Variant>& paper_variants();

/// The full 48-variant s/d family: the 24 paper variants at f32
/// followed by the same 24 shapes at f64.
const std::vector<Variant>& all_variants();

/// Extension routines beyond the paper's 24 (its stated future work:
/// "extend our method to more routines"): SYRK, the symmetric rank-k
/// update C_tri += op(A) * op(A)^T, whose *output* index space is
/// triangular — a shape none of the original 24 exercises. Both
/// precisions, like all_variants().
const std::vector<Variant>& extension_variants();

/// The batched GEMM families (ROADMAP item 5): GEMM_BATCHED and
/// GEMM_STRIDED_BATCHED across the 4 transpose combinations, both
/// precisions — 16 variants, f32 first like all_variants().
const std::vector<Variant>& batched_variants();

/// Look a variant up by its paper-style name — either precision
/// ("GEMM-NN" or "DGEMM-NN"; searches the s/d family, the batched
/// families, and the extensions); returns nullptr when the name is
/// unknown. The all-underscore CLI spelling of batched names
/// ("GEMM_BATCHED_NN") is accepted as an alias of the canonical
/// dash form ("GEMM_BATCHED-NN").
const Variant* find_variant(const std::string& name);

/// Nominal batch count a batched variant is tuned and benchmarked at
/// (1 for kSingle). The runtime serves arbitrary counts; this is the
/// representative point the search prices.
int64_t tuning_batch(const Variant& v);

/// Nominal useful FLOPs for problem size (m, n) with square structured
/// matrices (GEMM uses k = m). Used to convert measured time to GFLOPS
/// the way the paper does. Precision-independent: a flop is a flop.
/// For batched variants this is the *per-member* count; callers
/// multiply by the batch count (e.g. tuning_batch).
double nominal_flops(const Variant& v, int64_t m, int64_t n, int64_t k);

}  // namespace oa::blas3
