// Labeled source loop nests for every BLAS3 variant — the "Labeled
// Source Code" inputs of the paper's Fig 3 / Fig 14, expressed in the
// affine IR. These are what EPOD scripts transform.
//
// Loop labels follow the paper: Li over rows, Lj over columns, Lk over
// the reduction. Descending solves (e.g. TRSM-LU-N's backward
// substitution) are expressed with an ascending loop variable and
// reversed affine subscripts (i_logical = M - 1 - i), keeping every
// bound and subscript affine.
#pragma once

#include "blas3/routine.hpp"
#include "ir/kernel.hpp"

namespace oa::blas3 {

/// Build the source Program for `v`: one unoptimized kernel whose loop
/// nest matches the paper's labeled source listing, plus the global
/// array declarations (A, B, and C when the routine has a separate
/// output).
ir::Program make_source_program(const Variant& v);

/// Which global array is the routine's output ("C", or "B" for TRSM).
const char* output_array(const Variant& v);

/// The "structured" input matrix the adaptors act on (always "A").
const char* structured_array(const Variant& v);

}  // namespace oa::blas3
