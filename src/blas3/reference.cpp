#include "blas3/reference.hpp"

#include <cassert>

namespace oa::blas3 {
namespace {

// Every kernel below is templated on the accumulator scalar T
// (float / double) and does all arithmetic natively in T — at f32 this
// reproduces the single-precision reference bit-for-bit, because the
// tagged-storage doubles it reads are exactly-representable floats.

template <typename T>
T sym_at_t(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return static_cast<T>(stored ? a.at(r, c) : a.at(c, r));
}

template <typename T>
T tri_at_t(const Matrix& a, int64_t r, int64_t c, Uplo uplo) {
  const bool stored = uplo == Uplo::kLower ? r >= c : r <= c;
  return stored ? static_cast<T>(a.at(r, c)) : T{0};
}

template <typename T>
void ref_gemm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  const int64_t k_extent =
      v.trans_a == Trans::kN ? a.cols() : a.rows();
  auto a_at = [&](int64_t i, int64_t k) -> T {
    return static_cast<T>(v.trans_a == Trans::kN ? a.at(i, k) : a.at(k, i));
  };
  auto b_at = [&](int64_t k, int64_t j) -> T {
    return static_cast<T>(v.trans_b == Trans::kN ? b.at(k, j) : b.at(j, k));
  };
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      T acc = 0;
      for (int64_t k = 0; k < k_extent; ++k) acc += a_at(i, k) * b_at(k, j);
      c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
    }
  }
}

template <typename T>
void ref_symm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  if (v.side == Side::kLeft) {
    assert(a.rows() == m && a.cols() == m);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        T acc = 0;
        for (int64_t k = 0; k < m; ++k) {
          acc += sym_at_t<T>(a, i, k, v.uplo) * static_cast<T>(b.at(k, j));
        }
        c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
      }
    }
  } else {
    assert(a.rows() == n && a.cols() == n);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        T acc = 0;
        for (int64_t k = 0; k < n; ++k) {
          acc += static_cast<T>(b.at(i, k)) * sym_at_t<T>(a, k, j, v.uplo);
        }
        c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
      }
    }
  }
}

template <typename T>
void ref_trmm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  auto opa = [&](int64_t r, int64_t col) -> T {
    return v.trans == Trans::kN ? tri_at_t<T>(a, r, col, v.uplo)
                                : tri_at_t<T>(a, col, r, v.uplo);
  };
  if (v.side == Side::kLeft) {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        T acc = 0;
        for (int64_t k = 0; k < m; ++k) {
          acc += opa(i, k) * static_cast<T>(b.at(k, j));
        }
        c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
      }
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        T acc = 0;
        for (int64_t k = 0; k < n; ++k) {
          acc += static_cast<T>(b.at(i, k)) * opa(k, j);
        }
        c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
      }
    }
  }
}

template <typename T>
void ref_trsm(const Variant& v, const Matrix& a, Matrix& b) {
  const int64_t m = b.rows();
  const int64_t n = b.cols();
  // Unit-diagonal solve; op(A) element (r, c) with zero outside triangle
  // and an implicit 1 on the diagonal.
  auto opa = [&](int64_t r, int64_t c) -> T {
    return v.trans == Trans::kN ? tri_at_t<T>(a, r, c, v.uplo)
                                : tri_at_t<T>(a, c, r, v.uplo);
  };
  // Effective triangle of op(A): transposition flips it.
  const Uplo eff =
      v.trans == Trans::kN
          ? v.uplo
          : (v.uplo == Uplo::kLower ? Uplo::kUpper : Uplo::kLower);
  if (v.side == Side::kLeft) {
    // Solve op(A) X = B. Lower effective triangle: forward substitution.
    if (eff == Uplo::kLower) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          T acc = 0;
          for (int64_t k = 0; k < i; ++k) {
            acc += opa(i, k) * static_cast<T>(b.at(k, j));
          }
          b.set(i, j, static_cast<T>(b.at(i, j)) - acc);
        }
      }
    } else {
      for (int64_t i = m - 1; i >= 0; --i) {
        for (int64_t j = 0; j < n; ++j) {
          T acc = 0;
          for (int64_t k = i + 1; k < m; ++k) {
            acc += opa(i, k) * static_cast<T>(b.at(k, j));
          }
          b.set(i, j, static_cast<T>(b.at(i, j)) - acc);
        }
      }
    }
  } else {
    // Solve X op(A) = B. Lower effective triangle: backward in j.
    if (eff == Uplo::kLower) {
      for (int64_t j = n - 1; j >= 0; --j) {
        for (int64_t i = 0; i < m; ++i) {
          T acc = 0;
          for (int64_t k = j + 1; k < n; ++k) {
            acc += static_cast<T>(b.at(i, k)) * opa(k, j);
          }
          b.set(i, j, static_cast<T>(b.at(i, j)) - acc);
        }
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t i = 0; i < m; ++i) {
          T acc = 0;
          for (int64_t k = 0; k < j; ++k) {
            acc += static_cast<T>(b.at(i, k)) * opa(k, j);
          }
          b.set(i, j, static_cast<T>(b.at(i, j)) - acc);
        }
      }
    }
  }
}

template <typename T>
void ref_syrk(const Variant& v, const Matrix& a, Matrix& c) {
  const int64_t m = c.rows();
  const int64_t k_extent = v.trans == Trans::kN ? a.cols() : a.rows();
  auto opa = [&](int64_t r, int64_t kk) -> T {
    return static_cast<T>(v.trans == Trans::kN ? a.at(r, kk) : a.at(kk, r));
  };
  for (int64_t j = 0; j < m; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      const bool stored = v.uplo == Uplo::kLower ? i >= j : i <= j;
      if (!stored) continue;
      T acc = 0;
      for (int64_t kk = 0; kk < k_extent; ++kk) {
        acc += opa(i, kk) * opa(j, kk);
      }
      c.set(i, j, static_cast<T>(c.at(i, j)) + acc);
    }
  }
}

template <typename T>
void run_reference_t(const Variant& v, const Matrix& a, Matrix& b,
                     Matrix* c) {
  switch (v.family) {
    case Family::kGemm:
      assert(c != nullptr);
      ref_gemm<T>(v, a, b, *c);
      break;
    case Family::kSymm:
      assert(c != nullptr);
      ref_symm<T>(v, a, b, *c);
      break;
    case Family::kTrmm:
      assert(c != nullptr);
      ref_trmm<T>(v, a, b, *c);
      break;
    case Family::kTrsm:
      ref_trsm<T>(v, a, b);
      break;
    case Family::kSyrk:
      assert(c != nullptr);
      ref_syrk<T>(v, a, *c);
      break;
  }
}

}  // namespace

void run_reference(const Variant& v, const Matrix& a, Matrix& b, Matrix* c) {
  if (v.precision == Precision::kF32) {
    run_reference_t<float>(v, a, b, c);
  } else {
    run_reference_t<double>(v, a, b, c);
  }
}

}  // namespace oa::blas3
