#include "blas3/reference.hpp"

#include <cassert>

namespace oa::blas3 {
namespace {

void ref_gemm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  const int64_t k_extent =
      v.trans_a == Trans::kN ? a.cols() : a.rows();
  auto a_at = [&](int64_t i, int64_t k) {
    return v.trans_a == Trans::kN ? a.at(i, k) : a.at(k, i);
  };
  auto b_at = [&](int64_t k, int64_t j) {
    return v.trans_b == Trans::kN ? b.at(k, j) : b.at(j, k);
  };
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      float acc = 0.0f;
      for (int64_t k = 0; k < k_extent; ++k) acc += a_at(i, k) * b_at(k, j);
      c.at(i, j) += acc;
    }
  }
}

void ref_symm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  if (v.side == Side::kLeft) {
    assert(a.rows() == m && a.cols() == m);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        float acc = 0.0f;
        for (int64_t k = 0; k < m; ++k) {
          acc += sym_at(a, i, k, v.uplo) * b.at(k, j);
        }
        c.at(i, j) += acc;
      }
    }
  } else {
    assert(a.rows() == n && a.cols() == n);
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) {
          acc += b.at(i, k) * sym_at(a, k, j, v.uplo);
        }
        c.at(i, j) += acc;
      }
    }
  }
}

void ref_trmm(const Variant& v, const Matrix& a, const Matrix& b,
              Matrix& c) {
  const int64_t m = c.rows();
  const int64_t n = c.cols();
  auto opa = [&](int64_t r, int64_t col) {
    return v.trans == Trans::kN ? tri_at(a, r, col, v.uplo)
                                : tri_at(a, col, r, v.uplo);
  };
  if (v.side == Side::kLeft) {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        float acc = 0.0f;
        for (int64_t k = 0; k < m; ++k) acc += opa(i, k) * b.at(k, j);
        c.at(i, j) += acc;
      }
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t i = 0; i < m; ++i) {
        float acc = 0.0f;
        for (int64_t k = 0; k < n; ++k) acc += b.at(i, k) * opa(k, j);
        c.at(i, j) += acc;
      }
    }
  }
}

void ref_trsm(const Variant& v, const Matrix& a, Matrix& b) {
  const int64_t m = b.rows();
  const int64_t n = b.cols();
  // Unit-diagonal solve; op(A) element (r, c) with zero outside triangle
  // and an implicit 1 on the diagonal.
  auto opa = [&](int64_t r, int64_t c) {
    return v.trans == Trans::kN ? tri_at(a, r, c, v.uplo)
                                : tri_at(a, c, r, v.uplo);
  };
  // Effective triangle of op(A): transposition flips it.
  const Uplo eff =
      v.trans == Trans::kN
          ? v.uplo
          : (v.uplo == Uplo::kLower ? Uplo::kUpper : Uplo::kLower);
  if (v.side == Side::kLeft) {
    // Solve op(A) X = B. Lower effective triangle: forward substitution.
    if (eff == Uplo::kLower) {
      for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t k = 0; k < i; ++k) acc += opa(i, k) * b.at(k, j);
          b.at(i, j) -= acc;
        }
      }
    } else {
      for (int64_t i = m - 1; i >= 0; --i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t k = i + 1; k < m; ++k) acc += opa(i, k) * b.at(k, j);
          b.at(i, j) -= acc;
        }
      }
    }
  } else {
    // Solve X op(A) = B. Lower effective triangle: backward in j.
    if (eff == Uplo::kLower) {
      for (int64_t j = n - 1; j >= 0; --j) {
        for (int64_t i = 0; i < m; ++i) {
          float acc = 0.0f;
          for (int64_t k = j + 1; k < n; ++k) acc += b.at(i, k) * opa(k, j);
          b.at(i, j) -= acc;
        }
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t i = 0; i < m; ++i) {
          float acc = 0.0f;
          for (int64_t k = 0; k < j; ++k) acc += b.at(i, k) * opa(k, j);
          b.at(i, j) -= acc;
        }
      }
    }
  }
}

void ref_syrk(const Variant& v, const Matrix& a, Matrix& c) {
  const int64_t m = c.rows();
  const int64_t k_extent = v.trans == Trans::kN ? a.cols() : a.rows();
  auto opa = [&](int64_t r, int64_t kk) {
    return v.trans == Trans::kN ? a.at(r, kk) : a.at(kk, r);
  };
  for (int64_t j = 0; j < m; ++j) {
    for (int64_t i = 0; i < m; ++i) {
      const bool stored = v.uplo == Uplo::kLower ? i >= j : i <= j;
      if (!stored) continue;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k_extent; ++kk) {
        acc += opa(i, kk) * opa(j, kk);
      }
      c.at(i, j) += acc;
    }
  }
}

}  // namespace

void run_reference(const Variant& v, const Matrix& a, Matrix& b, Matrix* c) {
  switch (v.family) {
    case Family::kGemm:
      assert(c != nullptr);
      ref_gemm(v, a, b, *c);
      break;
    case Family::kSymm:
      assert(c != nullptr);
      ref_symm(v, a, b, *c);
      break;
    case Family::kTrmm:
      assert(c != nullptr);
      ref_trmm(v, a, b, *c);
      break;
    case Family::kTrsm:
      ref_trsm(v, a, b);
      break;
    case Family::kSyrk:
      assert(c != nullptr);
      ref_syrk(v, a, *c);
      break;
  }
}

}  // namespace oa::blas3
