// Column-major float matrices for host-side references and the
// simulator's global-memory buffers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blas3/routine.hpp"
#include "support/rng.hpp"

namespace oa::blas3 {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  float& at(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r + c * rows_)];
  }
  float at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r + c * rows_)];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  void fill_random(Rng& rng) { rng.fill(data_); }

  /// Keep only the `uplo` triangle (diagonal included); the other
  /// triangle is zeroed — the "blank area" of the paper's Fig 6, which
  /// padding_triangular's multi-versioned code requires to be zero.
  void make_triangular(Uplo uplo);

  /// Make unit-diagonal (for TRSM's unit triangular solves).
  void set_unit_diagonal();

  /// Scale every off-diagonal element by `factor`. Triangular solves
  /// amplify rounding error exponentially in the magnitude of the
  /// off-diagonal entries; verification inputs use a small factor so
  /// absolute tolerances stay meaningful.
  void scale_off_diagonal(float factor);

  /// Mirror the `uplo` triangle onto the other so the matrix is
  /// symmetric; storage still holds the full matrix (references read
  /// only the stored triangle).
  void make_symmetric_from(Uplo uplo);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<float> data_;
};

/// max |a - b| over all elements (matrices must have equal shape).
float max_abs_diff(const Matrix& a, const Matrix& b);

/// Relative error bound suitable for float accumulation of length k.
float accumulation_tolerance(int64_t k);

}  // namespace oa::blas3
