// Column-major precision-tagged matrices for host-side references and
// the simulator's global-memory buffers. Storage is always double; the
// precision tag says what scalar type the values model, and every
// store through set() rounds to that precision — so an f32 matrix's
// doubles are always exactly-representable floats (see
// support/precision.hpp for why that reproduces native float
// arithmetic bit-for-bit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blas3/routine.hpp"
#include "support/precision.hpp"
#include "support/rng.hpp"

namespace oa::blas3 {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols, Precision precision = Precision::kF32)
      : rows_(rows), cols_(cols), precision_(precision),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  Precision precision() const { return precision_; }

  double at(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r + c * rows_)];
  }
  /// The only mutator: rounds to the matrix's precision on store.
  void set(int64_t r, int64_t c, double v) {
    data_[static_cast<size_t>(r + c * rows_)] = round_to(precision_, v);
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Uniform values in [-1, 1). One RNG draw per element in storage
  /// order, and every draw is float-valued — so the same seed yields
  /// the same mathematical values at both precisions (exactly
  /// representable in each).
  void fill_random(Rng& rng) { rng.fill(std::span<double>(data_)); }

  /// Keep only the `uplo` triangle (diagonal included); the other
  /// triangle is zeroed — the "blank area" of the paper's Fig 6, which
  /// padding_triangular's multi-versioned code requires to be zero.
  void make_triangular(Uplo uplo);

  /// Make unit-diagonal (for TRSM's unit triangular solves).
  void set_unit_diagonal();

  /// Scale every off-diagonal element by `factor`. Triangular solves
  /// amplify rounding error exponentially in the magnitude of the
  /// off-diagonal entries; verification inputs use a small factor so
  /// absolute tolerances stay meaningful.
  void scale_off_diagonal(double factor);

  /// Mirror the `uplo` triangle onto the other so the matrix is
  /// symmetric; storage still holds the full matrix (references read
  /// only the stored triangle).
  void make_symmetric_from(Uplo uplo);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  Precision precision_ = Precision::kF32;
  std::vector<double> data_;
};

/// max |a - b| over all elements (matrices must have equal shape).
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Relative error bound suitable for accumulation of length k at
/// precision `p`: ~32 * k * eps(p) plus a small absolute floor.
double accumulation_tolerance(int64_t k, Precision p = Precision::kF32);

}  // namespace oa::blas3
