#include "ir/expr.hpp"

#include <cassert>
#include <functional>
#include <sstream>

namespace oa::ir {

ArrayRef ArrayRef::renamed(std::string_view from, const std::string& to) const {
  ArrayRef out{array, {}};
  out.index.reserve(index.size());
  for (const auto& e : index) out.index.push_back(e.renamed(from, to));
  return out;
}

ArrayRef ArrayRef::substituted(std::string_view name,
                               const AffineExpr& repl) const {
  ArrayRef out{array, {}};
  out.index.reserve(index.size());
  for (const auto& e : index) out.index.push_back(e.substituted(name, repl));
  return out;
}

std::string ArrayRef::to_string() const {
  std::ostringstream os;
  os << array;
  for (const auto& e : index) os << '[' << e.to_string() << ']';
  return os.str();
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->value = value;
  out->scalar = scalar;
  out->ref = ref;
  if (a) out->a = a->clone();
  if (b) out->b = b->clone();
  return out;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kConst: {
      std::ostringstream os;
      os << value;
      return os.str();
    }
    case Kind::kScalar: return scalar;
    case Kind::kRef: return ref.to_string();
    case Kind::kNeg: return "-(" + a->to_string() + ")";
    case Kind::kAdd: return "(" + a->to_string() + " + " + b->to_string() + ")";
    case Kind::kSub: return "(" + a->to_string() + " - " + b->to_string() + ")";
    case Kind::kMul: return a->to_string() + " * " + b->to_string();
    case Kind::kDiv: return a->to_string() + " / " + b->to_string();
  }
  return "?";
}

int Expr::count_arith_ops() const {
  switch (kind) {
    case Kind::kConst:
    case Kind::kScalar:
    case Kind::kRef: return 0;
    case Kind::kNeg: return 1 + a->count_arith_ops();
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv:
      return 1 + a->count_arith_ops() + b->count_arith_ops();
  }
  return 0;
}

int Expr::count_loads() const {
  switch (kind) {
    case Kind::kConst:
    case Kind::kScalar: return 0;
    case Kind::kRef: return 1;
    case Kind::kNeg: return a->count_loads();
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv: return a->count_loads() + b->count_loads();
  }
  return 0;
}

void Expr::for_each_ref(const std::function<void(ArrayRef&)>& fn) {
  if (kind == Kind::kRef) fn(ref);
  if (a) a->for_each_ref(fn);
  if (b) b->for_each_ref(fn);
}

void Expr::visit_refs(const std::function<void(const ArrayRef&)>& fn) const {
  if (kind == Kind::kRef) fn(ref);
  if (a) a->visit_refs(fn);
  if (b) b->visit_refs(fn);
}

void Expr::rename_var(std::string_view from, const std::string& to) {
  for_each_ref([&](ArrayRef& r) { r = r.renamed(from, to); });
}

void Expr::substitute_var(std::string_view name, const AffineExpr& repl) {
  for_each_ref([&](ArrayRef& r) { r = r.substituted(name, repl); });
}

bool Expr::equals(const Expr& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kConst: return value == o.value;
    case Kind::kScalar: return scalar == o.scalar;
    case Kind::kRef: return ref == o.ref;
    default: break;
  }
  if (static_cast<bool>(a) != static_cast<bool>(o.a)) return false;
  if (static_cast<bool>(b) != static_cast<bool>(o.b)) return false;
  if (a && !a->equals(*o.a)) return false;
  if (b && !b->equals(*o.b)) return false;
  return true;
}

namespace {
ExprPtr make_node(Expr::Kind kind) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr make_const(double v) {
  auto e = make_node(Expr::Kind::kConst);
  e->value = v;
  return e;
}

ExprPtr make_scalar(std::string name) {
  auto e = make_node(Expr::Kind::kScalar);
  e->scalar = std::move(name);
  return e;
}

ExprPtr make_ref(ArrayRef ref) {
  auto e = make_node(Expr::Kind::kRef);
  e->ref = std::move(ref);
  return e;
}

ExprPtr make_ref(std::string array, std::vector<AffineExpr> index) {
  return make_ref(ArrayRef{std::move(array), std::move(index)});
}

ExprPtr make_neg(ExprPtr a) {
  auto e = make_node(Expr::Kind::kNeg);
  e->a = std::move(a);
  return e;
}

#define OA_BINOP(name, kind_)                 \
  ExprPtr name(ExprPtr a, ExprPtr b) {        \
    auto e = make_node(Expr::Kind::kind_);    \
    e->a = std::move(a);                      \
    e->b = std::move(b);                      \
    return e;                                 \
  }
OA_BINOP(make_add, kAdd)
OA_BINOP(make_sub, kSub)
OA_BINOP(make_mul, kMul)
OA_BINOP(make_div, kDiv)
#undef OA_BINOP

}  // namespace oa::ir
