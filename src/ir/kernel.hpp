// Kernel / Program containers. A Program is what the EPOD translator
// produces and the GPU simulator executes: one or more kernels launched
// in order over a set of global arrays (GM_map-style data-layout
// pre-passes become their own kernels, as in the paper's Step 2 of
// Adaptor_Transpose).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/node.hpp"
#include "support/precision.hpp"
#include "support/status.hpp"

namespace oa::ir {

enum class MemSpace { kGlobal, kShared, kRegister };
const char* mem_space_name(MemSpace space);

/// A (logically 2-D) array. Storage is column-major to match BLAS:
/// offset(r, c) = r + c * (rows + pad_rows). `pad_rows` is the padding
/// SM_alloc inserts automatically to avoid shared-memory bank conflicts
/// ((16,16) -> (16,17) in the paper).
struct ArrayDecl {
  std::string name;
  MemSpace space = MemSpace::kGlobal;
  AffineExpr rows;      // in terms of kernel int params (constants for
                        // shared / register arrays)
  AffineExpr cols;
  int64_t pad_rows = 0;
  /// Value-symmetric (X[a][b] == X[b][a]); set by GM_map(X, Symmetry) on
  /// the reformatted copy so fusion may canonicalize subscript order.
  bool symmetric = false;

  int64_t num_rows(const Env& env) const { return rows.eval(env); }
  int64_t num_cols(const Env& env) const { return cols.eval(env); }
  int64_t leading_dim(const Env& env) const {
    return rows.eval(env) + pad_rows;
  }
  int64_t num_elements(const Env& env) const {
    return leading_dim(env) * num_cols(env);
  }
  int64_t offset(int64_t r, int64_t c, const Env& env) const {
    return r + c * leading_dim(env);
  }
};

/// Per-source-variable tiling metadata recorded by thread_grouping and
/// loop_tiling so that downstream memory components (SM_alloc, Reg_alloc)
/// can compute footprints without re-deriving them from subscripts.
struct VarTiling {
  // Block level: the range of the source variable covered by one thread
  // block starts at `block_base` (affine in block-index vars) and spans
  // `block_extent` values. block_extent == 0 means the axis is not
  // partitioned across blocks (e.g. the k axis).
  std::string block_var;
  AffineExpr block_base;
  int64_t block_extent = 0;
  LoopMap block_map = LoopMap::kNone;
  /// Upper bound of the source variable's full range (e.g. M), used to
  /// clamp block-widened / padded bounds at boundary blocks. Empty
  /// (default AffineExpr, constant 0) means unknown.
  AffineExpr axis_extent;

  // Thread level: range covered by one thread within the block.
  std::string thread_var;
  AffineExpr thread_base;
  int64_t thread_extent = 0;
  LoopMap thread_map = LoopMap::kNone;

  // Sequential tiling (loop_tiling): `tile_var` iterates tile origins in
  // steps of `tile_extent` (the kk loop for the k axis).
  std::string tile_var;
  std::string tile_label;
  int64_t tile_extent = 0;

  // Label of the innermost (point) loop that iterates this variable.
  std::string point_label;
};

struct Kernel {
  std::string name;
  /// Shared and register arrays private to this kernel.
  std::vector<ArrayDecl> local_arrays;
  std::vector<NodePtr> body;
  /// Tiling metadata keyed by source variable name ("i", "j", "k").
  std::map<std::string, VarTiling, std::less<>> tiling;

  Kernel() = default;
  Kernel(const Kernel& o) { *this = o; }
  Kernel& operator=(const Kernel& o);
  Kernel(Kernel&&) = default;
  Kernel& operator=(Kernel&&) = default;

  Node* find(std::string_view label) { return find_loop(body, label); }
  const Node* find(std::string_view label) const {
    return find_loop(body, label);
  }

  ArrayDecl* find_local_array(std::string_view name);

  /// Mapped loops in nesting order (block loops before thread loops) —
  /// used to derive the launch configuration.
  std::vector<const Node*> mapped_loops() const;
};

struct LaunchConfig {
  int64_t grid_x = 1, grid_y = 1;
  int64_t block_x = 1, block_y = 1;
  bool serial_grid_y = false;  // waves along grid Y run in order
  int64_t threads_per_block() const { return block_x * block_y; }
  int64_t num_blocks() const { return grid_x * grid_y; }
};

/// Derive the launch configuration of `kernel` under `env`. Fails when
/// mapped loops are malformed (non-unit step after normalization, a
/// thread loop outside a block loop, data-dependent extents).
StatusOr<LaunchConfig> launch_config(const Kernel& kernel, const Env& env);

/// How a batched program distributes batch members over the grid
/// (set by the batch_grouping component; kNone on single-call
/// programs). The member kernels themselves are batch-oblivious —
/// the grouping is an execution/pricing attribute, like the launch
/// configuration.
enum class BatchGrouping { kNone, kPerMember, kBatchTiled };
const char* batch_grouping_name(BatchGrouping g);

struct Program {
  std::string name;
  /// Scalar precision of every global array and every arithmetic
  /// operation. Flows into the simulator's element-size pricing
  /// (bytes per access, words per register/shared slot).
  Precision precision = Precision::kF32;
  /// True for batched routine families: the program's kernels describe
  /// ONE batch member; execution replicates the member grid over the
  /// batch dimension (per the grouping below), and every global array
  /// is allocated per member. The batch count is a runtime value
  /// (gpusim::RunOptions int param "BATCH" for pricing; the batched
  /// execute entry points take it explicitly).
  bool batched = false;
  /// Grid layout over the batch dimension (kPerMember when a batched
  /// program has not had a batch_grouping component applied yet).
  BatchGrouping batch_grouping = BatchGrouping::kNone;
  /// Integer size parameters (M, N, K) — bound at run time.
  std::vector<std::string> int_params;
  /// Scalar (float) parameters (alpha, beta).
  std::vector<std::string> real_params;
  /// Runtime boolean parameters introduced by multi-versioning
  /// ("blank_zero" for Adaptor_Triangular's padded version).
  std::vector<std::string> bool_params;
  /// Global arrays, shared by all kernels (inputs, outputs, and
  /// GM_map-created reformatted copies).
  std::vector<ArrayDecl> globals;
  /// Kernels launched in order; the last one is the "main" computation.
  std::vector<Kernel> kernels;

  Kernel& main_kernel() { return kernels.back(); }
  const Kernel& main_kernel() const { return kernels.back(); }

  ArrayDecl* find_global(std::string_view name);
  const ArrayDecl* find_global(std::string_view name) const;
  bool has_bool_param(std::string_view name) const;
};

}  // namespace oa::ir
