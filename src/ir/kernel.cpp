#include "ir/kernel.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace oa::ir {

const char* mem_space_name(MemSpace space) {
  switch (space) {
    case MemSpace::kGlobal: return "global";
    case MemSpace::kShared: return "shared";
    case MemSpace::kRegister: return "register";
  }
  return "?";
}

const char* batch_grouping_name(BatchGrouping g) {
  switch (g) {
    case BatchGrouping::kNone: return "none";
    case BatchGrouping::kPerMember: return "per_member";
    case BatchGrouping::kBatchTiled: return "batch_tiled";
  }
  return "?";
}

Kernel& Kernel::operator=(const Kernel& o) {
  if (this == &o) return *this;
  name = o.name;
  local_arrays = o.local_arrays;
  body = clone_body(o.body);
  tiling = o.tiling;
  return *this;
}

ArrayDecl* Kernel::find_local_array(std::string_view name) {
  for (auto& a : local_arrays) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::vector<const Node*> Kernel::mapped_loops() const {
  std::vector<const Node*> out;
  walk_const(body, [&](const Node& n) {
    if (n.is_loop() && n.map != LoopMap::kNone) out.push_back(&n);
    return true;
  });
  return out;
}

StatusOr<LaunchConfig> launch_config(const Kernel& kernel, const Env& env) {
  LaunchConfig cfg;
  bool seen_thread = false;
  for (const Node* loop : kernel.mapped_loops()) {
    if (loop->step != 1) {
      return internal_error("mapped loop '" + loop->label +
                            "' has non-unit step");
    }
    const int64_t lo = loop->lb.eval_max(env);
    const int64_t hi = loop->ub.eval_min(env);
    int64_t extent = std::max<int64_t>(0, hi - lo);
    if (loop->ub_div > 1) extent = (extent + loop->ub_div - 1) / loop->ub_div;
    switch (loop->map) {
      case LoopMap::kBlockX:
        if (seen_thread) {
          return internal_error("block loop nested inside thread loop");
        }
        cfg.grid_x = extent;
        break;
      case LoopMap::kBlockYSerial:
        cfg.serial_grid_y = true;
        [[fallthrough]];
      case LoopMap::kBlockY:
        if (seen_thread) {
          return internal_error("block loop nested inside thread loop");
        }
        cfg.grid_y = extent;
        break;
      case LoopMap::kThreadX:
        seen_thread = true;
        cfg.block_x = extent;
        break;
      case LoopMap::kThreadY:
        seen_thread = true;
        cfg.block_y = extent;
        break;
      case LoopMap::kNone:
        break;
    }
  }
  if (cfg.num_blocks() <= 0 || cfg.threads_per_block() <= 0) {
    return internal_error(
        str_format("degenerate launch config for kernel '%s'",
                   kernel.name.c_str()));
  }
  return cfg;
}

ArrayDecl* Program::find_global(std::string_view name) {
  for (auto& a : globals) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const ArrayDecl* Program::find_global(std::string_view name) const {
  for (const auto& a : globals) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

bool Program::has_bool_param(std::string_view name) const {
  return std::find(bool_params.begin(), bool_params.end(), name) !=
         bool_params.end();
}

}  // namespace oa::ir
