// Pretty-printer: renders a Program as annotated pseudo-CUDA, used in
// examples, debugging, and the Fig-14 bench output.
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace oa::ir {

std::string to_string(const Node& node, int indent = 0);
std::string to_string(const Kernel& kernel);
std::string to_string(const Program& program);

}  // namespace oa::ir
