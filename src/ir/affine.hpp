// Affine expressions over named symbols (loop variables, kernel
// parameters, block/thread indices). The whole IR keeps subscripts and
// loop bounds affine, which is what makes dependence testing, footprint
// computation and data-free performance simulation exact — the same
// property the paper gets from its polyhedral representation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace oa::ir {

/// Environment binding symbol names to concrete values at simulation /
/// evaluation time.
using Env = std::map<std::string, int64_t, std::less<>>;

/// sum_i coeff_i * sym_i + constant.
class AffineExpr {
 public:
  AffineExpr() = default;
  explicit AffineExpr(int64_t constant) : constant_(constant) {}

  /// The expression consisting of a single symbol.
  static AffineExpr sym(std::string name, int64_t coeff = 1);
  static AffineExpr constant(int64_t c) { return AffineExpr(c); }

  AffineExpr& operator+=(const AffineExpr& o);
  AffineExpr& operator-=(const AffineExpr& o);
  AffineExpr& operator*=(int64_t k);

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
    a += b;
    return a;
  }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
    a -= b;
    return a;
  }
  friend AffineExpr operator*(AffineExpr a, int64_t k) {
    a *= k;
    return a;
  }
  friend AffineExpr operator+(AffineExpr a, int64_t c) {
    a += AffineExpr(c);
    return a;
  }
  friend AffineExpr operator-(AffineExpr a, int64_t c) {
    a -= AffineExpr(c);
    return a;
  }

  bool operator==(const AffineExpr& o) const = default;

  int64_t constant_term() const { return constant_; }
  int64_t coeff(std::string_view name) const;
  bool depends_on(std::string_view name) const { return coeff(name) != 0; }
  bool is_constant() const { return coeffs_.empty(); }

  /// All symbols with non-zero coefficient.
  std::vector<std::string> symbols() const;

  /// Evaluate under `env`; every referenced symbol must be bound.
  int64_t eval(const Env& env) const;

  /// Replace symbol `name` by `replacement` (affine substitution).
  AffineExpr substituted(std::string_view name,
                         const AffineExpr& replacement) const;

  /// Rename symbol `from` to `to` (no-op if absent).
  AffineExpr renamed(std::string_view from, const std::string& to) const;

  /// e.g. "16*i + k - 1" ("0" for the zero expression).
  std::string to_string() const;

 private:
  std::map<std::string, int64_t, std::less<>> coeffs_;  // name -> coeff != 0
  int64_t constant_ = 0;
};

/// A loop bound: max (for lower bounds) or min (for upper bounds) over a
/// set of affine terms. Tiling / peeling / triangular domains introduce
/// the extra terms: e.g. `k < min(K, kk + KT, i + 1)`.
class Bound {
 public:
  Bound() = default;
  Bound(AffineExpr e) { terms_.push_back(std::move(e)); }  // NOLINT
  Bound(int64_t c) { terms_.emplace_back(c); }             // NOLINT

  static Bound min_of(std::vector<AffineExpr> terms) {
    Bound b;
    b.terms_ = std::move(terms);
    return b;
  }

  bool operator==(const Bound& o) const = default;

  const std::vector<AffineExpr>& terms() const { return terms_; }
  std::vector<AffineExpr>& terms() { return terms_; }
  bool is_single() const { return terms_.size() == 1; }

  /// Evaluate as a min (`is_upper`) or max (lower bound) of the terms.
  int64_t eval_min(const Env& env) const;
  int64_t eval_max(const Env& env) const;

  void add_term(AffineExpr e) { terms_.push_back(std::move(e)); }

  Bound substituted(std::string_view name, const AffineExpr& repl) const;
  Bound renamed(std::string_view from, const std::string& to) const;
  bool depends_on(std::string_view name) const;

  /// "min(K, kk+16)" / single term prints bare.
  std::string to_string(bool is_upper) const;

 private:
  std::vector<AffineExpr> terms_;
};

/// Affine predicate for guards: `expr OP 0`.
struct Pred {
  enum class Op { kEq, kGe, kLt };
  AffineExpr expr;
  Op op = Op::kGe;

  bool operator==(const Pred&) const = default;

  bool eval(const Env& env) const {
    int64_t v = expr.eval(env);
    switch (op) {
      case Op::kEq: return v == 0;
      case Op::kGe: return v >= 0;
      case Op::kLt: return v < 0;
    }
    return false;
  }
  std::string to_string() const;
};

}  // namespace oa::ir
