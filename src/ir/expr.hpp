// Scalar expression trees for statement right-hand sides:
//   C[i][j] += alpha * A[i][k] * B[k][j]
// Subscripts stay affine (ir/affine.hpp); the value computation is a small
// tree of +,-,*,/ over array references, scalar parameters and constants.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/affine.hpp"

namespace oa::ir {

/// Reference to one element of a (logically 2-D) array.
struct ArrayRef {
  std::string array;
  std::vector<AffineExpr> index;  // one affine expr per dimension

  bool operator==(const ArrayRef&) const = default;

  ArrayRef renamed(std::string_view from, const std::string& to) const;
  ArrayRef substituted(std::string_view name, const AffineExpr& repl) const;
  std::string to_string() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kConst, kScalar, kRef, kNeg, kAdd, kSub, kMul, kDiv };

  Kind kind;
  double value = 0.0;   // kConst
  std::string scalar;   // kScalar: named scalar parameter (alpha, beta)
  ArrayRef ref;         // kRef
  ExprPtr a, b;         // operands (kNeg uses a only)

  ExprPtr clone() const;
  std::string to_string() const;

  /// Number of arithmetic operations in the tree (for FLOP accounting).
  int count_arith_ops() const;
  /// Number of array-element loads in the tree.
  int count_loads() const;

  /// Apply fn to every ArrayRef in the tree (including nested).
  void for_each_ref(const std::function<void(ArrayRef&)>& fn);
  /// Const traversal (distinct name: const-overloading std::function
  /// parameters is ambiguous).
  void visit_refs(const std::function<void(const ArrayRef&)>& fn) const;

  void rename_var(std::string_view from, const std::string& to);
  void substitute_var(std::string_view name, const AffineExpr& repl);

  /// Structural equality.
  bool equals(const Expr& o) const;
};

ExprPtr make_const(double v);
ExprPtr make_scalar(std::string name);
ExprPtr make_ref(ArrayRef ref);
ExprPtr make_ref(std::string array, std::vector<AffineExpr> index);
ExprPtr make_neg(ExprPtr a);
ExprPtr make_add(ExprPtr a, ExprPtr b);
ExprPtr make_sub(ExprPtr a, ExprPtr b);
ExprPtr make_mul(ExprPtr a, ExprPtr b);
ExprPtr make_div(ExprPtr a, ExprPtr b);

}  // namespace oa::ir
