#include "ir/affine.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace oa::ir {

AffineExpr AffineExpr::sym(std::string name, int64_t coeff) {
  AffineExpr e;
  if (coeff != 0) e.coeffs_[std::move(name)] = coeff;
  return e;
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& o) {
  for (const auto& [name, c] : o.coeffs_) {
    auto it = coeffs_.find(name);
    if (it == coeffs_.end()) {
      coeffs_.emplace(name, c);
    } else {
      it->second += c;
      if (it->second == 0) coeffs_.erase(it);
    }
  }
  constant_ += o.constant_;
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& o) {
  AffineExpr neg = o;
  neg *= -1;
  return *this += neg;
}

AffineExpr& AffineExpr::operator*=(int64_t k) {
  if (k == 0) {
    coeffs_.clear();
    constant_ = 0;
    return *this;
  }
  for (auto& [_, c] : coeffs_) c *= k;
  constant_ *= k;
  return *this;
}

int64_t AffineExpr::coeff(std::string_view name) const {
  auto it = coeffs_.find(name);
  return it == coeffs_.end() ? 0 : it->second;
}

std::vector<std::string> AffineExpr::symbols() const {
  std::vector<std::string> out;
  out.reserve(coeffs_.size());
  for (const auto& [name, _] : coeffs_) out.push_back(name);
  return out;
}

int64_t AffineExpr::eval(const Env& env) const {
  int64_t v = constant_;
  for (const auto& [name, c] : coeffs_) {
    auto it = env.find(name);
    assert(it != env.end() && "unbound symbol in AffineExpr::eval");
    v += c * it->second;
  }
  return v;
}

AffineExpr AffineExpr::substituted(std::string_view name,
                                   const AffineExpr& replacement) const {
  auto it = coeffs_.find(name);
  if (it == coeffs_.end()) return *this;
  int64_t c = it->second;
  AffineExpr out = *this;
  out.coeffs_.erase(std::string(name));
  AffineExpr scaled = replacement;
  scaled *= c;
  out += scaled;
  return out;
}

AffineExpr AffineExpr::renamed(std::string_view from,
                               const std::string& to) const {
  return substituted(from, AffineExpr::sym(to));
}

std::string AffineExpr::to_string() const {
  if (coeffs_.empty()) return std::to_string(constant_);
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, c] : coeffs_) {
    if (first) {
      if (c == -1) {
        os << '-';
      } else if (c != 1) {
        os << c << '*';
      }
      os << name;
      first = false;
      continue;
    }
    if (c < 0) {
      os << " - ";
      if (c != -1) os << -c << '*';
    } else {
      os << " + ";
      if (c != 1) os << c << '*';
    }
    os << name;
  }
  if (constant_ > 0) os << " + " << constant_;
  if (constant_ < 0) os << " - " << -constant_;
  return os.str();
}

int64_t Bound::eval_min(const Env& env) const {
  assert(!terms_.empty());
  int64_t v = terms_[0].eval(env);
  for (size_t i = 1; i < terms_.size(); ++i) {
    v = std::min(v, terms_[i].eval(env));
  }
  return v;
}

int64_t Bound::eval_max(const Env& env) const {
  assert(!terms_.empty());
  int64_t v = terms_[0].eval(env);
  for (size_t i = 1; i < terms_.size(); ++i) {
    v = std::max(v, terms_[i].eval(env));
  }
  return v;
}

Bound Bound::substituted(std::string_view name, const AffineExpr& repl) const {
  Bound out;
  out.terms_.reserve(terms_.size());
  for (const auto& t : terms_) out.terms_.push_back(t.substituted(name, repl));
  return out;
}

Bound Bound::renamed(std::string_view from, const std::string& to) const {
  Bound out;
  out.terms_.reserve(terms_.size());
  for (const auto& t : terms_) out.terms_.push_back(t.renamed(from, to));
  return out;
}

bool Bound::depends_on(std::string_view name) const {
  return std::any_of(terms_.begin(), terms_.end(),
                     [&](const AffineExpr& t) { return t.depends_on(name); });
}

std::string Bound::to_string(bool is_upper) const {
  if (terms_.size() == 1) return terms_[0].to_string();
  std::ostringstream os;
  os << (is_upper ? "min(" : "max(");
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i) os << ", ";
    os << terms_[i].to_string();
  }
  os << ')';
  return os.str();
}

std::string Pred::to_string() const {
  std::string rel;
  switch (op) {
    case Op::kEq: rel = " == 0"; break;
    case Op::kGe: rel = " >= 0"; break;
    case Op::kLt: rel = " < 0"; break;
  }
  return expr.to_string() + rel;
}

}  // namespace oa::ir
