#include "ir/interval.hpp"

#include <algorithm>

namespace oa::ir {

std::optional<Interval> range_of(const AffineExpr& e, const RangeEnv& env) {
  Interval out{e.constant_term(), e.constant_term()};
  for (const auto& name : e.symbols()) {
    auto it = env.find(name);
    if (it == env.end()) return std::nullopt;
    out = out + it->second.scaled(e.coeff(name));
  }
  return out;
}

namespace {

void collect_ranges(const std::vector<NodePtr>& body, RangeEnv& env,
                    const Env& params) {
  for (const auto& n : body) {
    if (n->is_loop()) {
      // Bound the loop variable: evaluate lb/ub with parameters bound and
      // loop variables replaced by their (already collected) ranges.
      Interval lo{0, 0};
      Interval hi{0, 0};
      bool first = true;
      for (const auto& t : n->lb.terms()) {
        auto r = range_of(t, env);
        if (!r) {
          // Substitute parameters and retry.
          AffineExpr s = t;
          for (const auto& [p, v] : params) {
            s = s.substituted(p, AffineExpr::constant(v));
          }
          r = range_of(s, env);
        }
        if (r) lo = first ? *r : Interval{std::max(lo.lo, r->lo),
                                          std::max(lo.hi, r->hi)};
        first = false;
      }
      first = true;
      for (const auto& t : n->ub.terms()) {
        AffineExpr s = t;
        for (const auto& [p, v] : params) {
          s = s.substituted(p, AffineExpr::constant(v));
        }
        auto r = range_of(s, env);
        if (r) hi = first ? *r : Interval{std::min(hi.lo, r->lo),
                                          std::min(hi.hi, r->hi)};
        first = false;
      }
      int64_t hi_val = hi.hi;
      if (n->ub_div > 1) {
        // Block loops iterate ceil(ub / ub_div) times over [0, trips).
        hi_val = (hi_val + n->ub_div - 1) / n->ub_div;
      }
      Interval var_range{lo.lo, std::max(lo.lo, hi_val - 1)};
      env[n->var] = var_range;
    }
    collect_ranges(n->body, env, params);
    collect_ranges(n->then_body, env, params);
    collect_ranges(n->else_body, env, params);
  }
}

}  // namespace

RangeEnv loop_var_ranges(const Kernel& kernel, const Env& params) {
  RangeEnv env;
  collect_ranges(kernel.body, env, params);
  return env;
}

}  // namespace oa::ir
