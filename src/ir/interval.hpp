// Interval analysis over affine expressions: given (possibly symbolic)
// ranges of loop variables, bound the values a subscript can take. Used
// for shared-memory footprint checks and structural validation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "ir/affine.hpp"
#include "ir/kernel.hpp"

namespace oa::ir {

/// Closed integer interval [lo, hi].
struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  bool operator==(const Interval&) const = default;

  int64_t width() const { return hi - lo + 1; }
  bool contains(int64_t v) const { return v >= lo && v <= hi; }

  Interval operator+(const Interval& o) const {
    return {lo + o.lo, hi + o.hi};
  }
  Interval scaled(int64_t k) const {
    return k >= 0 ? Interval{lo * k, hi * k} : Interval{hi * k, lo * k};
  }
  Interval hull(const Interval& o) const {
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }
};

/// Map from variable name to the interval of values it takes.
using RangeEnv = std::map<std::string, Interval, std::less<>>;

/// Bound `e` given ranges for its symbols. Returns nullopt when a symbol
/// is unbound.
std::optional<Interval> range_of(const AffineExpr& e, const RangeEnv& env);

/// Ranges of all loop variables in a kernel, with integer parameters
/// bound by `params` (needed to evaluate bounds like min(M, kk+16)).
/// Block/thread-mapped loops contribute their full extent.
RangeEnv loop_var_ranges(const Kernel& kernel, const Env& params);

}  // namespace oa::ir
