#include "ir/validate.hpp"

#include <set>

#include "support/strings.hpp"

namespace oa::ir {
namespace {

struct Scope {
  const Program* program;
  const Kernel* kernel;
  std::set<std::string, std::less<>> vars;  // in-scope symbols
};

const ArrayDecl* find_array(const Scope& s, std::string_view name) {
  for (const auto& a : s.kernel->local_arrays) {
    if (a.name == name) return &a;
  }
  return s.program->find_global(name);
}

Status check_expr_symbols(const AffineExpr& e, const Scope& s,
                          std::string_view where) {
  for (const auto& sym : e.symbols()) {
    if (!s.vars.contains(sym)) {
      return internal_error(str_format(
          "symbol '%s' used out of scope in %s", sym.c_str(),
          std::string(where).c_str()));
    }
  }
  return Status::ok();
}

Status check_ref(const ArrayRef& r, const Scope& s) {
  const ArrayDecl* decl = find_array(s, r.array);
  if (decl == nullptr) {
    return internal_error("reference to undeclared array '" + r.array + "'");
  }
  if (r.index.size() != 2) {
    return internal_error(str_format("array '%s' referenced with rank %zu",
                                     r.array.c_str(), r.index.size()));
  }
  for (const auto& e : r.index) {
    OA_RETURN_IF_ERROR(check_expr_symbols(e, s, "subscript of " + r.array));
  }
  return Status::ok();
}

Status check_rhs(const Expr& e, const Scope& s) {
  Status status = Status::ok();
  e.visit_refs([&](const ArrayRef& r) {
    if (status.is_ok()) {
      Status rs = check_ref(r, s);
      if (!rs.is_ok()) status = rs;
    }
  });
  return status;
}

Status check_body(const std::vector<NodePtr>& body, Scope& s,
                  bool inside_thread);

Status check_node(const Node& n, Scope& s, bool inside_thread) {
  switch (n.kind) {
    case Node::Kind::kLoop: {
      if (n.var.empty() || n.label.empty()) {
        return internal_error("loop with empty var or label");
      }
      if (s.vars.contains(n.var)) {
        return internal_error("loop variable '" + n.var +
                              "' shadows an in-scope symbol");
      }
      if (n.step == 0) return internal_error("loop with zero step");
      for (const auto& t : n.lb.terms()) {
        OA_RETURN_IF_ERROR(check_expr_symbols(t, s, "lb of " + n.label));
      }
      for (const auto& t : n.ub.terms()) {
        OA_RETURN_IF_ERROR(check_expr_symbols(t, s, "ub of " + n.label));
      }
      const bool is_thread = n.map == LoopMap::kThreadX ||
                             n.map == LoopMap::kThreadY;
      const bool is_block = n.map == LoopMap::kBlockX ||
                            n.map == LoopMap::kBlockY ||
                            n.map == LoopMap::kBlockYSerial;
      if (is_block && inside_thread) {
        return internal_error("block-mapped loop '" + n.label +
                              "' nested inside a thread-mapped loop");
      }
      s.vars.insert(n.var);
      Status st = check_body(n.body, s, inside_thread || is_thread);
      s.vars.erase(n.var);
      return st;
    }
    case Node::Kind::kAssign: {
      OA_RETURN_IF_ERROR(check_ref(n.lhs, s));
      if (!n.rhs) return internal_error("assignment without rhs");
      return check_rhs(*n.rhs, s);
    }
    case Node::Kind::kSync:
      return Status::ok();
    case Node::Kind::kIf: {
      for (const auto& p : n.conds) {
        OA_RETURN_IF_ERROR(check_expr_symbols(p.expr, s, "if-cond"));
      }
      if (!n.bool_param.empty() &&
          !s.program->has_bool_param(n.bool_param)) {
        return internal_error("undeclared bool param '" + n.bool_param + "'");
      }
      OA_RETURN_IF_ERROR(check_body(n.then_body, s, inside_thread));
      return check_body(n.else_body, s, inside_thread);
    }
  }
  return Status::ok();
}

Status check_body(const std::vector<NodePtr>& body, Scope& s,
                  bool inside_thread) {
  for (const auto& n : body) {
    OA_RETURN_IF_ERROR(check_node(*n, s, inside_thread));
  }
  return Status::ok();
}

}  // namespace

Status validate_kernel(const Program& program, const Kernel& kernel) {
  Scope scope{&program, &kernel, {}};
  for (const auto& p : program.int_params) scope.vars.insert(p);
  // Unique labels within the kernel.
  std::set<std::string, std::less<>> labels;
  Status dup = Status::ok();
  walk_const(kernel.body, [&](const Node& n) {
    if (n.is_loop() && !labels.insert(n.label).second && dup.is_ok()) {
      dup = internal_error("duplicate loop label '" + n.label + "' in '" +
                           kernel.name + "'");
    }
    return true;
  });
  OA_RETURN_IF_ERROR(dup);
  return check_body(kernel.body, scope, false);
}

Status validate(const Program& program) {
  if (program.kernels.empty()) {
    return internal_error("program '" + program.name + "' has no kernels");
  }
  std::set<std::string, std::less<>> names;
  for (const auto& a : program.globals) {
    if (!names.insert(a.name).second) {
      return internal_error("duplicate global array '" + a.name + "'");
    }
    if (a.space != MemSpace::kGlobal) {
      return internal_error("global array '" + a.name +
                            "' not in global space");
    }
  }
  for (const auto& k : program.kernels) {
    for (const auto& a : k.local_arrays) {
      if (a.space == MemSpace::kGlobal) {
        return internal_error("kernel-local array '" + a.name +
                              "' in global space");
      }
      if (!a.rows.is_constant() || !a.cols.is_constant()) {
        return internal_error("kernel-local array '" + a.name +
                              "' with non-constant shape");
      }
    }
    OA_RETURN_IF_ERROR(validate_kernel(program, k));
  }
  return Status::ok();
}

}  // namespace oa::ir
