#include "ir/printer.hpp"

#include <sstream>

namespace oa::ir {
namespace {

const char* op_text(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAddAssign: return "+=";
    case AssignOp::kSubAssign: return "-=";
    case AssignOp::kDivAssign: return "/=";
  }
  return "?";
}

void print_body(const std::vector<NodePtr>& body, int indent,
                std::ostringstream& os);

void print_node(const Node& n, int indent, std::ostringstream& os) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (n.kind) {
    case Node::Kind::kLoop: {
      os << pad << n.label << ": for (" << n.var << " = "
         << n.lb.to_string(false) << "; " << n.var << " < ";
      if (n.ub_div > 1) os << "ceil(" << n.ub.to_string(true) << ", "
                           << n.ub_div << ")";
      else os << n.ub.to_string(true);
      os << "; " << n.var;
      if (n.step == 1) {
        os << "++";
      } else {
        os << " += " << n.step;
      }
      os << ")";
      if (n.map != LoopMap::kNone) os << "  // " << loop_map_name(n.map);
      if (n.unroll > 1) os << "  // unroll x" << n.unroll;
      os << " {\n";
      print_body(n.body, indent + 1, os);
      os << pad << "}\n";
      break;
    }
    case Node::Kind::kAssign:
      os << pad << n.lhs.to_string() << ' ' << op_text(n.op) << ' '
         << n.rhs->to_string() << ";\n";
      break;
    case Node::Kind::kSync:
      os << pad << "__syncthreads();\n";
      break;
    case Node::Kind::kIf: {
      os << pad << "if (";
      bool first = true;
      if (!n.bool_param.empty()) {
        os << n.bool_param;
        first = false;
      }
      for (const auto& p : n.conds) {
        if (!first) os << " && ";
        os << p.to_string();
        first = false;
      }
      os << ") {\n";
      print_body(n.then_body, indent + 1, os);
      if (!n.else_body.empty()) {
        os << pad << "} else {\n";
        print_body(n.else_body, indent + 1, os);
      }
      os << pad << "}\n";
      break;
    }
  }
}

void print_body(const std::vector<NodePtr>& body, int indent,
                std::ostringstream& os) {
  for (const auto& n : body) print_node(*n, indent, os);
}

void print_array(const ArrayDecl& a, std::ostringstream& os) {
  os << "  " << mem_space_name(a.space) << " float " << a.name << '['
     << a.rows.to_string();
  if (a.pad_rows) os << '+' << a.pad_rows;
  os << "][" << a.cols.to_string() << "];  // column-major\n";
}

}  // namespace

std::string to_string(const Node& node, int indent) {
  std::ostringstream os;
  print_node(node, indent, os);
  return os.str();
}

std::string to_string(const Kernel& kernel) {
  std::ostringstream os;
  os << "kernel " << kernel.name << " {\n";
  for (const auto& a : kernel.local_arrays) print_array(a, os);
  print_body(kernel.body, 1, os);
  os << "}\n";
  return os.str();
}

std::string to_string(const Program& program) {
  std::ostringstream os;
  os << "program " << program.name << "(";
  for (size_t i = 0; i < program.int_params.size(); ++i) {
    if (i) os << ", ";
    os << "int " << program.int_params[i];
  }
  for (const auto& p : program.real_params) os << ", float " << p;
  for (const auto& p : program.bool_params) os << ", bool " << p;
  os << ") {\n";
  for (const auto& a : program.globals) print_array(a, os);
  os << "\n";
  for (const auto& k : program.kernels) {
    std::istringstream is(to_string(k));
    std::string line;
    while (std::getline(is, line)) os << "  " << line << '\n';
  }
  os << "}\n";
  return os.str();
}

}  // namespace oa::ir
