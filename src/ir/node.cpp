#include "ir/node.hpp"

#include <cassert>

namespace oa::ir {

const char* loop_map_name(LoopMap map) {
  switch (map) {
    case LoopMap::kNone: return "seq";
    case LoopMap::kBlockX: return "blockIdx.x";
    case LoopMap::kBlockY: return "blockIdx.y";
    case LoopMap::kThreadX: return "threadIdx.x";
    case LoopMap::kThreadY: return "threadIdx.y";
    case LoopMap::kBlockYSerial: return "blockIdx.y(serial)";
  }
  return "?";
}

NodePtr Node::clone() const {
  auto out = std::make_unique<Node>(kind);
  out->label = label;
  out->var = var;
  out->orig_var = orig_var;
  out->lb = lb;
  out->ub = ub;
  out->step = step;
  out->ub_div = ub_div;
  out->map = map;
  out->unroll = unroll;
  out->body = clone_body(body);
  out->lhs = lhs;
  out->op = op;
  out->staging_copy = staging_copy;
  if (rhs) out->rhs = rhs->clone();
  out->conds = conds;
  out->bool_param = bool_param;
  out->then_body = clone_body(then_body);
  out->else_body = clone_body(else_body);
  return out;
}

void Node::rename_uses(std::string_view from, const std::string& to) {
  substitute_uses(from, AffineExpr::sym(to));
}

void Node::substitute_uses(std::string_view name, const AffineExpr& repl) {
  switch (kind) {
    case Kind::kLoop:
      lb = lb.substituted(name, repl);
      ub = ub.substituted(name, repl);
      for (auto& n : body) n->substitute_uses(name, repl);
      break;
    case Kind::kAssign:
      lhs = lhs.substituted(name, repl);
      if (rhs) rhs->substitute_var(name, repl);
      break;
    case Kind::kSync:
      break;
    case Kind::kIf:
      for (auto& p : conds) p.expr = p.expr.substituted(name, repl);
      for (auto& n : then_body) n->substitute_uses(name, repl);
      for (auto& n : else_body) n->substitute_uses(name, repl);
      break;
  }
}

namespace {
bool bodies_equal(const std::vector<NodePtr>& a,
                  const std::vector<NodePtr>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->equals(*b[i])) return false;
  }
  return true;
}
}  // namespace

bool Node::equals(const Node& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kLoop:
      return label == o.label && var == o.var && lb == o.lb && ub == o.ub &&
             step == o.step && ub_div == o.ub_div && map == o.map &&
             unroll == o.unroll && bodies_equal(body, o.body);
    case Kind::kAssign: {
      if (!(lhs == o.lhs) || op != o.op || staging_copy != o.staging_copy) {
        return false;
      }
      if (static_cast<bool>(rhs) != static_cast<bool>(o.rhs)) return false;
      return !rhs || rhs->equals(*o.rhs);
    }
    case Kind::kSync:
      return true;
    case Kind::kIf:
      return conds == o.conds && bool_param == o.bool_param &&
             bodies_equal(then_body, o.then_body) &&
             bodies_equal(else_body, o.else_body);
  }
  return false;
}

NodePtr make_loop(std::string label, std::string var, Bound lb, Bound ub,
                  int64_t step) {
  auto n = std::make_unique<Node>(Node::Kind::kLoop);
  n->label = std::move(label);
  n->var = std::move(var);
  n->orig_var = n->var;
  n->lb = std::move(lb);
  n->ub = std::move(ub);
  n->step = step;
  return n;
}

NodePtr make_assign(ArrayRef lhs, AssignOp op, ExprPtr rhs) {
  auto n = std::make_unique<Node>(Node::Kind::kAssign);
  n->lhs = std::move(lhs);
  n->op = op;
  n->rhs = std::move(rhs);
  return n;
}

NodePtr make_sync() { return std::make_unique<Node>(Node::Kind::kSync); }

NodePtr make_if(std::vector<Pred> conds, std::vector<NodePtr> then_body,
                std::vector<NodePtr> else_body) {
  auto n = std::make_unique<Node>(Node::Kind::kIf);
  n->conds = std::move(conds);
  n->then_body = std::move(then_body);
  n->else_body = std::move(else_body);
  return n;
}

NodePtr clone_body_node(const Node& n) { return n.clone(); }

std::vector<NodePtr> clone_body(const std::vector<NodePtr>& body) {
  std::vector<NodePtr> out;
  out.reserve(body.size());
  for (const auto& n : body) out.push_back(n->clone());
  return out;
}

void walk(std::vector<NodePtr>& body, const std::function<bool(Node&)>& fn) {
  for (auto& n : body) {
    if (!fn(*n)) continue;
    walk(n->body, fn);
    walk(n->then_body, fn);
    walk(n->else_body, fn);
  }
}

void walk_const(const std::vector<NodePtr>& body,
                const std::function<bool(const Node&)>& fn) {
  for (const auto& n : body) {
    if (!fn(*n)) continue;
    walk_const(n->body, fn);
    walk_const(n->then_body, fn);
    walk_const(n->else_body, fn);
  }
}

Node* find_loop(std::vector<NodePtr>& body, std::string_view label) {
  Node* found = nullptr;
  walk(body, [&](Node& n) {
    if (found) return false;
    if (n.is_loop() && n.label == label) {
      found = &n;
      return false;
    }
    return true;
  });
  return found;
}

const Node* find_loop(const std::vector<NodePtr>& body,
                      std::string_view label) {
  const Node* found = nullptr;
  walk_const(body, [&](const Node& n) {
    if (found) return false;
    if (n.is_loop() && n.label == label) {
      found = &n;
      return false;
    }
    return true;
  });
  return found;
}

namespace {
LoopLocation locate_in(std::vector<NodePtr>& body, std::string_view label) {
  for (size_t i = 0; i < body.size(); ++i) {
    Node& n = *body[i];
    if (n.is_loop() && n.label == label) return {&body, i, &n};
    for (auto* sub : {&n.body, &n.then_body, &n.else_body}) {
      LoopLocation loc = locate_in(*sub, label);
      if (loc.loop) return loc;
    }
  }
  return {};
}
}  // namespace

LoopLocation locate_loop(std::vector<NodePtr>& body, std::string_view label) {
  return locate_in(body, label);
}

void for_each_ref(std::vector<NodePtr>& body,
                  const std::function<void(ArrayRef&)>& fn) {
  walk(body, [&](Node& n) {
    if (n.is_assign()) {
      fn(n.lhs);
      if (n.rhs) n.rhs->for_each_ref(fn);
    }
    return true;
  });
}

void visit_refs(const std::vector<NodePtr>& body,
                const std::function<void(const ArrayRef&)>& fn) {
  walk_const(body, [&](const Node& n) {
    if (n.is_assign()) {
      fn(n.lhs);
      if (n.rhs) n.rhs->visit_refs(fn);
    }
    return true;
  });
}

}  // namespace oa::ir
