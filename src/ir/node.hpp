// Statement / loop tree of a kernel. Loops carry the labels the EPOD
// scripts refer to (Li, Lj, Lk, ...) plus GPU mapping attributes
// (blockIdx / threadIdx) attached by thread_grouping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/affine.hpp"
#include "ir/expr.hpp"

namespace oa::ir {

/// GPU dimension a loop is mapped to. Unmapped loops execute
/// sequentially (per thread).
enum class LoopMap {
  kNone,
  kBlockX,
  kBlockY,
  kThreadX,
  kThreadY,
  /// Mapped across thread blocks along grid Y, but the waves must run in
  /// launch order (models the inter-block dependence of TRSM: block row
  /// b may only start once rows < b finished). Set by thread_grouping
  /// when dependence analysis finds a carried dependence on the loop.
  kBlockYSerial,
};

const char* loop_map_name(LoopMap map);

struct Node;
using NodePtr = std::unique_ptr<Node>;

enum class AssignOp { kAssign, kAddAssign, kSubAssign, kDivAssign };

struct Node {
  enum class Kind { kLoop, kAssign, kSync, kIf };

  explicit Node(Kind k) : kind(k) {}
  Kind kind;

  // ---- kLoop ------------------------------------------------------
  std::string label;     // EPOD-visible loop label ("Li", "Lkkk", ...)
  std::string var;       // iteration variable name (unique in kernel)
  std::string orig_var;  // which source-loop identity this loop derives
                         // from ("i","j","k"); preserved by tiling etc.
  Bound lb;              // lower bound: max over terms (inclusive)
  Bound ub;              // upper bound: min over terms (exclusive)
  int64_t step = 1;
  /// Effective upper bound is ceil(eval_min(ub) / ub_div): block-mapped
  /// loops produced by thread_grouping use this to express
  /// ceil(M / tile) grid extents while keeping bound terms affine.
  int64_t ub_div = 1;
  LoopMap map = LoopMap::kNone;
  int unroll = 1;        // unroll factor attached by loop_unroll
  std::vector<NodePtr> body;

  // ---- kAssign ----------------------------------------------------
  ArrayRef lhs;
  AssignOp op = AssignOp::kAssign;
  ExprPtr rhs;
  /// Set by SM_alloc on its copy statements: the global reads here
  /// stage a footprint that is disjoint from any output tile by
  /// construction (reg_alloc relies on this to promote an output that
  /// is also a staged input, as in TRSM).
  bool staging_copy = false;

  // ---- kIf --------------------------------------------------------
  std::vector<Pred> conds;        // conjunction
  std::string bool_param;         // optional runtime boolean parameter
                                  // ("blank_zero"): empty means unused
  std::vector<NodePtr> then_body;
  std::vector<NodePtr> else_body;

  NodePtr clone() const;

  bool is_loop() const { return kind == Kind::kLoop; }
  bool is_assign() const { return kind == Kind::kAssign; }
  bool is_sync() const { return kind == Kind::kSync; }
  bool is_if() const { return kind == Kind::kIf; }

  /// Rename variable `from` to `to` in bounds, conditions, refs (does not
  /// touch loop `var` declarations).
  void rename_uses(std::string_view from, const std::string& to);

  /// Substitute `name` -> affine expr everywhere it is *used*.
  void substitute_uses(std::string_view name, const AffineExpr& repl);

  /// Structural equality (labels/vars included).
  bool equals(const Node& o) const;
};

NodePtr make_loop(std::string label, std::string var, Bound lb, Bound ub,
                  int64_t step = 1);
NodePtr make_assign(ArrayRef lhs, AssignOp op, ExprPtr rhs);
NodePtr make_sync();
NodePtr make_if(std::vector<Pred> conds, std::vector<NodePtr> then_body,
                std::vector<NodePtr> else_body = {});

NodePtr clone_body_node(const Node& n);
std::vector<NodePtr> clone_body(const std::vector<NodePtr>& body);

/// Pre-order walk over a node forest. Return false from fn to skip the
/// subtree below a node.
void walk(std::vector<NodePtr>& body,
          const std::function<bool(Node&)>& fn);
void walk_const(const std::vector<NodePtr>& body,
                const std::function<bool(const Node&)>& fn);

/// Find the loop with the given label (nullptr if absent).
Node* find_loop(std::vector<NodePtr>& body, std::string_view label);
const Node* find_loop(const std::vector<NodePtr>& body,
                      std::string_view label);

/// Find the parent body vector + index of the loop with `label`.
/// Returns {nullptr, 0} when not found; parent_body is the vector that
/// directly contains the loop node.
struct LoopLocation {
  std::vector<NodePtr>* parent_body = nullptr;
  size_t index = 0;
  Node* loop = nullptr;
};
LoopLocation locate_loop(std::vector<NodePtr>& body, std::string_view label);

/// Apply fn to every ArrayRef in the subtree (lhs and rhs).
void for_each_ref(std::vector<NodePtr>& body,
                  const std::function<void(ArrayRef&)>& fn);
void visit_refs(const std::vector<NodePtr>& body,
                const std::function<void(const ArrayRef&)>& fn);

}  // namespace oa::ir
