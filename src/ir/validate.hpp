// Structural validation of a Program: every array referenced is
// declared with matching rank, loop variables are unique along each
// path, mapped loops are well-nested, subscripts only use in-scope
// symbols. Run by tests after every transformation.
#pragma once

#include "ir/kernel.hpp"
#include "support/status.hpp"

namespace oa::ir {

Status validate(const Program& program);
Status validate_kernel(const Program& program, const Kernel& kernel);

}  // namespace oa::ir
