// The EvaluationEngine: a parallel, memoizing evaluation service
// between the search policies (tuner/) and the simulator (gpusim/).
//
// The paper's OA framework spends essentially all of its time in the
// search stage ("the best among the set is searched for" across
// composed scripts x tile/unroll parameters). The engine owns the
// apply -> verify -> simulate pipeline for one (candidate, params)
// point and adds what a search policy should not have to know about:
//
//   * batch-parallel evaluation over support::ThreadPool with
//     deterministic result ordering — results come back indexed by the
//     request order, so `jobs = 1` and `jobs = N` pick the same winner;
//   * a content-addressed memoization cache keyed by (device, variant,
//     script fingerprint, tuning params, applied mask, eval config),
//     so repeated points across line-search rounds, the exhaustive
//     ablation, and the figure benches are evaluated once — negative
//     outcomes (verification/launch failures) are cached too, since
//     they are deterministic;
//   * a mask-level verification cache: two parameter points whose
//     scripts degenerate to the same applied-component mask share one
//     functional verification (same semantics, different speed);
//   * structured per-evaluation accounting (EngineStats) so benches
//     and the oagen CLI can report search-cost breakdowns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blas3/routine.hpp"
#include "composer/composer.hpp"
#include "gpusim/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oa::engine {

struct EngineOptions {
  /// Parallel evaluation lanes for evaluate_batch; 0 selects the shared
  /// thread pool's full width (hardware_concurrency), 1 is strictly
  /// serial on the calling thread.
  size_t jobs = 0;
  /// Disable to force every point through the full pipeline (ablation /
  /// debugging).
  bool cache_enabled = true;
  /// Registry the engine's counters and per-stage latency histograms
  /// live in. Null (the default) gives the engine a private registry —
  /// stats stay isolated per engine, the historical behaviour — while
  /// the CLIs inject obs::MetricsRegistry::global() so one export file
  /// covers engine, tuner, composer, and serving runtime.
  obs::MetricsRegistry* metrics = nullptr;
  /// Span sink for apply/verify/simulate stage traces. Null disables
  /// trace collection (latency histograms are recorded regardless).
  obs::TraceCollector* tracer = nullptr;
};

/// Per-batch evaluation configuration; hashed into the cache key.
struct EvalConfig {
  /// Problem size used for the performance estimate.
  int64_t target_size = 1024;
  /// Problem size for functional verification (0 disables).
  int64_t verify_size = 72;
  /// Extra simulator knobs (int/bool params are overwritten per point).
  gpusim::RunOptions run_options;

  uint64_t fingerprint() const;
};

/// The outcome of one successful (candidate, params) evaluation.
struct Evaluation {
  composer::Candidate candidate;
  transforms::TuningParams params;
  ir::Program program;      // transformed, ready to simulate
  double seconds = 0.0;     // at target_size
  double gflops = 0.0;
  gpusim::Counters counters;
  /// Which script invocations applied under `params` (filter
  /// semantics): parameter points with different masks are different
  /// kernels.
  uint64_t applied_mask = 0;
  /// True when the verify+simulate stages were served from the
  /// memoization cache (the returned numbers are bitwise-identical to
  /// the fresh evaluation that populated the entry).
  bool from_cache = false;
};

/// Snapshot of the engine's accounting counters. Since the obs/
/// refactor this is a *view* assembled from the engine's
/// MetricsRegistry (the single source of truth — `oagen
/// --metrics-out` exports the same numbers); the struct survives as
/// the stable programmatic interface the benches and tests consume.
struct EngineStats {
  uint64_t requests = 0;        // evaluate() calls (batch points included)
  uint64_t cache_hits = 0;      // served from the memoization cache
  uint64_t cache_misses = 0;    // full pipeline executed
  uint64_t evaluations = 0;     // simulator performance runs
  uint64_t verify_runs = 0;     // functional verifications executed
  uint64_t verify_reused = 0;   // skipped via the mask-level cache
  uint64_t rejected = 0;        // non-ok outcomes (any stage)
  /// generate() results served whole from a library artifact or the
  /// process-wide session store (libgen/): zero pipeline work — no
  /// verify, no simulate — only the cheap re-apply that proves the
  /// artifact entry still matches the composed candidates.
  uint64_t warm_starts = 0;
  double apply_seconds = 0.0;   // wall time re-applying scripts
  double verify_seconds = 0.0;  // wall time in functional verification
  double simulate_seconds = 0.0;// wall time in performance simulation
  /// Simulate wall time split by variant name (where the search budget
  /// actually goes — TRSM's serial kernels dominate).
  std::map<std::string, double> simulate_seconds_by_variant;
  /// Ghost-mode fast-path statement accounting summed over performance
  /// runs (coverage() is the fraction priced analytically).
  gpusim::FastPathStats fastpath;
  size_t cache_entries = 0;

  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  std::string to_string() const;
};

class EvaluationEngine {
 public:
  explicit EvaluationEngine(const gpusim::Simulator& simulator,
                            EngineOptions options = {});
  ~EvaluationEngine();

  EvaluationEngine(const EvaluationEngine&) = delete;
  EvaluationEngine& operator=(const EvaluationEngine&) = delete;

  const gpusim::Simulator& simulator() const { return sim_; }
  const EngineOptions& options() const { return options_; }
  /// Effective parallel width (resolves jobs == 0).
  size_t jobs() const;

  /// One (candidate, params) point of the search space.
  struct Point {
    composer::Candidate candidate;
    transforms::TuningParams params;
  };

  /// Evaluate a single point: apply + verify + simulate, memoized.
  /// Thread-safe.
  StatusOr<Evaluation> evaluate(const blas3::Variant& variant,
                                const composer::Candidate& candidate,
                                const transforms::TuningParams& params,
                                const EvalConfig& config);

  /// Evaluate a batch of points in parallel (up to `jobs()` lanes).
  /// result[i] corresponds to points[i]; ordering is deterministic and
  /// independent of the parallel schedule.
  std::vector<StatusOr<Evaluation>> evaluate_batch(
      const blas3::Variant& variant, const std::vector<Point>& points,
      const EvalConfig& config);

  EngineStats stats() const;
  void reset_stats();
  void clear_cache();
  size_t cache_size() const;

  /// The registry all engine counters and stage-latency histograms
  /// live in (instrument names are prefixed "engine.").
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Span sink for stage traces, or nullptr when tracing is off.
  obs::TraceCollector* tracer() const { return tracer_; }

  /// Account one evaluation served from a persistent library artifact /
  /// session store (OaFramework's warm-start path) — the engine did no
  /// pipeline work for it, but search-cost reports should show where
  /// results came from.
  void note_warm_start();

 private:
  /// The full pipeline for a cache miss; `applied` and `program` come
  /// from the already-executed apply stage.
  StatusOr<Evaluation> verify_and_simulate(
      const blas3::Variant& variant, const composer::Candidate& candidate,
      const transforms::TuningParams& params, const EvalConfig& config,
      ir::Program&& program, uint64_t applied);

  const gpusim::Simulator& sim_;
  EngineOptions options_;

  /// Backing registry when the caller did not inject one.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::TraceCollector* tracer_;

  /// Cached instrument handles (registry lookups take a mutex; the
  /// references are stable for the registry's lifetime).
  struct Instruments {
    obs::Counter* requests;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* verify_reused;
    obs::Counter* rejected;
    obs::Counter* warm_starts;
    obs::Gauge* cache_entries;
    obs::Histogram* apply_us;
    obs::Histogram* verify_us;
    obs::Histogram* simulate_us;
  };
  Instruments ins_;

  mutable std::mutex mu_;
  /// Memoized outcomes (success payloads and deterministic rejections).
  std::unordered_map<uint64_t, std::shared_ptr<const StatusOr<Evaluation>>>
      cache_;
  /// Mask-level verification cache: keys whose (variant, script, mask)
  /// passed functional verification. Failures are not recorded here —
  /// they can be params-dependent — only in the point-level cache.
  std::unordered_set<uint64_t> verified_;

  /// Ghost-mode fast-path statement accounting; not duplicated
  /// anywhere, so it stays a plain aggregate next to the registry.
  mutable std::mutex fastpath_mu_;
  gpusim::FastPathStats fastpath_;
};

/// Functional verification helper shared with tests/benches: run
/// `program` at size (n x n) and compare against the CPU reference.
Status verify_program(const gpusim::Simulator& sim,
                      const blas3::Variant& variant,
                      const ir::Program& program, int64_t n,
                      const std::map<std::string, bool>& bool_params);

/// Functional execution of any program (tuned or baseline) on real
/// matrices, with problem sizes derived from the matrix shapes the way
/// the routine family expects; the output is written back into `b`
/// (TRSM) or `*c`. Shared by OaFramework::run and the serving runtime
/// (runtime/LibraryRuntime).
Status execute_program(const gpusim::Simulator& sim,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const blas3::Matrix& a, blas3::Matrix& b,
                       blas3::Matrix* c,
                       const std::map<std::string, bool>& bool_params);

/// Batched functional execution as a loop of members through the
/// interpreter — the semantic oracle for the fused native batched path
/// (exec::execute_batched). Operand vectors carry one matrix per batch
/// member and must agree on the batch count; `c` may be null for
/// families that update `b` in place.
Status execute_batched(const gpusim::Simulator& sim,
                       const ir::Program& program,
                       const blas3::Variant& variant,
                       const std::vector<blas3::Matrix>& a,
                       std::vector<blas3::Matrix>& b,
                       std::vector<blas3::Matrix>* c,
                       const std::map<std::string, bool>& bool_params);

/// Runtime bool parameters implied by adaptor conditions ("blank(A)
/// .zero = true" -> blank_zero = true).
std::map<std::string, bool> bools_for(const composer::Candidate& c);

/// Problem-size bindings for an n x n problem of `v`'s family.
ir::Env size_env(const blas3::Variant& v, int64_t n);

}  // namespace oa::engine
