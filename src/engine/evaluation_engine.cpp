#include "engine/evaluation_engine.hpp"

#include <optional>
#include <utility>

#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "epod/script.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace oa::engine {

using blas3::Variant;
using composer::Candidate;
using gpusim::RunOptions;
using transforms::TransformContext;
using transforms::TuningParams;

namespace {

/// Registry prefix under which per-variant simulate time is recorded.
constexpr const char* kSimulateByVariantPrefix =
    "engine.simulate_us.by_variant.";

}  // namespace

ir::Env size_env(const Variant& v, int64_t n) {
  ir::Env env;
  if (v.family == blas3::Family::kGemm ||
      v.family == blas3::Family::kSyrk) {
    env = {{"M", n}, {"N", n}, {"K", n}};
  } else {
    env = {{"M", n}, {"N", n}};
  }
  if (v.batch != blas3::Batch::kSingle) {
    // The batch count rides in the size environment so the simulator's
    // batched pricing (RunOptions int param "BATCH") sees it; it is not
    // a program int param and never reaches kernel bounds.
    env["BATCH"] = blas3::tuning_batch(v);
  }
  return env;
}

std::map<std::string, bool> bools_for(const Candidate& c) {
  std::map<std::string, bool> out;
  for (const std::string& cond : c.conditions) {
    // "blank(X).zero = true" enables the padded version; the benches
    // guarantee the blank triangle is stored as zeros.
    if (cond.find(".zero") != std::string::npos) out["blank_zero"] = true;
  }
  return out;
}

Status verify_program(const gpusim::Simulator& sim, const Variant& variant,
                      const ir::Program& program, int64_t n,
                      const std::map<std::string, bool>& bool_params) {
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(n));
  const Precision p = variant.precision;
  blas3::Matrix a(n, n, p), b(n, n, p), c(n, n, p);
  a.fill_random(rng);
  b.fill_random(rng);
  if (variant.family == blas3::Family::kTrmm ||
      variant.family == blas3::Family::kTrsm ||
      variant.family == blas3::Family::kSymm) {
    a.make_triangular(variant.uplo);
  }
  if (variant.family == blas3::Family::kTrsm) {
    a.set_unit_diagonal();
    // Keep the solve well-conditioned so the absolute tolerance holds.
    a.scale_off_diagonal(1.0f / 16.0f);
  }

  RunOptions opts;
  opts.int_params = size_env(variant, n);
  opts.bool_params = bool_params;
  gpusim::GlobalBuffers buffers = gpusim::make_buffers(
      program, opts.int_params, {{"A", &a}, {"B", &b}, {"C", &c}});
  auto run = sim.run_functional(program, opts, buffers);
  OA_RETURN_IF_ERROR(run.status());

  blas3::Matrix ref_b = b;
  blas3::Matrix ref_c = c;
  blas3::run_reference(variant, a, ref_b, &ref_c);
  const char* out_name = blas3::output_array(variant);
  blas3::Matrix out(n, n, p);
  OA_RETURN_IF_ERROR(
      gpusim::read_back(buffers, program, opts.int_params, out_name, out));
  const blas3::Matrix& expected =
      variant.family == blas3::Family::kTrsm ? ref_b : ref_c;
  const double err = blas3::max_abs_diff(out, expected);
  if (err > blas3::accumulation_tolerance(n, p)) {
    return illegal(
        str_format("functional verification failed: err=%g", err));
  }
  return Status::ok();
}

Status execute_program(const gpusim::Simulator& sim,
                       const ir::Program& program, const Variant& variant,
                       const blas3::Matrix& a, blas3::Matrix& b,
                       blas3::Matrix* c,
                       const std::map<std::string, bool>& bool_params) {
  gpusim::RunOptions opts;
  const int64_t m = b.rows();
  const int64_t n = b.cols();
  if (variant.family == blas3::Family::kGemm) {
    // GEMM operand shapes depend on the transpose flags: A is MxK (or
    // KxM), B is KxN (or NxK). Derive M/N from the flagged axes — B's
    // rows are the reduction length for trans_b=N, not M.
    const int64_t k =
        variant.trans_a == blas3::Trans::kN ? a.cols() : a.rows();
    opts.int_params = {
        {"M", variant.trans_a == blas3::Trans::kN ? a.rows() : a.cols()},
        {"N", variant.trans_b == blas3::Trans::kN ? b.cols() : b.rows()},
        {"K", k}};
  } else if (variant.family == blas3::Family::kSyrk) {
    const int64_t k =
        variant.trans == blas3::Trans::kN ? a.cols() : a.rows();
    opts.int_params = {{"M", c != nullptr ? c->rows() : m},
                       {"N", n},
                       {"K", k}};
  } else {
    opts.int_params = {{"M", m}, {"N", n}};
  }
  opts.bool_params = bool_params;
  const char* out_name = blas3::output_array(variant);
  blas3::Matrix& out =
      variant.family == blas3::Family::kTrsm ? b : *c;
  // Reject a retargeted output shape before paying for the functional
  // run — read_back would refuse the result anyway.
  OA_RETURN_IF_ERROR(gpusim::check_read_back_shape(
      program, opts.int_params, out_name, out));
  gpusim::GlobalBuffers buffers = gpusim::make_buffers(
      program, opts.int_params, {{"A", &a}, {"B", &b}, {"C", c}});
  OA_RETURN_IF_ERROR(
      sim.run_functional(program, opts, buffers).status());
  return gpusim::read_back(buffers, program, opts.int_params, out_name,
                           out);
}

Status execute_batched(const gpusim::Simulator& sim,
                       const ir::Program& program, const Variant& variant,
                       const std::vector<blas3::Matrix>& a,
                       std::vector<blas3::Matrix>& b,
                       std::vector<blas3::Matrix>* c,
                       const std::map<std::string, bool>& bool_params) {
  if (a.size() != b.size() || (c != nullptr && c->size() != a.size())) {
    return invalid_argument("batched operands disagree on batch count");
  }
  if (a.empty()) {
    return invalid_argument("batched execution needs at least one member");
  }
  // Loop-of-members through the interpreter: the semantic oracle the
  // fused native batched path (exec::execute_batched) is arbitrated
  // against. batch_grouping only relabels the launch layout, so the
  // member program is the program itself.
  for (size_t i = 0; i < a.size(); ++i) {
    OA_RETURN_IF_ERROR(execute_program(
        sim, program, variant, a[i], b[i],
        c != nullptr ? &(*c)[i] : nullptr, bool_params));
  }
  return Status::ok();
}

uint64_t EvalConfig::fingerprint() const {
  Fingerprint fp;
  fp.mix(target_size)
      .mix(verify_size)
      .mix(run_options.max_sampled_classes)
      .mix(run_options.warps_per_block_sample)
      .mix(static_cast<uint64_t>(run_options.fastpath));
  return fp.digest();
}

std::string EngineStats::to_string() const {
  std::string s = str_format(
      "engine: %llu requests, %llu hits / %llu misses (%.0f%% hit rate, "
      "%zu cached), %llu simulations, %llu verifies (+%llu reused), "
      "%llu rejected; apply %.2fs, verify %.2fs, simulate %.2fs",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), hit_rate() * 100.0,
      cache_entries, static_cast<unsigned long long>(evaluations),
      static_cast<unsigned long long>(verify_runs),
      static_cast<unsigned long long>(verify_reused),
      static_cast<unsigned long long>(rejected), apply_seconds,
      verify_seconds, simulate_seconds);
  std::string out = s;
  if (warm_starts > 0) {
    out += str_format("; %llu warm-start(s) from library artifacts",
                      static_cast<unsigned long long>(warm_starts));
  }
  out += str_format("; fastpath %.0f%% (%llu collapsed loops)",
                    fastpath.coverage() * 100.0,
                    static_cast<unsigned long long>(
                        fastpath.collapsed_loops));
  for (const auto& [name, secs] : simulate_seconds_by_variant) {
    out += str_format("\n  simulate %-12s %.2fs", name.c_str(), secs);
  }
  return out;
}

EvaluationEngine::EvaluationEngine(const gpusim::Simulator& simulator,
                                   EngineOptions options)
    : sim_(simulator), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  tracer_ = options_.tracer;
  // Pre-register every instrument so an exported snapshot always
  // carries the full engine schema, even for stages that never ran
  // (a warm-started library reload has zero verifies/simulations).
  ins_.requests = &metrics_->counter("engine.requests");
  ins_.cache_hits = &metrics_->counter("engine.cache_hits");
  ins_.cache_misses = &metrics_->counter("engine.cache_misses");
  ins_.verify_reused = &metrics_->counter("engine.verify_reused");
  ins_.rejected = &metrics_->counter("engine.rejected");
  ins_.warm_starts = &metrics_->counter("engine.warm_starts");
  ins_.cache_entries = &metrics_->gauge("engine.cache_entries");
  ins_.apply_us = &metrics_->histogram("engine.apply_us");
  ins_.verify_us = &metrics_->histogram("engine.verify_us");
  ins_.simulate_us = &metrics_->histogram("engine.simulate_us");
}

EvaluationEngine::~EvaluationEngine() = default;

size_t EvaluationEngine::jobs() const {
  return options_.jobs == 0 ? ThreadPool::shared().size() : options_.jobs;
}

StatusOr<Evaluation> EvaluationEngine::evaluate(
    const Variant& variant, const Candidate& candidate,
    const TuningParams& params, const EvalConfig& config) {
  ins_.requests->add();
  if (Status compat = params.check(); !compat.is_ok()) {
    ins_.rejected->add();
    return failed_precondition("incompatible tuning parameters");
  }

  // Apply stage (always executed — it is cheap relative to simulation
  // and produces both the program and the applied-component mask the
  // cache key needs).
  obs::Span apply_span(tracer_, "engine.apply", ins_.apply_us);
  TransformContext ctx;
  ctx.params = params;
  ir::Program program = blas3::make_source_program(variant);
  auto applied = epod::apply_script_lenient(program, candidate.script, ctx);
  apply_span.finish();
  if (!applied.is_ok()) {
    ins_.rejected->add();
    return applied.status();
  }
  if (*applied == 0) {
    ins_.rejected->add();
    return failed_precondition("no component of the script applied");
  }

  // Content-addressed key: device preset, variant, script, params,
  // applied mask, eval config.
  Fingerprint key;
  key.mix(sim_.device().name)
      .mix(variant.name())
      .mix(candidate.fingerprint())
      .mix(params.fingerprint())
      .mix(*applied)
      .mix(config.fingerprint());
  const uint64_t digest = key.digest();

  if (options_.cache_enabled) {
    std::shared_ptr<const StatusOr<Evaluation>> entry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(digest);
      if (it != cache_.end()) entry = it->second;
    }
    if (entry != nullptr) {
      ins_.cache_hits->add();
      if (!entry->is_ok()) ins_.rejected->add();
      StatusOr<Evaluation> out = *entry;
      if (out.is_ok()) out->from_cache = true;
      return out;
    }
  }

  StatusOr<Evaluation> result = verify_and_simulate(
      variant, candidate, params, config, std::move(program), *applied);
  ins_.cache_misses->add();
  if (!result.is_ok()) ins_.rejected->add();
  if (options_.cache_enabled) {
    auto entry = std::make_shared<const StatusOr<Evaluation>>(result);
    std::lock_guard<std::mutex> lock(mu_);
    // Concurrent evaluators of the same point race benignly: both
    // computed identical results, first insert wins.
    cache_.emplace(digest, std::move(entry));
    ins_.cache_entries->set(static_cast<double>(cache_.size()));
  }
  return result;
}

StatusOr<Evaluation> EvaluationEngine::verify_and_simulate(
    const Variant& variant, const Candidate& candidate,
    const TuningParams& params, const EvalConfig& config,
    ir::Program&& program, uint64_t applied) {
  const std::map<std::string, bool> bools = bools_for(candidate);

  // Verification depends on the *semantics* of the degenerated kernel,
  // which is determined by the applied-component mask, not the tile
  // sizes: points sharing a mask share one verification (a dropped
  // peel/binding changes the kernel's meaning, not just its speed).
  if (config.verify_size > 0) {
    Fingerprint vkey;
    // Device is part of the key: the functional run can reject a kernel
    // for device-dependent reasons (occupancy) before comparing output.
    vkey.mix(sim_.device().name)
        .mix(variant.name())
        .mix(candidate.fingerprint())
        .mix(applied)
        .mix(config.verify_size);
    const uint64_t vdigest = vkey.digest();
    // The mask-level verify cache stays on even with cache_enabled off:
    // sharing one verification per degenerated-script mask is the
    // pre-engine Tuner's semantics, not part of the memoization layer.
    bool already_verified = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      already_verified = verified_.contains(vdigest);
    }
    if (already_verified) {
      ins_.verify_reused->add();
    } else {
      obs::Span verify_span(tracer_, "engine.verify", ins_.verify_us);
      Status verified = verify_program(sim_, variant, program,
                                       config.verify_size, bools);
      verify_span.finish();
      // Only successes are shared across the mask: a failure can be
      // params-dependent (occupancy at the verify size), so it is
      // memoized per point, not per mask.
      if (verified.is_ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        verified_.insert(vdigest);
      }
      OA_RETURN_IF_ERROR(verified);
    }
  }

  RunOptions opts = config.run_options;
  opts.int_params = size_env(variant, config.target_size);
  opts.bool_params = bools;
  obs::Span simulate_span(tracer_, "engine.simulate", ins_.simulate_us);
  auto perf = sim_.run_performance(program, opts);
  const double sim_us = simulate_span.finish();
  metrics_->histogram(kSimulateByVariantPrefix + variant.name())
      .record(sim_us);
  if (perf.is_ok()) {
    std::lock_guard<std::mutex> lock(fastpath_mu_);
    fastpath_ += perf->fastpath;
  }
  OA_RETURN_IF_ERROR(perf.status());

  Evaluation out;
  out.candidate = candidate;
  out.params = params;
  out.applied_mask = applied;
  out.program = std::move(program);
  out.seconds = perf->seconds;
  out.counters = perf->counters;
  // nominal_flops counts one member; batched variants are priced (and
  // credited) for the whole tuning batch.
  out.gflops = perf->gflops(
      blas3::nominal_flops(variant, config.target_size, config.target_size,
                           config.target_size) *
      static_cast<double>(blas3::tuning_batch(variant)));
  return out;
}

std::vector<StatusOr<Evaluation>> EvaluationEngine::evaluate_batch(
    const Variant& variant, const std::vector<Point>& points,
    const EvalConfig& config) {
  std::vector<std::optional<StatusOr<Evaluation>>> slots(points.size());
  ThreadPool::shared().parallel_for(
      points.size(),
      [&](size_t i) {
        slots[i].emplace(
            evaluate(variant, points[i].candidate, points[i].params,
                     config));
      },
      jobs());
  std::vector<StatusOr<Evaluation>> out;
  out.reserve(points.size());
  for (auto& slot : slots) out.push_back(*std::move(slot));
  return out;
}

EngineStats EvaluationEngine::stats() const {
  // A view over the registry: every counter below is also exported
  // verbatim by `--metrics-out` (histogram counts double as the
  // run counters, sums as the stage wall times).
  EngineStats out;
  out.requests = ins_.requests->value();
  out.cache_hits = ins_.cache_hits->value();
  out.cache_misses = ins_.cache_misses->value();
  out.evaluations = ins_.simulate_us->count();
  out.verify_runs = ins_.verify_us->count();
  out.verify_reused = ins_.verify_reused->value();
  out.rejected = ins_.rejected->value();
  out.warm_starts = ins_.warm_starts->value();
  out.apply_seconds = ins_.apply_us->sum() / 1e6;
  out.verify_seconds = ins_.verify_us->sum() / 1e6;
  out.simulate_seconds = ins_.simulate_us->sum() / 1e6;
  for (const auto& [name, hist] :
       metrics_->histograms_with_prefix(kSimulateByVariantPrefix)) {
    out.simulate_seconds_by_variant
        [name.substr(std::string_view(kSimulateByVariantPrefix).size())] =
        hist->sum() / 1e6;
  }
  {
    std::lock_guard<std::mutex> lock(fastpath_mu_);
    out.fastpath = fastpath_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  out.cache_entries = cache_.size();
  return out;
}

void EvaluationEngine::reset_stats() {
  metrics_->reset("engine.");
  std::lock_guard<std::mutex> lock(fastpath_mu_);
  fastpath_ = gpusim::FastPathStats{};
}

void EvaluationEngine::note_warm_start() { ins_.warm_starts->add(); }

void EvaluationEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  verified_.clear();
  ins_.cache_entries->set(0.0);
}

size_t EvaluationEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace oa::engine
