#include "support/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

#include "support/strings.hpp"

namespace oa {

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 == row.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 == widths.size() ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      if (c) os << ',';
      if (cell.find(',') != std::string::npos) {
        os << '"' << cell << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

std::string ascii_bar_chart(
    const std::vector<std::pair<std::string, double>>& data,
    double max_value, int width) {
  size_t label_width = 0;
  for (const auto& [label, _] : data) {
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, value] : data) {
    int bar = 0;
    if (max_value > 0) {
      bar = static_cast<int>(value / max_value * width + 0.5);
      bar = std::clamp(bar, 0, width);
    }
    os << label << std::string(label_width - label.size(), ' ') << " |"
       << std::string(static_cast<size_t>(bar), '#')
       << str_format(" %.2f", value) << '\n';
  }
  return os.str();
}

}  // namespace oa
