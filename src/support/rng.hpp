// Deterministic PRNG for test matrices. xoshiro256** — fast, seedable,
// reproducible across platforms (unlike std::uniform_real_distribution,
// whose output is implementation-defined).
#pragma once

#include <cstdint>
#include <span>

namespace oa {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding.
    uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t w = z;
      w = (w ^ (w >> 30)) * 0xBF58476D1CE4E5B9ull;
      w = (w ^ (w >> 27)) * 0x94D049BB133111EBull;
      s = w ^ (w >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  /// Fill a buffer with small values in [-1, 1) — keeps float GEMM sums
  /// well-conditioned so correctness checks can use tight tolerances.
  void fill(std::span<float> out) {
    for (float& x : out) x = next_float(-1.0f, 1.0f);
  }

  /// Same stream and the same float-valued draws, widened to double —
  /// a matrix filled at either precision from the same seed holds the
  /// same mathematical values.
  void fill(std::span<double> out) {
    for (double& x : out) x = next_float(-1.0f, 1.0f);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace oa
