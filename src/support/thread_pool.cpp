#include "support/thread_pool.hpp"

#include <algorithm>

namespace oa {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& fn,
                              size_t max_lanes) {
  if (n == 0) return;
  const size_t workers =
      max_lanes == 0 ? size() : std::min(size(), max_lanes);
  if (n == 1 || workers == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunked dynamic scheduling: workers pull chunks off a shared counter.
  const size_t chunk = std::max<size_t>(1, n / (workers * 8));
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto remaining = std::make_shared<std::atomic<size_t>>(n);
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;

  auto body = [next, remaining, chunk, n, &fn, &done_mu, &done_cv, &done] {
    for (;;) {
      const size_t begin = next->fetch_add(chunk);
      if (begin >= n) return;
      const size_t end = std::min(begin + chunk, n);
      for (size_t i = begin; i < end; ++i) fn(i);
      if (remaining->fetch_sub(end - begin) == end - begin) {
        std::lock_guard<std::mutex> lock(done_mu);
        done = true;
        done_cv.notify_one();
      }
    }
  };

  const size_t tasks = std::min(workers, (n + chunk - 1) / chunk);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Reserve one lane for the calling thread, which also executes.
    for (size_t t = 1; t < tasks; ++t) tasks_.push(body);
  }
  cv_.notify_all();
  body();  // caller participates

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&done] { return done; });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace oa
