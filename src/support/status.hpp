// Lightweight Status / StatusOr error propagation for the OA framework.
//
// Optimization components signal recoverable failure (e.g. "no trapezoid
// area detected", "fusion illegal") through Status rather than exceptions:
// the composer's filter treats a failed component as "omit and degenerate"
// (paper §IV-B.2), so failure is an expected, frequent control-flow path.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace oa {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad script text, bad label)
  kNotFound,          // label/array/loop not present in the kernel
  kFailedPrecondition,// component constraint unsatisfied (filter omits it)
  kIllegal,           // dependence analysis rejects the transformation
  kUnimplemented,
  kInternal,
};

/// Human-readable name of an ErrorCode ("ok", "invalid_argument", ...).
const char* error_code_name(ErrorCode code);

/// Result of an operation that can fail without a payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status() for success");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status illegal(std::string msg) {
  return {ErrorCode::kIllegal, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Result of an operation returning T on success, Status on failure.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : rep_(std::move(value)) {}           // NOLINT implicit
  StatusOr(Status status) : rep_(std::move(status)) {     // NOLINT implicit
    assert(!std::get<Status>(rep_).is_ok() &&
           "StatusOr must not hold an OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(rep_));
  }

  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(rep_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-OK Status from an expression to the caller.
#define OA_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::oa::Status oa_status_ = (expr);             \
    if (!oa_status_.is_ok()) return oa_status_;   \
  } while (0)

// Evaluate a StatusOr expression; on failure return its status, otherwise
// bind the value to `lhs`.
#define OA_CONCAT_INNER_(a, b) a##b
#define OA_CONCAT_(a, b) OA_CONCAT_INNER_(a, b)
#define OA_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto OA_CONCAT_(oa_sor_, __LINE__) = (expr);             \
  if (!OA_CONCAT_(oa_sor_, __LINE__).is_ok())              \
    return OA_CONCAT_(oa_sor_, __LINE__).status();         \
  lhs = std::move(OA_CONCAT_(oa_sor_, __LINE__)).value()

}  // namespace oa
