// Stable content fingerprinting for the memoization layers (engine/
// evaluation cache, verified-mask cache): a 64-bit FNV-1a accumulator
// over explicitly mixed fields. The digest is deterministic across
// processes and platforms — it depends only on the bytes mixed in, so
// it is safe to use as a cache key that must survive re-runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace oa {

class Fingerprint {
 public:
  Fingerprint& mix_bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Fingerprint& mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (8 * i)) & 0xFF;
      state_ *= kPrime;
    }
    return *this;
  }
  Fingerprint& mix(int64_t v) { return mix(static_cast<uint64_t>(v)); }
  Fingerprint& mix(int v) { return mix(static_cast<uint64_t>(v)); }
  Fingerprint& mix(bool v) { return mix(static_cast<uint64_t>(v)); }
  /// Length-prefixed so that ("ab","c") and ("a","bc") differ.
  Fingerprint& mix(std::string_view s) {
    mix(static_cast<uint64_t>(s.size()));
    return mix_bytes(s.data(), s.size());
  }

  uint64_t digest() const { return state_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t state_ = kOffset;
};

}  // namespace oa
