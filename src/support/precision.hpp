// The scalar-precision axis threaded through the whole stack: every
// routine variant, IR program, simulator buffer, artifact entry and
// dispatch key carries one of these.
//
// Storage convention: host matrices and simulator buffers hold
// `double` values regardless of precision; an f32 object simply keeps
// every stored value rounded to float (so the double always holds an
// exactly-representable float). Arithmetic for f32 rounds after every
// operation. Because IEEE double has more than 2x the significand bits
// of float (53 >= 2*24 + 2), the double rounding in
// "compute-in-double, round-to-float" is innocuous for +, -, *, / —
// the results are bit-identical to native float arithmetic, which is
// what keeps the legacy f32 behaviour byte-for-byte stable.
#pragma once

#include <string>
#include <string_view>

namespace oa {

enum class Precision { kF32, kF64 };

/// What artifacts and variants without an explicit precision mean:
/// the paper's 24 variants are single precision, and every pre-axis
/// artifact was produced from them.
inline constexpr Precision kLegacyPrecision = Precision::kF32;

constexpr int elem_bytes(Precision p) {
  return p == Precision::kF32 ? 4 : 8;
}

/// Element size in 4-byte device words (register/shared-memory slots).
constexpr int elem_words(Precision p) {
  return p == Precision::kF32 ? 1 : 2;
}

/// Unit roundoff (2^-24 / 2^-53): the "eps" of accumulation-tolerance
/// bounds of the form ~eps * k.
constexpr double precision_eps(Precision p) {
  return p == Precision::kF32 ? 5.9604644775390625e-8
                              : 1.1102230246251565e-16;
}

/// Canonical token used in .oalib artifacts and obs labels.
constexpr const char* precision_name(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

/// BLAS-style routine prefix: "" for the paper's single-precision
/// names ("GEMM-NN"), "D" for the doubled family ("DGEMM-NN").
constexpr const char* precision_prefix(Precision p) {
  return p == Precision::kF32 ? "" : "D";
}

/// Strict parse of a precision token. Accepts the canonical artifact
/// tokens ("f32"/"f64") and the BLAS-style CLI letters ("s"/"d").
/// Returns false on anything else; never guesses.
inline bool parse_precision(std::string_view text, Precision* out) {
  if (text == "f32" || text == "s") {
    *out = Precision::kF32;
    return true;
  }
  if (text == "f64" || text == "d") {
    *out = Precision::kF64;
    return true;
  }
  return false;
}

/// Round a double to `p`: the storage invariant of every f32 matrix /
/// buffer, and the per-operation rounding of f32 arithmetic.
inline double round_to(Precision p, double v) {
  return p == Precision::kF32 ? static_cast<double>(static_cast<float>(v))
                              : v;
}

}  // namespace oa
