#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace oa {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty() || !skip_empty) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string format_millions(long long count) {
  if (count == 0) return "0";
  double m = static_cast<double>(count) / 1e6;
  if (m >= 100.0) return str_format("%.0fM", m);
  if (m >= 10.0) return str_format("%.0fM", m);
  if (m >= 1.0) return str_format("%.1fM", m);
  return str_format("%.2fM", m);
}

}  // namespace oa
