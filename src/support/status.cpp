#include "support/status.hpp"

namespace oa {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kIllegal: return "illegal";
    case ErrorCode::kUnimplemented: return "unimplemented";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = error_code_name(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace oa
