// Column-aligned text tables and CSV emission for the bench harnesses,
// so every figure/table binary prints paper-style rows.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace oa {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Render as a column-aligned table with a header separator.
  std::string to_string() const;

  /// Render as CSV (no escaping beyond quoting cells with commas).
  std::string to_csv() const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Render a simple ASCII horizontal bar chart (used by the figure benches
/// to make "speedup over CUBLAS" visually comparable to the paper's bars).
std::string ascii_bar_chart(const std::vector<std::pair<std::string, double>>& data,
                            double max_value, int width = 50);

}  // namespace oa
