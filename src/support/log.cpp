#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace oa {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mu;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

LogLine::LogLine(LogLevel level, const char* /*file*/, int /*line*/)
    : enabled_(level >= g_level.load()), level_(level) {}

LogLine::~LogLine() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_io_mu);
  std::fprintf(stderr, "[%s] %s\n", level_tag(level_), stream_.str().c_str());
}

}  // namespace detail
}  // namespace oa
