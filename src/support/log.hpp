// Minimal leveled logging. Benches and the tuner use INFO to narrate the
// search; tests silence everything below WARNING via set_log_level.
#pragma once

#include <sstream>
#include <string>

namespace oa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define OA_LOG(level) \
  ::oa::detail::LogLine(::oa::LogLevel::level, __FILE__, __LINE__)

}  // namespace oa
