// Small string utilities shared across the parser/printers.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace oa {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split `s` on `sep`, trimming each piece; empty pieces are kept unless
/// `skip_empty` is set.
std::vector<std::string> split(std::string_view s, char sep,
                               bool skip_empty = false);

/// Join pieces with `sep`.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string (gcc 12 lacks <format>).
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Format a count with engineering suffix the way cuda_profile tables in
/// the paper do: 804000000 -> "804M", 420000 -> "0.42M".
std::string format_millions(long long count);

}  // namespace oa
