// Fixed-size thread pool with a blocking parallel_for, used by the GPU
// simulator to execute independent thread blocks concurrently.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace oa {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool; returns when all
  /// iterations completed. fn must be safe to call concurrently for
  /// distinct i. Falls back to inline execution for tiny n.
  /// `max_lanes` caps the number of threads working on this batch
  /// (0 = whole pool); `max_lanes == 1` runs strictly in index order on
  /// the calling thread, which batch consumers rely on for serial/
  /// parallel equivalence checks.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn,
                    size_t max_lanes = 0);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace oa
