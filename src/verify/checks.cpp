#include "verify/checks.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "blas3/matrix.hpp"
#include "blas3/reference.hpp"
#include "blas3/source_ir.hpp"
#include "engine/evaluation_engine.hpp"
#include "epod/script.hpp"
#include "ir/validate.hpp"
#include "exec/executor.hpp"
#include "libgen/artifact.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::verify {
namespace {

using blas3::Matrix;

/// Detail strings end up in reports and corpus files: keep them one
/// line, printable, and bounded (mutation payload bytes and parser
/// messages quoting them can contain anything).
std::string sanitize(std::string_view text) {
  std::string out;
  const size_t limit = 200;
  for (char ch : text.substr(0, limit)) {
    const auto u = static_cast<unsigned char>(ch);
    out.push_back(u >= 32 && u < 127 ? ch : '.');
  }
  if (text.size() > limit) out += "...";
  return out;
}

/// The engine's apply stage: lenient script application (filter
/// semantics) followed by the composer's final ir::validate gate.
/// A non-OK outcome is an expected degeneration, never a finding.
StatusOr<uint64_t> apply_like_engine(ir::Program& program,
                                     const FuzzCase& c) {
  transforms::TransformContext ctx;
  ctx.params = c.params;
  OA_ASSIGN_OR_RETURN(const uint64_t mask,
                      epod::apply_script_lenient(program, c.script, ctx));
  OA_RETURN_IF_ERROR(ir::validate(program));
  return mask;
}

/// Exact per-field counter diff (Counters::to_string rounds to
/// millions, which can hide a low-digit divergence entirely).
std::string counter_diff(const gpusim::Counters& fast,
                         const gpusim::Counters& interp) {
  struct Field {
    const char* name;
    int64_t gpusim::Counters::* member;
  };
  static const Field kFields[] = {
      {"gld_coherent", &gpusim::Counters::gld_coherent},
      {"gld_incoherent", &gpusim::Counters::gld_incoherent},
      {"gst_coherent", &gpusim::Counters::gst_coherent},
      {"gst_incoherent", &gpusim::Counters::gst_incoherent},
      {"gld_request", &gpusim::Counters::gld_request},
      {"gst_request", &gpusim::Counters::gst_request},
      {"local_read", &gpusim::Counters::local_read},
      {"local_store", &gpusim::Counters::local_store},
      {"instructions", &gpusim::Counters::instructions},
      {"shared_load", &gpusim::Counters::shared_load},
      {"shared_store", &gpusim::Counters::shared_store},
      {"shared_bank_conflict_replays",
       &gpusim::Counters::shared_bank_conflict_replays},
      {"global_bytes", &gpusim::Counters::global_bytes},
      {"flops", &gpusim::Counters::flops},
      {"barriers", &gpusim::Counters::barriers},
  };
  std::string out;
  for (const Field& f : kFields) {
    const int64_t a = fast.*(f.member);
    const int64_t b = interp.*(f.member);
    if (a == b) continue;
    if (!out.empty()) out += ", ";
    out += str_format("%s fast=%lld interp=%lld", f.name,
                      static_cast<long long>(a), static_cast<long long>(b));
  }
  return out;
}

/// Reduction length of the fuzzed problem (drives the precision-scaled
/// accumulation tolerance).
int64_t reduction_length(const FuzzCase& c) {
  if (c.variant.family == blas3::Family::kGemm) return std::max<int64_t>(c.k, 1);
  return c.variant.side == blas3::Side::kLeft ? c.m : c.n;
}

/// Batch count the case executes at (1 for every single variant).
int64_t case_batch(const FuzzCase& c) {
  if (c.variant.batch == blas3::Batch::kSingle) return 1;
  return std::max<int64_t>(c.batch, 1);
}

/// One operand set per batch member, prepared exactly like
/// engine::verify_program (triangular blanking, TRSM conditioning) at
/// the fuzzed rectangular shape. All members draw from one sequential
/// rng stream, so member 0 of a batched case — and the single member of
/// a batch-1 case — reproduces the byte-exact data the pre-batched
/// checks used.
struct CaseInputs {
  std::vector<Matrix> a, b, c;
};

CaseInputs make_inputs(const FuzzCase& c, int64_t count) {
  const bool gemm = c.variant.family == blas3::Family::kGemm;
  const bool trsm = c.variant.family == blas3::Family::kTrsm;
  const int64_t m = c.m;
  const int64_t n = c.n;
  const int64_t k = reduction_length(c);
  const Precision p = c.variant.precision;
  Rng rng(Fingerprint()
              .mix(c.seed)
              .mix(c.index)
              .mix(std::string_view("oacheck.data"))
              .digest());
  CaseInputs in;
  for (int64_t i = 0; i < count; ++i) {
    Matrix a = gemm ? (c.variant.trans_a == blas3::Trans::kN
                           ? Matrix(m, k, p)
                           : Matrix(k, m, p))
                    : Matrix(k, k, p);
    Matrix b = gemm ? (c.variant.trans_b == blas3::Trans::kN
                           ? Matrix(k, n, p)
                           : Matrix(n, k, p))
                    : Matrix(m, n, p);
    Matrix out_c(m, n, p);
    a.fill_random(rng);
    b.fill_random(rng);
    if (c.variant.family == blas3::Family::kTrmm || trsm ||
        c.variant.family == blas3::Family::kSymm) {
      a.make_triangular(c.variant.uplo);
    }
    if (trsm) {
      a.set_unit_diagonal();
      a.scale_off_diagonal(1.0f / 16.0f);
    }
    in.a.push_back(std::move(a));
    in.b.push_back(std::move(b));
    in.c.push_back(std::move(out_c));
  }
  return in;
}

/// Largest per-member divergence between two operand-set results (the
/// updated matrix is `b` for TRSM, `c` for every other family).
double max_member_diff(const FuzzCase& c, const std::vector<Matrix>& got_b,
                       const std::vector<Matrix>& got_c,
                       const std::vector<Matrix>& want_b,
                       const std::vector<Matrix>& want_c) {
  const bool trsm = c.variant.family == blas3::Family::kTrsm;
  double err = 0.0;
  for (size_t i = 0; i < got_b.size(); ++i) {
    err = std::max(err, blas3::max_abs_diff(trsm ? got_b[i] : got_c[i],
                                            trsm ? want_b[i] : want_c[i]));
  }
  return err;
}

/// One process-wide compile cache shared by the native-first
/// differential and native checks: a long campaign then also exercises
/// the hot (cache-hit) path, not just first-compile.
exec::ExecCache& shared_exec_cache() {
  static exec::ExecCache cache;
  return cache;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kRejected: return "rejected";
    case Verdict::kFail: return "FAIL";
  }
  return "?";
}

CheckResult check_case(const gpusim::Simulator& sim, const FuzzCase& c,
                       const CheckOptions& options) {
  switch (c.kind) {
    case CheckKind::kDifferential:
      return check_differential(sim, c, options);
    case CheckKind::kRoundTrip: return check_roundtrip(c);
    case CheckKind::kMutation: return check_mutation(c);
    case CheckKind::kFastPath: return check_fastpath(sim, c);
    case CheckKind::kNative: return check_native(sim, c);
  }
  return {Verdict::kFail, "unknown check kind"};
}

CheckResult check_differential(const gpusim::Simulator& sim,
                               const FuzzCase& c,
                               const CheckOptions& options) {
  ir::Program program = blas3::make_source_program(c.variant);
  auto mask = apply_like_engine(program, c);
  if (!mask.is_ok()) {
    return {Verdict::kRejected,
            "apply/validate: " + sanitize(mask.status().to_string())};
  }

  const int64_t k = reduction_length(c);
  const int64_t count = case_batch(c);
  const CaseInputs in = make_inputs(c, count);
  const std::map<std::string, bool> bools = {{"blank_zero", true}};

  // Candidate execution, native-first: the exec backend computes the
  // answer; the interpreter is consulted only when lowering refuses the
  // kernel (the runtime's fallback chain) or — below — to arbitrate a
  // divergence. This is where the >=5x campaign wall-clock drop over
  // interpreter-only differential runs comes from.
  std::vector<Matrix> got_b = in.b;
  std::vector<Matrix> got_c = in.c;
  const char* backend = "interp";
  Status run;
  if (options.differential_native_first) {
    run = exec::execute_batched(sim.device(), program, c.variant, in.a,
                                got_b, &got_c, bools, shared_exec_cache());
    backend = "native";
  } else {
    run = engine::execute_batched(sim, program, c.variant, in.a, got_b,
                                  &got_c, bools);
  }
  if (!run.is_ok() && options.differential_native_first) {
    got_b = in.b;
    got_c = in.c;
    run = engine::execute_batched(sim, program, c.variant, in.a, got_b,
                                  &got_c, bools);
    backend = "interp";
  }
  if (!run.is_ok()) {
    return {Verdict::kRejected, "execute: " + sanitize(run.to_string())};
  }

  // The oracle: a loop of per-member CPU references — for single
  // variants that is plain blas3::run_reference. Computed only after
  // the candidate actually executed; rejections skip it.
  std::vector<Matrix> ref_b = in.b;
  std::vector<Matrix> ref_c = in.c;
  for (int64_t i = 0; i < count; ++i) {
    blas3::run_reference(c.variant, in.a[static_cast<size_t>(i)],
                         ref_b[static_cast<size_t>(i)],
                         &ref_c[static_cast<size_t>(i)]);
  }

  const double tol = blas3::accumulation_tolerance(k, c.variant.precision);
  double err = max_member_diff(c, got_b, got_c, ref_b, ref_c);
  if (err <= tol) {
    return {Verdict::kPass,
            str_format("mask=%llx err<=tol (%s)",
                       static_cast<unsigned long long>(*mask), backend)};
  }

  // Mismatch. Gate on the engine's cheap square-48 verification first:
  // a composition the engine would have rejected anyway is an expected
  // degeneration, with no need to pay full-shape interpreter
  // arbitration for it. Only divergences on *shippable* compositions
  // are arbitrated through the interpreter.
  Status square = engine::verify_program(sim, c.variant, program,
                                         /*n=*/48, bools);
  if (!square.is_ok()) {
    return {Verdict::kRejected,
            "engine rejects composition: " + sanitize(square.to_string())};
  }
  // The library would have shipped this kernel. When the mismatch came
  // from the native backend, an interpreter result inside tolerance
  // pins the divergence on the backend — the library would have served
  // this wrong native answer.
  if (std::string_view(backend) == "native") {
    std::vector<Matrix> interp_b = in.b;
    std::vector<Matrix> interp_c = in.c;
    Status interp = engine::execute_batched(sim, program, c.variant, in.a,
                                            interp_b, &interp_c, bools);
    if (interp.is_ok()) {
      const double interp_err =
          max_member_diff(c, interp_b, interp_c, ref_b, ref_c);
      if (interp_err <= tol) {
        return {Verdict::kFail,
                str_format("native backend diverges err=%g tol=%g "
                           "(interpreter err=%g agrees with reference) at "
                           "m=%lld n=%lld k=%lld batch=%lld",
                           err, tol, interp_err,
                           static_cast<long long>(c.m),
                           static_cast<long long>(c.n),
                           static_cast<long long>(k),
                           static_cast<long long>(count))};
      }
      err = std::min(err, interp_err);
    }
  }
  return {Verdict::kFail,
          str_format("numeric mismatch err=%g tol=%g at m=%lld n=%lld "
                     "k=%lld batch=%lld (square-48 verification passes)",
                     err, tol, static_cast<long long>(c.m),
                     static_cast<long long>(c.n),
                     static_cast<long long>(k),
                     static_cast<long long>(count))};
}

CheckResult check_roundtrip(const FuzzCase& c) {
  // Script: parse must accept its own to_text output for every entry
  // the fuzzer emits, reproduce the script exactly (fingerprint
  // included), and re-serialize to identical bytes.
  const std::string text = epod::to_text(c.script);
  auto parsed = epod::parse(text);
  if (!parsed.is_ok()) {
    return {Verdict::kFail, "epod::parse rejects its own to_text: " +
                                sanitize(parsed.status().to_string())};
  }
  if (!(*parsed == c.script)) {
    return {Verdict::kFail, "script round trip is not the identity"};
  }
  if (parsed->fingerprint() != c.script.fingerprint()) {
    return {Verdict::kFail, "script fingerprint changed across round trip"};
  }
  if (epod::to_text(*parsed) != text) {
    return {Verdict::kFail, "epod::to_text is not canonical"};
  }

  // Artifact: the same property for the .oalib wrapping of the case.
  const std::string atext = synthetic_artifact_text(c);
  auto art = libgen::parse(atext);
  if (!art.is_ok()) {
    return {Verdict::kFail, "libgen::parse rejects its own to_text: " +
                                sanitize(art.status().to_string())};
  }
  if (libgen::to_text(*art) != atext) {
    return {Verdict::kFail, "libgen::to_text is not canonical"};
  }
  if (art->entries.size() != 1) {
    return {Verdict::kFail, "artifact entry count changed across round trip"};
  }
  const libgen::ArtifactEntry& e = art->entries[0];
  if (e.script.fingerprint() != c.script.fingerprint() ||
      e.params.fingerprint() != c.params.fingerprint() ||
      e.variant != c.variant.name()) {
    return {Verdict::kFail, "artifact entry fields changed across round trip"};
  }
  return {Verdict::kPass, "script+artifact round trip identical"};
}

CheckResult check_mutation(const FuzzCase& c) {
  // The corrupted payload must never crash a parser; acceptance is fine
  // (many mutations are benign) but anything accepted must itself be
  // round-trip stable — a parser that accepts bytes it cannot re-read
  // would corrupt the library on the next save/load cycle.
  if (c.mutation_target == MutationTarget::kScript) {
    auto parsed = epod::parse(c.payload);
    if (!parsed.is_ok()) {
      return {Verdict::kPass,
              "rejected: " + sanitize(parsed.status().to_string())};
    }
    auto again = epod::parse(epod::to_text(*parsed));
    if (!again.is_ok()) {
      return {Verdict::kFail, "accepted mutation does not re-parse: " +
                                  sanitize(again.status().to_string())};
    }
    if (!(*again == *parsed)) {
      return {Verdict::kFail, "accepted mutation is not round-trip stable"};
    }
    return {Verdict::kPass, "accepted (benign mutation), stable"};
  }
  auto art = libgen::parse(c.payload);
  if (!art.is_ok()) {
    return {Verdict::kPass, "rejected: " + sanitize(art.status().to_string())};
  }
  auto again = libgen::parse(libgen::to_text(*art));
  if (!again.is_ok()) {
    return {Verdict::kFail, "accepted artifact mutation does not re-parse: " +
                                sanitize(again.status().to_string())};
  }
  return {Verdict::kPass, "accepted (benign mutation), stable"};
}

CheckResult check_fastpath(const gpusim::Simulator& sim, const FuzzCase& c) {
  ir::Program program = blas3::make_source_program(c.variant);
  auto mask = apply_like_engine(program, c);
  if (!mask.is_ok()) {
    return {Verdict::kRejected,
            "apply/validate: " + sanitize(mask.status().to_string())};
  }

  gpusim::RunOptions opts;
  opts.int_params = c.variant.family == blas3::Family::kGemm
                        ? ir::Env{{"M", c.m}, {"N", c.n}, {"K", c.k}}
                        : ir::Env{{"M", c.m}, {"N", c.n}};
  if (c.variant.batch != blas3::Batch::kSingle) {
    // Batched pricing multiplies counters by the batch count on both
    // paths; the bit-identity contract must hold there too.
    opts.int_params["BATCH"] = case_batch(c);
  }
  opts.fastpath = true;
  auto fast = sim.run_performance(program, opts);
  opts.fastpath = false;
  auto interp = sim.run_performance(program, opts);
  if (fast.is_ok() != interp.is_ok()) {
    return {Verdict::kFail,
            str_format("status divergence: fast=%s interp=%s",
                       sanitize(fast.status().to_string()).c_str(),
                       sanitize(interp.status().to_string()).c_str())};
  }
  if (!fast.is_ok()) {
    return {Verdict::kRejected,
            "both paths reject: " + sanitize(fast.status().to_string())};
  }
  if (!(fast->counters == interp->counters)) {
    return {Verdict::kFail, "aggregate counters diverge: " +
                                counter_diff(fast->counters,
                                             interp->counters)};
  }
  if (fast->kernels.size() != interp->kernels.size()) {
    return {Verdict::kFail, "kernel count diverges between paths"};
  }
  for (size_t i = 0; i < fast->kernels.size(); ++i) {
    if (!(fast->kernels[i].counters == interp->kernels[i].counters)) {
      return {Verdict::kFail,
              "kernel counters diverge: " + fast->kernels[i].name + ": " +
                  counter_diff(fast->kernels[i].counters,
                               interp->kernels[i].counters)};
    }
  }
  if (interp->fastpath.fast_statements != 0) {
    return {Verdict::kFail, "interpreter run touched the fast path"};
  }
  return {Verdict::kPass,
          str_format("counters bit-identical (mask=%llx)",
                     static_cast<unsigned long long>(*mask))};
}

CheckResult check_native(const gpusim::Simulator& sim, const FuzzCase& c) {
  ir::Program program = blas3::make_source_program(c.variant);
  auto mask = apply_like_engine(program, c);
  if (!mask.is_ok()) {
    return {Verdict::kRejected,
            "apply/validate: " + sanitize(mask.status().to_string())};
  }

  // Same rectangular inputs as check_differential so a divergence here
  // is attributable to the backend, never to data preparation. Batched
  // variants run the fused exec::execute_batched path against a loop of
  // interpreter members — the semantic contract docs/BATCHED.md states.
  const int64_t k = reduction_length(c);
  const int64_t count = case_batch(c);
  const CaseInputs in = make_inputs(c, count);
  const std::map<std::string, bool> bools = {{"blank_zero", true}};
  const bool batched = c.variant.batch != blas3::Batch::kSingle;

  std::vector<Matrix> interp_b = in.b;
  std::vector<Matrix> interp_c = in.c;
  Status interp =
      batched ? engine::execute_batched(sim, program, c.variant, in.a,
                                        interp_b, &interp_c, bools)
              : engine::execute_program(sim, program, c.variant, in.a[0],
                                        interp_b[0], &interp_c[0], bools);

  std::vector<Matrix> native_b = in.b;
  std::vector<Matrix> native_c = in.c;
  Status native =
      batched ? exec::execute_batched(sim.device(), program, c.variant,
                                      in.a, native_b, &native_c, bools,
                                      shared_exec_cache())
              : exec::execute_program(sim.device(), program, c.variant,
                                      in.a[0], native_b[0], &native_c[0],
                                      bools, shared_exec_cache());

  if (!interp.is_ok() && !native.is_ok()) {
    return {Verdict::kRejected,
            "both backends reject: " + sanitize(interp.to_string())};
  }
  if (!interp.is_ok()) {
    return {Verdict::kFail, "native computed where the interpreter "
                            "rejected: " + sanitize(interp.to_string())};
  }
  if (!native.is_ok()) {
    if (native.code() == ErrorCode::kFailedPrecondition) {
      // Lowering refused the kernel (e.g. barrier under lane-divergent
      // control flow) — the runtime falls back to the interpreter here,
      // so this mirrors an expected degeneration, not a wrong answer.
      return {Verdict::kRejected,
              "native lowering unsupported: " + sanitize(native.to_string())};
    }
    return {Verdict::kFail,
            "native execution failed: " + sanitize(native.to_string())};
  }

  const double diff =
      max_member_diff(c, native_b, native_c, interp_b, interp_c);
  if (diff == 0.0) {
    return {Verdict::kPass,
            str_format("bit-identical (mask=%llx%s)",
                       static_cast<unsigned long long>(*mask),
                       batched ? str_format(" batch=%lld",
                                            static_cast<long long>(count))
                                     .c_str()
                               : "")};
  }

  // The backends order lane execution differently, so a kernel with a
  // benign race may legitimately diverge bit-wise. Tolerate that only
  // when BOTH backends stay within the reference tolerance.
  std::vector<Matrix> ref_b = in.b;
  std::vector<Matrix> ref_c = in.c;
  for (int64_t i = 0; i < count; ++i) {
    blas3::run_reference(c.variant, in.a[static_cast<size_t>(i)],
                         ref_b[static_cast<size_t>(i)],
                         &ref_c[static_cast<size_t>(i)]);
  }
  const double tol = blas3::accumulation_tolerance(k, c.variant.precision);
  const double err_i = max_member_diff(c, interp_b, interp_c, ref_b, ref_c);
  const double err_n = max_member_diff(c, native_b, native_c, ref_b, ref_c);
  if (err_i <= tol && err_n <= tol) {
    return {Verdict::kPass,
            str_format("diverge %g but both within tol=%g (racy kernel)",
                       diff, tol)};
  }

  // Bit divergence AND at least one backend is off-reference. Blame the
  // case only if the engine's standard square verification would have
  // shipped this composition.
  Status square = engine::verify_program(sim, c.variant, program,
                                         /*n=*/48, bools);
  if (!square.is_ok()) {
    return {Verdict::kRejected,
            "engine rejects composition: " + sanitize(square.to_string())};
  }
  return {Verdict::kFail,
          str_format("native diverges diff=%g (interp err=%g native err=%g "
                     "tol=%g) at m=%lld n=%lld k=%lld batch=%lld",
                     diff, err_i, err_n, tol, static_cast<long long>(c.m),
                     static_cast<long long>(c.n), static_cast<long long>(k),
                     static_cast<long long>(count))};
}

}  // namespace oa::verify
