#include "verify/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "epod/script.hpp"
#include "support/strings.hpp"

namespace oa::verify {
namespace {

std::string hex_encode(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char ch : bytes) {
    const auto u = static_cast<unsigned char>(ch);
    out.push_back(kDigits[u >> 4]);
    out.push_back(kDigits[u & 0xF]);
  }
  return out;
}

StatusOr<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return invalid_argument("payload_hex has odd length");
  }
  auto nibble = [](char ch) -> int {
    if (ch >= '0' && ch <= '9') return ch - '0';
    if (ch >= 'a' && ch <= 'f') return ch - 'a' + 10;
    if (ch >= 'A' && ch <= 'F') return ch - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return invalid_argument("payload_hex has a non-hex character");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

/// Split into lines without the trailing newline of the last one.
std::vector<std::string> to_lines(std::string_view text) {
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      if (begin < text.size()) lines.emplace_back(text.substr(begin));
      break;
    }
    lines.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

/// Sequential reader over the reproducer lines.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : lines_(to_lines(text)) {}

  bool done() const { return pos_ >= lines_.size(); }
  const std::string& peek() const { return lines_[pos_]; }
  std::string next() { return lines_[pos_++]; }
  size_t line_number() const { return pos_ + 1; }

  /// Consume `count` lines that must start with "| " (or be exactly
  /// "|") and return their contents.
  StatusOr<std::vector<std::string>> block(size_t count) {
    std::vector<std::string> out;
    for (size_t i = 0; i < count; ++i) {
      if (done()) {
        return invalid_argument(
            str_format("case line %zu: block truncated", line_number()));
      }
      std::string line = next();
      if (line == "|") {
        out.emplace_back();
      } else if (starts_with(line, "| ")) {
        out.emplace_back(line.substr(2));
      } else {
        return invalid_argument(str_format(
            "case line %zu: expected '| ' block line", line_number() - 1));
      }
    }
    return out;
  }

 private:
  std::vector<std::string> lines_;
  size_t pos_ = 0;
};

StatusOr<int64_t> parse_i64(const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument("expected integer, got '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<uint64_t> parse_u64(const std::string& text) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return invalid_argument("expected integer, got '" + text + "'");
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

std::string case_to_text(const FuzzCase& c) {
  std::string out;
  out += "oacheck-case 1\n";
  out += str_format("origin %s\n", c.id().c_str());
  out += str_format("kind %s\n", check_kind_name(c.kind));
  out += str_format("variant %s\n", c.variant.name().c_str());
  out += str_format("sizes %lld %lld %lld\n", static_cast<long long>(c.m),
                    static_cast<long long>(c.n), static_cast<long long>(c.k));
  // Optional batched axis: omitted for batch=1 so pre-batched corpus
  // files stay byte-identical under a save/load cycle.
  if (c.batch != 1) {
    out += str_format("batch %lld\n", static_cast<long long>(c.batch));
  }
  out += str_format(
      "params %lld %lld %lld %lld %lld %d\n",
      static_cast<long long>(c.params.block_tile_y),
      static_cast<long long>(c.params.block_tile_x),
      static_cast<long long>(c.params.threads_y),
      static_cast<long long>(c.params.threads_x),
      static_cast<long long>(c.params.k_tile), c.params.unroll);
  const std::vector<std::string> script_lines =
      to_lines(epod::to_text(c.script));
  out += str_format("script %zu\n", script_lines.size());
  for (const std::string& line : script_lines) {
    out += line.empty() ? "|\n" : "| " + line + "\n";
  }
  if (c.kind == CheckKind::kMutation) {
    out += str_format("mutation_target %s\n",
                      mutation_target_name(c.mutation_target));
    const std::string hex = hex_encode(c.payload);
    // 64 hex digits (32 payload bytes) per line.
    std::vector<std::string> hex_lines;
    for (size_t i = 0; i < hex.size(); i += 64) {
      hex_lines.push_back(hex.substr(i, 64));
    }
    out += str_format("payload_hex %zu\n", hex_lines.size());
    for (const std::string& line : hex_lines) out += "| " + line + "\n";
  }
  out += "end\n";
  return out;
}

StatusOr<FuzzCase> case_from_text(std::string_view text) {
  Cursor cur(text);
  FuzzCase c;
  bool saw_end = false;
  bool saw_header = false;
  while (!cur.done()) {
    const size_t at = cur.line_number();
    const std::string line = cur.next();
    if (line.empty() || starts_with(line, "#")) continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    auto rest_of = [&ss]() {
      std::string rest;
      std::getline(ss, rest);
      return std::string(trim(rest));
    };
    if (key == "oacheck-case") {
      const std::string version = rest_of();
      if (version != "1") {
        return invalid_argument("unsupported case format version '" +
                                version + "'");
      }
      saw_header = true;
    } else if (key == "origin") {
      const std::string origin = rest_of();
      const size_t colon = origin.find(':');
      if (colon == std::string::npos) {
        return invalid_argument(
            str_format("case line %zu: origin wants seed:index", at));
      }
      OA_ASSIGN_OR_RETURN(c.seed, parse_u64(origin.substr(0, colon)));
      OA_ASSIGN_OR_RETURN(c.index, parse_u64(origin.substr(colon + 1)));
    } else if (key == "kind") {
      if (!parse_check_kind(rest_of(), &c.kind)) {
        return invalid_argument(
            str_format("case line %zu: unknown check kind", at));
      }
    } else if (key == "variant") {
      const std::string name = rest_of();
      const blas3::Variant* v = blas3::find_variant(name);
      if (v == nullptr) {
        return invalid_argument(str_format(
            "case line %zu: unknown variant '%s'", at, name.c_str()));
      }
      c.variant = *v;
    } else if (key == "sizes") {
      std::string sm, sn, sk;
      ss >> sm >> sn >> sk;
      OA_ASSIGN_OR_RETURN(c.m, parse_i64(sm));
      OA_ASSIGN_OR_RETURN(c.n, parse_i64(sn));
      OA_ASSIGN_OR_RETURN(c.k, parse_i64(sk));
      if (c.m < 1 || c.n < 1 || c.k < 1) {
        return invalid_argument(
            str_format("case line %zu: sizes must be positive", at));
      }
    } else if (key == "batch") {
      std::string sb;
      ss >> sb;
      OA_ASSIGN_OR_RETURN(c.batch, parse_i64(sb));
      if (c.batch < 1 || c.batch > 65536) {
        return invalid_argument(
            str_format("case line %zu: batch must be in [1, 65536]", at));
      }
    } else if (key == "params") {
      std::string f[6];
      for (auto& piece : f) ss >> piece;
      OA_ASSIGN_OR_RETURN(c.params.block_tile_y, parse_i64(f[0]));
      OA_ASSIGN_OR_RETURN(c.params.block_tile_x, parse_i64(f[1]));
      OA_ASSIGN_OR_RETURN(c.params.threads_y, parse_i64(f[2]));
      OA_ASSIGN_OR_RETURN(c.params.threads_x, parse_i64(f[3]));
      OA_ASSIGN_OR_RETURN(c.params.k_tile, parse_i64(f[4]));
      OA_ASSIGN_OR_RETURN(const int64_t unroll, parse_i64(f[5]));
      c.params.unroll = static_cast<int>(unroll);
      OA_RETURN_IF_ERROR(c.params.check());
    } else if (key == "script") {
      std::string count_text;
      ss >> count_text;
      OA_ASSIGN_OR_RETURN(const int64_t count, parse_i64(count_text));
      if (count < 0 || count > 4096) {
        return invalid_argument(
            str_format("case line %zu: unreasonable script line count", at));
      }
      OA_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          cur.block(static_cast<size_t>(count)));
      OA_ASSIGN_OR_RETURN(c.script,
                          epod::parse(join(lines, "\n") + "\n"));
    } else if (key == "mutation_target") {
      const std::string target = rest_of();
      if (target == "script") {
        c.mutation_target = MutationTarget::kScript;
      } else if (target == "artifact") {
        c.mutation_target = MutationTarget::kArtifact;
      } else {
        return invalid_argument(
            str_format("case line %zu: unknown mutation target", at));
      }
    } else if (key == "payload_hex") {
      std::string count_text;
      ss >> count_text;
      OA_ASSIGN_OR_RETURN(const int64_t count, parse_i64(count_text));
      if (count < 0 || count > 65536) {
        return invalid_argument(
            str_format("case line %zu: unreasonable payload line count", at));
      }
      OA_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          cur.block(static_cast<size_t>(count)));
      OA_ASSIGN_OR_RETURN(c.payload, hex_decode(join(lines, "")));
    } else if (key == "payload") {
      // Raw-text alternative for hand-written printable payloads.
      std::string count_text;
      ss >> count_text;
      OA_ASSIGN_OR_RETURN(const int64_t count, parse_i64(count_text));
      if (count < 0 || count > 65536) {
        return invalid_argument(
            str_format("case line %zu: unreasonable payload line count", at));
      }
      OA_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          cur.block(static_cast<size_t>(count)));
      c.payload = join(lines, "\n") + "\n";
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      return invalid_argument(
          str_format("case line %zu: unknown key '%s'", at, key.c_str()));
    }
  }
  if (!saw_header) return invalid_argument("missing oacheck-case header");
  if (!saw_end) return invalid_argument("case truncated: missing 'end'");
  return c;
}

Status save_case(const FuzzCase& c, const std::string& path) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return internal_error("cannot open '" + path + "' for writing");
  out << case_to_text(c);
  out.close();
  if (!out) return internal_error("write to '" + path + "' failed");
  return Status::ok();
}

StatusOr<FuzzCase> load_case(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found("cannot read case file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto c = case_from_text(buf.str());
  if (!c.is_ok()) {
    return Status(c.status().code(),
                  path + ": " + c.status().message());
  }
  return c;
}

std::string case_filename(const FuzzCase& c) {
  return str_format("%s_%llu_%llu.case", check_kind_name(c.kind),
                    static_cast<unsigned long long>(c.seed),
                    static_cast<unsigned long long>(c.index));
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".case") continue;
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace oa::verify
