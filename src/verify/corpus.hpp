// Corpus persistence: failing fuzz cases minimize to a one-file
// reproducer under tests/corpus/ (and to an `oacheck --repro
// seed:index` line when the case came from the fuzzer). The format is
// line-oriented text like the .oalib artifact:
//
//   oacheck-case 1                 <- format version
//   origin 42:137                  <- (seed, index) the fuzzer used
//   kind differential
//   variant TRSM-LL-N
//   sizes 7 96 1                   <- m n k
//   params 32 16 8 4 16 2          <- bty btx ty tx kt unroll
//   script 3                       <- epod::to_text line count
//   | //! routine: TRSM-LL-N
//   | ...
//   mutation_target artifact       <- mutation cases only
//   payload_hex 2                  <- hex-encoded corrupted bytes
//   | 6f61626c...
//   end
//
// `payload N` with raw text lines is accepted too, for hand-written
// regression cases whose payload is printable.
#pragma once

#include <string>
#include <vector>

#include "support/status.hpp"
#include "verify/fuzzer.hpp"

namespace oa::verify {

/// Serialize a case to reproducer text / parse it back. Round trips
/// exactly (payloads go through hex, so arbitrary bytes survive).
std::string case_to_text(const FuzzCase& c);
StatusOr<FuzzCase> case_from_text(std::string_view text);

/// File-level wrappers.
Status save_case(const FuzzCase& c, const std::string& path);
StatusOr<FuzzCase> load_case(const std::string& path);

/// Canonical reproducer filename, "<kind>_<seed>_<index>.case".
std::string case_filename(const FuzzCase& c);

/// All *.case files in `dir`, sorted by name (deterministic run order);
/// empty when the directory does not exist.
std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace oa::verify
