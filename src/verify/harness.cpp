#include "verify/harness.hpp"

#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "gpusim/device.hpp"
#include "support/strings.hpp"
#include "verify/corpus.hpp"

namespace oa::verify {

size_t Report::count(Verdict v) const {
  size_t n = 0;
  for (const CaseResult& r : results) {
    if (r.verdict == v) ++n;
  }
  return n;
}

size_t Report::variants_covered() const {
  std::set<std::string> names;
  for (const CaseResult& r : results) names.insert(r.fuzz.variant.name());
  return names.size();
}

std::string Report::case_list() const {
  std::string out;
  for (const CaseResult& r : results) {
    out += r.source == "fuzz" ? r.fuzz.to_string()
                              : "corpus:" + r.source + " " +
                                    r.fuzz.to_string();
    out += " -> ";
    out += verdict_name(r.verdict);
    out += " | ";
    out += r.detail;
    out += "\n";
  }
  return out;
}

std::string Report::summary() const {
  std::map<std::string, std::pair<size_t, size_t>> by_kind;  // ran, failed
  for (const CaseResult& r : results) {
    auto& [ran, failed] = by_kind[check_kind_name(r.fuzz.kind)];
    ++ran;
    if (r.verdict == Verdict::kFail) ++failed;
  }
  std::string out = str_format(
      "oacheck seed=%llu: %zu cases — %zu pass, %zu rejected "
      "(expected degenerations), %zu FAIL; %zu/%zu variants covered",
      static_cast<unsigned long long>(seed), results.size(),
      count(Verdict::kPass), count(Verdict::kRejected), failed(),
      variants_covered(),
      blas3::all_variants().size() + blas3::batched_variants().size());
  for (const auto& [kind, counts] : by_kind) {
    out += str_format("\n  %-12s %zu cases, %zu FAIL", kind.c_str(),
                      counts.first, counts.second);
  }
  if (!written_reproducers.empty()) {
    out += str_format("\n  %zu reproducer(s) written:",
                      written_reproducers.size());
    for (const std::string& path : written_reproducers) {
      out += "\n    " + path;
    }
  }
  return out;
}

Harness::Harness(const gpusim::DeviceModel& device, HarnessOptions options)
    : sim_(device),
      options_(std::move(options)),
      fuzzer_(options_.seed, options_.fuzzer) {}

CaseResult Harness::run_case(const FuzzCase& c) const {
  CaseResult r;
  r.fuzz = c;
  CheckResult check = check_case(sim_, c, options_.check);
  r.verdict = check.verdict;
  r.detail = std::move(check.detail);
  return r;
}

Report Harness::run() {
  Report rep;
  rep.seed = options_.seed;
  if (!options_.corpus_dir.empty()) {
    for (const std::string& path : list_corpus(options_.corpus_dir)) {
      const std::string name =
          std::filesystem::path(path).filename().string();
      auto loaded = load_case(path);
      if (!loaded.is_ok()) {
        CaseResult r;
        r.source = name;
        r.verdict = Verdict::kFail;
        r.detail = "corpus load: " + loaded.status().to_string();
        rep.results.push_back(std::move(r));
        continue;
      }
      CaseResult r = run_case(*loaded);
      r.source = name;
      rep.results.push_back(std::move(r));
    }
  }
  for (uint64_t i = 0; i < options_.cases; ++i) {
    const FuzzCase c = fuzzer_.make_case(i);
    CaseResult r = run_case(c);
    if (r.verdict == Verdict::kFail && !options_.write_corpus_dir.empty()) {
      const std::string path =
          options_.write_corpus_dir + "/" + case_filename(c);
      if (save_case(c, path).is_ok()) {
        rep.written_reproducers.push_back(path);
      }
    }
    rep.results.push_back(std::move(r));
  }
  return rep;
}

const gpusim::DeviceModel* device_by_name(const std::string& name) {
  if (name == "geforce9800") return &gpusim::geforce_9800();
  if (name == "gtx285") return &gpusim::gtx285();
  if (name == "fermi") return &gpusim::fermi_c2050();
  return nullptr;
}

}  // namespace oa::verify
