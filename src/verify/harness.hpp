// The oacheck harness: runs checked-in corpus reproducers plus a
// seeded stream of ScriptFuzzer cases through the five checks and
// renders a deterministic report. Two runs with the same options
// produce byte-identical case lists and summaries — the property the
// seed-determinism test (tests/verify_test.cpp) locks in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/simulator.hpp"
#include "verify/checks.hpp"
#include "verify/fuzzer.hpp"

namespace oa::verify {

struct HarnessOptions {
  uint64_t seed = 1;
  uint64_t cases = 500;
  FuzzerOptions fuzzer;
  /// Per-check knobs (native-first differential etc.).
  CheckOptions check;
  /// Directory of checked-in *.case reproducers to run before the
  /// fuzzed stream (empty: skip).
  std::string corpus_dir;
  /// Directory failing *fuzzed* cases are persisted to as reproducer
  /// files (empty: don't persist).
  std::string write_corpus_dir;
};

struct CaseResult {
  FuzzCase fuzz;
  Verdict verdict = Verdict::kPass;
  std::string detail;
  /// "fuzz" for generated cases, the file path for corpus cases.
  std::string source = "fuzz";
};

struct Report {
  uint64_t seed = 0;
  std::vector<CaseResult> results;
  /// Reproducer files written for failing cases this run.
  std::vector<std::string> written_reproducers;

  size_t count(Verdict v) const;
  size_t failed() const { return count(Verdict::kFail); }
  bool ok() const { return failed() == 0; }
  /// Distinct variants exercised (acceptance: all 64 — both
  /// precisions, the batched families included).
  size_t variants_covered() const;

  /// One deterministic line per case: id, kind, variant, sizes, verdict
  /// and detail. Byte-identical across same-seed runs.
  std::string case_list() const;
  /// Aggregate one-paragraph summary (counts per verdict and per check
  /// kind, variant coverage).
  std::string summary() const;
};

class Harness {
 public:
  Harness(const gpusim::DeviceModel& device, HarnessOptions options);

  /// Corpus cases (sorted) first, then fuzz cases 0..cases-1.
  Report run();

  /// Run one case through its check.
  CaseResult run_case(const FuzzCase& c) const;

  const ScriptFuzzer& fuzzer() const { return fuzzer_; }
  const HarnessOptions& options() const { return options_; }

 private:
  gpusim::Simulator sim_;
  HarnessOptions options_;
  ScriptFuzzer fuzzer_;
};

/// Device preset lookup by CLI name (geforce9800 / gtx285 / fermi);
/// nullptr for unknown names.
const gpusim::DeviceModel* device_by_name(const std::string& name);

}  // namespace oa::verify
