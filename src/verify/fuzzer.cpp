#include "verify/fuzzer.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "epod/script.hpp"
#include "libgen/artifact.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace oa::verify {
namespace {

using transforms::Invocation;

const char* kArrays[] = {"A", "B", "C"};
const char* kModes[] = {"NoChange", "Transpose", "Symmetry"};

std::string pick(Rng& rng, const std::vector<std::string>& from) {
  return from[rng.next_below(from.size())];
}

std::string pick_mode(Rng& rng) { return kModes[rng.next_below(3)]; }

/// Deterministic text corruption: 1-3 rounds of byte flips, truncation,
/// span deletion, line duplication, or garbage insertion. Intentionally
/// includes NUL and high bytes — the parsers must treat the result as
/// opaque bytes and answer with a Status, never with UB.
std::string mutate_text(Rng& rng, std::string text) {
  const uint64_t rounds = 1 + rng.next_below(3);
  for (uint64_t r = 0; r < rounds; ++r) {
    if (text.empty()) {
      text.push_back(static_cast<char>(rng.next_below(256)));
      continue;
    }
    const size_t pos = rng.next_below(text.size());
    switch (rng.next_below(5)) {
      case 0:  // flip one byte to an arbitrary value
        text[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:  // truncate (the artifact trailer check must notice)
        text.resize(pos);
        break;
      case 2: {  // delete a short span
        const size_t len =
            std::min<size_t>(1 + rng.next_below(8), text.size() - pos);
        text.erase(pos, len);
        break;
      }
      case 3: {  // duplicate the line containing pos
        size_t begin = text.rfind('\n', pos);
        begin = begin == std::string::npos ? 0 : begin + 1;
        size_t end = text.find('\n', pos);
        end = end == std::string::npos ? text.size() : end + 1;
        text.insert(begin, text.substr(begin, end - begin));
        break;
      }
      default: {  // insert printable-ish garbage
        std::string junk;
        const uint64_t len = 1 + rng.next_below(6);
        for (uint64_t i = 0; i < len; ++i)
          junk.push_back(static_cast<char>(32 + rng.next_below(96)));
        text.insert(pos, junk);
        break;
      }
    }
  }
  return text;
}

}  // namespace

const char* check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kDifferential: return "differential";
    case CheckKind::kRoundTrip: return "roundtrip";
    case CheckKind::kMutation: return "mutation";
    case CheckKind::kFastPath: return "fastpath";
    case CheckKind::kNative: return "native";
  }
  return "?";
}

bool parse_check_kind(const std::string& text, CheckKind* out) {
  for (CheckKind k : {CheckKind::kDifferential, CheckKind::kRoundTrip,
                      CheckKind::kMutation, CheckKind::kFastPath,
                      CheckKind::kNative}) {
    if (text == check_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

const char* mutation_target_name(MutationTarget target) {
  return target == MutationTarget::kScript ? "script" : "artifact";
}

std::string FuzzCase::id() const {
  return str_format("%llu:%llu", static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(index));
}

std::string FuzzCase::to_string() const {
  std::string line = str_format(
      "%s %s %s m=%lld n=%lld k=%lld inv=%zu params=[%s] script_fp=%016llx",
      id().c_str(), check_kind_name(kind), variant.name().c_str(),
      static_cast<long long>(m), static_cast<long long>(n),
      static_cast<long long>(k), script.invocations.size(),
      params.to_string().c_str(),
      static_cast<unsigned long long>(script.fingerprint()));
  if (batch != 1) {
    line += str_format(" batch=%lld", static_cast<long long>(batch));
  }
  if (kind == CheckKind::kMutation) {
    line += str_format(" mutation=%s payload_bytes=%zu",
                       mutation_target_name(mutation_target), payload.size());
  }
  return line;
}

ScriptFuzzer::ScriptFuzzer(uint64_t seed, FuzzerOptions options)
    : seed_(seed), options_(options) {}

transforms::TuningParams ScriptFuzzer::fuzz_params(Rng& rng) const {
  // Draw from the legal lattice the tuner itself explores: tiles are
  // powers of two, thread counts divide their tile (TuningParams::check
  // requires it), and the block stays within even the geforce9800's
  // 512-thread limit most of the time.
  static const int64_t kTiles[] = {8, 16, 32, 64};
  transforms::TuningParams p;
  p.block_tile_y = kTiles[rng.next_below(std::size(kTiles))];
  p.block_tile_x = kTiles[rng.next_below(std::size(kTiles))];
  auto pick_threads = [&rng](int64_t tile) {
    std::vector<int64_t> divisors;
    for (int64_t t = 1; t <= tile && t <= 16; t *= 2) divisors.push_back(t);
    return divisors[rng.next_below(divisors.size())];
  };
  p.threads_y = pick_threads(p.block_tile_y);
  p.threads_x = pick_threads(p.block_tile_x);
  static const int64_t kKTiles[] = {1, 2, 4, 8, 16, 32};
  p.k_tile = kKTiles[rng.next_below(std::size(kKTiles))];
  static const int kUnrolls[] = {1, 2, 4, 8};
  p.unroll = kUnrolls[rng.next_below(std::size(kUnrolls))];
  return p;
}

int64_t ScriptFuzzer::fuzz_extent(Rng& rng) const {
  // Half the draws come from the edge pool the ISSUE names: 1, small
  // primes, non-multiples of every tile size, exact powers of two, and
  // dispatch bucket boundaries (2^b - 1, 2^b, 2^b + 1).
  static const int64_t kEdges[] = {1,  2,  3,  5,  7,  8,  13, 15, 16, 17,
                                   24, 31, 32, 33, 37, 45, 48, 61, 63, 64,
                                   65, 67, 72, 89, 96, 97, 127, 128};
  int64_t n;
  if (rng.next_below(2) == 0) {
    n = kEdges[rng.next_below(std::size(kEdges))];
  } else {
    n = 1 + static_cast<int64_t>(
                rng.next_below(static_cast<uint64_t>(options_.max_size)));
  }
  return std::min(n, options_.max_size);
}

epod::Script ScriptFuzzer::fuzz_script(Rng& rng,
                                       const blas3::Variant& v) const {
  // Walk the composer's legality rules (transforms/transform.hpp):
  // GM_map, when present, comes first (must_be_first); polyhedral
  // components follow source loop-label structure; memory-allocation
  // components trail (the splitter's ordering). Individual invocations
  // may still fail on a given variant — lenient application omits them,
  // exactly like composer::filter_sequence.
  epod::Script s;
  s.routine = v.name();
  std::vector<Invocation>& inv = s.invocations;

  // Rarely: the empty script (the untransformed source is a legal,
  // verifiable candidate too).
  if (rng.next_below(32) == 0) return s;

  if (rng.next_below(8) == 0) {
    inv.push_back(Invocation{
        "GM_map", {std::string(kArrays[rng.next_below(2)]), pick_mode(rng)},
        {}});
  }

  const bool grouped = rng.next_below(8) != 0;
  if (grouped) {
    // Occasionally swap the label order — still grammatical; the
    // component decides whether it can apply.
    if (rng.next_below(16) == 0) {
      inv.push_back(
          Invocation{"thread_grouping", {"Lj", "Li"}, {"Ljj", "Lii"}});
    } else {
      inv.push_back(
          Invocation{"thread_grouping", {"Li", "Lj"}, {"Lii", "Ljj"}});
    }
  }

  const bool tiled = rng.next_below(8) != 0;
  if (tiled) {
    if (grouped) {
      inv.push_back(Invocation{
          "loop_tiling", {"Lii", "Ljj", "Lk"}, {"Liii", "Ljjj", "Lkkk"}});
    } else {
      inv.push_back(Invocation{
          "loop_tiling", {"Li", "Lj", "Lk"}, {"Liii", "Ljjj", "Lkkk"}});
    }
  }

  // Triangular adaptors: likely for the structured families, rare (and
  // expected to degenerate cleanly) for GEMM.
  const bool structured = v.family == blas3::Family::kTrmm ||
                          v.family == blas3::Family::kTrsm ||
                          v.family == blas3::Family::kSymm;
  const uint64_t tri_odds = structured ? 4 : 16;
  if (rng.next_below(tri_odds) < 3) {
    inv.push_back(Invocation{"peel_triangular", {"A"}, {}});
  }
  if (rng.next_below(tri_odds) < 2) {
    inv.push_back(Invocation{"padding_triangular", {"A"}, {}});
  }
  if (v.family == blas3::Family::kTrsm ? rng.next_below(2) == 0
                                       : rng.next_below(16) == 0) {
    inv.push_back(Invocation{
        "binding_triangular",
        {"A", str_format("%llu", (unsigned long long)rng.next_below(2))},
        {}});
  }

  if (rng.next_below(8) == 0) {
    inv.push_back(Invocation{
        "format_iteration", {pick(rng, {"A", "B"}), pick_mode(rng)}, {}});
  }

  // Unroll over labels that exist after tiling (or adversarially over
  // ones that may not — lenient application handles the miss).
  if (rng.next_below(4) != 0) {
    std::vector<std::string> pool =
        tiled ? std::vector<std::string>{"Ljjj", "Lkkk"}
              : std::vector<std::string>{"Lk"};
    if (rng.next_below(16) == 0) pool.push_back("Lzz");  // missing label
    std::vector<std::string> labels;
    for (const std::string& l : pool) {
      if (rng.next_below(4) != 0) labels.push_back(l);
    }
    if (labels.empty()) labels.push_back(pool[0]);
    inv.push_back(Invocation{"loop_unroll", labels, {}});
  }

  // Memory components trail (splitter ordering). Duplicates are legal
  // grammar; the second application either stacks or degenerates.
  if (rng.next_below(4) != 0) {
    inv.push_back(Invocation{"SM_alloc", {"B", "Transpose"}, {}});
  }
  if (rng.next_below(8) == 0) {
    inv.push_back(Invocation{"SM_alloc", {"A", pick_mode(rng)}, {}});
  }
  if (rng.next_below(16) == 0) {
    // Transpose o Transpose — merge_allocations folds this to NoChange.
    inv.push_back(Invocation{"SM_alloc", {"B", "Transpose"}, {}});
  }
  if (rng.next_below(4) != 0) {
    const char* target = v.family == blas3::Family::kTrsm ? "B" : "C";
    inv.push_back(Invocation{"reg_alloc", {target}, {}});
  }

  return s;
}

FuzzCase ScriptFuzzer::make_case(uint64_t index) const {
  FuzzCase c;
  c.seed = seed_;
  c.index = index;
  // Per-case generator: a pure function of (seed, index) — repro of any
  // case never needs the cases before it.
  Rng rng(Fingerprint()
              .mix(seed_)
              .mix(index)
              .mix(std::string_view("oacheck.case"))
              .digest());

  // The variant rotates with the index so any run of >= 64 consecutive
  // cases covers the whole catalog — both precisions, the batched
  // families included — deterministically.
  const auto& variants = blas3::all_variants();
  const auto& batched = blas3::batched_variants();
  const size_t rotation = variants.size() + batched.size();
  const size_t slot = index % rotation;
  c.variant = slot < variants.size() ? variants[slot]
                                     : batched[slot - variants.size()];

  std::vector<CheckKind> kinds;
  if (options_.differential) kinds.push_back(CheckKind::kDifferential);
  if (options_.roundtrip) kinds.push_back(CheckKind::kRoundTrip);
  if (options_.mutation) kinds.push_back(CheckKind::kMutation);
  if (options_.fastpath) kinds.push_back(CheckKind::kFastPath);
  if (options_.native) kinds.push_back(CheckKind::kNative);
  if (kinds.empty()) kinds.push_back(CheckKind::kRoundTrip);
  c.kind = kinds[rng.next_below(kinds.size())];

  c.params = fuzz_params(rng);
  c.script = fuzz_script(rng, c.variant);
  c.m = fuzz_extent(rng);
  c.n = fuzz_extent(rng);
  c.k = fuzz_extent(rng);
  if (c.variant.batch != blas3::Batch::kSingle) {
    // Edge-heavy batch counts: 1 (degenerate), 2, primes, and a
    // power of two. Kept small — every member runs functionally.
    static const int64_t kBatches[] = {1, 2, 3, 5, 7, 16};
    c.batch = kBatches[rng.next_below(std::size(kBatches))];
  }

  if (c.kind == CheckKind::kMutation) {
    c.mutation_target = rng.next_below(2) == 0 ? MutationTarget::kScript
                                               : MutationTarget::kArtifact;
    std::string base = c.mutation_target == MutationTarget::kScript
                           ? epod::to_text(c.script)
                           : synthetic_artifact_text(c);
    c.payload = mutate_text(rng, std::move(base));
  }
  return c;
}

std::string synthetic_artifact_text(const FuzzCase& c) {
  // A self-consistent one-entry artifact: fingerprints derive from the
  // case's script/params so libgen::parse's integrity chain (content
  // hash, fingerprint self-consistency, trailer) accepts it untouched.
  // Measurements are deterministic fakes — no wall clock.
  libgen::Artifact art;
  art.device = "gtx285";
  art.device_fp = Fingerprint().mix(std::string_view("oacheck.device"))
                      .digest();
  art.generator = "oacheck-fuzzer";

  libgen::ArtifactEntry e;
  e.variant = c.variant.name();
  e.precision = c.variant.precision;
  e.script = c.script;
  e.conditions = {"blank(A).zero = true"};
  e.params = c.params;
  e.applied_mask =
      c.script.invocations.empty()
          ? 0
          : (uint64_t{1} << std::min<size_t>(c.script.invocations.size(), 63)) -
                1;
  e.script_fingerprint = c.script.fingerprint();
  e.candidate_fingerprint = e.candidate().fingerprint();
  e.params_fingerprint = c.params.fingerprint();
  e.gflops = 1.0 + static_cast<double>(c.index % 997) * 0.5;
  e.seconds = 1.0 / static_cast<double>(1 + c.index % 13);
  e.tuned_size = std::max<int64_t>(c.n, 1);
  e.tuned_batch = blas3::tuning_batch(c.variant);
  art.entries.push_back(std::move(e));
  return libgen::to_text(art);
}

}  // namespace oa::verify
