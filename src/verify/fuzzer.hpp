// ScriptFuzzer: deterministic, seed-driven generation of randomized but
// *legal* verification cases for the generate -> serialize -> serve
// pipeline.
//
// "Legal" means the fuzzer walks the same rules the composer's
// splitter/mixer/filter obey (transforms/transform.hpp): component
// names come from the optimization pools, GM_map only ever appears
// first, memory-allocation components trail the polyhedral part, and
// label/array/mode arguments come from the vocabulary the BLAS3 source
// programs define. Individual components may still fail to apply — the
// composer's filter semantics make that an expected degeneration, and
// the checks (checks.hpp) apply scripts leniently exactly like the
// evaluation engine does.
//
// Determinism contract: a case is a pure function of (seed, index) —
// no wall clock, no global state, no iteration-order dependence — so
// `oacheck --repro SEED:INDEX` regenerates any case bit-identically
// and two runs with the same seed produce byte-identical case lists.
#pragma once

#include <cstdint>
#include <string>

#include "blas3/routine.hpp"
#include "epod/script.hpp"
#include "support/rng.hpp"
#include "transforms/transform.hpp"

namespace oa::verify {

/// The five cross-checks the harness runs (ISSUE: differential
/// numerics, serializer round trip, mutation robustness, fast-path
/// counter equivalence, native execution vs interpreter).
enum class CheckKind {
  kDifferential,  // fuzzed kernel vs blas3::reference numerics
  kRoundTrip,     // epod::to_text/parse + libgen::to_text/parse
  kMutation,      // corrupted script/artifact text must Status, not crash
  kFastPath,      // gpusim fast path vs interpreter counters
  kNative,        // exec backend (JIT + portable) vs interpreter results
};

const char* check_kind_name(CheckKind kind);
/// Parse a kind name ("differential", ...); returns false on unknown.
bool parse_check_kind(const std::string& text, CheckKind* out);

/// What a mutation case corrupts.
enum class MutationTarget { kScript, kArtifact };

const char* mutation_target_name(MutationTarget target);

/// One fully-determined verification case.
struct FuzzCase {
  uint64_t seed = 0;
  uint64_t index = 0;
  CheckKind kind = CheckKind::kRoundTrip;

  blas3::Variant variant;
  epod::Script script;              // fuzzed legal EPOD script
  transforms::TuningParams params;  // always passes params.check()
  int64_t m = 0, n = 0, k = 0;      // fuzzed problem extents
  /// Batch count for the GEMM_BATCHED / GEMM_STRIDED_BATCHED families
  /// (1 for every single variant). Drawn from an edge-heavy pool so
  /// count=1 and prime counts are exercised, not just round numbers.
  int64_t batch = 1;

  // Mutation cases only: the corrupted text handed to the parser.
  MutationTarget mutation_target = MutationTarget::kScript;
  std::string payload;

  /// Reproducer id, "seed:index".
  std::string id() const;
  /// Deterministic one-line description (no floats, no pointers).
  std::string to_string() const;
};

/// Options narrowing what the fuzzer emits.
struct FuzzerOptions {
  /// Check kinds the harness enabled; cases rotate over this set.
  bool differential = true;
  bool roundtrip = true;
  bool mutation = true;
  bool fastpath = true;
  bool native = true;
  /// Upper bound on fuzzed problem extents (keeps functional
  /// simulation affordable under sanitizers).
  int64_t max_size = 96;
};

class ScriptFuzzer {
 public:
  explicit ScriptFuzzer(uint64_t seed, FuzzerOptions options = {});

  /// The case for `index` — pure function of (seed, index, options).
  FuzzCase make_case(uint64_t index) const;

  // Individual generators, exposed for targeted tests. All draw only
  // from `rng`.
  epod::Script fuzz_script(Rng& rng, const blas3::Variant& v) const;
  transforms::TuningParams fuzz_params(Rng& rng) const;
  /// Edge-heavy extent distribution: 1, small primes, non-multiples of
  /// every tile size, exact powers of two, and bucket boundaries.
  int64_t fuzz_extent(Rng& rng) const;

  uint64_t seed() const { return seed_; }
  const FuzzerOptions& options() const { return options_; }

 private:
  uint64_t seed_ = 0;
  FuzzerOptions options_;
};

/// A synthetic one-entry library artifact text wrapping the case's
/// script/params with deterministic fake measurements — the corpus the
/// round-trip and mutation checks feed to libgen::parse.
std::string synthetic_artifact_text(const FuzzCase& c);

}  // namespace oa::verify
