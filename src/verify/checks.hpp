// The five cross-checks of the oacheck harness. Each takes one
// ScriptFuzzer case and answers with a three-way verdict:
//
//   kPass     — the property held;
//   kRejected — the case degenerated through an *expected* Status path
//               (a component refused to apply everywhere, the program
//               failed ir::validate, the engine itself would reject the
//               composition at any size) — mirrors the composer's
//               filter semantics, not a bug;
//   kFail     — a real divergence: transformed kernel disagrees with
//               blas3::reference on a shape the engine would accept,
//               serializer round trip is not the identity, a corrupted
//               input crashed instead of Status-ing, or fast-path
//               counters differ from the interpreter's.
//
// Every detail string is deterministic (no pointers, no wall clock) so
// two same-seed harness runs produce byte-identical reports.
#pragma once

#include <string>

#include "gpusim/simulator.hpp"
#include "verify/fuzzer.hpp"

namespace oa::verify {

enum class Verdict { kPass, kRejected, kFail };

const char* verdict_name(Verdict v);

struct CheckResult {
  Verdict verdict = Verdict::kPass;
  std::string detail;  // deterministic, printable one-liner
};

/// Knobs the harness threads into individual checks.
struct CheckOptions {
  /// Differential cases execute the candidate through the native exec
  /// backend first and consult the interpreter only on lowering
  /// refusals and result divergences (the production fallback chain).
  /// Clearing this forces every case through the interpreter — the
  /// `oacheck --interp-differential` A/B lane CI uses to assert the
  /// native-first campaign speedup.
  bool differential_native_first = true;
};

/// Dispatch on c.kind.
CheckResult check_case(const gpusim::Simulator& sim, const FuzzCase& c,
                       const CheckOptions& options = {});

/// (1) Differential numerics: apply the fuzzed script leniently (like
/// the engine), run the kernel functionally at the fuzzed rectangular
/// shape, compare against blas3::run_reference (a loop of per-member
/// references for the batched families). Candidates execute
/// native-first (see CheckOptions); a mismatch only fails the case
/// when the same program *passes* the engine's standard square
/// verification — i.e. when the library would have shipped this kernel
/// and then served a wrong answer at this shape.
CheckResult check_differential(const gpusim::Simulator& sim,
                               const FuzzCase& c,
                               const CheckOptions& options = {});

/// (2) Round trip: epod::parse(to_text(s)) == s (and re-serializes to
/// identical bytes), plus the same property for the one-entry synthetic
/// .oalib artifact wrapping the case.
CheckResult check_roundtrip(const FuzzCase& c);

/// (3) Mutation robustness: the corrupted payload must produce either a
/// clean parse or a Status error — and anything *accepted* must itself
/// be round-trip stable (parsers may normalize, but only once).
CheckResult check_mutation(const FuzzCase& c);

/// (4) Fast path: gpusim performance counters with fastpath on vs off
/// must be bit-identical (per-run and per-kernel) on the fuzzed
/// schedule, extending the tuned/baseline corpus of
/// fastpath_equivalence_test.
CheckResult check_fastpath(const gpusim::Simulator& sim, const FuzzCase& c);

/// (5) Native execution: the exec backend (lowered tapes, JIT where
/// the host supports it) must compute the same result as the lockstep
/// interpreter on the fuzzed schedule and shape — bit-identical for
/// race-free kernels; a divergence is tolerated only when *both*
/// backends stay within the reference tolerance (the lane-order
/// freedom a racy kernel legitimately exposes). A kernel the backend
/// cannot lower (barrier under lane-divergent control flow) rejects,
/// mirroring the runtime's interpreter fallback.
CheckResult check_native(const gpusim::Simulator& sim, const FuzzCase& c);

}  // namespace oa::verify
