#include "deps/dependence.hpp"

#include <optional>
#include <string>

namespace oa::deps {

using ir::AffineExpr;
using ir::ArrayRef;
using ir::Interval;
using ir::Node;
using ir::NodePtr;
using ir::RangeEnv;

namespace {

void collect_node(const Node& n, std::vector<const Node*>& chain,
                  std::vector<Access>& out) {
  switch (n.kind) {
    case Node::Kind::kLoop:
      chain.push_back(&n);
      for (const auto& m : n.body) collect_node(*m, chain, out);
      chain.pop_back();
      break;
    case Node::Kind::kAssign: {
      const bool accum = n.op != ir::AssignOp::kAssign;
      out.push_back({&n, n.lhs, /*is_write=*/true, accum, chain});
      if (accum) {
        // Read-modify-write: the lhs is also read.
        out.push_back({&n, n.lhs, /*is_write=*/false, accum, chain});
      }
      n.rhs->visit_refs([&](const ArrayRef& r) {
        out.push_back({&n, r, /*is_write=*/false, false, chain});
      });
      break;
    }
    case Node::Kind::kSync:
      break;
    case Node::Kind::kIf:
      for (const auto& m : n.then_body) collect_node(*m, chain, out);
      for (const auto& m : n.else_body) collect_node(*m, chain, out);
      break;
  }
}

// Instance suffixes / pivot names use \x01 so they can never collide with
// user-visible variable names.
constexpr const char* kPivot1 = "\x01v1";
constexpr const char* kPivot2 = "\x01v2";
constexpr const char* kSuffix1 = "\x01a";
constexpr const char* kSuffix2 = "\x01b";

/// Rename the private variables of an access instance: the tested loop's
/// variable becomes `pivot`, variables of loops nested inside the tested
/// loop get the instance suffix. Variables of loops *outside* the tested
/// loop stay shared between both instances.
AffineExpr instance_expr(const AffineExpr& e, std::string_view loop_var,
                         const std::string& pivot, const Access& acc,
                         const std::string& suffix) {
  AffineExpr out = e.renamed(loop_var, pivot);
  for (const Node* l : acc.loops) {
    out = out.renamed(l->var, l->var + suffix);
  }
  return out;
}

/// Resolve an instance-suffixed symbol back to its base range.
std::optional<Interval> instance_range(const std::string& name,
                                       std::string_view loop_var,
                                       const RangeEnv& ranges) {
  std::string base = name;
  for (const char* suffix : {kSuffix1, kSuffix2}) {
    const std::string s(suffix);
    if (base.size() > s.size() &&
        base.compare(base.size() - s.size(), s.size(), s) == 0) {
      base.resize(base.size() - s.size());
    }
  }
  if (base == kPivot1 || base == kPivot2) base = std::string(loop_var);
  auto it = ranges.find(base);
  if (it == ranges.end()) return std::nullopt;
  return it->second;
}

enum class DimVerdict {
  kUnconstraining,  // consistent with any v1, v2
  kForcesEqual,     // only solvable with v1 == v2
  kIndependent,     // never solvable -> no dependence for the pair
  kFeasible,        // solvable with v1 != v2 (or unknown: conservative)
};

/// Direction requirement between the two instances: kAny tests for any
/// v1 != v2; kSecondLater only counts solutions with v2 > v1 (what
/// fission legality needs).
enum class Direction { kAny, kSecondLater };

DimVerdict test_dim(const AffineExpr& f, std::string_view loop_var,
                    const RangeEnv& ranges, Direction dir) {
  if (f.is_constant()) {
    return f.constant_term() == 0 ? DimVerdict::kUnconstraining
                                  : DimVerdict::kIndependent;
  }
  const int64_t c1 = f.coeff(kPivot1);
  const int64_t c2 = f.coeff(kPivot2);
  bool only_pivots = true;
  for (const auto& s : f.symbols()) {
    if (s != kPivot1 && s != kPivot2) only_pivots = false;
  }
  if (only_pivots && c1 == -c2 && c1 != 0) {
    // f = c*(v1 - v2) + k  ==>  v1 - v2 = -k/c.
    const int64_t k = f.constant_term();
    if (k % c1 != 0) return DimVerdict::kIndependent;
    const int64_t dist = -k / c1;  // dist = v1 - v2
    if (dist == 0) return DimVerdict::kForcesEqual;
    if (dir == Direction::kSecondLater && dist > 0) {
      // Only solvable with v2 = v1 - dist < v1: harmless for fission.
      return DimVerdict::kIndependent;
    }
    auto vr = ranges.find(loop_var);
    if (vr != ranges.end() &&
        std::abs(dist) > vr->second.hi - vr->second.lo) {
      return DimVerdict::kIndependent;  // distance exceeds the range
    }
    return DimVerdict::kFeasible;
  }
  // General case: interval test on f = 0.
  RangeEnv env;
  bool complete = true;
  for (const auto& s : f.symbols()) {
    auto r = instance_range(s, loop_var, ranges);
    if (!r) {
      complete = false;
      break;
    }
    env[s] = *r;
  }
  if (complete) {
    auto r = ir::range_of(f, env);
    if (r && !r->contains(0)) return DimVerdict::kIndependent;
  }
  return DimVerdict::kFeasible;  // conservative
}

bool pair_carries(const Access& a, const Access& b, const ir::Node& loop,
                  const RangeEnv& ranges,
                  Direction dir = Direction::kAny) {
  if (a.ref.array != b.ref.array) return false;
  if (a.ref.index.size() != b.ref.index.size()) return true;  // conservative
  bool forces_equal = false;
  for (size_t d = 0; d < a.ref.index.size(); ++d) {
    AffineExpr ea =
        instance_expr(a.ref.index[d], loop.var, kPivot1, a, kSuffix1);
    AffineExpr eb =
        instance_expr(b.ref.index[d], loop.var, kPivot2, b, kSuffix2);
    switch (test_dim(ea - eb, loop.var, ranges, dir)) {
      case DimVerdict::kIndependent: return false;
      case DimVerdict::kForcesEqual: forces_equal = true; break;
      case DimVerdict::kUnconstraining:
      case DimVerdict::kFeasible: break;
    }
  }
  // If some dimension pins v1 == v2 the dependence is loop-independent,
  // not carried by `loop`.
  return !forces_equal;
}

bool reduction_pair(const Access& a, const Access& b) {
  return a.is_reduction && b.is_reduction;
}

}  // namespace

std::vector<Access> collect_accesses(const std::vector<NodePtr>& body) {
  std::vector<Access> out;
  std::vector<const Node*> chain;
  for (const auto& n : body) collect_node(*n, chain, out);
  return out;
}

bool carries_dependence(const ir::Node& loop, const RangeEnv& ranges,
                        Mode mode) {
  const std::vector<Access> accesses = collect_accesses(loop.body);
  for (const Access& a : accesses) {
    if (!a.is_write) continue;  // pairs need at least one write; iterate
                                // writes as `a` against everything
    for (const Access& b : accesses) {
      if (mode == Mode::kReductionAware && reduction_pair(a, b)) continue;
      if (pair_carries(a, b, loop, ranges)) return true;
    }
  }
  return false;
}

bool carries_dependence(const ir::Kernel& kernel, const ir::Node& loop,
                        const ir::Env& params, Mode mode) {
  RangeEnv ranges = ir::loop_var_ranges(kernel, params);
  for (const auto& [p, v] : params) ranges[p] = Interval{v, v};
  return carries_dependence(loop, ranges, mode);
}

bool fission_legal(const ir::Node& loop, size_t split,
                   const RangeEnv& ranges) {
  if (split == 0 || split >= loop.body.size()) return true;
  auto slice_accesses = [&](size_t lo, size_t hi) {
    std::vector<Access> out;
    std::vector<const Node*> chain;
    for (size_t i = lo; i < hi; ++i) collect_node(*loop.body[i], chain, out);
    return out;
  };
  const std::vector<Access> first = slice_accesses(0, split);
  const std::vector<Access> second =
      slice_accesses(split, loop.body.size());
  // Fission reverses the order between instances of (second group, outer
  // iteration v1) and (first group, later iteration v2 > v1). Any
  // non-reduction dependence carried by `loop` between the two groups is
  // conservatively illegal.
  for (const Access& a : second) {
    for (const Access& b : first) {
      if (!a.is_write && !b.is_write) continue;
      if (reduction_pair(a, b)) continue;
      if (pair_carries(a, b, loop, ranges, Direction::kSecondLater)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace oa::deps
