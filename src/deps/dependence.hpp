// Dependence analysis on the affine loop IR — the stand-in for the
// PolyDeps tool [8] the paper uses to reject illegal transformation
// sequences.
//
// The central query is: does loop L carry a dependence? thread_grouping
// refuses to map a dependence-carrying loop across threads (it would be a
// data race); for TRSM it instead maps the carrying loop to serialized
// grid waves (Adaptor_Solver, Fig 7). Sequential reordering
// (fission/fusion/interchange inside format_iteration) uses the
// reduction-aware mode, which permits reassociating pure accumulations
// (`C[..] += expr`) — the same licence every BLAS auto-tuner takes.
#pragma once

#include <vector>

#include "ir/interval.hpp"
#include "ir/kernel.hpp"

namespace oa::deps {

/// One array access with its enclosing loop chain.
struct Access {
  const ir::Node* stmt = nullptr;
  ir::ArrayRef ref;
  bool is_write = false;
  /// Access is the read-modify-write of an accumulation statement
  /// (`+=` / `-=`); a pair of reduction accesses to the same array may be
  /// reordered in reduction-aware mode.
  bool is_reduction = false;
  /// Loop nodes enclosing the statement, outermost first (only loops
  /// within the analyzed region).
  std::vector<const ir::Node*> loops;
};

/// Collect all accesses in `body` (including the implicit read of
/// accumulation lhs).
std::vector<Access> collect_accesses(const std::vector<ir::NodePtr>& body);

enum class Mode {
  /// Full dependences (thread-mapping legality; races forbidden).
  kStrict,
  /// Accumulation pairs to the same array are reorderable.
  kReductionAware,
};

/// Does `loop` carry a dependence between different iterations of its
/// own variable? `ranges` must bound every loop variable occurring in
/// subscripts under `loop` (use ir::loop_var_ranges). Conservative:
/// answers true when independence cannot be proven.
bool carries_dependence(const ir::Node& loop, const ir::RangeEnv& ranges,
                        Mode mode);

/// Convenience wrapper: build ranges from the kernel with `params`
/// bound, then test.
bool carries_dependence(const ir::Kernel& kernel, const ir::Node& loop,
                        const ir::Env& params, Mode mode);

/// Would it be legal to distribute (fission) the statements of `loop`'s
/// body at position `split` into two separate loops over the same
/// domain? Legal iff there is no dependence from the first group to the
/// second that fission would reverse. Reduction-aware.
bool fission_legal(const ir::Node& loop, size_t split,
                   const ir::RangeEnv& ranges);

}  // namespace oa::deps
