// The triangular-matrix components (paper §IV-A.3/4, Fig 6/7):
//
//  * peel_triangular(X): split the reduction loop at the diagonal into a
//    rectangular part (uniform bounds — loop_unroll succeeds there) and
//    a trapezoid part.
//  * padding_triangular(X): pad the trapezoid iteration space to full
//    rectangles. The padded iterations read the blank area of X, so the
//    generated code is multi-versioned on the runtime flag `blank_zero`
//    (cond(blank(X).zero = true) in the ADL).
//  * binding_triangular(X, t): force the trapezoid part to run on a
//    single thread of the block (threadIdx == t), serializing the
//    diagonal-block solve of TRSM while the rectangular part stays
//    parallel (Fig 7's workload distribution).
//
// Trapezoid detection needs block-level structure: it works on the
// k-tile loop after loop_tiling, or directly on the reduction loop once
// thread_grouping has established block tiles (the paper's
// thread_grouping tiles internally, which is how its filter example
// applies peel_triangular between thread_grouping and loop_tiling).
// Before any grouping, "the detection will fail" (paper §IV-A.3).

#include <algorithm>

#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::Bound;
using ir::Kernel;
using ir::Node;
using ir::NodePtr;
using ir::Pred;
using ir::VarTiling;

namespace {

/// Description of the per-block trapezoid of a triangular loop.
struct Trapezoid {
  Node* split_loop = nullptr;   // loop to peel/pad (kk loop, or the
                                // reduction loop itself when untiled)
  Node* bound_loop = nullptr;   // loop carrying the cross-variable term
                                // (the k point loop; == split_loop when
                                // untiled)
  std::string cross_var;        // the other axis variable (w)
  bool cross_in_ub = false;     // k bounded above by w (lower tri)
  AffineExpr block_base;        // block range of w: [base, base+extent)
  int64_t block_extent = 0;
  bool tiled = false;
};

bool find_cross(const Kernel& kernel, const Node& loop,
                std::string_view own_var, Trapezoid& tz) {
  for (const auto& [var, t] : kernel.tiling) {
    if (var == own_var || t.block_extent == 0) continue;
    if (loop.ub.depends_on(var)) {
      tz.cross_var = var;
      tz.cross_in_ub = true;
      tz.block_base = t.block_base;
      tz.block_extent = t.block_extent;
      return true;
    }
    if (loop.lb.depends_on(var)) {
      tz.cross_var = var;
      tz.cross_in_ub = false;
      tz.block_base = t.block_base;
      tz.block_extent = t.block_extent;
      return true;
    }
  }
  return false;
}

/// Locate the trapezoid: prefer the k-tile structure from loop_tiling;
/// otherwise look for a sequential reduction loop with a cross-variable
/// bound (valid once thread_grouping recorded block tiles).
StatusOr<Trapezoid> detect_trapezoid(Kernel& kernel) {
  Trapezoid tz;
  // Tiled case.
  for (const auto& [var, t] : kernel.tiling) {
    if (t.tile_extent == 0) continue;
    Node* tile_loop = kernel.find(t.tile_label);
    if (tile_loop == nullptr) continue;
    Node* point = ir::find_loop(tile_loop->body, t.point_label);
    if (point == nullptr) continue;
    if (find_cross(kernel, *point, var, tz)) {
      tz.split_loop = tile_loop;
      tz.bound_loop = point;
      tz.tiled = true;
      return tz;
    }
  }
  // Untiled case: any sequential loop whose bounds reference a
  // block-partitioned variable of another axis.
  bool has_blocks = false;
  for (const auto& [var, t] : kernel.tiling) {
    has_blocks |= t.block_extent > 0;
  }
  if (!has_blocks) {
    return failed_precondition(
        "no trapezoid detected: no block-level tiling yet");
  }
  Node* found = nullptr;
  ir::walk(kernel.body, [&](Node& n) {
    if (found != nullptr) return false;
    if (n.is_loop() && n.map == ir::LoopMap::kNone &&
        find_cross(kernel, n, n.var, tz)) {
      // Do not re-peel an already peeled loop.
      if (!ends_with(n.label, "_tri")) {
        found = &n;
        return false;
      }
    }
    return true;
  });
  if (found == nullptr) {
    return failed_precondition("no trapezoid detected: bounds are uniform");
  }
  tz.split_loop = found;
  tz.bound_loop = found;
  tz.tiled = false;
  return tz;
}

/// Remove bound terms referencing `var` from a Bound (the rectangular
/// part implies them). A bound must keep at least one term; `extra` (if
/// non-null) is appended.
Status rebuild_bound(Bound& b, const std::string& var,
                     const AffineExpr* extra) {
  std::vector<AffineExpr> kept;
  for (const AffineExpr& t : b.terms()) {
    if (!t.depends_on(var)) kept.push_back(t);
  }
  if (extra != nullptr) kept.push_back(*extra);
  if (kept.empty()) {
    return failed_precondition("cannot strip the only bound term");
  }
  b = Bound::min_of(std::move(kept));
  return Status::ok();
}

void relabel_subtree(Node& root, const std::string& suffix) {
  root.label += suffix;
  ir::walk(root.body, [&](Node& n) {
    if (n.is_loop()) n.label += suffix;
    return true;
  });
}

}  // namespace

Status peel_triangular(ir::Program& program, const std::string& array,
                       const TransformContext& ctx) {
  (void)array;  // the trapezoid is a property of the nest, detected below
  Kernel& kernel = program.main_kernel();
  OA_ASSIGN_OR_RETURN(Trapezoid tz, detect_trapezoid(kernel));

  if (tz.tiled && tz.block_extent % ctx.params.k_tile != 0) {
    return failed_precondition(
        "peel_triangular: block tile not aligned to the k tile");
  }

  ir::LoopLocation loc = ir::locate_loop(kernel.body, tz.split_loop->label);
  if (loc.loop != tz.split_loop) {
    return internal_error("peel_triangular lost the split loop");
  }
  const std::string bound_label = tz.bound_loop->label;

  NodePtr rect = tz.split_loop->clone();
  NodePtr tri = tz.split_loop->clone();
  relabel_subtree(*tri, "_tri");

  const AffineExpr band_lo = tz.block_base;
  const AffineExpr band_hi = tz.block_base + tz.block_extent;
  Node* rect_bound = rect->label == bound_label
                         ? rect.get()
                         : ir::find_loop(rect->body, bound_label);
  if (rect_bound == nullptr) {
    return internal_error("peel: rectangular bound loop missing");
  }
  if (tz.cross_in_ub) {
    // Rectangle below the diagonal band: k in [lb, band_lo); the cross
    // terms become redundant and are stripped.
    if (rect.get() == rect_bound) {
      OA_RETURN_IF_ERROR(rebuild_bound(rect->ub, tz.cross_var, &band_lo));
    } else {
      rect->ub = Bound(band_lo);
      OA_RETURN_IF_ERROR(
          rebuild_bound(rect_bound->ub, tz.cross_var, nullptr));
    }
    tri->lb.add_term(band_lo);
  } else {
    // Rectangle above the band: k in [band_hi, ub).
    if (rect.get() == rect_bound) {
      std::vector<AffineExpr> kept;
      for (const AffineExpr& t : rect->lb.terms()) {
        if (!t.depends_on(tz.cross_var)) kept.push_back(t);
      }
      kept.push_back(band_hi);
      rect->lb = Bound::min_of(std::move(kept));
    } else {
      rect->lb = Bound(band_hi);
      OA_RETURN_IF_ERROR(
          rebuild_bound(rect_bound->lb, tz.cross_var, nullptr));
    }
    tri->ub.add_term(band_hi);
  }

  // Order the pieces so iterations still execute in increasing k:
  // rectangle first for lower-triangular shapes, trapezoid first for
  // upper ones (required for TRSM's in-block solve order).
  std::vector<NodePtr>& parent = *loc.parent_body;
  parent.erase(parent.begin() + static_cast<long>(loc.index));
  if (tz.cross_in_ub) {
    parent.insert(parent.begin() + static_cast<long>(loc.index),
                  std::move(tri));
    parent.insert(parent.begin() + static_cast<long>(loc.index),
                  std::move(rect));
  } else {
    parent.insert(parent.begin() + static_cast<long>(loc.index),
                  std::move(rect));
    parent.insert(parent.begin() + static_cast<long>(loc.index),
                  std::move(tri));
  }
  return Status::ok();
}

Status padding_triangular(ir::Program& program, const std::string& array,
                          const TransformContext& ctx) {
  (void)ctx;
  (void)array;
  Kernel& kernel = program.main_kernel();
  OA_ASSIGN_OR_RETURN(Trapezoid tz, detect_trapezoid(kernel));

  ir::LoopLocation loc = ir::locate_loop(kernel.body, tz.split_loop->label);
  if (loc.loop != tz.split_loop) {
    return internal_error("padding_triangular lost the split loop");
  }
  const std::string bound_label = tz.bound_loop->label;

  // Padded version: uniform bounds (cross terms replaced by the block
  // band edge). The extra iterations multiply by the blank (zero) area
  // of X.
  NodePtr padded = tz.split_loop->clone();
  Node* padded_bound = padded->label == bound_label
                           ? padded.get()
                           : ir::find_loop(padded->body, bound_label);
  if (padded_bound == nullptr) {
    return internal_error("padding: bound loop missing");
  }
  if (tz.cross_in_ub) {
    // Pad k up to the block band edge (uniform across threads), never
    // past the cross axis's full range (boundary blocks).
    const AffineExpr band_hi = tz.block_base + tz.block_extent;
    const AffineExpr* extra =
        padded_bound == padded.get() ? &band_hi : nullptr;
    OA_RETURN_IF_ERROR(
        rebuild_bound(padded_bound->ub, tz.cross_var, extra));
    auto it = kernel.tiling.find(tz.cross_var);
    if (it != kernel.tiling.end() &&
        !(it->second.axis_extent == AffineExpr())) {
      padded_bound->ub.add_term(it->second.axis_extent);
    }
  } else {
    const AffineExpr* extra =
        padded_bound == padded.get() ? &tz.block_base : nullptr;
    OA_RETURN_IF_ERROR(
        rebuild_bound(padded_bound->lb, tz.cross_var, extra));
  }

  // Unpadded fallback keeps the original loop (relabeled for
  // uniqueness).
  NodePtr original = std::move((*loc.parent_body)[loc.index]);
  relabel_subtree(*original, "_np");

  // Multi-versioned code on the runtime blank_zero flag:
  //   if (blank_zero) { padded } else { original }.
  if (!program.has_bool_param("blank_zero")) {
    program.bool_params.push_back("blank_zero");
  }
  std::vector<NodePtr> then_body;
  then_body.push_back(std::move(padded));
  std::vector<NodePtr> else_body;
  else_body.push_back(std::move(original));
  auto guard = ir::make_if({}, std::move(then_body), std::move(else_body));
  guard->bool_param = "blank_zero";
  (*loc.parent_body)[loc.index] = std::move(guard);
  return Status::ok();
}

Status binding_triangular(ir::Program& program, const std::string& array,
                          int thread, const TransformContext& ctx) {
  (void)ctx;
  (void)array;
  Kernel& kernel = program.main_kernel();
  if (thread != 0) {
    return unimplemented("binding_triangular supports thread 0 only");
  }
  // Requires a peeled trapezoid (a loop with the _tri suffix) sitting
  // at thread-uniform level: binding wraps it in a barrier + single-
  // thread guard, which is only legal when every thread reaches it the
  // same number of times.
  auto divergent = [&](const Node& l) {
    for (const auto& [var, t] : kernel.tiling) {
      if (t.thread_var.empty()) continue;
      if (l.lb.depends_on(t.thread_var) || l.ub.depends_on(t.thread_var)) {
        return true;
      }
    }
    return false;
  };
  ir::LoopLocation loc{};
  bool found_divergent = false;
  {
    std::function<ir::LoopLocation(std::vector<NodePtr>&, bool)> search =
        [&](std::vector<NodePtr>& body, bool div) -> ir::LoopLocation {
      for (size_t i = 0; i < body.size(); ++i) {
        Node& n = *body[i];
        if (n.is_loop() && ends_with(n.label, "_tri")) {
          if (div) {
            found_divergent = true;
            continue;
          }
          return {&body, i, &n};
        }
        const bool sub_div =
            div || (n.is_loop() && n.map == ir::LoopMap::kNone &&
                    divergent(n)) ||
            (n.is_if() && (!n.conds.empty() || !n.bool_param.empty()));
        for (auto* sub : {&n.body, &n.then_body, &n.else_body}) {
          ir::LoopLocation r = search(*sub, sub_div);
          if (r.loop != nullptr) return r;
        }
      }
      return {};
    };
    loc = search(kernel.body, false);
  }
  if (loc.loop == nullptr) {
    if (found_divergent) {
      return failed_precondition(
          "binding_triangular: trapezoid is under divergent control flow "
          "(apply loop_tiling before peel_triangular)");
    }
    return failed_precondition(
        "binding_triangular requires peel_triangular first");
  }

  // Widen thread-partitioned point loops in the trapezoid to the whole
  // block tile: the bound thread walks every row/column of the block.
  ir::walk(loc.loop->body, [&](Node& n) {
    if (!n.is_loop()) return true;
    auto it = kernel.tiling.find(n.var);
    if (it == kernel.tiling.end() || it->second.thread_extent == 0) {
      return true;
    }
    const VarTiling& t = it->second;
    std::vector<AffineExpr> ub_terms;
    for (const AffineExpr& term : n.ub.terms()) {
      if (!term.depends_on(t.thread_var) && !term.depends_on(t.block_var)) {
        ub_terms.push_back(term);  // e.g. the M clamp
      }
    }
    ub_terms.push_back(t.block_base + t.block_extent);
    n.lb = Bound(t.block_base);
    n.ub = Bound::min_of(std::move(ub_terms));
    return true;
  });
  // The trapezoid loop itself may also be thread-widened (untiled case
  // where the _tri loop is the k loop): handled above only for nested
  // loops, so repeat for the root.
  {
    Node& n = *loc.loop;
    auto it = kernel.tiling.find(n.var);
    if (it != kernel.tiling.end() && it->second.thread_extent > 0) {
      const VarTiling& t = it->second;
      n.lb = Bound(t.block_base);
      n.ub = Bound::min_of({n.ub.terms()[0], t.block_base + t.block_extent});
    }
  }

  // Guard with threadIdx == 0 and fence with barriers on both sides.
  std::vector<Pred> preds;
  for (const auto& [var, t] : kernel.tiling) {
    if (t.thread_extent > 0 && !t.thread_var.empty()) {
      preds.push_back(Pred{AffineExpr::sym(t.thread_var), Pred::Op::kEq});
    }
  }
  NodePtr tri = std::move((*loc.parent_body)[loc.index]);
  std::vector<NodePtr> body;
  body.push_back(std::move(tri));
  auto guard = ir::make_if(std::move(preds), std::move(body));
  (*loc.parent_body)[loc.index] = std::move(guard);
  (*loc.parent_body)
      .insert(loc.parent_body->begin() + static_cast<long>(loc.index),
              ir::make_sync());
  loc.parent_body->insert(
      loc.parent_body->begin() + static_cast<long>(loc.index + 2),
      ir::make_sync());
  return Status::ok();
}

}  // namespace oa::transforms
