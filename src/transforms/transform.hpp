// The optimization-component pools of the EPOD translator (paper §III):
// each component is invoked by name from an EPOD script and applied to
// the current Program. Components return Status: a non-OK status is an
// *expected* outcome — the composer's filter responds by omitting the
// component and letting the sequence degenerate (§IV-B.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "support/status.hpp"

namespace oa::obs {
class MetricsRegistry;
}  // namespace oa::obs

namespace oa::transforms {

/// Allocation / mapping modes shared by SM_alloc and GM_map (paper
/// §III-B): NoChange (dest = src), Transpose (dest = src^T), Symmetry
/// (dest = src + src^T - diag(src)).
enum class AllocMode { kNoChange, kTranspose, kSymmetry };

const char* alloc_mode_name(AllocMode mode);
StatusOr<AllocMode> parse_alloc_mode(const std::string& text);

/// Numeric tuning parameters — the values the paper's search of [4]
/// explores. thread_grouping / loop_tiling / loop_unroll read them.
struct TuningParams {
  int64_t block_tile_y = 32;  // rows of the output tile per thread block
  int64_t block_tile_x = 32;  // cols of the output tile per thread block
  int64_t threads_y = 8;      // blockDim.y
  int64_t threads_x = 8;      // blockDim.x
  int64_t k_tile = 16;        // reduction tile (loop_tiling)
  int unroll = 4;             // max unroll factor (loop_unroll)

  int64_t thread_extent_y() const { return block_tile_y / threads_y; }
  int64_t thread_extent_x() const { return block_tile_x / threads_x; }

  Status check() const;
  std::string to_string() const;
  /// Stable content hash over all fields (engine cache key component).
  uint64_t fingerprint() const;
};

/// Context every component invocation receives.
struct TransformContext {
  TuningParams params;
  /// Nominal problem sizes used for dependence analysis and footprint
  /// range checks (results do not depend on the exact values for the
  /// affine programs in BLAS3; they just need to be "large enough").
  ir::Env nominal_sizes{{"M", 256}, {"N", 256}, {"K", 256}};
  /// Optional observability sink: the composer records candidate /
  /// sequence counts here when set (obs/metrics.hpp). Components
  /// themselves never touch it.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One component invocation as written in an EPOD script:
///   (Lii, Ljj) = thread_grouping(Li, Lj);
///   SM_alloc(B, Transpose);
struct Invocation {
  std::string component;             // e.g. "thread_grouping"
  std::vector<std::string> args;     // loop labels / array names / modes
  std::vector<std::string> results;  // labels bound on the left-hand side

  std::string to_string() const;
  /// Stable content hash (component, args, results).
  uint64_t fingerprint() const;
  bool operator==(const Invocation&) const = default;
};

/// Dispatch an invocation to the matching component. Unknown component
/// names are kInvalidArgument; component-specific failures use
/// kFailedPrecondition / kIllegal (the filter omits those).
Status apply(ir::Program& program, const Invocation& inv,
             const TransformContext& ctx);

/// Classification used by the composer's splitter: memory-allocation
/// components are handled by the allocator and applied after the
/// polyhedral part.
bool is_memory_component(const std::string& component);

/// Location constraint used by the mixer: GM_map must be the first
/// component of a sequence (it rewrites global data layout).
bool must_be_first(const std::string& component);

/// True for names present in either optimization pool.
bool is_known_component(const std::string& component);

// --- Individual components (documented in their own headers) ---------

Status thread_grouping(ir::Program& program,
                       const std::vector<std::string>& labels,
                       const std::vector<std::string>& out_labels,
                       const TransformContext& ctx);

Status loop_tiling(ir::Program& program,
                   const std::vector<std::string>& labels,
                   const std::vector<std::string>& out_labels,
                   const TransformContext& ctx);

Status loop_unroll(ir::Program& program,
                   const std::vector<std::string>& labels,
                   const TransformContext& ctx);

Status sm_alloc(ir::Program& program, const std::string& array,
                AllocMode mode, const TransformContext& ctx);

Status reg_alloc(ir::Program& program, const std::string& array,
                 const TransformContext& ctx);

Status gm_map(ir::Program& program, const std::string& array,
              AllocMode mode, const TransformContext& ctx);

Status format_iteration(ir::Program& program, const std::string& array,
                        AllocMode mode, const TransformContext& ctx);

Status peel_triangular(ir::Program& program, const std::string& array,
                       const TransformContext& ctx);

Status padding_triangular(ir::Program& program, const std::string& array,
                          const TransformContext& ctx);

Status binding_triangular(ir::Program& program, const std::string& array,
                          int thread, const TransformContext& ctx);

/// Batched thread grouping over the batch dimension (ROADMAP item 5):
/// batch_grouping(per_member) launches one member grid per batch
/// member (serialized launches — cheap at tiny members, launch-bound
/// at scale); batch_grouping(batch_tiled) tiles the whole batch into
/// one launch (members share waves, one launch overhead).
/// kFailedPrecondition on non-batched programs, so the composer's
/// filter drops it everywhere outside the batched families.
Status batch_grouping(ir::Program& program, const std::string& mode,
                      const TransformContext& ctx);

}  // namespace oa::transforms
