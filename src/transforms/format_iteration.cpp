// format_iteration(X, Symmetry) — paper §IV-A.2. Removes the mixed-mode
// (row-major + column-major) accesses of a symmetric-matrix loop nest in
// three steps:
//   1. loop fission: split the triangle loop so every statement gets its
//      own copy (real-area / shadow-area);
//   2. orientation fix: a nest whose output is written along the inner
//      (triangle) variable is re-indexed by exchanging the triangle
//      variables — the triangular domain {k < w} becomes {k > w} and the
//      statement's variable roles swap (the polyhedral "loop
//      interchange" of the paper, realized as a bijective reindexing of
//      the triangular domain);
//   3. loop fusion: when the resulting nests compute the identical
//      statement over complementary domains (and the diagonal statement
//      is the w == k instance), they fuse into a single rectangular loop
//      — the standard GEMM-NN form. References to value-symmetric
//      arrays (created by GM_map(X, Symmetry)) are canonicalized before
//      comparison, which is what makes fusion succeed after GM_map and
//      fail without it (rule 3 of Adaptor_Symmetry degenerates to plain
//      fission).

#include <algorithm>

#include "deps/dependence.hpp"
#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::Bound;
using ir::Kernel;
using ir::Node;
using ir::NodePtr;

namespace {

/// Find the variable of an enclosing loop that appears in the bounds of
/// `loop` (the triangle's outer variable w). Empty when none.
std::string triangle_outer_var(const Node& loop,
                               const std::vector<Node*>& enclosing) {
  for (const Node* enc : enclosing) {
    if (loop.lb.depends_on(enc->var) || loop.ub.depends_on(enc->var)) {
      return enc->var;
    }
  }
  return {};
}

/// Canonicalize references to value-symmetric arrays so that
/// X[k][i] == X[i][k] compares equal: order the two subscripts by their
/// printed form.
void canonicalize_symmetric_refs(Node& stmt, const ir::Program& program) {
  auto canon = [&](ir::ArrayRef& r) {
    const ir::ArrayDecl* decl = program.find_global(r.array);
    if (decl == nullptr || !decl->symmetric || r.index.size() != 2) return;
    if (r.index[0].to_string() > r.index[1].to_string()) {
      std::swap(r.index[0], r.index[1]);
    }
  };
  canon(stmt.lhs);
  if (stmt.rhs) stmt.rhs->for_each_ref(canon);
}

}  // namespace

Status format_iteration(ir::Program& program, const std::string& array,
                        AllocMode mode, const TransformContext& ctx) {
  if (mode != AllocMode::kSymmetry) {
    return invalid_argument("format_iteration supports the Symmetry mode");
  }
  Kernel& kernel = program.main_kernel();
  if (!kernel.tiling.empty()) {
    return failed_precondition(
        "format_iteration must run before thread_grouping");
  }

  // ---- Locate the triangle loop: an inner loop with >1 statement and
  // bounds referencing an enclosing loop variable.
  std::vector<Node*> chain;
  Node* tri_loop = nullptr;
  std::vector<Node*> tri_enclosing;
  std::function<void(std::vector<NodePtr>&)> search =
      [&](std::vector<NodePtr>& body) {
        for (auto& n : body) {
          if (!n->is_loop() || tri_loop != nullptr) continue;
          chain.push_back(n.get());
          size_t stmts = 0;
          for (const auto& c : n->body) stmts += c->is_assign();
          if (stmts >= 2 &&
              !triangle_outer_var(*n, {chain.begin(), chain.end() - 1})
                   .empty()) {
            tri_loop = n.get();
            tri_enclosing.assign(chain.begin(), chain.end() - 1);
          } else {
            search(n->body);
          }
          chain.pop_back();
        }
      };
  search(kernel.body);
  if (tri_loop == nullptr) {
    return failed_precondition(
        "format_iteration: no mixed-mode triangle loop found");
  }
  const std::string w =
      triangle_outer_var(*tri_loop, tri_enclosing);
  Node* w_loop = nullptr;
  for (Node* enc : tri_enclosing) {
    if (enc->var == w) w_loop = enc;
  }
  if (w_loop == nullptr || !w_loop->ub.is_single() ||
      !(w_loop->lb == Bound(0))) {
    return failed_precondition(
        "format_iteration: unsupported triangle outer loop");
  }
  const AffineExpr big = w_loop->ub.terms()[0];  // W (e.g. M or N)

  // ---- Step 1: fission — one loop per statement.
  if (tri_loop->body.size() < 2) {
    return failed_precondition("format_iteration: nothing to fission");
  }
  {
    ir::RangeEnv ranges = ir::loop_var_ranges(kernel, ctx.nominal_sizes);
    for (const auto& [p, v] : ctx.nominal_sizes) {
      ranges[p] = ir::Interval{v, v};
    }
    for (size_t split = 1; split < tri_loop->body.size(); ++split) {
      if (!deps::fission_legal(*tri_loop, split, ranges)) {
        return illegal("format_iteration: fission not legal");
      }
    }
  }
  ir::LoopLocation loc = ir::locate_loop(kernel.body, tri_loop->label);
  if (loc.loop != tri_loop) {
    return internal_error("format_iteration lost the triangle loop");
  }
  std::vector<NodePtr> pieces;
  for (size_t s = 0; s < tri_loop->body.size(); ++s) {
    NodePtr cloned = tri_loop->clone();
    cloned->body.clear();
    cloned->body.push_back(tri_loop->body[s]->clone());
    if (s > 0) cloned->label += "_f" + std::to_string(s + 1);
    pieces.push_back(std::move(cloned));
  }
  // Replace the triangle loop with the fissioned pieces.
  std::vector<NodePtr>& parent = *loc.parent_body;
  parent.erase(parent.begin() + static_cast<long>(loc.index));
  for (size_t s = 0; s < pieces.size(); ++s) {
    parent.insert(parent.begin() + static_cast<long>(loc.index + s),
                  std::move(pieces[s]));
  }

  // ---- Step 2: re-index shadow nests (lhs written along the triangle
  // inner variable).
  const size_t first = loc.index;
  const size_t count =
      parent.size();  // parent also holds the diagonal statement(s)
  for (size_t s = first; s < count; ++s) {
    Node& n = *parent[s];
    if (!n.is_loop()) continue;
    Node& stmt = *n.body[0];
    if (!stmt.is_assign()) continue;
    bool shadow = false;
    for (const auto& e : stmt.lhs.index) {
      if (e.depends_on(n.var)) shadow = true;
    }
    if (!shadow) continue;
    // Swap variable roles w <-> k in the statement.
    const std::string k = n.var;
    const std::string tmp = "\x01swap";
    stmt.rename_uses(k, tmp);
    stmt.rename_uses(w, k);
    stmt.rename_uses(tmp, w);
    // Exchange the triangular domain.
    if (n.ub.is_single() && n.lb == Bound(0)) {
      const AffineExpr& u = n.ub.terms()[0];
      if (u == AffineExpr::sym(w)) {
        // {k < w}  ->  {k > w}.
        n.lb = Bound(AffineExpr::sym(w) + 1);
        n.ub = Bound(big);
        continue;
      }
      if (u == AffineExpr::sym(w) + 1) {
        // {k <= w}  ->  {k >= w}.
        n.lb = Bound(AffineExpr::sym(w));
        n.ub = Bound(big);
        continue;
      }
    }
    if (n.ub.is_single() && n.ub.terms()[0] == big && n.lb.is_single() &&
        n.lb.terms()[0] == AffineExpr::sym(w) + 1) {
      // {k > w}  ->  {k < w}.
      n.lb = Bound(0);
      n.ub = Bound(AffineExpr::sym(w));
      continue;
    }
    return failed_precondition(
        "format_iteration: unrecognized triangular domain");
  }

  // ---- Step 3: fusion (best effort; failure leaves the fissioned form,
  // the rule-3 degeneration of the paper).
  // Pattern: [loop k in [0, w) {S}, loop k in [w+1, W) {S'}, Sd, ...rest]
  if (count - first >= 3 && parent[first]->is_loop() &&
      parent[first + 1]->is_loop() && parent[first + 2]->is_assign()) {
    Node& a = *parent[first];
    Node& b = *parent[first + 1];
    Node& d = *parent[first + 2];
    canonicalize_symmetric_refs(*a.body[0], program);
    canonicalize_symmetric_refs(*b.body[0], program);
    Node dd(Node::Kind::kAssign);
    dd.lhs = d.lhs;
    dd.op = d.op;
    dd.rhs = d.rhs->clone();
    canonicalize_symmetric_refs(dd, program);

    const bool domains_ok =
        a.lb == Bound(0) && a.ub.is_single() &&
        a.ub.terms()[0] == AffineExpr::sym(w) && b.lb.is_single() &&
        b.lb.terms()[0] == AffineExpr::sym(w) + 1 && b.ub.is_single() &&
        b.ub.terms()[0] == big && a.var == b.var;
    if (domains_ok && a.body[0]->equals(*b.body[0])) {
      // Diagonal statement must be the k == w instance.
      NodePtr at_diag = a.body[0]->clone();
      at_diag->substitute_uses(a.var, AffineExpr::sym(w));
      if (at_diag->equals(dd)) {
        a.ub = Bound(big);  // fused domain [0, W)
        parent.erase(parent.begin() + static_cast<long>(first + 1),
                     parent.begin() + static_cast<long>(first + 3));
      }
    }
  }
  return Status::ok();
}

}  // namespace oa::transforms
