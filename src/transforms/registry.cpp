#include <algorithm>
#include <array>

#include "support/hash.hpp"
#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

const char* alloc_mode_name(AllocMode mode) {
  switch (mode) {
    case AllocMode::kNoChange: return "NoChange";
    case AllocMode::kTranspose: return "Transpose";
    case AllocMode::kSymmetry: return "Symmetry";
  }
  return "?";
}

StatusOr<AllocMode> parse_alloc_mode(const std::string& text) {
  if (text == "NoChange") return AllocMode::kNoChange;
  if (text == "Transpose") return AllocMode::kTranspose;
  if (text == "Symmetry") return AllocMode::kSymmetry;
  return invalid_argument("unknown allocation mode '" + text + "'");
}

Status TuningParams::check() const {
  if (block_tile_y <= 0 || block_tile_x <= 0 || threads_y <= 0 ||
      threads_x <= 0 || k_tile <= 0 || unroll <= 0) {
    return invalid_argument("tuning parameters must be positive");
  }
  if (block_tile_y % threads_y != 0 || block_tile_x % threads_x != 0) {
    return invalid_argument(
        "block tile must be divisible by the thread counts");
  }
  return Status::ok();
}

std::string TuningParams::to_string() const {
  return str_format(
      "{bt=(%lld,%lld) threads=(%lld,%lld) kt=%lld unroll=%d}",
      static_cast<long long>(block_tile_y),
      static_cast<long long>(block_tile_x),
      static_cast<long long>(threads_y), static_cast<long long>(threads_x),
      static_cast<long long>(k_tile), unroll);
}

uint64_t TuningParams::fingerprint() const {
  Fingerprint fp;
  fp.mix(block_tile_y)
      .mix(block_tile_x)
      .mix(threads_y)
      .mix(threads_x)
      .mix(k_tile)
      .mix(unroll);
  return fp.digest();
}

uint64_t Invocation::fingerprint() const {
  Fingerprint fp;
  fp.mix(component);
  fp.mix(static_cast<uint64_t>(args.size()));
  for (const std::string& a : args) fp.mix(a);
  fp.mix(static_cast<uint64_t>(results.size()));
  for (const std::string& r : results) fp.mix(r);
  return fp.digest();
}

std::string Invocation::to_string() const {
  std::string out;
  if (!results.empty()) {
    if (results.size() > 1) out += '(';
    out += join(results, ", ");
    if (results.size() > 1) out += ')';
    out += " = ";
  }
  out += component;
  out += '(';
  out += join(args, ", ");
  out += ')';
  return out;
}

bool is_memory_component(const std::string& component) {
  // batch_grouping rides the allocator path like the allocation
  // declarations: it is appended once per adaptor rule (no mixer
  // interleaving — the batch layout is orthogonal to the member
  // schedule) and applied after the polyhedral part.
  return component == "SM_alloc" || component == "reg_alloc" ||
         component == "batch_grouping";
}

bool must_be_first(const std::string& component) {
  return component == "GM_map";
}

bool is_known_component(const std::string& component) {
  static constexpr std::array<const char*, 11> kNames = {
      "thread_grouping", "loop_tiling",        "loop_unroll",
      "SM_alloc",        "reg_alloc",          "GM_map",
      "format_iteration", "peel_triangular",   "padding_triangular",
      "binding_triangular", "batch_grouping"};
  return std::any_of(kNames.begin(), kNames.end(),
                     [&](const char* n) { return component == n; });
}

namespace {

Status expect_args(const Invocation& inv, size_t n) {
  if (inv.args.size() != n) {
    return invalid_argument(str_format("%s expects %zu argument(s), got %zu",
                                       inv.component.c_str(), n,
                                       inv.args.size()));
  }
  return Status::ok();
}

}  // namespace

Status apply(ir::Program& program, const Invocation& inv,
             const TransformContext& ctx) {
  const std::string& c = inv.component;
  if (c == "thread_grouping") {
    if (inv.results.size() != inv.args.size()) {
      return invalid_argument(
          "thread_grouping needs one result label per input label");
    }
    return thread_grouping(program, inv.args, inv.results, ctx);
  }
  if (c == "loop_tiling") {
    if (inv.results.size() != inv.args.size()) {
      return invalid_argument(
          "loop_tiling needs one result label per input label");
    }
    return loop_tiling(program, inv.args, inv.results, ctx);
  }
  if (c == "loop_unroll") {
    if (inv.args.empty()) {
      return invalid_argument("loop_unroll expects at least one label");
    }
    return loop_unroll(program, inv.args, ctx);
  }
  if (c == "SM_alloc") {
    OA_RETURN_IF_ERROR(expect_args(inv, 2));
    OA_ASSIGN_OR_RETURN(AllocMode mode, parse_alloc_mode(inv.args[1]));
    return sm_alloc(program, inv.args[0], mode, ctx);
  }
  if (c == "reg_alloc") {
    OA_RETURN_IF_ERROR(expect_args(inv, 1));
    return reg_alloc(program, inv.args[0], ctx);
  }
  if (c == "GM_map") {
    OA_RETURN_IF_ERROR(expect_args(inv, 2));
    OA_ASSIGN_OR_RETURN(AllocMode mode, parse_alloc_mode(inv.args[1]));
    return gm_map(program, inv.args[0], mode, ctx);
  }
  if (c == "format_iteration") {
    OA_RETURN_IF_ERROR(expect_args(inv, 2));
    OA_ASSIGN_OR_RETURN(AllocMode mode, parse_alloc_mode(inv.args[1]));
    return format_iteration(program, inv.args[0], mode, ctx);
  }
  if (c == "peel_triangular") {
    OA_RETURN_IF_ERROR(expect_args(inv, 1));
    return peel_triangular(program, inv.args[0], ctx);
  }
  if (c == "padding_triangular") {
    OA_RETURN_IF_ERROR(expect_args(inv, 1));
    return padding_triangular(program, inv.args[0], ctx);
  }
  if (c == "binding_triangular") {
    OA_RETURN_IF_ERROR(expect_args(inv, 2));
    return binding_triangular(program, inv.args[0],
                              std::atoi(inv.args[1].c_str()), ctx);
  }
  if (c == "batch_grouping") {
    OA_RETURN_IF_ERROR(expect_args(inv, 1));
    return batch_grouping(program, inv.args[0], ctx);
  }
  return invalid_argument("unknown optimization component '" + c + "'");
}

}  // namespace oa::transforms
