// GM_map(X, mode): reformat X in global memory before the computation
// (paper §IV-A.1). A new global array NewX is created, a
// thread-distributed reformat kernel is *prepended* to the program
// (Steps 1-2 of the paper: generate the mapping statements, distribute
// them across blocks/threads), and the main kernel's subscripts are
// rewritten (Step 3). GM_map is only valid as the first component of an
// optimization sequence — the mixer enforces the location constraint,
// and this implementation re-checks it.

#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::ArrayDecl;
using ir::ArrayRef;
using ir::AssignOp;
using ir::Bound;
using ir::Kernel;
using ir::LoopMap;
using ir::Node;
using ir::NodePtr;
using ir::Pred;

namespace {

constexpr int64_t kReformatTile = 16;  // 16x16 blocks for the pre-pass

/// Build the thread-distributed reformat kernel writing `dst[i][j]`.
/// `body_builder(i, j)` returns the statements computing one element.
Kernel make_reformat_kernel(
    const std::string& name, const ArrayDecl& dst,
    const std::function<std::vector<NodePtr>(const AffineExpr&,
                                             const AffineExpr&)>& builder) {
  const AffineExpr i = AffineExpr::sym("mi_b", kReformatTile) +
                       AffineExpr::sym("mi_t");
  const AffineExpr j = AffineExpr::sym("mj_b", kReformatTile) +
                       AffineExpr::sym("mj_t");

  // Guard against the ragged edge when shape % 16 != 0.
  std::vector<Pred> guards;
  guards.push_back(Pred{dst.rows - i - 1, Pred::Op::kGe});
  guards.push_back(Pred{dst.cols - j - 1, Pred::Op::kGe});
  auto guard = ir::make_if(std::move(guards), builder(i, j));

  auto tx = ir::make_loop("Lmap_tx", "mj_t", Bound(0),
                          Bound(AffineExpr(kReformatTile)));
  tx->map = LoopMap::kThreadX;
  tx->body.push_back(std::move(guard));
  auto ty = ir::make_loop("Lmap_ty", "mi_t", Bound(0),
                          Bound(AffineExpr(kReformatTile)));
  ty->map = LoopMap::kThreadY;
  ty->body.push_back(std::move(tx));
  auto bx = ir::make_loop("Lmap_bx", "mj_b", Bound(0), Bound(dst.cols));
  bx->ub_div = kReformatTile;
  bx->map = LoopMap::kBlockX;
  bx->body.push_back(std::move(ty));
  auto by = ir::make_loop("Lmap_by", "mi_b", Bound(0), Bound(dst.rows));
  by->ub_div = kReformatTile;
  by->map = LoopMap::kBlockY;
  by->body.push_back(std::move(bx));

  Kernel k;
  k.name = name;
  k.body.push_back(std::move(by));
  return k;
}

}  // namespace

Status gm_map(ir::Program& program, const std::string& array,
              AllocMode mode, const TransformContext& ctx) {
  (void)ctx;
  const ArrayDecl* src = program.find_global(array);
  if (src == nullptr) {
    return not_found("GM_map: global array '" + array + "' not found");
  }
  const std::string new_name = "New" + array;
  if (program.find_global(new_name) != nullptr) {
    return failed_precondition("GM_map: '" + array + "' already mapped");
  }
  // Location constraint: must be the first transformation — the main
  // kernel is still the untouched source nest.
  const Kernel& main = program.main_kernel();
  if (!main.tiling.empty() || !main.mapped_loops().empty()) {
    return failed_precondition(
        "GM_map must be the first component of a sequence");
  }
  if (mode == AllocMode::kNoChange) {
    return Status::ok();  // identity mapping: nothing to do
  }
  if (mode == AllocMode::kSymmetry && !(src->rows == src->cols)) {
    return failed_precondition("GM_map(Symmetry) requires a square matrix");
  }

  ArrayDecl dst;
  dst.name = new_name;
  dst.space = ir::MemSpace::kGlobal;
  if (mode == AllocMode::kTranspose) {
    dst.rows = src->cols;
    dst.cols = src->rows;
  } else {
    dst.rows = src->rows;
    dst.cols = src->cols;
    dst.symmetric = true;  // lets format_iteration canonicalize refs
  }
  program.globals.push_back(dst);

  Kernel reformat = make_reformat_kernel(
      "gm_map_" + array, dst,
      [&](const AffineExpr& i, const AffineExpr& j) {
        std::vector<NodePtr> out;
        ArrayRef d{new_name, {i, j}};
        if (mode == AllocMode::kTranspose) {
          out.push_back(ir::make_assign(d, AssignOp::kAssign,
                                        ir::make_ref(array, {j, i})));
        } else {
          // dest = src + src^T - diag(src): sum both triangles (the
          // blank one is stored as zeros), then overwrite the diagonal.
          out.push_back(ir::make_assign(
              d, AssignOp::kAssign,
              ir::make_add(ir::make_ref(array, {i, j}),
                           ir::make_ref(array, {j, i}))));
          std::vector<NodePtr> fix;
          fix.push_back(ir::make_assign(d, AssignOp::kAssign,
                                        ir::make_ref(array, {i, j})));
          out.push_back(
              ir::make_if({Pred{i - j, Pred::Op::kEq}}, std::move(fix)));
        }
        return out;
      });
  program.kernels.insert(program.kernels.begin(), std::move(reformat));

  // Step 3: rewrite subscripts in the main kernel.
  Kernel& k = program.main_kernel();
  ir::for_each_ref(k.body, [&](ArrayRef& r) {
    if (r.array != array || r.index.size() != 2) return;
    if (mode == AllocMode::kTranspose) {
      r = ArrayRef{new_name, {r.index[1], r.index[0]}};
    } else {
      r = ArrayRef{new_name, r.index};
    }
  });
  return Status::ok();
}

}  // namespace oa::transforms
