// loop_tiling and loop_unroll (paper §III-B, components from the
// polyhedral pool).
//
// loop_tiling(L0, ..., Lr) -> (L0', ..., Lr') strip-mines the reduction
// loop Lr by k_tile and hoists the resulting tile loop above the listed
// point loops (the classic GEMM schedule: the kk loop wraps the
// register-blocked i/j/k point loops, so SM_alloc can stage per k-tile).
// Hoisting widens any bound term of the k loop that references a point
// variable to that variable's block-level range — this is what turns a
// triangular iteration space into the per-block trapezoids that
// peel/padding_triangular later detect (Fig 6).
//
// loop_unroll(L...) attaches an unroll factor. It *fails* when a loop's
// trip count is not uniform across the threads of a block (bound terms
// referencing other point variables) — exactly the filter behaviour in
// §IV-B.2 where loop_unroll fails on non-rectangular areas.

#include <algorithm>

#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::Bound;
using ir::Kernel;
using ir::Node;
using ir::NodePtr;

namespace {

/// Substitute point-variable references in a bound term by the extreme
/// value of the variable's block range. `want_max` picks the upper end.
StatusOr<AffineExpr> widen_term(const AffineExpr& term, const Kernel& kernel,
                                const std::vector<std::string>& point_vars,
                                bool want_max) {
  AffineExpr out = term;
  for (const std::string& v : point_vars) {
    const int64_t c = out.coeff(v);
    if (c == 0) continue;
    auto it = kernel.tiling.find(v);
    if (it == kernel.tiling.end() || it->second.block_extent == 0) {
      return failed_precondition(
          "cannot widen bound: variable '" + v + "' has no block tiling");
    }
    const ir::VarTiling& t = it->second;
    // coefficient sign flips which extreme maximizes the term.
    const bool use_high = (c > 0) == want_max;
    AffineExpr repl = t.block_base;
    if (use_high) repl += AffineExpr::constant(t.block_extent - 1);
    out = out.substituted(v, repl);
  }
  return out;
}

}  // namespace

Status loop_tiling(ir::Program& program,
                   const std::vector<std::string>& labels,
                   const std::vector<std::string>& out_labels,
                   const TransformContext& ctx) {
  OA_RETURN_IF_ERROR(ctx.params.check());
  if (labels.size() < 2) {
    return invalid_argument("loop_tiling expects at least two loops");
  }
  Kernel& kernel = program.main_kernel();

  // All listed loops must exist; the leading ones are simply relabeled
  // (they are already intra-tile point loops after thread_grouping).
  std::vector<Node*> loops;
  for (const std::string& label : labels) {
    Node* l = kernel.find(label);
    if (l == nullptr) {
      return not_found("loop_tiling: label '" + label + "' not found");
    }
    loops.push_back(l);
  }
  for (size_t i = 0; i + 1 < loops.size(); ++i) {
    if (loops[i]->map != ir::LoopMap::kNone) {
      return failed_precondition("loop_tiling target '" + labels[i] +
                                 "' is mapped");
    }
    loops[i]->label = out_labels[i];
    if (!loops[i]->orig_var.empty()) {
      auto it = kernel.tiling.find(loops[i]->var);
      if (it != kernel.tiling.end()) it->second.point_label = out_labels[i];
    }
  }

  // Reorder the point-loop prefix by actual nesting depth: scripts list
  // labels in (row, column) order, but after thread_grouping the point
  // loops keep the source nesting, which differs for right-side
  // routines (Lj outermost). The chain/hoist logic below needs
  // outermost-first.
  std::sort(loops.begin(), loops.end() - 1, [&](Node* a, Node* b) {
    return ir::find_loop(a->body, b->label) != nullptr;
  });

  // Strip-mine the reduction loop by k_tile.
  Node* red = loops.back();
  if (red->map != ir::LoopMap::kNone || red->step != 1) {
    return failed_precondition("reduction loop is mapped or strided");
  }
  const int64_t kt = ctx.params.k_tile;
  const std::string kk_var = red->var + red->var;  // "k" -> "kk"
  const std::string kk_label = red->label;         // tile loop keeps label

  // Point variables the tile loop may be hoisted above.
  std::vector<std::string> point_vars;
  for (size_t i = 0; i + 1 < loops.size(); ++i) {
    point_vars.push_back(loops[i]->var);
  }

  // Widened tile-loop bounds (block-uniform). A widened upper term can
  // exceed the cross variable's full range on boundary blocks
  // (block_base + tile > M), so the axis extent is added as a clamp.
  std::vector<AffineExpr> tile_lb, tile_ub;
  for (const AffineExpr& t : red->lb.terms()) {
    OA_ASSIGN_OR_RETURN(AffineExpr w,
                        widen_term(t, kernel, point_vars, /*want_max=*/false));
    tile_lb.push_back(std::move(w));
  }
  for (const AffineExpr& t : red->ub.terms()) {
    const AffineExpr before = t;
    OA_ASSIGN_OR_RETURN(AffineExpr w,
                        widen_term(t, kernel, point_vars, /*want_max=*/true));
    for (const std::string& v : point_vars) {
      if (before.coeff(v) == 0) continue;
      auto it = kernel.tiling.find(v);
      if (it != kernel.tiling.end() &&
          !(it->second.axis_extent == AffineExpr())) {
        AffineExpr clamp = it->second.axis_extent;
        if (before.coeff(v) > 0) {
          // k < i + c with i < extent implies k < extent + c - 1;
          // conservatively clamp at extent + max(c, 0).
          const int64_t c = std::max<int64_t>(before.constant_term(), 0);
          clamp += AffineExpr::constant(c);
        }
        if (std::find(tile_ub.begin(), tile_ub.end(), clamp) ==
            tile_ub.end()) {
          tile_ub.push_back(std::move(clamp));
        }
      }
    }
    tile_ub.push_back(std::move(w));
  }

  // Turn one reduction loop into its point loop:
  //   k in [max(orig_lb, kk), min(orig_ub, kk + KT)).
  auto strip_mine = [&](Node& loop) {
    std::vector<AffineExpr> plb = loop.lb.terms();
    plb.push_back(AffineExpr::sym(kk_var));
    std::vector<AffineExpr> pub = loop.ub.terms();
    pub.push_back(AffineExpr::sym(kk_var) + kt);
    loop.lb = Bound::min_of(std::move(plb));  // container; max-eval for lb
    loop.ub = Bound::min_of(std::move(pub));
  };
  red->label = out_labels.back();

  // Record tiling metadata for the reduction axis.
  ir::VarTiling& t = kernel.tiling[red->var];
  t.tile_var = kk_var;
  t.tile_label = kk_label;
  t.tile_extent = kt;
  t.point_label = out_labels.back();

  // The tile loop.
  auto tile = ir::make_loop(kk_label, kk_var,
                            tile_lb.size() == 1
                                ? Bound(tile_lb[0])
                                : Bound::min_of(std::move(tile_lb)),
                            Bound::min_of(std::move(tile_ub)), kt);
  tile->orig_var = red->orig_var;

  // Is the point-loop prefix a single-child chain down to the reduction
  // loop's parent body?
  bool chain = loops.size() >= 2;
  for (size_t i = 0; i + 2 < loops.size(); ++i) {
    if (loops[i]->body.size() != 1 || loops[i]->body[0].get() != loops[i + 1]) {
      chain = false;
      break;
    }
  }
  Node* last_point = loops.size() >= 2 ? loops[loops.size() - 2] : nullptr;
  const bool red_in_last_point =
      last_point != nullptr &&
      std::any_of(last_point->body.begin(), last_point->body.end(),
                  [&](const NodePtr& n) { return n.get() == red; });
  if (!chain || !red_in_last_point) {
    // Fallback: in-place strip-mine around the reduction loop itself.
    strip_mine(*red);
    ir::LoopLocation loc = ir::locate_loop(kernel.body, out_labels.back());
    if (loc.loop == nullptr) {
      return internal_error("reduction loop vanished during tiling");
    }
    NodePtr point = std::move((*loc.parent_body)[loc.index]);
    tile->body.push_back(std::move(point));
    (*loc.parent_body)[loc.index] = std::move(tile);
    return Status::ok();
  }

  if (last_point->body.size() == 1) {
    // Classic case: hoist the tile loop above the first point loop, and
    // (when the bounds permit) interchange the reduction point loop
    // with the innermost listed point loop. The resulting intra-tile
    // order (i, k, j) is the Volkov GEMM schedule: the A operand is
    // loaded once per k and kept in a register across the j-strip of
    // fused multiply-adds.
    strip_mine(*red);
    const bool can_interchange =
        loops.size() >= 3 && !red->lb.depends_on(last_point->var) &&
        !red->ub.depends_on(last_point->var);
    if (can_interchange) {
      NodePtr red_owned = std::move(last_point->body[0]);
      last_point->body = std::move(red_owned->body);
      Node* above = loops[loops.size() - 3];
      NodePtr lp_owned = std::move(above->body[0]);
      red_owned->body.clear();
      red_owned->body.push_back(std::move(lp_owned));
      above->body.clear();
      above->body.push_back(std::move(red_owned));
    }
    ir::LoopLocation head = ir::locate_loop(kernel.body, loops[0]->label);
    if (head.loop == nullptr) {
      return internal_error("point chain head vanished during tiling");
    }
    NodePtr point_chain = std::move((*head.parent_body)[head.index]);
    tile->body.push_back(std::move(point_chain));
    (*head.parent_body)[head.index] = std::move(tile);
    return Status::ok();
  }

  // Group hoist: the reduction loop has siblings — the fissioned family
  // of format_iteration's rule 3 (real-area loop, shadow-area loop,
  // diagonal statement). Strip-mine every sibling loop over the same
  // variable under ONE hoisted tile loop spanning the union of their
  // ranges; the remaining statements move into a cloned point nest that
  // runs after all tiles (legal: the statements are accumulations).
  //   - The union tile range must have a parameter-only upper bound
  //     (e.g. M); per-loop point bounds clamp the empty tiles away.
  std::vector<AffineExpr> union_ub;
  for (const AffineExpr& term : tile->ub.terms()) {
    bool params_only = true;
    for (const std::string& s : term.symbols()) {
      if (std::find(program.int_params.begin(), program.int_params.end(),
                    s) == program.int_params.end()) {
        params_only = false;
      }
    }
    if (params_only) union_ub.push_back(term);
  }
  for (const auto& sib : last_point->body) {
    if (sib->is_loop() && sib->var == red->var && sib.get() != red) {
      for (const AffineExpr& term : sib->ub.terms()) {
        bool params_only = true;
        for (const std::string& s : term.symbols()) {
          if (std::find(program.int_params.begin(), program.int_params.end(),
                        s) == program.int_params.end()) {
            params_only = false;
          }
        }
        if (params_only) union_ub.push_back(term);
      }
    }
  }
  if (union_ub.empty()) {
    return failed_precondition(
        "loop_tiling: cannot bound the union of the reduction family");
  }
  // Dedupe identical terms.
  std::vector<AffineExpr> dedup;
  for (const AffineExpr& term : union_ub) {
    if (std::find(dedup.begin(), dedup.end(), term) == dedup.end()) {
      dedup.push_back(term);
    }
  }
  tile->lb = Bound(0);
  tile->ub = Bound::min_of(std::move(dedup));

  // Partition the parent body: family loops (strip-mined, stay under the
  // tile loop) vs remainder (moved to a fresh point nest).
  std::vector<NodePtr> family;
  std::vector<NodePtr> remainder;
  for (auto& sib : last_point->body) {
    if (sib->is_loop() && sib->var == red->var) {
      strip_mine(*sib);
      family.push_back(std::move(sib));
    } else {
      remainder.push_back(std::move(sib));
    }
  }

  // Build the remainder nest from the point-chain headers before the
  // structure below them changes.
  auto make_shell = [](const Node& proto, const std::string& label) {
    NodePtr shell = ir::make_loop(label, proto.var, proto.lb, proto.ub,
                                  proto.step);
    shell->orig_var = proto.orig_var;
    shell->unroll = proto.unroll;
    return shell;
  };
  NodePtr tail;
  if (!remainder.empty()) {
    for (size_t i = loops.size() - 1; i-- > 0;) {
      NodePtr shell = make_shell(*loops[i], loops[i]->label + "_d");
      if (tail) {
        shell->body.push_back(std::move(tail));
      } else {
        shell->body = std::move(remainder);
      }
      tail = std::move(shell);
    }
  }

  // Interchange: when the family bounds do not depend on the innermost
  // listed point variable, distribute that loop *into* each family
  // member (so the per-k operand stays register-cached across the
  // strip, as in the classic path).
  bool can_distribute = loops.size() >= 3;
  for (const auto& f : family) {
    if (f->lb.depends_on(last_point->var) ||
        f->ub.depends_on(last_point->var)) {
      can_distribute = false;
    }
  }
  if (can_distribute) {
    int idx = 0;
    for (auto& f : family) {
      NodePtr shell = make_shell(
          *last_point, idx == 0 ? last_point->label
                                : last_point->label + "_s" +
                                      std::to_string(idx + 1));
      shell->body = std::move(f->body);
      f->body.clear();
      f->body.push_back(std::move(shell));
      ++idx;
    }
    Node* above = loops[loops.size() - 3];
    above->body = std::move(family);
  } else {
    last_point->body = std::move(family);
  }

  // Hoist the tile loop above the chain head and append the tail nest.
  ir::LoopLocation head = ir::locate_loop(kernel.body, loops[0]->label);
  if (head.loop == nullptr) {
    return internal_error("point chain head vanished during tiling");
  }
  NodePtr point_chain = std::move((*head.parent_body)[head.index]);
  tile->body.push_back(std::move(point_chain));
  (*head.parent_body)[head.index] = std::move(tile);
  if (tail) {
    head.parent_body->insert(
        head.parent_body->begin() + static_cast<long>(head.index + 1),
        std::move(tail));
  }
  return Status::ok();
}

Status loop_unroll(ir::Program& program,
                   const std::vector<std::string>& labels,
                   const TransformContext& ctx) {
  Kernel& kernel = program.main_kernel();
  for (const std::string& label : labels) {
    Node* l = kernel.find(label);
    if (l == nullptr) {
      return not_found("loop_unroll: label '" + label + "' not found");
    }
    if (l->map != ir::LoopMap::kNone) {
      return failed_precondition("cannot unroll mapped loop '" + label + "'");
    }
    // The trip count must be uniform across the threads of a block:
    // every (ub - lb) combination must be constant, except benign
    // whole-problem boundary clamps that involve only kernel parameters.
    int64_t trip = -1;
    for (const AffineExpr& ub : l->ub.terms()) {
      for (const AffineExpr& lb : l->lb.terms()) {
        AffineExpr d = ub - lb;
        if (d.is_constant()) {
          const int64_t t = (d.constant_term() + l->step - 1) / l->step;
          trip = trip < 0 ? t : std::min(trip, t);
          continue;
        }
        // Non-constant difference: benign iff it only references
        // parameters and tile/block variables (a boundary clamp uniform
        // across the threads of a block); point variables of other axes
        // make the bounds non-rectangular -> unroll fails.
        for (const std::string& s : d.symbols()) {
          const bool is_param =
              std::find(program.int_params.begin(), program.int_params.end(),
                        s) != program.int_params.end();
          if (is_param) continue;
          bool benign = false;
          for (const auto& [var, t2] : kernel.tiling) {
            if (s == t2.block_var || s == t2.thread_var || s == t2.tile_var) {
              benign = true;
              break;
            }
          }
          if (!benign) {
            return failed_precondition(
                str_format("loop '%s' has non-rectangular bounds (term "
                           "depends on '%s'); unroll fails",
                           label.c_str(), s.c_str()));
          }
        }
      }
    }
    if (trip < 0) {
      return failed_precondition("loop '" + label +
                                 "' has no constant-trip bound term");
    }
    l->unroll = static_cast<int>(
        std::max<int64_t>(1, std::min<int64_t>(trip, ctx.params.unroll)));
  }
  return Status::ok();
}

}  // namespace oa::transforms
