// thread_grouping: expose two-level GPU parallelism by distributing two
// loops across thread blocks and threads (paper §III-B). Polyhedral
// mechanics follow Baskaran et al. [7]: tile each mapped loop into
// (block, thread, point) levels; block/thread levels become
// blockIdx/threadIdx, the point loop keeps the original variable so all
// subscripts remain valid.
//
// When one of the loops carries a dependence (TRSM's solve dimension,
// found via deps::carries_dependence), that loop is mapped to grid Y
// with *serialized waves* (LoopMap::kBlockYSerial) — the Adaptor_Solver
// workload distribution of Fig 7 — and the other loop takes the X
// dimensions.

#include <algorithm>
#include <map>

#include "deps/dependence.hpp"
#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::Bound;
using ir::Kernel;
using ir::LoopMap;
using ir::Node;
using ir::NodePtr;

namespace {

Status check_groupable(const Node& loop) {
  if (loop.map != LoopMap::kNone) {
    return failed_precondition("loop '" + loop.label + "' already mapped");
  }
  if (loop.step != 1) {
    return failed_precondition("loop '" + loop.label + "' has non-unit step");
  }
  return Status::ok();
}

struct AxisParams {
  int64_t block_tile;
  int64_t threads;
  LoopMap block_map;
  LoopMap thread_map;
};

}  // namespace

Status thread_grouping(ir::Program& program,
                       const std::vector<std::string>& labels,
                       const std::vector<std::string>& out_labels,
                       const TransformContext& ctx) {
  OA_RETURN_IF_ERROR(ctx.params.check());
  if (labels.size() != 2 || out_labels.size() != 2) {
    return invalid_argument("thread_grouping expects exactly two loops");
  }
  Kernel& kernel = program.main_kernel();
  Node* l0 = kernel.find(labels[0]);
  Node* l1 = kernel.find(labels[1]);
  if (l0 == nullptr || l1 == nullptr) {
    return not_found("thread_grouping: loop label not found");
  }
  OA_RETURN_IF_ERROR(check_groupable(*l0));
  OA_RETURN_IF_ERROR(check_groupable(*l1));

  // Structural requirement: one target is the kernel's top loop, the
  // other is its only child loop.
  if (kernel.body.size() != 1 || !kernel.body[0]->is_loop()) {
    return failed_precondition("kernel body is not a single loop nest");
  }
  Node* outer = kernel.body[0].get();
  if (outer != l0 && outer != l1) {
    return failed_precondition(
        "thread_grouping targets must start at the outermost loop");
  }
  Node* inner = outer == l0 ? l1 : l0;
  if (outer->body.size() != 1 || outer->body[0].get() != inner) {
    return failed_precondition(
        "thread_grouping targets must be perfectly nested");
  }

  // Choose the Y (row) loop: a dependence-carrying loop must be
  // serialized along grid Y; both carrying is not parallelizable.
  const bool carries0 = deps::carries_dependence(
      kernel, *l0, ctx.nominal_sizes, deps::Mode::kStrict);
  const bool carries1 = deps::carries_dependence(
      kernel, *l1, ctx.nominal_sizes, deps::Mode::kStrict);
  if (carries0 && carries1) {
    return illegal("both loops carry dependences; cannot thread-group");
  }
  Node* y_loop = carries1 ? l1 : l0;
  Node* x_loop = carries1 ? l0 : l1;
  const bool serial_y = carries0 || carries1;

  const AxisParams y_params{ctx.params.block_tile_y, ctx.params.threads_y,
                            serial_y ? LoopMap::kBlockYSerial
                                     : LoopMap::kBlockY,
                            LoopMap::kThreadY};
  const AxisParams x_params{ctx.params.block_tile_x, ctx.params.threads_x,
                            LoopMap::kBlockX, LoopMap::kThreadX};

  // Build block/thread/point levels for one axis. The point loop reuses
  // the original node (bounds rewritten), so the loop body moves along.
  // A bound referencing the *other* grouped variable (a triangular
  // output space like SYRK's j <= i) is widened to that variable's full
  // range for the grid extent — the out-of-range blocks simply find an
  // empty point range — while the point loop keeps the exact bound.
  std::map<std::string, AffineExpr> full_range;  // var -> original ub term
  for (const Node* l : {outer, inner}) {
    if (l->ub.is_single()) full_range[l->var] = l->ub.terms()[0];
  }
  struct AxisPieces {
    NodePtr block_loop;
    NodePtr thread_loop;
  };
  Status axis_error = Status::ok();
  auto build_axis = [&](Node& loop, const AxisParams& p,
                        const std::string& out_label) -> AxisPieces {
    const std::string vb = loop.var + "_b";
    const std::string vt = loop.var + "_t";
    const int64_t per_thread = p.block_tile / p.threads;

    // Grid extent: bounds with cross-variable terms widened.
    std::vector<AffineExpr> grid_ub;
    for (const AffineExpr& term : loop.ub.terms()) {
      AffineExpr w = term;
      for (const auto& [var, full] : full_range) {
        if (var != loop.var && w.depends_on(var)) {
          w = w.substituted(var, full);
        }
      }
      for (const std::string& sym : w.symbols()) {
        const bool is_param =
            std::find(program.int_params.begin(), program.int_params.end(),
                      sym) != program.int_params.end();
        if (!is_param && axis_error.is_ok()) {
          axis_error = failed_precondition(
              "thread_grouping: bound of '" + loop.label +
              "' uses non-parameter symbol '" + sym + "'");
        }
      }
      grid_ub.push_back(std::move(w));
    }
    const AffineExpr axis_extent =
        grid_ub.size() == 1 ? grid_ub[0] : AffineExpr();

    auto block = ir::make_loop(loop.label + "b", vb, Bound(0),
                               Bound::min_of(grid_ub));
    block->ub_div = p.block_tile;
    block->map = p.block_map;
    block->orig_var = loop.orig_var;

    auto thread =
        ir::make_loop(loop.label + "t", vt, Bound(0),
                      Bound(AffineExpr::constant(p.threads)));
    thread->map = p.thread_map;
    thread->orig_var = loop.orig_var;

    // Rewrite the original loop into the point loop:
    //   v in [max(orig_lb, vb*BT + vt*R), min(orig_ub, vb*BT + vt*R + R)).
    const AffineExpr base = AffineExpr::sym(vb, p.block_tile) +
                            AffineExpr::sym(vt, per_thread);
    std::vector<AffineExpr> ub_terms = loop.ub.terms();
    ub_terms.push_back(base + per_thread);
    std::vector<AffineExpr> lb_terms = loop.lb.terms();
    // Drop a redundant constant-zero lower term; keep triangular lbs.
    std::erase_if(lb_terms, [](const AffineExpr& t) {
      return t == AffineExpr::constant(0);
    });
    lb_terms.push_back(base);
    loop.lb = Bound::min_of(std::move(lb_terms));  // max-eval container
    loop.ub = Bound::min_of(std::move(ub_terms));
    loop.label = out_label;

    ir::VarTiling& t = kernel.tiling[loop.var];
    t.axis_extent = axis_extent;
    t.block_var = vb;
    t.block_base = AffineExpr::sym(vb, p.block_tile);
    t.block_extent = p.block_tile;
    t.block_map = p.block_map;
    t.thread_var = vt;
    t.thread_base = base;
    t.thread_extent = per_thread;
    t.thread_map = p.thread_map;
    t.point_label = out_label;

    AxisPieces pieces;
    pieces.block_loop = std::move(block);
    pieces.thread_loop = std::move(thread);
    return pieces;
  };

  // out_labels correspond positionally to `labels`.
  const std::string& out_outer =
      outer == l0 ? out_labels[0] : out_labels[1];
  const std::string& out_inner =
      outer == l0 ? out_labels[1] : out_labels[0];

  AxisPieces outer_pieces =
      build_axis(*outer, outer == y_loop ? y_params : x_params, out_outer);
  AxisPieces inner_pieces =
      build_axis(*inner, inner == y_loop ? y_params : x_params, out_inner);
  OA_RETURN_IF_ERROR(axis_error);
  (void)x_loop;

  // Assemble: Yb { Xb { Yt { Xt { point_outer { point_inner { ... }}}}}}.
  // Point loops stay in their original nesting order; block/thread
  // levels are ordered Y-then-X for a deterministic launch shape.
  NodePtr& yb = outer == y_loop ? outer_pieces.block_loop
                                : inner_pieces.block_loop;
  NodePtr& xb = outer == y_loop ? inner_pieces.block_loop
                                : outer_pieces.block_loop;
  NodePtr& yt = outer == y_loop ? outer_pieces.thread_loop
                                : inner_pieces.thread_loop;
  NodePtr& xt = outer == y_loop ? inner_pieces.thread_loop
                                : outer_pieces.thread_loop;

  NodePtr nest = std::move(kernel.body[0]);  // point_outer { point_inner }
  xt->body.push_back(std::move(nest));
  yt->body.push_back(std::move(xt));
  xb->body.push_back(std::move(yt));
  yb->body.push_back(std::move(xb));
  kernel.body.clear();
  kernel.body.push_back(std::move(yb));
  return Status::ok();
}

Status batch_grouping(ir::Program& program, const std::string& mode,
                      const TransformContext&) {
  if (!program.batched) {
    return failed_precondition(
        "batch_grouping applies only to batched routine families");
  }
  if (mode == "per_member") {
    program.batch_grouping = ir::BatchGrouping::kPerMember;
    return Status::ok();
  }
  if (mode == "batch_tiled") {
    program.batch_grouping = ir::BatchGrouping::kBatchTiled;
    return Status::ok();
  }
  return invalid_argument("unknown batch grouping '" + mode + "'");
}

}  // namespace oa::transforms
