// SM_alloc and Reg_alloc (paper §III-B, traditional-pool memory
// components, data-movement generation after Baskaran et al. [9]).
//
// SM_alloc(X, mode) stages the per-(k-)tile footprint of X into a shared
// array: it derives the footprint from the tiling metadata recorded by
// thread_grouping/loop_tiling, emits a cooperative, thread-distributed
// copy nest plus __syncthreads barriers at the top of every k-tile loop,
// pads the leading dimension to dodge bank conflicts ((16,16)->(16,17)),
// and remaps the matching references. Modes: NoChange, Transpose
// (shared tile stores the transpose — stride-1 inner-loop accesses),
// Symmetry (shared tile holds src + src^T - diag(src), serving both the
// real-area and shadow-area references of a symmetric matrix).
//
// Reg_alloc(X) gives each thread a register block covering its private
// tile of the output: accumulation statements retarget the register
// block, which is flushed with guarded global updates after the
// reduction. It fails (filter: omitted) when some reference to X falls
// outside the calling thread's tile — e.g. inside the
// binding_triangular region of TRSM, where one thread walks the whole
// block tile.

#include <algorithm>
#include <array>
#include <functional>
#include <set>

#include "ir/interval.hpp"
#include "support/strings.hpp"
#include "transforms/transform.hpp"

namespace oa::transforms {

using ir::AffineExpr;
using ir::ArrayDecl;
using ir::ArrayRef;
using ir::AssignOp;
using ir::Bound;
using ir::Interval;
using ir::Kernel;
using ir::Node;
using ir::NodePtr;
using ir::Pred;
using ir::VarTiling;

namespace {

constexpr int64_t kBanks = 16;

/// Identify the tiled axis variable a subscript expression depends on.
/// Exactly one tiled variable may occur (parameters like M are fine).
StatusOr<std::string> axis_of(const AffineExpr& e, const Kernel& kernel,
                              const ir::Program& program) {
  std::string axis;
  for (const std::string& s : e.symbols()) {
    if (kernel.tiling.contains(s)) {
      if (!axis.empty() && axis != s) {
        return failed_precondition("subscript '" + e.to_string() +
                                   "' mixes tiled axes");
      }
      axis = s;
      continue;
    }
    const bool is_param =
        std::find(program.int_params.begin(), program.int_params.end(), s) !=
        program.int_params.end();
    if (!is_param) {
      return failed_precondition("subscript '" + e.to_string() +
                                 "' uses unknown symbol '" + s + "'");
    }
  }
  if (axis.empty()) {
    return failed_precondition("subscript '" + e.to_string() +
                               "' touches no tiled axis");
  }
  return axis;
}

/// Footprint of one axis at a given staging level.
struct AxisFootprint {
  std::string axis;       // source variable ("i", "j", "k")
  AffineExpr base_of_expr;  // for a given subscript expr: min value over
                            // the axis range (depends on coeff sign)
  int64_t extent = 0;
  bool tile_level = false;  // true: per k-tile; false: per block
};

/// Base (minimum) and extent of subscript `e` when its axis variable
/// ranges over [range_base, range_base + range_extent).
AxisFootprint footprint_for(const AffineExpr& e, const std::string& axis,
                            const AffineExpr& range_base,
                            int64_t range_extent, bool tile_level) {
  const int64_t c = e.coeff(axis);
  AffineExpr lo_sub = range_base;
  if (c < 0) lo_sub += AffineExpr::constant(range_extent - 1);
  AxisFootprint f;
  f.axis = axis;
  f.base_of_expr = e.substituted(axis, lo_sub);
  f.extent = std::abs(c) * (range_extent - 1) + 1;
  f.tile_level = tile_level;
  return f;
}

StatusOr<AxisFootprint> axis_footprint(const AffineExpr& e,
                                       const Kernel& kernel,
                                       const ir::Program& program) {
  OA_ASSIGN_OR_RETURN(std::string axis, axis_of(e, kernel, program));
  const VarTiling& t = kernel.tiling.at(axis);
  if (t.tile_extent > 0) {
    return footprint_for(e, axis, AffineExpr::sym(t.tile_var),
                         t.tile_extent, /*tile_level=*/true);
  }
  if (t.block_extent > 0) {
    return footprint_for(e, axis, t.block_base, t.block_extent,
                         /*tile_level=*/false);
  }
  return failed_precondition("axis '" + axis + "' has no tiling extents");
}

/// True when an affine expression could evaluate negative (conservative:
/// any negative coefficient or constant).
bool may_be_negative(const AffineExpr& e) {
  if (e.constant_term() < 0) return true;
  for (const std::string& s : e.symbols()) {
    if (e.coeff(s) < 0) return true;
  }
  return false;
}

/// Find the thread-distribution variables (threadIdx.y / threadIdx.x).
struct ThreadVars {
  std::string ty, tx;
  int64_t ny = 0, nx = 0;
};

StatusOr<ThreadVars> thread_vars(const Kernel& kernel) {
  ThreadVars tv;
  for (const auto& [var, t] : kernel.tiling) {
    if (t.thread_map == ir::LoopMap::kThreadY) {
      tv.ty = t.thread_var;
      tv.ny = t.block_extent / t.thread_extent;
    } else if (t.thread_map == ir::LoopMap::kThreadX) {
      tv.tx = t.thread_var;
      tv.nx = t.block_extent / t.thread_extent;
    }
  }
  if (tv.ty.empty() || tv.tx.empty()) {
    return failed_precondition("SM_alloc requires thread_grouping first");
  }
  return tv;
}

/// Build X[...] source ref from the tile coordinates: for each source
/// dim, index = base + tile offset of the dim's axis.
ArrayRef source_ref(const std::string& array,
                    const std::vector<AxisFootprint>& dims,
                    const std::vector<AffineExpr>& offsets) {
  ArrayRef r{array, {}};
  for (size_t d = 0; d < dims.size(); ++d) {
    r.index.push_back(dims[d].base_of_expr + offsets[d]);
  }
  return r;
}

}  // namespace

// ===================================================================
// SM_alloc
// ===================================================================

Status sm_alloc(ir::Program& program, const std::string& array,
                AllocMode mode, const TransformContext& ctx) {
  (void)ctx;
  Kernel& kernel = program.main_kernel();
  const ArrayDecl* decl = program.find_global(array);
  if (decl == nullptr) {
    return not_found("SM_alloc: global array '" + array + "' not found");
  }
  OA_ASSIGN_OR_RETURN(ThreadVars tv, thread_vars(kernel));

  // Collect candidate read references (rhs only; outputs stay global)
  // outside thread-predicated regions, and note whether any exists.
  struct Candidate {
    std::vector<AxisFootprint> dims;
  };
  StatusOr<Candidate> proto = failed_precondition("no stageable reference");
  Status scan_error = Status::ok();
  {
    std::function<void(const std::vector<NodePtr>&, bool)> scan =
        [&](const std::vector<NodePtr>& body, bool guarded) {
          for (const auto& n : body) {
            switch (n->kind) {
              case Node::Kind::kLoop:
                scan(n->body, guarded);
                break;
              case Node::Kind::kAssign:
                if (!guarded && n->rhs) {
                  n->rhs->visit_refs([&](const ArrayRef& r) {
                    if (r.array != array || proto.is_ok()) return;
                    Candidate c;
                    bool ok = true;
                    for (const auto& e : r.index) {
                      auto f = axis_footprint(e, kernel, program);
                      if (!f.is_ok()) {
                        scan_error = f.status();
                        ok = false;
                        break;
                      }
                      c.dims.push_back(std::move(f).value());
                    }
                    if (ok) proto = std::move(c);
                  });
                }
                break;
              case Node::Kind::kSync:
                break;
              case Node::Kind::kIf: {
                const bool thread_guard = !n->conds.empty();
                scan(n->then_body, guarded || thread_guard);
                scan(n->else_body, guarded || thread_guard);
                break;
              }
            }
          }
        };
    scan(kernel.body, false);
  }
  if (!proto.is_ok()) {
    return scan_error.is_ok() ? proto.status() : scan_error;
  }
  const std::vector<AxisFootprint>& dims = proto->dims;
  if (dims.size() != 2) {
    return failed_precondition("SM_alloc supports 2-D arrays");
  }
  // Staging happens per iteration of the (unique) tile-level axis.
  std::string tile_axis;
  for (const auto& d : dims) {
    if (d.tile_level) tile_axis = d.axis;
  }
  if (tile_axis.empty()) {
    return failed_precondition(
        "SM_alloc: no k-tile footprint; apply loop_tiling first");
  }
  const VarTiling& tile_info = kernel.tiling.at(tile_axis);

  // Shared tile layout: (row axis, col axis) of the shared array.
  //   NoChange: same orientation as the source dims.
  //   Transpose: swapped.
  //   Symmetry: rows = block axis, cols = tile axis (canonical), the
  //   tile holds src + src^T - diag(src) restricted to the footprint.
  int row_dim = 0, col_dim = 1;
  if (mode == AllocMode::kTranspose) {
    row_dim = 1;
    col_dim = 0;
  } else if (mode == AllocMode::kSymmetry) {
    row_dim = dims[0].tile_level ? 1 : 0;
    col_dim = dims[0].tile_level ? 0 : 1;
  }
  const AxisFootprint& row_fp = dims[static_cast<size_t>(row_dim)];
  const AxisFootprint& col_fp = dims[static_cast<size_t>(col_dim)];

  const std::string shared_name = array + "_s";
  if (kernel.find_local_array(shared_name) != nullptr) {
    return failed_precondition("array '" + array + "' already staged");
  }
  ArrayDecl shared;
  shared.name = shared_name;
  shared.space = ir::MemSpace::kShared;
  shared.rows = AffineExpr::constant(row_fp.extent);
  shared.cols = AffineExpr::constant(col_fp.extent);
  shared.pad_rows = (row_fp.extent % kBanks == 0) ? 1 : 0;
  kernel.local_arrays.push_back(shared);

  // --- Copy nest builder (one per staging loop instance) ------------
  // The copy iterates *source* coordinates: s0 walks the source leading
  // dimension and is distributed over threadIdx.x, so consecutive
  // threads read consecutive global elements (coalesced) regardless of
  // the shared-tile orientation.
  const std::string ov0 = "c0_" + array;  // offset along source dim 0
  const std::string ov1 = "c1_" + array;  // offset along source dim 1
  int copy_instance = 0;
  auto make_copy_nest = [&]() -> NodePtr {
    const std::string tag = array + "_" + std::to_string(copy_instance++);

    std::vector<AffineExpr> offs = {AffineExpr::sym(ov0),
                                    AffineExpr::sym(ov1)};
    ArrayRef src = source_ref(array, dims, offs);
    // Destination indices: the source dim matching the shared row axis
    // supplies the row offset.
    const size_t rd = static_cast<size_t>(row_dim);
    const size_t cd = static_cast<size_t>(col_dim);
    ArrayRef dst{shared_name, {offs[rd], offs[cd]}};

    NodePtr stmt;
    if (mode == AllocMode::kSymmetry) {
      // dst = src + src^T; then overwrite the diagonal with src alone
      // (dest = src + src^T - diag(src)).
      ArrayRef mirrored{array, {src.index[1], src.index[0]}};
      stmt = ir::make_assign(
          dst, AssignOp::kAssign,
          ir::make_add(ir::make_ref(src), ir::make_ref(mirrored)));
    } else {
      stmt = ir::make_assign(dst, AssignOp::kAssign, ir::make_ref(src));
    }
    stmt->staging_copy = true;

    std::vector<NodePtr> copy_stmts;
    copy_stmts.push_back(std::move(stmt));
    if (mode == AllocMode::kSymmetry) {
      // Diagonal fix-up: where global row == global col, keep src only.
      Pred diag{src.index[0] - src.index[1], Pred::Op::kEq};
      std::vector<NodePtr> fix;
      fix.push_back(ir::make_assign(dst, AssignOp::kAssign,
                                    ir::make_ref(src)));
      fix.back()->staging_copy = true;
      copy_stmts.push_back(ir::make_if({diag}, std::move(fix)));
    }
    // Guard against out-of-range source rows/cols (reversed subscripts
    // at boundary blocks).
    std::vector<Pred> guards;
    for (const auto& e : {src.index[0], src.index[1]}) {
      if (may_be_negative(e)) guards.push_back(Pred{e, Pred::Op::kGe});
    }
    if (!guards.empty()) {
      std::vector<NodePtr> body = std::move(copy_stmts);
      copy_stmts.clear();
      copy_stmts.push_back(ir::make_if(std::move(guards), std::move(body)));
    }

    // Inner loop: source leading dim, distributed over the *linear*
    // thread id (tid = tx + ty*TX) so a (half-)warp reads consecutive
    // global elements — the classic coalesced staging idiom.
    const AffineExpr tid =
        AffineExpr::sym(tv.tx) + AffineExpr::sym(tv.ty, tv.nx);
    auto inner = ir::make_loop(
        "Lcp0_" + tag, ov0, Bound(tid),
        Bound::min_of({AffineExpr::constant(dims[0].extent),
                       decl->rows - dims[0].base_of_expr}),
        tv.nx * tv.ny);
    // Symmetry also reads the mirrored element: clamp against cols too.
    if (mode == AllocMode::kSymmetry) {
      inner->ub.add_term(decl->cols - dims[0].base_of_expr);
    }
    inner->body = std::move(copy_stmts);
    auto outer = ir::make_loop(
        "Lcp1_" + tag, ov1, Bound(0),
        Bound::min_of({AffineExpr::constant(dims[1].extent),
                       decl->cols - dims[1].base_of_expr}),
        1);
    if (mode == AllocMode::kSymmetry) {
      outer->ub.add_term(decl->rows - dims[1].base_of_expr);
    }
    outer->body.push_back(std::move(inner));
    return outer;
  };

  // --- Apply to every staging loop (var == tile var), remap refs ----
  // `guarded` tracks thread-divergent context: staging under a thread
  // predicate or inside a loop whose trip depends on threadIdx would
  // put the barrier behind divergent control flow, so such loops are
  // skipped (the references there keep reading global memory).
  auto divergent_loop = [&](const Node& l) {
    for (const auto& [var, t] : kernel.tiling) {
      if (t.thread_extent == 0 || t.thread_var.empty()) continue;
      if (l.lb.depends_on(t.thread_var) || l.ub.depends_on(t.thread_var)) {
        return true;
      }
    }
    return false;
  };
  int staged = 0;
  std::function<Status(std::vector<NodePtr>&, bool)> visit =
      [&](std::vector<NodePtr>& body, bool guarded) -> Status {
    for (auto& n : body) {
      if (n->is_if()) {
        // Thread predicates create divergent regions; bool-param
        // selection (multi-versioning) is uniform across the block.
        const bool g = guarded || !n->conds.empty();
        OA_RETURN_IF_ERROR(visit(n->then_body, g));
        OA_RETURN_IF_ERROR(visit(n->else_body, g));
        continue;
      }
      if (!n->is_loop()) continue;
      if (n->var != tile_info.tile_var || guarded) {
        OA_RETURN_IF_ERROR(
            visit(n->body, guarded || (n->map == ir::LoopMap::kNone &&
                                       divergent_loop(*n))));
        continue;
      }
      // This is a staging loop executed by all threads: inject the copy
      // nest + barriers and remap matching *read* references below it.
      // Writes and reads with a non-matching footprint (e.g. TRSM's
      // B[i][j] output next to the staged B[k][j] input tile) stay in
      // global memory.
      int remapped = 0;
      auto remap_ref = [&](ArrayRef& r) {
        if (r.array != array || r.index.size() != 2) return;
        std::array<std::string, 2> axes;
        for (size_t d = 0; d < 2; ++d) {
          auto axis = axis_of(r.index[d], kernel, program);
          if (!axis.is_ok()) return;
          axes[d] = std::move(*axis);
        }
        if (mode == AllocMode::kSymmetry) {
          // The symmetric tile serves both orientations: match each dim
          // by axis.
          AffineExpr row_idx, col_idx;
          for (size_t d = 0; d < 2; ++d) {
            if (axes[d] == row_fp.axis) {
              row_idx = r.index[d] - row_fp.base_of_expr;
            } else if (axes[d] == col_fp.axis) {
              col_idx = r.index[d] - col_fp.base_of_expr;
            } else {
              return;
            }
          }
          if (axes[0] == axes[1]) return;  // degenerate (diagonal ref)
          r = ArrayRef{shared_name, {row_idx, col_idx}};
        } else {
          // Positional match against the staged footprint.
          for (size_t d = 0; d < 2; ++d) {
            if (axes[d] != dims[d].axis) return;
          }
          const size_t rd = static_cast<size_t>(row_dim);
          const size_t cd = static_cast<size_t>(col_dim);
          r = ArrayRef{shared_name,
                       {r.index[rd] - row_fp.base_of_expr,
                        r.index[cd] - col_fp.base_of_expr}};
        }
        ++remapped;
      };
      ir::walk(n->body, [&](Node& m) {
        if (m.is_assign() && m.rhs) m.rhs->for_each_ref(remap_ref);
        return true;
      });
      if (remapped == 0) {
        OA_RETURN_IF_ERROR(visit(n->body, guarded));
        continue;  // nothing staged in this loop; no copy overhead
      }
      n->body.insert(n->body.begin(), ir::make_sync());
      n->body.insert(n->body.begin(), make_copy_nest());
      n->body.push_back(ir::make_sync());
      ++staged;
    }
    return Status::ok();
  };
  OA_RETURN_IF_ERROR(visit(kernel.body, false));
  if (staged == 0) {
    kernel.local_arrays.pop_back();
    return failed_precondition("SM_alloc: no staging loop found for '" +
                               array + "'");
  }
  return Status::ok();
}

// ===================================================================
// Reg_alloc
// ===================================================================

Status reg_alloc(ir::Program& program, const std::string& array,
                 const TransformContext& ctx) {
  Kernel& kernel = program.main_kernel();
  const ArrayDecl* decl = program.find_global(array);
  if (decl == nullptr) {
    return not_found("reg_alloc: global array '" + array + "' not found");
  }

  // The register block covers the calling thread's private tile: both
  // axes must be thread-partitioned. References inside thread-guarded
  // regions (binding_triangular) are left in global memory; the
  // register block is flushed before the first such region, so the
  // bound thread observes every accumulated value (TRSM's rectangular
  // part promotes, its trapezoid solve stays global).
  //
  // Collect every *unguarded* reference to X and derive per-dim
  // footprints at the thread level.
  struct DimInfo {
    std::string axis;
    AffineExpr base;
    int64_t extent = 0;
  };
  std::vector<DimInfo> dims(2);
  bool have_proto = false;
  bool has_guarded_refs = false;
  Status fail = Status::ok();
  auto inspect_ref = [&](const ArrayRef& r) {
    if (r.array != array || !fail.is_ok()) return;
    if (r.index.size() != 2) {
      fail = failed_precondition("reg_alloc supports 2-D arrays");
      return;
    }
    for (size_t d = 0; d < 2; ++d) {
      auto axis = axis_of(r.index[d], kernel, program);
      if (!axis.is_ok()) {
        fail = axis.status();
        return;
      }
      const VarTiling& t = kernel.tiling.at(*axis);
      if (t.thread_extent <= 0) {
        fail = failed_precondition(
            "reg_alloc: axis '" + *axis + "' of '" + array +
            "' is not thread-partitioned");
        return;
      }
      AxisFootprint f = footprint_for(r.index[d], *axis, t.thread_base,
                                      t.thread_extent, false);
      if (!have_proto) {
        dims[d] = DimInfo{*axis, f.base_of_expr, f.extent};
      } else if (dims[d].axis != *axis || !(dims[d].base == f.base_of_expr) ||
                 dims[d].extent != f.extent) {
        fail = failed_precondition(
            "reg_alloc: references to '" + array +
            "' disagree on the thread tile");
      }
    }
    have_proto = true;
  };
  std::function<void(const std::vector<NodePtr>&, bool)> scan =
      [&](const std::vector<NodePtr>& body, bool guarded) {
        for (const auto& n : body) {
          switch (n->kind) {
            case Node::Kind::kLoop:
              scan(n->body, guarded);
              break;
            case Node::Kind::kAssign: {
              if (n->staging_copy) break;  // disjoint staged footprint
              bool touches = n->lhs.array == array;
              if (n->rhs) {
                n->rhs->visit_refs([&](const ArrayRef& r) {
                  touches |= r.array == array;
                });
              }
              if (!touches) break;
              if (guarded) {
                has_guarded_refs = true;
                break;
              }
              inspect_ref(n->lhs);
              if (n->rhs) n->rhs->visit_refs(inspect_ref);
              break;
            }
            case Node::Kind::kSync:
              break;
            case Node::Kind::kIf: {
              const bool g = guarded || !n->conds.empty();
              scan(n->then_body, g);
              scan(n->else_body, g);
              break;
            }
          }
        }
      };
  scan(kernel.body, false);
  OA_RETURN_IF_ERROR(fail);
  if (!have_proto) {
    return not_found("reg_alloc: no unguarded reference to '" + array +
                     "'");
  }

  // Verify the accumulation pattern: every unguarded statement writing
  // X is += or -= (so zero-init + final "+=" flush preserves
  // semantics). Uses another guarded-aware walk.
  bool pattern_ok = true;
  std::function<void(const std::vector<NodePtr>&)> check_ops =
      [&](const std::vector<NodePtr>& body) {
        for (const auto& n : body) {
          if (n->is_if()) {
            if (n->conds.empty()) {  // uniform multi-version branch
              check_ops(n->then_body);
              check_ops(n->else_body);
            }
            continue;  // thread-guarded regions stay global
          }
          if (n->is_loop()) check_ops(n->body);
          if (n->is_assign() && n->lhs.array == array &&
              n->op != AssignOp::kAddAssign &&
              n->op != AssignOp::kSubAssign) {
            pattern_ok = false;
          }
        }
      };
  check_ops(kernel.body);
  if (!pattern_ok) {
    return failed_precondition(
        "reg_alloc: '" + array + "' is not a pure accumulation target");
  }

  // Verify containment: each subscript, rewritten with its axis variable
  // expressed as thread_base + delta (delta in [0, thread_extent)), must
  // land in [0, extent) with the block/thread symbols cancelling. Plain
  // interval analysis on the raw loop ranges would lose the correlation
  // between a point variable and its thread base.
  Status contained = Status::ok();
  auto check_contained = [&](const ArrayRef& r) {
    if (r.array != array || !contained.is_ok()) return;
    for (size_t d = 0; d < 2; ++d) {
      const std::string& axis = dims[d].axis;
      const VarTiling& t = kernel.tiling.at(axis);
      AffineExpr off = (r.index[d] - dims[d].base)
                           .substituted(axis, t.thread_base +
                                                  AffineExpr::sym("\x01d"));
      ir::RangeEnv env{{"\x01d", Interval{0, t.thread_extent - 1}}};
      for (const auto& [p, v] : ctx.nominal_sizes) {
        env[p] = Interval{v, v};
      }
      auto range = ir::range_of(off, env);
      if (!range || range->lo < 0 || range->hi >= dims[d].extent) {
        contained = failed_precondition(
            "reg_alloc: reference " + r.to_string() +
            " escapes the thread tile");
        return;
      }
    }
  };
  std::function<void(const std::vector<NodePtr>&)> walk_unguarded =
      [&](const std::vector<NodePtr>& body) {
        for (const auto& n : body) {
          switch (n->kind) {
            case Node::Kind::kLoop:
              walk_unguarded(n->body);
              break;
            case Node::Kind::kAssign:
              if (n->staging_copy) break;
              check_contained(n->lhs);
              if (n->rhs) n->rhs->visit_refs(check_contained);
              break;
            case Node::Kind::kSync:
              break;
            case Node::Kind::kIf:
              if (n->conds.empty()) {
                // bool-param selection is thread-uniform: promote inside.
                walk_unguarded(n->then_body);
                walk_unguarded(n->else_body);
              }
              break;
          }
        }
      };
  walk_unguarded(kernel.body);
  OA_RETURN_IF_ERROR(contained);

  // Declare the register block.
  const std::string reg_name = array + "_r";
  if (kernel.find_local_array(reg_name) != nullptr) {
    return failed_precondition("array '" + array + "' already in registers");
  }
  ArrayDecl reg;
  reg.name = reg_name;
  reg.space = ir::MemSpace::kRegister;
  reg.rows = AffineExpr::constant(dims[0].extent);
  reg.cols = AffineExpr::constant(dims[1].extent);
  kernel.local_arrays.push_back(reg);

  // Remap the unguarded references; thread-guarded regions keep their
  // global accesses and see the flushed values.
  auto remap = [&](ArrayRef& r) {
    if (r.array != array || r.index.size() != 2) return;
    r = ArrayRef{reg_name,
                 {r.index[0] - dims[0].base, r.index[1] - dims[1].base}};
  };
  std::function<void(std::vector<NodePtr>&)> remap_unguarded =
      [&](std::vector<NodePtr>& body) {
        for (auto& n : body) {
          switch (n->kind) {
            case Node::Kind::kLoop:
              remap_unguarded(n->body);
              break;
            case Node::Kind::kAssign:
              if (n->staging_copy) break;
              remap(n->lhs);
              if (n->rhs) n->rhs->for_each_ref(remap);
              break;
            case Node::Kind::kSync:
              break;
            case Node::Kind::kIf:
              if (n->conds.empty()) {
                remap_unguarded(n->then_body);
                remap_unguarded(n->else_body);
              }
              break;
          }
        }
      };
  remap_unguarded(kernel.body);

  // Init / flush loops around the innermost thread-mapped loop's body.
  Node* host = nullptr;
  ir::walk(kernel.body, [&](Node& n) {
    if (n.is_loop() && (n.map == ir::LoopMap::kThreadX ||
                        n.map == ir::LoopMap::kThreadY)) {
      host = &n;  // keep the innermost (last in pre-order nesting)
    }
    return true;
  });
  if (host == nullptr) {
    return failed_precondition("reg_alloc requires thread_grouping first");
  }
  const std::string r0 = "r0_" + array;
  const std::string r1 = "r1_" + array;
  auto make_rr_nest = [&](NodePtr stmt, const char* tag) {
    auto inner = ir::make_loop(std::string("Lrg0") + tag + "_" + array, r0,
                               Bound(0), Bound(AffineExpr(dims[0].extent)));
    inner->body.push_back(std::move(stmt));
    auto outer = ir::make_loop(std::string("Lrg1") + tag + "_" + array, r1,
                               Bound(0), Bound(AffineExpr(dims[1].extent)));
    outer->body.push_back(std::move(inner));
    return outer;
  };
  ArrayRef rref{reg_name, {AffineExpr::sym(r0), AffineExpr::sym(r1)}};
  // Init: Xr = 0.
  auto init = make_rr_nest(
      ir::make_assign(rref, AssignOp::kAssign, ir::make_const(0.0)), "i");
  // Flush: X[base0 + r0][base1 + r1] += Xr[r0][r1], guarded against the
  // array bounds.
  ArrayRef gref{array,
                {dims[0].base + AffineExpr::sym(r0),
                 dims[1].base + AffineExpr::sym(r1)}};
  std::vector<Pred> guards;
  guards.push_back(Pred{decl->rows - gref.index[0] - 1, Pred::Op::kGe});
  guards.push_back(Pred{decl->cols - gref.index[1] - 1, Pred::Op::kGe});
  if (may_be_negative(gref.index[0])) {
    guards.push_back(Pred{gref.index[0], Pred::Op::kGe});
  }
  if (may_be_negative(gref.index[1])) {
    guards.push_back(Pred{gref.index[1], Pred::Op::kGe});
  }
  std::vector<NodePtr> flush_body;
  flush_body.push_back(ir::make_assign(gref, AssignOp::kAddAssign,
                                       ir::make_ref(rref)));
  auto flush = make_rr_nest(
      ir::make_if(std::move(guards), std::move(flush_body)), "f");

  // Flush before the first thread-guarded region that touches X (the
  // bound solve of TRSM reads the accumulated values from global
  // memory); otherwise at the very end.
  size_t flush_at = host->body.size();
  for (size_t i = 0; i < host->body.size(); ++i) {
    const Node& n = *host->body[i];
    if (!n.is_if() || n.conds.empty()) continue;
    bool touches = false;
    ir::visit_refs(n.then_body, [&](const ArrayRef& r) {
      touches |= r.array == array;
    });
    if (touches) {
      flush_at = i;
      // The flush must precede the barrier that orders it before the
      // guarded region's reads.
      while (flush_at > 0 && host->body[flush_at - 1]->is_sync()) {
        --flush_at;
      }
      break;
    }
  }
  host->body.insert(host->body.begin() + static_cast<long>(flush_at),
                    std::move(flush));
  host->body.insert(host->body.begin(), std::move(init));
  return Status::ok();
}

}  // namespace oa::transforms
