// Device models for the three GPUs of the paper's evaluation (§V).
// Parameters follow the paper's hardware descriptions; derived numbers
// (clocks, bandwidth) come from the public specifications of the same
// boards. `issue_efficiency` is the single calibration constant per
// device, chosen so that the tuned GEMM-NN lands in the paper's
// reported GFLOPS band (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oa::gpusim {

/// How global-memory accesses turn into transactions.
enum class CoalescingModel {
  /// CC 1.0/1.1 (GeForce 9800): a half-warp must access a contiguous,
  /// aligned, in-order segment; otherwise the access serializes into
  /// one transaction per thread (gld_incoherent).
  kStrict,
  /// CC 1.2/1.3 (GTX285): the hardware coalesces into the minimal set
  /// of 64B segments touched by the half-warp; nothing is counted
  /// incoherent, but scattered accesses still cost many transactions.
  kSegmented,
  /// Fermi (C2050): per-warp requests served through the L1 in 128B
  /// cache lines; profiler exposes gld_request/gst_request.
  kFermi,
};

struct DeviceModel {
  std::string name;
  int sm_count = 0;
  int sps_per_sm = 0;
  int warp_size = 32;
  int64_t registers_per_sm = 0;
  int64_t shared_mem_per_sm = 0;   // bytes
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 8;
  int max_threads_per_block = 512;
  double clock_ghz = 0.0;          // SP (shader) clock
  double mem_bandwidth_gbs = 0.0;  // GB/s
  double peak_gflops = 0.0;        // single precision
  CoalescingModel coalescing = CoalescingModel::kStrict;
  int shared_banks = 16;
  /// Transaction granularity in bytes (64 for CC1.x segments, 128 for
  /// Fermi cache lines).
  int transaction_bytes = 64;
  /// Fraction of the theoretical issue rate real kernels reach
  /// (calibration constant).
  double issue_efficiency = 0.65;
  /// Warps an SM needs in flight to hide global-memory latency.
  int latency_hiding_warps = 8;
  /// Fixed per-kernel-launch overhead (seconds); serialized TRSM waves
  /// pay it once per wave.
  double launch_overhead_s = 5e-6;
  /// Baseline register cost per thread before register-array blocks.
  int base_regs_per_thread = 14;

  /// Cycles an SM needs to issue one instruction for a full warp
  /// (warp_size / sps_per_sm for single-issue CC1.x, 1 for Fermi's two
  /// 16-wide pipelines).
  double cycles_per_warp_instruction() const {
    const double c = static_cast<double>(warp_size) / sps_per_sm;
    return c < 1.0 ? 1.0 : c;
  }
};

/// The three evaluation platforms of the paper.
const DeviceModel& geforce_9800();
const DeviceModel& gtx285();
const DeviceModel& fermi_c2050();

/// All three, in the paper's order.
const std::vector<const DeviceModel*>& all_devices();

}  // namespace oa::gpusim
