#include "gpusim/device.hpp"

namespace oa::gpusim {

const DeviceModel& geforce_9800() {
  static const DeviceModel d = [] {
    DeviceModel m;
    m.name = "GeForce 9800";
    m.sm_count = 16;        // paper: 16 SMs x 8 SPs
    m.sps_per_sm = 8;
    m.registers_per_sm = 8192;
    m.shared_mem_per_sm = 16 * 1024;
    m.max_threads_per_sm = 768;
    m.max_blocks_per_sm = 8;
    m.clock_ghz = 1.674;    // 429 GFLOPS peak over 128 SPs x 2 flops
    m.mem_bandwidth_gbs = 70.4;
    m.peak_gflops = 429.0;  // paper
    m.coalescing = CoalescingModel::kStrict;
    m.shared_banks = 16;
    m.transaction_bytes = 64;
    m.issue_efficiency = 0.66;
    m.latency_hiding_warps = 8;
    return m;
  }();
  return d;
}

const DeviceModel& gtx285() {
  static const DeviceModel d = [] {
    DeviceModel m;
    m.name = "GTX285";
    m.sm_count = 30;        // paper: 30 SMs x 8 SPs
    m.sps_per_sm = 8;
    m.registers_per_sm = 16384;
    m.shared_mem_per_sm = 16 * 1024;
    m.max_threads_per_sm = 1024;
    m.max_blocks_per_sm = 8;
    m.clock_ghz = 1.476;
    m.mem_bandwidth_gbs = 159.0;
    m.peak_gflops = 709.0;  // paper (MAD+MUL dual issue)
    m.coalescing = CoalescingModel::kSegmented;
    m.shared_banks = 16;
    m.transaction_bytes = 64;
    m.issue_efficiency = 0.88;
    m.latency_hiding_warps = 10;
    return m;
  }();
  return d;
}

const DeviceModel& fermi_c2050() {
  static const DeviceModel d = [] {
    DeviceModel m;
    m.name = "Fermi Tesla C2050";
    m.sm_count = 14;        // paper: 14 SMs x 32 SPs
    m.sps_per_sm = 32;
    m.registers_per_sm = 32768;
    m.shared_mem_per_sm = 48 * 1024;  // paper: configured to 48KB
    m.max_threads_per_sm = 1536;
    m.max_blocks_per_sm = 8;
    m.max_threads_per_block = 1024;
    m.clock_ghz = 1.15;
    m.mem_bandwidth_gbs = 144.0;
    m.peak_gflops = 1030.0;  // paper: "over a Tera FLOPS"
    m.coalescing = CoalescingModel::kFermi;
    m.shared_banks = 32;
    m.transaction_bytes = 128;
    m.issue_efficiency = 0.72;
    m.latency_hiding_warps = 18;
    return m;
  }();
  return d;
}

const std::vector<const DeviceModel*>& all_devices() {
  static const std::vector<const DeviceModel*> v = {
      &geforce_9800(), &gtx285(), &fermi_c2050()};
  return v;
}

}  // namespace oa::gpusim
