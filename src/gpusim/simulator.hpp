// Program-level simulation: launches every kernel of a Program in
// order, models occupancy and timing, and aggregates profiler counters.
//
// Performance runs use *sampled* simulation: thread blocks are
// classified by their workload signature (triangular routines have one
// class per block row); representative blocks are interpreted in detail
// and the rest interpolated — exact for the affine kernels here, and
// validated against full functional simulation in the test suite
// (see bench/ablation_sampling for the accuracy/ speed trade-off).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "blas3/matrix.hpp"
#include "gpusim/block_sim.hpp"
#include "gpusim/compiled.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"

namespace oa::gpusim {

struct RunOptions {
  ir::Env int_params;                       // M, N, K bindings
  std::map<std::string, bool> bool_params;  // blank_zero etc.
  /// Detailed-simulate at most this many block classes per kernel;
  /// beyond it, classes are interpolated along the sorted class axis.
  int max_sampled_classes = 16;
  /// Warps sampled per representative block in performance mode
  /// (first/last); 0 = all warps.
  int warps_per_block_sample = 2;
  /// Warp-analytic ghost-mode fast path (closed-form coalescing + loop
  /// collapsing). Counters are bit-identical either way (the
  /// equivalence gate test enforces it); off = pure interpreter, the
  /// `--no-fastpath` escape hatch.
  bool fastpath = true;
};

struct KernelStats {
  std::string name;
  ir::LaunchConfig launch;
  int64_t blocks_per_sm = 0;  // occupancy
  Counters counters;
  double seconds = 0.0;
  /// Where the simulated blocks' statements were priced (raw counts
  /// over the blocks actually interpreted, not scaled by class sizes).
  FastPathStats fastpath;
};

struct RunResult {
  Counters counters;        // device-wide totals
  double seconds = 0.0;     // all kernels + launch overheads
  std::vector<KernelStats> kernels;
  FastPathStats fastpath;   // summed over kernels

  double gflops(double useful_flops) const {
    return seconds > 0 ? useful_flops / seconds / 1e9 : 0.0;
  }
};

class Simulator {
 public:
  explicit Simulator(const DeviceModel& device) : dev_(device) {}

  const DeviceModel& device() const { return dev_; }

  /// Functional execution: every block of every kernel runs with data;
  /// `buffers` holds the global arrays (inputs and outputs). Counters
  /// and timing are also produced (exact).
  StatusOr<RunResult> run_functional(const ir::Program& program,
                                     const RunOptions& options,
                                     GlobalBuffers& buffers) const;

  /// Data-free performance estimation via block sampling.
  StatusOr<RunResult> run_performance(const ir::Program& program,
                                      const RunOptions& options) const;

 private:
  StatusOr<KernelStats> run_kernel(const ir::Program& program,
                                   const ir::Kernel& kernel,
                                   const RunOptions& options,
                                   bool functional,
                                   GlobalBuffers* buffers) const;

  /// Occupancy: concurrent blocks per SM (0 = unlaunchable).
  int64_t blocks_per_sm(const CompiledKernel& k) const;

  /// Convert wave counters to seconds.
  double wave_time(const Counters& c, int64_t blocks,
                   int64_t warps_per_block, int64_t occupancy) const;

  const DeviceModel& dev_;
};

/// Allocate the global buffers a program needs: named inputs copied from
/// matrices, every other global (GM_map outputs) zero-initialized.
GlobalBuffers make_buffers(
    const ir::Program& program, const ir::Env& int_params,
    const std::map<std::string, const blas3::Matrix*>& inputs);

/// The shape agreement read_back will require, checkable *before*
/// execution: the named global exists and its declared extent matches
/// the destination matrix. Callers that would otherwise pay a full
/// functional run only to fail read_back (a transform retargeted the
/// output array's shape) reject up front with this instead.
Status check_read_back_shape(const ir::Program& program,
                             const ir::Env& int_params,
                             const std::string& name,
                             const blas3::Matrix& out);

/// Copy a named buffer back into a Matrix (shape from the program's
/// array declaration; must match the matrix).
Status read_back(const GlobalBuffers& buffers, const ir::Program& program,
                 const ir::Env& int_params, const std::string& name,
                 blas3::Matrix& out);

}  // namespace oa::gpusim
