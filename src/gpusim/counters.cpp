#include "gpusim/counters.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace oa::gpusim {

Counters& Counters::operator+=(const Counters& o) {
  gld_coherent += o.gld_coherent;
  gld_incoherent += o.gld_incoherent;
  gst_coherent += o.gst_coherent;
  gst_incoherent += o.gst_incoherent;
  gld_request += o.gld_request;
  gst_request += o.gst_request;
  local_read += o.local_read;
  local_store += o.local_store;
  instructions += o.instructions;
  shared_load += o.shared_load;
  shared_store += o.shared_store;
  shared_bank_conflict_replays += o.shared_bank_conflict_replays;
  global_bytes += o.global_bytes;
  flops += o.flops;
  barriers += o.barriers;
  return *this;
}

Counters& Counters::operator-=(const Counters& o) {
  gld_coherent -= o.gld_coherent;
  gld_incoherent -= o.gld_incoherent;
  gst_coherent -= o.gst_coherent;
  gst_incoherent -= o.gst_incoherent;
  gld_request -= o.gld_request;
  gst_request -= o.gst_request;
  local_read -= o.local_read;
  local_store -= o.local_store;
  instructions -= o.instructions;
  shared_load -= o.shared_load;
  shared_store -= o.shared_store;
  shared_bank_conflict_replays -= o.shared_bank_conflict_replays;
  global_bytes -= o.global_bytes;
  flops -= o.flops;
  barriers -= o.barriers;
  return *this;
}

Counters Counters::scaled(int64_t k) const {
  Counters c = *this;
  c.gld_coherent *= k;
  c.gld_incoherent *= k;
  c.gst_coherent *= k;
  c.gst_incoherent *= k;
  c.gld_request *= k;
  c.gst_request *= k;
  c.local_read *= k;
  c.local_store *= k;
  c.instructions *= k;
  c.shared_load *= k;
  c.shared_store *= k;
  c.shared_bank_conflict_replays *= k;
  c.global_bytes *= k;
  c.flops *= k;
  c.barriers *= k;
  return c;
}

std::string Counters::to_string() const {
  std::ostringstream os;
  os << "insts=" << format_millions(instructions)
     << " gld_coh=" << format_millions(gld_coherent)
     << " gld_incoh=" << format_millions(gld_incoherent)
     << " gst_coh=" << format_millions(gst_coherent)
     << " gst_incoh=" << format_millions(gst_incoherent)
     << " bytes=" << format_millions(global_bytes)
     << " flops=" << format_millions(flops);
  return os.str();
}

Counters report_per_sm(const Counters& total, const DeviceModel& device) {
  Counters c = total;
  const int64_t n = device.sm_count;
  c.gld_coherent /= n;
  c.gld_incoherent /= n;
  c.gst_coherent /= n;
  c.gst_incoherent /= n;
  c.gld_request /= n;
  c.gst_request /= n;
  c.local_read /= n;
  c.local_store /= n;
  c.instructions /= n;
  c.shared_load /= n;
  c.shared_store /= n;
  c.shared_bank_conflict_replays /= n;
  c.global_bytes /= n;
  c.flops /= n;
  c.barriers /= n;
  return c;
}

}  // namespace oa::gpusim
