#include "gpusim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace oa::gpusim {

namespace {

/// Linear interpolation between two counter snapshots.
Counters lerp(const Counters& a, const Counters& b, double t) {
  auto mix = [t](int64_t x, int64_t y) {
    return static_cast<int64_t>(std::llround(x + (y - x) * t));
  };
  Counters c;
  c.gld_coherent = mix(a.gld_coherent, b.gld_coherent);
  c.gld_incoherent = mix(a.gld_incoherent, b.gld_incoherent);
  c.gst_coherent = mix(a.gst_coherent, b.gst_coherent);
  c.gst_incoherent = mix(a.gst_incoherent, b.gst_incoherent);
  c.gld_request = mix(a.gld_request, b.gld_request);
  c.gst_request = mix(a.gst_request, b.gst_request);
  c.local_read = mix(a.local_read, b.local_read);
  c.local_store = mix(a.local_store, b.local_store);
  c.instructions = mix(a.instructions, b.instructions);
  c.shared_load = mix(a.shared_load, b.shared_load);
  c.shared_store = mix(a.shared_store, b.shared_store);
  c.shared_bank_conflict_replays =
      mix(a.shared_bank_conflict_replays, b.shared_bank_conflict_replays);
  c.global_bytes = mix(a.global_bytes, b.global_bytes);
  c.flops = mix(a.flops, b.flops);
  c.barriers = mix(a.barriers, b.barriers);
  return c;
}

}  // namespace

int64_t Simulator::blocks_per_sm(const CompiledKernel& k) const {
  const int64_t threads = k.launch.threads_per_block();
  const int64_t regs =
      (dev_.base_regs_per_thread + k.regs_per_thread) * threads;
  int64_t occ = dev_.max_blocks_per_sm;
  if (regs > 0) occ = std::min(occ, dev_.registers_per_sm / regs);
  if (k.shared_bytes > 0) {
    occ = std::min(occ, dev_.shared_mem_per_sm / k.shared_bytes);
  }
  occ = std::min<int64_t>(occ, dev_.max_threads_per_sm / threads);
  return occ;
}

double Simulator::wave_time(const Counters& c, int64_t blocks,
                            int64_t warps_per_block,
                            int64_t occupancy) const {
  const int64_t sm_active = std::min<int64_t>(dev_.sm_count, blocks);
  const int64_t per_sm =
      std::min(occupancy, (blocks + sm_active - 1) / sm_active);
  const double active_warps =
      static_cast<double>(std::max<int64_t>(1, per_sm * warps_per_block));
  const double clock_hz = dev_.clock_ghz * 1e9;

  // Issue-limited time.
  const double issue_cycles =
      static_cast<double>(c.instructions + c.shared_bank_conflict_replays) *
      dev_.cycles_per_warp_instruction() / dev_.issue_efficiency;
  double compute = issue_cycles / (sm_active * clock_hz);
  // Shallow pipelines stall without a few warps in flight.
  compute *= std::max(1.0, 6.0 / active_warps);

  // Bandwidth-limited time; few resident warps also expose latency.
  const double bw = dev_.mem_bandwidth_gbs * 1e9 *
                    (static_cast<double>(sm_active) / dev_.sm_count);
  double mem = static_cast<double>(c.global_bytes) / bw;
  mem *= std::clamp(static_cast<double>(dev_.latency_hiding_warps) /
                        active_warps,
                    1.0, 6.0);
  return std::max(compute, mem);
}

StatusOr<KernelStats> Simulator::run_kernel(const ir::Program& program,
                                            const ir::Kernel& kernel,
                                            const RunOptions& options,
                                            bool functional,
                                            GlobalBuffers* buffers) const {
  OA_ASSIGN_OR_RETURN(
      CompiledKernel ck,
      compile_kernel(program, kernel, options.int_params,
                     options.bool_params));
  const int64_t threads = ck.launch.threads_per_block();
  if (threads > dev_.max_threads_per_block) {
    return failed_precondition(
        str_format("%lld threads/block exceeds the device limit",
                   static_cast<long long>(threads)));
  }
  // Register budget: spill register blocks that do not fit.
  const int64_t reg_budget = std::min<int64_t>(
      124, dev_.registers_per_sm / std::max<int64_t>(1, threads));
  if (dev_.base_regs_per_thread + ck.regs_per_thread > reg_budget) {
    for (CArray& a : ck.arrays) {
      if (a.space == ir::MemSpace::kRegister) a.spilled = true;
    }
    ck.regs_per_thread = 0;
  }
  const int64_t occ = blocks_per_sm(ck);
  if (occ <= 0) {
    return failed_precondition("kernel '" + kernel.name +
                               "' does not fit on an SM");
  }

  KernelStats stats;
  stats.name = kernel.name;
  stats.launch = ck.launch;
  stats.blocks_per_sm = occ;
  const int64_t warps_per_block = (threads + dev_.warp_size - 1) /
                                  dev_.warp_size;

  // Waves: serialized grid-Y kernels run one row of blocks at a time.
  const bool serial = ck.launch.serial_grid_y;
  const int64_t num_waves = serial ? ck.launch.grid_y : 1;
  const int64_t blocks_per_wave =
      serial ? ck.launch.grid_x : ck.launch.num_blocks();

  if (functional) {
    // Execute every block; parallelize within a wave (blocks of a wave
    // are independent; waves are ordered).
    std::vector<Counters> wave_counters(static_cast<size_t>(num_waves));
    for (int64_t wave = 0; wave < num_waves; ++wave) {
      std::mutex mu;
      Counters wc;
      Status first_error = Status::ok();
      ThreadPool::shared().parallel_for(
          static_cast<size_t>(blocks_per_wave), [&](size_t idx) {
            const int64_t by =
                serial ? wave : static_cast<int64_t>(idx) / ck.launch.grid_x;
            const int64_t bx =
                serial ? static_cast<int64_t>(idx)
                       : static_cast<int64_t>(idx) % ck.launch.grid_x;
            BlockSim sim(ck, dev_, /*functional=*/true, buffers);
            Counters c;
            Status s = sim.run(by, bx, 0, static_cast<int>(threads), c);
            std::lock_guard<std::mutex> lock(mu);
            if (!s.is_ok() && first_error.is_ok()) first_error = s;
            wc += c;
          });
      OA_RETURN_IF_ERROR(first_error);
      wave_counters[static_cast<size_t>(wave)] = wc;
    }
    for (int64_t wave = 0; wave < num_waves; ++wave) {
      stats.counters += wave_counters[static_cast<size_t>(wave)];
      stats.seconds += wave_time(wave_counters[static_cast<size_t>(wave)],
                                 blocks_per_wave, warps_per_block, occ);
      stats.seconds += dev_.launch_overhead_s;
    }
    return stats;
  }

  // ---- Performance mode: sampled simulation -----------------------
  // Batched pricing: the member kernel is sampled once and the batch
  // dimension priced analytically on top — a per-member lane-affine
  // decomposition, so the warp-analytic fast path keeps covering
  // batched variants. The batch count is a *runtime* value carried by
  // RunOptions ("BATCH", default 1), never baked into the member IR.
  int64_t batch = 1;
  if (program.batched) {
    auto bit = options.int_params.find("BATCH");
    if (bit != options.int_params.end()) {
      batch = std::max<int64_t>(1, bit->second);
    }
  }
  const bool batch_tiled =
      program.batch_grouping == ir::BatchGrouping::kBatchTiled;

  // Detailed simulation of one block, with warp sampling.
  auto simulate_block = [&](int64_t by, int64_t bx) -> StatusOr<Counters> {
    BlockSim sim(ck, dev_, /*functional=*/false, nullptr,
                 options.fastpath);
    Counters c;
    const int nwarps = static_cast<int>(warps_per_block);
    const int sample = options.warps_per_block_sample;
    if (sample <= 0 || nwarps <= sample) {
      OA_RETURN_IF_ERROR(
          sim.run(by, bx, 0, static_cast<int>(threads), c));
      stats.fastpath += sim.fastpath_stats();
      return c;
    }
    // First and last warps, linearly scaled.
    Counters first, last;
    OA_RETURN_IF_ERROR(sim.run(by, bx, 0, dev_.warp_size, first));
    BlockSim sim2(ck, dev_, /*functional=*/false, nullptr,
                  options.fastpath);
    OA_RETURN_IF_ERROR(sim2.run(by, bx,
                                static_cast<int>(threads) - dev_.warp_size,
                                static_cast<int>(threads), last));
    stats.fastpath += sim.fastpath_stats();
    stats.fastpath += sim2.fastpath_stats();
    c = first.scaled(nwarps - 1) + last;
    return c;
  };

  if (!serial) {
    // Classify the whole grid by signature.
    struct ClassInfo {
      int64_t by, bx;
      int64_t count = 0;
    };
    std::map<int64_t, ClassInfo> classes;
    for (int64_t by = 0; by < ck.launch.grid_y; ++by) {
      for (int64_t bx = 0; bx < ck.launch.grid_x; ++bx) {
        const int64_t sig = ck.signature(by, bx);
        auto [it, inserted] = classes.try_emplace(sig, ClassInfo{by, bx, 0});
        it->second.count += 1;
      }
    }
    std::vector<ClassInfo> ordered;
    ordered.reserve(classes.size());
    for (auto& [sig, info] : classes) ordered.push_back(info);
    std::sort(ordered.begin(), ordered.end(),
              [](const ClassInfo& a, const ClassInfo& b) {
                return a.by != b.by ? a.by < b.by : a.bx < b.bx;
              });

    std::vector<Counters> per_class(ordered.size());
    if (static_cast<int>(ordered.size()) <= options.max_sampled_classes) {
      for (size_t i = 0; i < ordered.size(); ++i) {
        OA_ASSIGN_OR_RETURN(per_class[i],
                            simulate_block(ordered[i].by, ordered[i].bx));
      }
    } else {
      // Sample endpoints plus evenly spaced interior classes, linearly
      // interpolating between samples (counters are affine in the block
      // row for the BLAS3 trapezoids).
      const int budget = std::max(2, options.max_sampled_classes);
      std::vector<size_t> picks;
      for (int s = 0; s < budget; ++s) {
        picks.push_back(static_cast<size_t>(
            static_cast<double>(s) * (ordered.size() - 1) / (budget - 1) +
            0.5));
      }
      picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
      std::map<size_t, Counters> sampled;
      for (size_t p : picks) {
        OA_ASSIGN_OR_RETURN(Counters c,
                            simulate_block(ordered[p].by, ordered[p].bx));
        sampled[p] = c;
      }
      for (size_t i = 0; i < ordered.size(); ++i) {
        auto hi = sampled.lower_bound(i);
        if (hi->first == i) {
          per_class[i] = hi->second;
          continue;
        }
        auto lo = std::prev(hi);
        const double t = static_cast<double>(i - lo->first) /
                         static_cast<double>(hi->first - lo->first);
        per_class[i] = lerp(lo->second, hi->second, t);
      }
    }
    for (size_t i = 0; i < ordered.size(); ++i) {
      stats.counters += per_class[i].scaled(ordered[i].count);
    }
    const double member_time = wave_time(stats.counters, blocks_per_wave,
                                         warps_per_block, occ);
    if (batch > 1 && batch_tiled) {
      // One fused launch carries batch x member blocks: wave
      // quantization amortizes across members and the launch overhead
      // is paid once.
      stats.counters = stats.counters.scaled(batch);
      stats.seconds = wave_time(stats.counters, blocks_per_wave * batch,
                                warps_per_block, occ) +
                      dev_.launch_overhead_s;
    } else if (batch > 1) {
      // Per-member grouping: one member grid (and one launch overhead)
      // per batch member, back to back.
      stats.counters = stats.counters.scaled(batch);
      stats.seconds = (member_time + dev_.launch_overhead_s) *
                      static_cast<double>(batch);
    } else {
      stats.seconds = member_time + dev_.launch_overhead_s;
    }
    return stats;
  }

  // Serial kernel: one class per wave (blocks within a wave share the
  // signature — verified here on the first/last column).
  std::vector<Counters> wave_counters(static_cast<size_t>(num_waves));
  const int budget = std::max(2, options.max_sampled_classes);
  std::vector<int64_t> picks;
  if (num_waves <= budget) {
    for (int64_t w = 0; w < num_waves; ++w) picks.push_back(w);
  } else {
    for (int s = 0; s < budget; ++s) {
      picks.push_back(static_cast<int64_t>(
          static_cast<double>(s) * (num_waves - 1) / (budget - 1) + 0.5));
    }
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  }
  std::map<int64_t, Counters> sampled;
  for (int64_t w : picks) {
    OA_ASSIGN_OR_RETURN(Counters c, simulate_block(w, 0));
    if (ck.launch.grid_x > 1 &&
        ck.signature(w, 0) != ck.signature(w, ck.launch.grid_x - 1)) {
      // Boundary column differs (problem size not a tile multiple):
      // sample it separately and scale the interior.
      OA_ASSIGN_OR_RETURN(Counters last,
                          simulate_block(w, ck.launch.grid_x - 1));
      sampled[w] = c.scaled(blocks_per_wave - 1) + last;
    } else {
      sampled[w] = c.scaled(blocks_per_wave);
    }
  }
  for (int64_t w = 0; w < num_waves; ++w) {
    auto hi = sampled.lower_bound(w);
    if (hi != sampled.end() && hi->first == w) {
      wave_counters[static_cast<size_t>(w)] = hi->second;
      continue;
    }
    auto lo = std::prev(hi);
    if (hi == sampled.end()) {
      wave_counters[static_cast<size_t>(w)] = lo->second;
      continue;
    }
    const double t = static_cast<double>(w - lo->first) /
                     static_cast<double>(hi->first - lo->first);
    wave_counters[static_cast<size_t>(w)] = lerp(lo->second, hi->second, t);
  }
  for (int64_t w = 0; w < num_waves; ++w) {
    stats.counters += wave_counters[static_cast<size_t>(w)];
    stats.seconds += wave_time(wave_counters[static_cast<size_t>(w)],
                               blocks_per_wave, warps_per_block, occ);
    stats.seconds += dev_.launch_overhead_s;
  }
  if (batch > 1) {
    // Wave-serialized batched kernels (not reachable from the GEMM
    // families today): members serialize either way; batch tiling only
    // amortizes the per-wave launch overhead.
    stats.counters = stats.counters.scaled(batch);
    if (batch_tiled) {
      const double oh =
          static_cast<double>(num_waves) * dev_.launch_overhead_s;
      stats.seconds = (stats.seconds - oh) * static_cast<double>(batch) + oh;
    } else {
      stats.seconds *= static_cast<double>(batch);
    }
  }
  return stats;
}

StatusOr<RunResult> Simulator::run_functional(const ir::Program& program,
                                              const RunOptions& options,
                                              GlobalBuffers& buffers) const {
  RunResult result;
  for (const ir::Kernel& kernel : program.kernels) {
    OA_ASSIGN_OR_RETURN(
        KernelStats stats,
        run_kernel(program, kernel, options, /*functional=*/true,
                   &buffers));
    result.counters += stats.counters;
    result.seconds += stats.seconds;
    result.fastpath += stats.fastpath;
    result.kernels.push_back(std::move(stats));
  }
  return result;
}

StatusOr<RunResult> Simulator::run_performance(
    const ir::Program& program, const RunOptions& options) const {
  RunResult result;
  for (const ir::Kernel& kernel : program.kernels) {
    OA_ASSIGN_OR_RETURN(
        KernelStats stats,
        run_kernel(program, kernel, options, /*functional=*/false,
                   nullptr));
    result.counters += stats.counters;
    result.seconds += stats.seconds;
    result.fastpath += stats.fastpath;
    result.kernels.push_back(std::move(stats));
  }
  return result;
}

GlobalBuffers make_buffers(
    const ir::Program& program, const ir::Env& int_params,
    const std::map<std::string, const blas3::Matrix*>& inputs) {
  GlobalBuffers buffers;
  for (const ir::ArrayDecl& d : program.globals) {
    const int64_t elems = d.num_elements(int_params);
    std::vector<double> buf(static_cast<size_t>(elems), 0.0);
    auto it = inputs.find(d.name);
    if (it != inputs.end() && it->second != nullptr) {
      const blas3::Matrix& m = *it->second;
      const int64_t rows = std::min(d.num_rows(int_params), m.rows());
      const int64_t cols = std::min(d.num_cols(int_params), m.cols());
      const int64_t ld = d.leading_dim(int_params);
      for (int64_t c = 0; c < cols; ++c) {
        for (int64_t r = 0; r < rows; ++r) {
          buf[static_cast<size_t>(r + c * ld)] = m.at(r, c);
        }
      }
    }
    buffers.data.emplace(d.name, std::move(buf));
  }
  return buffers;
}

Status check_read_back_shape(const ir::Program& program,
                             const ir::Env& int_params,
                             const std::string& name,
                             const blas3::Matrix& out) {
  const ir::ArrayDecl* d = program.find_global(name);
  if (d == nullptr) return not_found("no global array '" + name + "'");
  if (out.rows() != d->num_rows(int_params) ||
      out.cols() != d->num_cols(int_params)) {
    return invalid_argument("read_back shape mismatch for '" + name + "'");
  }
  return Status::ok();
}

Status read_back(const GlobalBuffers& buffers, const ir::Program& program,
                 const ir::Env& int_params, const std::string& name,
                 blas3::Matrix& out) {
  OA_RETURN_IF_ERROR(
      check_read_back_shape(program, int_params, name, out));
  const ir::ArrayDecl* d = program.find_global(name);
  auto it = buffers.data.find(name);
  if (it == buffers.data.end()) {
    return not_found("no buffer for '" + name + "'");
  }
  const int64_t rows = d->num_rows(int_params);
  const int64_t cols = d->num_cols(int_params);
  const int64_t ld = d->leading_dim(int_params);
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t r = 0; r < rows; ++r) {
      out.set(r, c, it->second[static_cast<size_t>(r + c * ld)]);
    }
  }
  return Status::ok();
}

}  // namespace oa::gpusim
