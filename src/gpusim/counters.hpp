// Profiler counters emulating cuda_profile's events (Tables I-III of
// the paper). Like the real profiler, the paper's tables report events
// observed on one SM; report_per_sm() applies the same normalization.
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device.hpp"

namespace oa::gpusim {

struct Counters {
  // CC 1.x style (GeForce 9800 / GTX285 tables).
  int64_t gld_coherent = 0;    // coalesced global load transactions
  int64_t gld_incoherent = 0;  // serialized (non-coalesced) global loads
  int64_t gst_coherent = 0;
  int64_t gst_incoherent = 0;
  // Fermi style (Table III).
  int64_t gld_request = 0;     // per-warp global load requests
  int64_t gst_request = 0;
  int64_t local_read = 0;      // register-spill (local memory) traffic
  int64_t local_store = 0;
  // Common.
  int64_t instructions = 0;    // dynamic warp instructions
  int64_t shared_load = 0;
  int64_t shared_store = 0;
  int64_t shared_bank_conflict_replays = 0;
  int64_t global_bytes = 0;    // total DRAM traffic
  int64_t flops = 0;           // arithmetic ops actually executed
  int64_t barriers = 0;

  Counters& operator+=(const Counters& o);
  friend Counters operator+(Counters a, const Counters& b) {
    a += b;
    return a;
  }
  /// Event-wise difference (the loop collapser measures one iteration
  /// as a counter delta and scales it).
  Counters& operator-=(const Counters& o);
  friend Counters operator-(Counters a, const Counters& b) {
    a -= b;
    return a;
  }
  /// Bit-exact equality — the fast-path equivalence gate's assertion.
  friend bool operator==(const Counters&, const Counters&) = default;
  /// Scale every event count by k (class-size scaling in the sampled
  /// performance simulation).
  Counters scaled(int64_t k) const;

  std::string to_string() const;
};

/// The paper's tables show per-SM profiler samples: divide the
/// device-wide totals by the SM count.
Counters report_per_sm(const Counters& total, const DeviceModel& device);

}  // namespace oa::gpusim
