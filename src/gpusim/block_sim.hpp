// Lockstep SIMT interpretation of one thread block (or a warp slice of
// it). All simulated lanes advance statement-by-statement with an
// active mask, which is exactly the execution model of the hardware the
// paper targets: divergent loop bounds mask lanes off, barriers require
// full convergence, and per-access coalescing / bank-conflict analysis
// happens on the lanes of a (half-)warp.
//
// Two modes:
//  * functional: lane values are computed and written to the bound
//    global buffers (used to verify every generated kernel against the
//    CPU reference);
//  * ghost: subscripts only — loop bounds in the affine IR never depend
//    on data, so performance counters are exact without touching data.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gpusim/compiled.hpp"
#include "gpusim/counters.hpp"

namespace oa::gpusim {

/// Named global-memory buffers (column-major float).
struct GlobalBuffers {
  std::map<std::string, std::vector<float>, std::less<>> data;

  std::vector<float>* find(std::string_view name) {
    auto it = data.find(name);
    return it == data.end() ? nullptr : &it->second;
  }
};

class BlockSim {
 public:
  /// `buffers` may be null in ghost mode. The buffers must outlive the
  /// simulator and match the compiled array shapes.
  BlockSim(const CompiledKernel& kernel, const DeviceModel& device,
           bool functional, GlobalBuffers* buffers);

  /// Execute lanes [lane_begin, lane_end) of block (by, bx) in
  /// lockstep; accumulate counters into `out`. Functional runs must
  /// cover the whole block (barrier + shared-memory semantics).
  Status run(int64_t by, int64_t bx, int lane_begin, int lane_end,
             Counters& out);

 private:
  Status exec(const std::vector<CNode>& body, std::vector<uint8_t>& mask);
  Status exec_assign(const CNode& n, const std::vector<uint8_t>& mask);
  /// Transaction analysis + optional functional load of one reference.
  Status process_ref(const CRef& ref, bool is_store,
                     const std::vector<uint8_t>& mask, bool count_inst);
  float load_value(const CRef& ref, int lane, int64_t addr) const;
  float eval_val(const CVal& v, int lane, Status& status);

  int64_t addr_of(const CRef& ref, int lane, Status& status) const;
  int64_t distinct_chunks(const std::vector<uint8_t>& mask, int g0, int g1,
                          int chunk_bytes, int site) const;

  const CompiledKernel& k_;
  const DeviceModel& dev_;
  bool functional_;
  GlobalBuffers* buffers_;

  int nlanes_ = 0;
  int lane_begin_ = 0;
  std::vector<int64_t> slots_;          // nlanes x num_slots
  std::vector<float*> global_ptr_;      // per array (globals only)
  std::vector<std::vector<float>> shared_;    // per shared array
  std::vector<std::vector<float>> registers_; // per register array
                                              // (elements x nlanes)
  std::vector<int64_t> reuse_addr_;     // num_sites x nlanes
  mutable std::vector<int64_t> line_addr_;  // Fermi L1 line cache
  std::vector<int64_t> scratch_addr_;   // per lane
  Counters counters_;

  int64_t* lane_slots(int lane) {
    return slots_.data() + static_cast<size_t>(lane) * k_.num_slots;
  }
  const int64_t* lane_slots(int lane) const {
    return slots_.data() + static_cast<size_t>(lane) * k_.num_slots;
  }
};

}  // namespace oa::gpusim
