// Lockstep SIMT interpretation of one thread block (or a warp slice of
// it). All simulated lanes advance statement-by-statement with an
// active mask, which is exactly the execution model of the hardware the
// paper targets: divergent loop bounds mask lanes off, barriers require
// full convergence, and per-access coalescing / bank-conflict analysis
// happens on the lanes of a (half-)warp.
//
// Two modes:
//  * functional: lane values are computed and written to the bound
//    global buffers (used to verify every generated kernel against the
//    CPU reference);
//  * ghost: subscripts only — loop bounds in the affine IR never depend
//    on data, so performance counters are exact without touching data.
//
// Ghost mode additionally carries a *warp-analytic fast path* layered
// under the interpreter. Statements whose references are lane-affine
// (compiled.hpp annotations) are charged by closed-form transaction
// formulas over (base, stride, group) instead of materializing per-lane
// addresses; loops whose per-iteration counter delta is provably
// iteration-invariant are collapsed to two representative iterations
// plus an analytic multiply. Any statement missing a precondition falls
// back to the interpreter — per statement, with the lane state synced —
// so the counters are bit-identical either way (enforced by
// tests/fastpath_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/compiled.hpp"
#include "gpusim/counters.hpp"

namespace oa::gpusim {

/// Named global-memory buffers (column-major). Values are doubles with
/// the precision discipline of blas3::Matrix: an f32 kernel's buffers
/// only ever hold exactly-representable floats.
struct GlobalBuffers {
  std::map<std::string, std::vector<double>, std::less<>> data;

  std::vector<double>* find(std::string_view name) {
    auto it = data.find(name);
    return it == data.end() ? nullptr : &it->second;
  }
};

/// Where ghost-mode statement executions were priced. `fast` counts
/// analytic executions (collapsed iterations included), `interp` counts
/// interpreter executions — fallbacks and fastpath-off runs alike.
struct FastPathStats {
  int64_t fast_statements = 0;
  int64_t interp_statements = 0;
  int64_t collapsed_loops = 0;       // dynamic loop executions collapsed
  int64_t collapsed_iterations = 0;  // iterations skipped by collapsing

  FastPathStats& operator+=(const FastPathStats& o) {
    fast_statements += o.fast_statements;
    interp_statements += o.interp_statements;
    collapsed_loops += o.collapsed_loops;
    collapsed_iterations += o.collapsed_iterations;
    return *this;
  }
  /// Fraction of statement executions priced analytically.
  double coverage() const {
    const int64_t total = fast_statements + interp_statements;
    return total > 0 ? static_cast<double>(fast_statements) / total : 0.0;
  }
};

class BlockSim {
 public:
  /// `buffers` may be null in ghost mode. The buffers must outlive the
  /// simulator and match the compiled array shapes. `fastpath` enables
  /// the warp-analytic ghost executor; it is ignored (off) in
  /// functional mode, whose semantics never change.
  BlockSim(const CompiledKernel& kernel, const DeviceModel& device,
           bool functional, GlobalBuffers* buffers, bool fastpath = true);

  /// Execute lanes [lane_begin, lane_end) of block (by, bx) in
  /// lockstep; accumulate counters into `out`. Functional runs must
  /// cover the whole block (barrier + shared-memory semantics).
  Status run(int64_t by, int64_t bx, int lane_begin, int lane_end,
             Counters& out);

  const FastPathStats& fastpath_stats() const { return fstats_; }

 private:
  // ---- interpreter ------------------------------------------------
  Status exec(const std::vector<CNode>& body, std::vector<uint8_t>& mask);
  Status exec_node(const CNode& n, std::vector<uint8_t>& mask);
  Status exec_assign(const CNode& n, const std::vector<uint8_t>& mask);
  /// Transaction analysis + optional functional load of one reference.
  Status process_ref(const CRef& ref, bool is_store,
                     const std::vector<uint8_t>& mask, bool count_inst);
  /// Per-group transaction counting over scratch_addr_ (shared between
  /// the interpreter and the fast path's materialized groups).
  void count_group(const CArray& arr, const CRef& ref, bool is_store,
                   const std::vector<uint8_t>& mask, int g0, int g1,
                   int active, bool count_inst);
  double load_value(const CRef& ref, int lane, int64_t addr) const;
  double eval_tape(const CNode& n, int lane, Status& status);

  int64_t addr_of(const CRef& ref, int lane, Status& status) const;
  int64_t distinct_chunks(const std::vector<uint8_t>& mask, int g0, int g1,
                          int chunk_bytes, int site) const;

  // ---- warp-analytic fast path (ghost mode, full mask) ------------
  Status exec_fast(const std::vector<CNode>& body);
  Status exec_fast_loop(const CNode& n);
  Status exec_fast_assign(const CNode& n);
  Status process_ref_fast(const CRef& ref, bool is_store, bool count_inst);
  /// Run one statement through the interpreter with the uniform loop
  /// variables synced into the per-lane slots.
  Status fallback_node(const CNode& n);
  /// Runtime bound resolution: find the lb term that is the maximum and
  /// the ub term that is the minimum for *every* simulated lane (via
  /// interval tests on the pairwise term differences).
  bool binding_terms(const CNode& n, size_t& bi, size_t& bj) const;
  /// Divergent loops where no lane iterates more than once (tile-load
  /// loops striding by the thread count): one analytically-masked round.
  Status exec_masked_loop(const CNode& n, int64_t ulb, int64_t uub,
                          int64_t ltx, int64_t lty, int64_t utx,
                          int64_t uty);
  Status exec_masked(const std::vector<CNode>& body,
                     const std::vector<uint8_t>& mask, int l0, int l1);
  Status exec_masked_assign(const CNode& n,
                            const std::vector<uint8_t>& mask, int l0,
                            int l1);
  /// process_ref with affine-materialized addresses: identical pricing
  /// and per-lane reuse state, minus the per-lane subscript evaluation.
  Status process_ref_masked(const CRef& ref, bool is_store,
                            bool count_inst,
                            const std::vector<uint8_t>& mask, int l0,
                            int l1);
  /// Hand a load site over to the per-lane reuse mechanism: if the last
  /// visit was analytic, reconstruct the triple's address vector into
  /// the reuse row — exactly the state a per-lane run would have left.
  void adopt_site_interp(const CRef& ref);
  void sync_fast_vars();
  /// Exact min/max of uniform + c_tx*tx + c_ty*ty over the simulated
  /// lane range (contiguous absolute lanes), or over the sub-range of
  /// local lanes [l0, l1] for the masked executor.
  void affine_range(int64_t uniform, int64_t c_tx, int64_t c_ty,
                    int64_t& mn, int64_t& mx) const;
  void affine_range_lanes(int64_t uniform, int64_t c_tx, int64_t c_ty,
                          int l0, int l1, int64_t& mn, int64_t& mx) const;
  /// Affine stride of a lane group: true when addresses of lanes
  /// [g0, g0+n) form base + s*i.
  bool group_stride(int g0, int n, int64_t uniform, int64_t c_tx,
                    int64_t c_ty, int64_t& base, int64_t& stride) const;
  void materialize_group(const CRef& ref, int64_t uniform, int g0, int g1);
  /// Interval-arithmetic proof that every reference in `body` stays in
  /// bounds for all trip values in [lo, last] (the collapse skip-check).
  bool collapse_bounds_ok(const CNode& n, int64_t lo, int64_t last);
  bool sites_in_bounds(const std::vector<CNode>& body,
                       std::vector<std::pair<int64_t, int64_t>>& iv) const;

  const CompiledKernel& k_;
  const DeviceModel& dev_;
  bool functional_;
  GlobalBuffers* buffers_;
  bool fastpath_ = false;

  int nlanes_ = 0;
  int lane_begin_ = 0;
  std::vector<int64_t> slots_;          // nlanes x num_slots
  std::vector<double*> global_ptr_;     // per array (globals only)
  std::vector<std::vector<double>> shared_;    // per shared array
  std::vector<std::vector<double>> registers_; // per register array
                                               // (elements x nlanes)
  std::vector<int64_t> reuse_addr_;     // num_sites x nlanes
  mutable std::vector<int64_t> line_addr_;  // Fermi L1 line cache
  std::vector<int64_t> scratch_addr_;   // per lane
  Counters counters_;

  // Fast-path state. Site summaries are the O(1) counterpart of
  // reuse_addr_: the canonical triple (base, row step, wrap step)
  // characterizes a lane-affine address vector exactly, so comparing
  // triples decides register reuse without touching per-lane arrays.
  // A site's pricing can alternate between the two mechanisms mid-run
  // (boundary tiles of a peeled loop fall back while interior tiles
  // stay analytic), so ownership is handed off explicitly: crossing to
  // the interpreter materializes the triple into the reuse row
  // (adopt_site_interp), crossing back runs one per-lane compare before
  // triple summaries resume (process_ref_fast).
  std::vector<int64_t> uslots_;         // uniform slot values
  std::vector<uint8_t> full_mask_;
  std::vector<int64_t> site_base_, site_rowc_, site_wrapc_;
  std::vector<uint8_t> site_valid_;
  std::vector<uint8_t> site_interp_;    // reuse row owns this site
  std::vector<int64_t> site_gen_;       // last load generation per site
  int64_t exec_gen_ = 1;
  std::vector<const CRef*> site_ref_;   // site id -> its reference
  std::vector<uint8_t> collapse_ok_;    // per loop_id: alignment holds
  /// Lockstep loop variables in scope: the uniform slot array holds
  /// their lane-invariant component; syncing a lane adds tx*lane_tx +
  /// ty*lane_ty (zero for uniform-bound loops).
  struct FastVar {
    int slot;
    int64_t tx, ty;
  };
  std::vector<FastVar> fast_var_stack_;
  bool lanes_synced_ = true;
  /// Monotone count of interpreter delegations (statement fallbacks and
  /// out-of-bounds reference handoffs). A collapse attempt commits its
  /// analytic multiply only if the two representative iterations ran
  /// without bumping it: control independence then makes the fallback
  /// pattern — and hence the counter delta — trip-invariant.
  int64_t fallback_count_ = 0;
  /// Same role for masked rounds: they advance per-lane reuse state,
  /// which the analytic skip cannot replay, so they also void commits.
  int64_t masked_count_ = 0;
  // Lane-range geometry of the current run.
  int64_t bx_ = 1, tx0_ = 0, ty0_ = 0, tx_last_ = 0, ty_last_ = 0;
  bool has_row_step_ = false, has_wrap_ = false;
  int warps_ = 0;
  FastPathStats fstats_;

  int64_t* lane_slots(int lane) {
    return slots_.data() + static_cast<size_t>(lane) * k_.num_slots;
  }
  const int64_t* lane_slots(int lane) const {
    return slots_.data() + static_cast<size_t>(lane) * k_.num_slots;
  }
};

}  // namespace oa::gpusim
